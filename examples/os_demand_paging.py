#!/usr/bin/env python3
"""The mini operating system: demand paging, preemption, monitor calls.

Boots the assembly kernel of :mod:`repro.system.kernel` -- the paper's
dispatch routine at physical address zero, the surprise register, the
on-chip segmentation plus off-chip page map -- and runs three user
processes under a preemptive round-robin scheduler.

    python examples/os_demand_paging.py
"""

from repro.compiler import compile_source
from repro.system import Kernel, PAGE_WORDS, build_kernel_program
from repro.workloads import CORPUS, EXPECTED_OUTPUT


def main() -> None:
    rom = build_kernel_program()
    print(f"kernel ROM: {rom.code_size} instruction words at physical 0")
    print(f"page size: {PAGE_WORDS} words\n")

    kernel = Kernel(quantum=2500)
    names = ["fib_iterative", "sieve", "strings"]
    for name in names:
        process = kernel.add_process(compile_source(CORPUS[name]).program)
        print(f"  pid {process.pid}: {name} "
              f"(backing store at system VA {process.base_sysva:#x})")

    print("\nbooting...")
    kernel.run()

    print("\nper-process console output:")
    for pid, name in enumerate(names):
        output = kernel.output(pid)
        ok = "ok" if output == EXPECTED_OUTPUT[name] else "WRONG"
        print(f"  pid {pid} ({name:14s}): {output}  [{ok}]")

    print("\nsystem activity:")
    print(f"  page faults serviced:   {kernel.pagemap.stats.faults}")
    print(f"  disk page-ins:          {kernel.disk.copies}")
    print(f"  translations performed: {kernel.pagemap.stats.translations}")
    print(f"  exceptions taken:       {kernel.cpu.stats.exceptions}")
    print(f"  mapped pages now valid: {len(kernel.pagemap.entries)}")
    print(
        "\nnote: context switches never touched the page map -- the on-chip\n"
        "segmentation (PID insertion) keeps every process's entries live\n"
        "simultaneously, exactly as the paper argues (section 3.2)."
    )
    show_replacement()


def show_replacement() -> None:
    """The same machinery under memory pressure: clock replacement."""
    sweep = """
    program sweep;
    const n = 1500;
    var a: array [0..1499] of integer;
        i, checksum: integer;
    begin
      for i := 0 to n - 1 do a[i] := i;
      checksum := 0;
      for i := 0 to n - 1 do checksum := checksum + a[i];
      writeln(checksum)
    end.
    """
    print("\nmemory pressure (a 6-page array pushed through tiny frame pools):")
    for frames in (4, 8, 32):
        kernel = Kernel(max_frames=frames)
        kernel.add_process(compile_source(sweep).program)
        kernel.run(300_000_000)
        assert kernel.output(0) == [sum(range(1500))]
        stats = kernel.pagemap.stats
        print(
            f"  {frames:3d} frames: {stats.faults:4d} faults, "
            f"{stats.victims_suggested:4d} clock evictions, "
            f"{kernel.disk.writebacks:4d} dirty write-backs  "
            f"[output still correct]"
        )


if __name__ == "__main__":
    main()
