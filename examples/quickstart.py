#!/usr/bin/env python3
"""Quickstart: compile a mini-Pascal program, watch the postpass work,
and run the result on the pipeline simulator.

    python examples/quickstart.py
"""

from repro.compiler import compile_source, piece_stream
from repro.reorg import ALL_LEVELS, reorganize
from repro.sim import HazardMode, Machine

SOURCE = """
program quickstart;
var i, total: integer;

function square(n: integer): integer;
begin
  square := n * n
end;

begin
  total := 0;
  for i := 1 to 10 do
    total := total + square(i);
  writeln(total)
end.
"""


def main() -> None:
    # 1. compile: front end -> code generator -> reorganizer -> image
    compiled = compile_source(SOURCE)
    print(f"compiled to {compiled.static_count} instruction words")
    print(f"globals at {compiled.unit.globals_base}, "
          f"{compiled.unit.globals_words} words\n")

    # 2. the postpass at every optimization level (Table 11's ladder)
    stream = piece_stream(SOURCE)
    print("postpass optimization ladder:")
    for level in ALL_LEVELS:
        result = reorganize(stream, level)
        print(
            f"  {level.value:14s} {result.static_count:4d} words "
            f"({result.noop_count} no-ops, {result.packed_count} packed)"
        )
    print()

    # 3. run it -- CHECKED mode turns any violated pipeline constraint
    # into an exception instead of silent corruption
    machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
    stats = machine.run()
    print(f"output: {machine.output}")
    print(
        f"ran {stats.words} instruction words in {stats.cycles} cycles; "
        f"{stats.free_cycle_fraction:.0%} of data-memory cycles were free"
    )
    assert machine.output == [sum(n * n for n in range(1, 11))]


if __name__ == "__main__":
    main()
