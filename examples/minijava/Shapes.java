class Shapes {
    public static void main(String[] s) {
        Shape a;
        Shape b;
        Shape c;
        int total;
        a = new Square().init(5, 0);
        b = new Rectangle().init(4, 6);
        c = new Triangle().init(10, 3);
        total = a.area() + b.area() + c.area();
        System.out.println(a.area());
        System.out.println(b.area());
        System.out.println(c.area());
        System.out.println(total);
    }
}

class Shape {
    int w;
    int h;

    public Shape init(int width, int height) {
        w = width;
        h = height;
        return this;
    }

    public int area() {
        return 0;
    }
}

class Square extends Shape {
    public int area() {
        return w * w;
    }
}

class Rectangle extends Shape {
    public int area() {
        return w * h;
    }
}

class Triangle extends Shape {
    public int area() {
        return (w * h) / 2;
    }
}
