class Factorial {
    public static void main(String[] a) {
        Fac f;
        f = new Fac();
        System.out.println(f.computeFac(10));
    }
}

class Fac {
    public int computeFac(int num) {
        int result;
        if (num < 1) {
            result = 1;
        } else {
            result = num * this.computeFac(num - 1);
        }
        return result;
    }
}
