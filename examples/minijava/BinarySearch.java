class BinarySearch {
    public static void main(String[] a) {
        Finder f;
        int hits;
        f = new Finder();
        hits = f.run(16);
        System.out.println(hits);
        System.out.println(f.search(21));
        System.out.println(f.search(22));
    }
}

class Finder {
    int[] data;

    public int init(int n) {
        int i;
        data = new int[n];
        i = 0;
        while (i < n) {
            data[i] = i * 3;
            i = i + 1;
        }
        return n;
    }

    public int search(int value) {
        int lo;
        int hi;
        int mid;
        int found;
        lo = 0;
        hi = data.length - 1;
        found = 0 - 1;
        while (lo <= hi) {
            mid = (lo + hi) / 2;
            if (data[mid] == value) {
                found = mid;
                hi = lo - 1;
            } else {
                if (data[mid] < value) {
                    lo = mid + 1;
                } else {
                    hi = mid - 1;
                }
            }
        }
        return found;
    }

    public int run(int n) {
        int sink;
        int hits;
        int probe;
        sink = this.init(n);
        hits = 0;
        probe = 0;
        while (probe < n * 3) {
            if (0 <= this.search(probe)) {
                hits = hits + 1;
            }
            probe = probe + 1;
        }
        return hits;
    }
}
