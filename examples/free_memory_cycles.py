#!/usr/bin/env python3
"""Free memory cycles and zero-cost DMA (paper section 3.1).

Runs a program while a DMA engine drains a block transfer using only
the processor's *free* data-memory cycles -- the bandwidth the paper's
status pin exports.

    python examples/free_memory_cycles.py
"""

from repro.compiler import compile_source
from repro.sim import Machine
from repro.system import FreeCycleDma, run_with_dma
from repro.workloads import CORPUS


def main() -> None:
    compiled = compile_source(CORPUS["wordcount"])
    machine = Machine(compiled.program)
    dma = FreeCycleDma(machine.memory)

    # stage a source buffer well away from the program
    source_base, dest_base, length = 0x100000, 0x140000, 2048
    for i in range(length):
        machine.memory.poke(source_base + i, (i * 2654435761) & 0xFFFFFFFF)
    transfer = dma.enqueue(source_base, dest_base, length)

    print(f"running wordcount with a {length}-word DMA transfer queued...")
    words, moved = run_with_dma(machine, dma)

    stats = machine.stats
    print(f"\nprogram: {words} instruction words, output {machine.output}")
    print(f"data-memory cycles used by the program: {stats.memory_cycles_used}")
    print(f"free cycles offered on the pin:         {stats.free_memory_cycles}")
    print(f"free fraction: {stats.free_cycle_fraction:.0%} "
          "(the paper measured wasted bandwidth 'close to 40%')")
    print(f"\nDMA: moved {moved}/{length} words "
          f"({'complete' if transfer.done else 'incomplete'}) "
          "without stealing a single processor cycle")

    # verify the copy
    mismatches = sum(
        1
        for i in range(min(moved, length))
        if machine.memory.peek(dest_base + i) != machine.memory.peek(source_base + i)
    )
    print(f"verification: {mismatches} mismatches in the copied block")
    assert mismatches == 0


if __name__ == "__main__":
    main()
