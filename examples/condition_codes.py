#!/usr/bin/env python3
"""The condition-code argument (paper section 2.3, Figures 1-3).

Evaluates ``Found := (Rec = Key) OR (I = 13)`` on three machines:

- a CC machine with branch evaluation (full and early-out -- Figure 1),
- a CC machine with the M68000 conditional set (Figure 2),
- MIPS with *Set Conditionally* (Figure 3, branch-free).

    python examples/condition_codes.py
"""

from repro.ccmachine import CcMachine, CcStrategy, compile_cc_source
from repro.compiler import BooleanStrategy, CompileOptions, compile_source
from repro.experiments.figures import figure1, figure2, figure3
from repro.sim import Machine

SOURCE = """
program found;
var rec, key, i: integer;
    found: boolean;
begin
  read(rec); read(key); read(i);
  found := (rec = key) or (i = 13);
  if found then writeln(1) else writeln(0)
end.
"""


def main() -> None:
    print("the paper's exact code sequences, executed:")
    for result in (figure1(), figure2(), figure3()):
        print()
        print(result.render())

    print()
    print("=" * 70)
    print("the same source compiled by the full compilers")
    print("=" * 70)
    cases = [(5, 5, 13), (5, 6, 13), (5, 6, 7)]

    for strategy in CcStrategy:
        total = 0
        for rec, key, i in cases:
            machine = CcMachine(
                compile_cc_source(SOURCE, strategy), inputs=[rec, key, i]
            )
            machine.run(100_000)
            total += machine.stats.weighted_cost
        print(f"  CC machine, {strategy.value:10s}: "
              f"avg weighted cost {total / len(cases):7.1f} "
              "(register=1, compare=2, branch=4)")

    for strategy in BooleanStrategy:
        compiled = compile_source(SOURCE, CompileOptions(boolean_strategy=strategy))
        total = 0
        for rec, key, i in cases:
            machine = Machine(compiled.program, inputs=[rec, key, i])
            stats = machine.run(100_000)
            total += stats.cycles
        print(f"  MIPS, {strategy.value:17s}: avg {total / len(cases):7.1f} cycles")

    print("\nthe branch-free set-conditionally form wins on any pipelined")
    print("machine: 'the cost of branches on modern pipelined architectures")
    print("is far more than the cost of a typical compute-type instruction.'")


if __name__ == "__main__":
    main()
