#!/usr/bin/env python3
"""The word-addressing study (paper section 4.1, Tables 7-10).

Compiles the text-heavy corpus twice -- word-allocated and
byte-allocated -- measures the dynamic reference mix, and prices both
layouts on a word-addressed and a (hypothetical) byte-addressed
machine.

    python examples/byte_vs_word_study.py
"""

from repro.analysis import from_measurement, measure_layout, overhead_sweep
from repro.compiler import LayoutStrategy


def main() -> None:
    print("measuring dynamic reference patterns (this runs the corpus twice)...")
    word = measure_layout(LayoutStrategy.WORD_ALLOCATED)
    byte = measure_layout(LayoutStrategy.BYTE_ALLOCATED)

    print("\nreference mix (percent of all data references):")
    print(f"{'':24s}{'word-allocated':>16s}{'byte-allocated':>16s}")
    for key in ("loads_percent", "stores_percent", "loads_8bit", "loads_32bit",
                "stores_8bit", "stores_32bit"):
        print(f"  {key:22s}{word.rows()[key]:15.1f}%{byte.rows()[key]:15.1f}%")
    print(f"  {'globals (words)':22s}{word.globals_words:16d}{byte.globals_words:16d}")
    ratio = word.globals_words / byte.globals_words
    print(f"\nword-allocated globals are {ratio:.2f}x larger "
          "(the paper observed ~1.2x)")

    print("\npricing both machines (Table 10):")
    for label, patterns in (("word-allocated", word), ("byte-allocated", byte)):
        costs = from_measurement(patterns)
        word_total = costs.word_machine_total()
        byte_total = costs.byte_machine_total()
        low, high = costs.penalty_percent()
        print(f"  {label:15s} word-addressed: {word_total!r:12} cycles/ref | "
              f"byte-addressed: {byte_total!r:8} | "
              f"byte penalty {low:.1f}%..{high:.1f}%")

    print("\nsensitivity to the operand-path overhead estimate:")
    frequencies = {
        (kind, width): word.frequency(kind, width)
        for kind in ("load", "store")
        for width in ("8", "32")
    }
    for overhead, (low, high) in sorted(overhead_sweep(frequencies).items()):
        bar = "#" * max(0, int(high))
        print(f"  overhead {overhead:4.0%}: penalty {low:5.1f}%..{high:5.1f}%  {bar}")

    print("\nconclusion: word addressing wins at every plausible overhead --")
    print("the paper's 15-20% estimate makes the case decisively.")


if __name__ == "__main__":
    main()
