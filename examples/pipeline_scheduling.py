#!/usr/bin/env python3
"""Software-imposed pipeline interlocks, step by step (paper section 4.2.1).

Shows the machine's bare pipeline semantics -- delayed branches, the
load delay slot -- and the reorganizer's three jobs: scheduling around
interlocks, packing pieces into words, and filling branch delay slots.
Ends with the hardware-versus-software ablation.

    python examples/pipeline_scheduling.py
"""

from repro.asm import assemble_pieces
from repro.compiler import compile_source
from repro.reorg import ALL_LEVELS, OptLevel, reorganize
from repro.sim import HazardMode, Machine
from repro.workloads import CORPUS

# The paper's Figure 4 fragment, transcribed (sequential semantics:
# the reorganizer, not the programmer, owns the delay slots).
FRAGMENT = """
start:  ld 2(ap), r0
        ble r0, #1, L11
        rsub #1, r0, r2
        st r2, 2(sp)
        ld 3(sp), r5
        add r5, r0, r0
        add #1, r4, r4
        jmp L3
L3:     add r0, r4, r1
        trap #0
L11:    mov #0, r1
        trap #0
"""


def show_reorganization() -> None:
    print("=" * 70)
    print("The paper's Figure 4 fragment through the reorganizer")
    print("=" * 70)
    stream = assemble_pieces(FRAGMENT)
    for level in ALL_LEVELS:
        result = reorganize(stream, level)
        print(f"\n--- {level.value}: {result.static_count} words, "
              f"{result.noop_count} no-ops ---")
        if level in (OptLevel.NONE, OptLevel.BRANCH_DELAY):
            print(result.listing())


def show_bare_pipeline() -> None:
    print()
    print("=" * 70)
    print("No interlock hardware: the load delay slot really is exposed")
    print("=" * 70)
    hazard = """
start:  mov #7, r1
        ld @value, r1
        mov r1, r2      ; load delay slot: reads the OLD r1
        mov r1, r3      ; one word later: reads the loaded value
        mov r2, r1
        trap #1
        mov r3, r1
        trap #1
        trap #0
value:  .word 42
"""
    from repro.asm import assemble

    machine = Machine(assemble(hazard), hazard_mode=HazardMode.BARE)
    machine.run()
    print(f"  bare machine: delay-slot read saw {machine.output[0]}, "
          f"next word saw {machine.output[1]}")


def show_ablation() -> None:
    print()
    print("=" * 70)
    print("Ablation: software scheduling vs hypothetical interlock hardware")
    print("=" * 70)
    for name in ("sort", "sieve"):
        source = CORPUS[name]
        scheduled = compile_source(source, opt_level=OptLevel.BRANCH_DELAY)
        soft = Machine(scheduled.program, hazard_mode=HazardMode.BARE)
        soft.run(60_000_000)

        naive = compile_source(source, opt_level=OptLevel.NONE)
        hard = Machine(naive.program, hazard_mode=HazardMode.INTERLOCKED)
        hard.run(60_000_000)

        assert soft.output == hard.output
        print(
            f"  {name:8s} software-scheduled {soft.stats.cycles:7d} cycles | "
            f"interlocked hardware {hard.stats.cycles:7d} cycles "
            f"({hard.stats.cycles / soft.stats.cycles:.2f}x)"
        )


if __name__ == "__main__":
    show_reorganization()
    show_bare_pipeline()
    show_ablation()
