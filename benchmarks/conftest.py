"""Benchmark harness conventions.

Each file regenerates one table or figure from the paper.  The
``benchmark`` fixture times the regeneration; the assertions pin the
*shape* of the result to the paper's (who wins, by roughly what factor)
-- absolute cycle counts belong to the authors' hardware, not ours.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


def run_once(benchmark, fn):
    """Time one full regeneration of an experiment (no warmup repeats --
    these are simulator-bound workloads, not microbenchmarks)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


@pytest.fixture
def once():
    return run_once
