"""Figure 1: full vs early-out boolean evaluation on the CC machine."""

from repro.experiments.figures import figure1


def test_figure1_exact_reproduction(benchmark, once):
    result = once(benchmark, figure1)
    print()
    print(result.render())
    rows = result.rows
    assert rows["full evaluation: static"] == 8
    assert rows["full evaluation: avg executed"] == 7.0
    assert rows["full evaluation: branches executed"] == 2.0
    assert rows["early-out: static"] == 6
    assert rows["early-out: avg executed"] == 4.25
