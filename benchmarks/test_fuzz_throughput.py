"""Housekeeping benchmark: fuzz generation + oracle throughput.

Not a paper result -- it keeps the fuzz harness fast enough to matter.
Two floors: generating and oracle-checking instruction-stream cases
must sustain a minimum cases/sec serially (the full differential
oracle, three engines per case), and sharding a mixed batch over four
farm workers must beat serial execution by >= 2x on a machine with at
least four cores.  Whatever the core count, the sharded stable records
must be identical to the serial ones -- parallelism buys time, never
different bytes.
"""

import os
import time

from repro.farm import Scheduler
from repro.farm.job import fuzz_jobs
from repro.farm.store import stable_view
from repro.fuzz import MODE_WORDS, check_case, make_case

PARALLEL_WORKERS = 4
#: serial floor for the cheap tier; measured ~110/s, floored with slack
WORD_CASES_PER_S = 25.0

#: a mixed AST+words range big enough to shard meaningfully; starts at 1
#: so no chaos-sampled index (slowest tier) skews the speedup measurement
BATCH_SEED, BATCH_START, BATCH_CASES, BATCH_SIZE = 23, 1, 12, 3


def test_word_case_throughput_floor():
    count = 40
    start = time.perf_counter()
    for index in range(count):
        result = check_case(make_case(9, index, MODE_WORDS))
        assert not result.failed, result.divergences
    elapsed = time.perf_counter() - start
    rate = count / elapsed
    print(f"\nfuzz: {count} word cases in {elapsed:.2f}s ({rate:.0f}/s)")
    assert rate >= WORD_CASES_PER_S, (
        f"word-case oracle throughput {rate:.1f}/s below the "
        f"{WORD_CASES_PER_S}/s floor"
    )


def _timed_batch(workers: int):
    jobs = fuzz_jobs(
        BATCH_SEED, BATCH_CASES, mode="both", batch=BATCH_SIZE, start=BATCH_START
    )
    scheduler = Scheduler(jobs=workers, backoff_base_s=0.01, backoff_cap_s=0.1)
    start = time.perf_counter()
    records = scheduler.run(jobs)
    return time.perf_counter() - start, records


def test_fuzz_farm_parallel_speedup():
    serial_s, serial_records = _timed_batch(1)
    parallel_s, parallel_records = _timed_batch(PARALLEL_WORKERS)

    # sharding never changes the records, whatever the core count
    assert [stable_view(r) for r in serial_records] == [
        stable_view(r) for r in parallel_records
    ]
    assert all(r["status"] == "ok" for r in serial_records)
    checked = sum(len(r["extra"]["fuzz"]["cases"]) for r in serial_records)
    assert checked == BATCH_CASES

    cores = os.cpu_count() or 1
    print(
        f"\nfuzz farm: serial {serial_s:.2f}s, {PARALLEL_WORKERS} workers "
        f"{parallel_s:.2f}s ({serial_s / parallel_s:.2f}x) on {cores} cores"
    )
    if cores >= 4:
        assert parallel_s * 2.0 <= serial_s, (
            f"expected >= 2x speedup on a {cores}-core runner: "
            f"serial {serial_s:.2f}s vs parallel {parallel_s:.2f}s"
        )
