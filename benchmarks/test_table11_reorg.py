"""Table 11: cumulative improvements with postpass optimization.

The paper's programs exactly: Fibonacci plus the two Puzzle variants.
"""

from repro.experiments.tables import table11


def test_table11_postpass_optimization(benchmark, once):
    result = once(benchmark, table11)
    print()
    print(result.render())
    rows = result.rows
    for name in ("Fibbonacci", "Puzzle 0", "Puzzle 1"):
        ladder = [
            rows[f"{name} / none"],
            rows[f"{name} / reorganize"],
            rows[f"{name} / pack"],
            rows[f"{name} / branch-delay"],
        ]
        # cumulative: every level at least holds the previous one's gain
        assert ladder == sorted(ladder, reverse=True), name
        # and the full pipeline earns a real improvement
        assert rows[f"{name} / total improvement %"] > 5.0, name


def test_dynamic_speedup_accompanies_static_gain(benchmark):
    """Beyond the paper: the reorganized code is also faster to run."""
    from repro.compiler import compile_source
    from repro.reorg import OptLevel
    from repro.sim import Machine
    from repro.workloads import puzzle_source

    def measure():
        source = puzzle_source(0, limit=15)
        cycles = {}
        for level in (OptLevel.NONE, OptLevel.BRANCH_DELAY):
            compiled = compile_source(source, opt_level=level)
            machine = Machine(compiled.program)
            stats = machine.run(50_000_000)
            cycles[level] = stats.cycles
        return cycles

    cycles = benchmark.pedantic(measure, iterations=1, rounds=1)
    print()
    print(f"  unoptimized: {cycles[OptLevel.NONE]} cycles")
    print(f"  optimized:   {cycles[OptLevel.BRANCH_DELAY]} cycles")
    assert cycles[OptLevel.BRANCH_DELAY] < cycles[OptLevel.NONE]
