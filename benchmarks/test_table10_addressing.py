"""Table 10: byte- versus word-addressed architecture cost."""

from repro.analysis import PAPER_FREQUENCIES, overhead_sweep
from repro.experiments.tables import table10


def test_table10_paper_frequencies(benchmark, once):
    result = once(benchmark, lambda: table10(use_measured_frequencies=False))
    print()
    print(result.render())
    for allocation in ("word-allocated", "byte-allocated"):
        low, high = result.rows[f"{allocation}: byte addressing penalty %"]
        assert high > 3.0, "word addressing must win clearly"
        assert high < 25.0, "and by a plausible margin"


def test_table10_measured_frequencies(benchmark, once):
    result = once(benchmark, lambda: table10(use_measured_frequencies=True))
    print()
    print(result.render())
    for allocation in ("word-allocated", "byte-allocated"):
        low, high = result.rows[f"{allocation}: byte addressing penalty %"]
        assert high > 0.0


def test_overhead_sweep_ablation(benchmark, once):
    """Ablation: the penalty grows with the operand-path overhead and
    word addressing already wins at the paper's low estimate."""
    sweep = once(
        benchmark, lambda: overhead_sweep(PAPER_FREQUENCIES["word-allocated"])
    )
    print()
    for overhead, (low, high) in sorted(sweep.items()):
        print(f"  overhead {overhead:.0%}: penalty {low:5.1f}% .. {high:5.1f}%")
    highs = [sweep[o][1] for o in sorted(sweep)]
    assert highs == sorted(highs)
    assert sweep[0.15][1] > 0
