"""Table 2: condition code operations across architectures."""

from repro.experiments.tables import table2


def test_table2_feature_taxonomy(benchmark, once):
    result = once(benchmark, table2)
    print()
    print(result.render())
    assert result.rows["MIPS"].startswith("no condition code")
    assert result.rows["VAX"] == "set on moves and operations; branch"
    assert result.rows["360"] == "set on operations; branch"
    assert result.rows["M68000"] == "set on operations; conditional set"
    assert result.rows["PDP-10"].endswith("access")
