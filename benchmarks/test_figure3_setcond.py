"""Figure 3: boolean evaluation using MIPS set-conditionally."""

from repro.experiments.figures import figure3


def test_figure3_exact_reproduction(benchmark, once):
    result = once(benchmark, figure3)
    print()
    print(result.render())
    assert result.rows["static instructions"] == 3
    assert result.rows["dynamic instructions"] == 3.0
    assert result.rows["branches"] == 0
