"""Table 9: cost of byte operations -- exact reproduction."""

from repro.experiments.tables import table9


def test_table9_operation_costs(benchmark, once):
    result = once(benchmark, table9)
    print()
    print(result.render())
    for key, value in result.paper.items():
        assert result.rows[key] == value, key
