"""Housekeeping benchmark: observability must be close to free.

Two costs are pinned here, mirroring the acceptance criterion that
counter overhead on the throughput benchmark stays under 5%:

* **detached** -- a CPU with no profiler attached pays only ``is None``
  tests (one per reference step, one per fast-path burst flush);
* **attached** -- a live profiler adds one dict merge per burst on the
  fast path, and the counter *groups* themselves cost nothing at run
  time (they are derived at sample time from the counts).

Timing uses best-of-N ``perf_counter`` minima (see
``test_chaos_overhead.py`` for why: the assertion is a same-process
ratio, and minima shrug off one-sided scheduler noise).
"""

import time

from repro.asm import assemble
from repro.perf import Profiler, collect
from repro.sim import Machine

ROUNDS = 9
#: same ~1.8M-word loop the chaos overhead benchmark uses: hot enough
#: that per-burst bookkeeping would show up as a ratio
LOOP_SOURCE = """
start:  mov #0, r8
        lim #300000, r9
loop:   add r8, #1, r8
        blo r8, r9, loop
        nop
        trap #0
"""


def _best_of_interleaved(fns, rounds=ROUNDS):
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_profiler_overhead_under_5_percent():
    program = assemble(LOOP_SOURCE)

    def detached():
        machine = Machine(program)
        machine.run(10_000_000)
        return machine

    def attached():
        machine = Machine(program)
        Profiler().attach(machine.cpu)
        machine.run(10_000_000)
        return machine

    def attached_and_sampled():
        # the full observability bill: run under a profiler, then
        # derive every counter group at the end
        machine = Machine(program)
        Profiler().attach(machine.cpu)
        machine.run(10_000_000)
        collect(machine.cpu)
        return machine

    detached()
    attached()

    baseline, live, sampled = _best_of_interleaved(
        [detached, attached, attached_and_sampled]
    )

    assert live / baseline < 1.05, (
        f"attached profiler costs {100 * (live / baseline - 1):.1f}% "
        f"over a detached run ({live:.4f}s vs {baseline:.4f}s)"
    )
    assert sampled / baseline < 1.05, (
        f"profiler + counter sampling costs {100 * (sampled / baseline - 1):.1f}% "
        f"over a detached run ({sampled:.4f}s vs {baseline:.4f}s)"
    )
