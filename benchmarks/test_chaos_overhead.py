"""Housekeeping benchmark: the chaos subsystem must be free when idle.

The fault-injection engine drives execution through the resumable
``run_steps`` primitives and a per-fault observer hook.  Both are on
the simulator's production path even when no chaos plan is armed, so
this file pins their unarmed cost: the full ``Machine.run`` plumbing
(and an installed-but-never-fired observer) must stay within 5% of
driving the threaded-code engine directly.

Timing uses best-of-N ``perf_counter`` minima rather than the
``benchmark`` fixture: the assertion is a *ratio* between two paths
measured in the same process, and the minimum is robust against
one-sided scheduler noise.
"""

import time

from repro.asm import assemble
from repro.sim import Machine
from repro.sim.faults import Halted

ROUNDS = 9
#: ~1.8M executed words: long enough that per-run Python overhead
#: (a few loop iterations and attribute tests) is measurable as a
#: ratio, short enough for CI
LOOP_SOURCE = """
start:  mov #0, r8
        lim #300000, r9
loop:   add r8, #1, r8
        blo r8, r9, loop
        nop
        trap #0
"""


def _best_of_interleaved(fns, rounds=ROUNDS):
    """Best-of-N for several paths, round-robin so slow drift in CPU
    frequency or cache state hits every path equally."""
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_unarmed_chaos_plumbing_is_free():
    program = assemble(LOOP_SOURCE)

    def raw_engine():
        # the floor: the threaded-code engine driven directly, no
        # run_steps loop, no halt bookkeeping
        machine = Machine(program)
        engine = machine.cpu.fastpath()
        try:
            engine.run(10_000_000)
        except Halted:
            pass
        return machine

    def full_run():
        # the production path: Machine.run -> run_steps -> engine
        machine = Machine(program)
        machine.run(10_000_000)
        return machine

    def full_run_with_observer():
        # worst unarmed case: an observer is installed (as the chaos
        # checker does) but no fault ever fires it
        machine = Machine(program)
        machine.cpu.fault_observer = lambda cpu, fault, sr, pc: None
        machine.run(10_000_000)
        return machine

    # warm up allocators and code caches before timing anything
    raw_engine()
    full_run()

    floor, plumbing, observed = _best_of_interleaved(
        [raw_engine, full_run, full_run_with_observer]
    )

    assert plumbing / floor < 1.05, (
        f"run_steps plumbing costs {100 * (plumbing / floor - 1):.1f}% "
        f"over the raw engine ({plumbing:.4f}s vs {floor:.4f}s)"
    )
    assert observed / floor < 1.05, (
        f"an idle fault observer costs {100 * (observed / floor - 1):.1f}% "
        f"over the raw engine ({observed:.4f}s vs {floor:.4f}s)"
    )
