"""Table 8: data reference patterns, byte-allocated programs."""

from repro.experiments.tables import table7, table8


def test_table8_byte_allocated_patterns(benchmark, once):
    result = once(benchmark, table8)
    print()
    print(result.render())
    rows = result.rows
    assert rows["loads_percent"] > rows["stores_percent"]
    # byte allocation turns the unpacked character data into byte refs
    assert rows["loads_8bit"] > 0.5
    assert rows["loads_32bit"] > rows["loads_8bit"]


def test_word_allocation_is_larger_but_byte_refs_fewer(benchmark, once):
    """The cross-table contrast: word allocation trades space for
    word-grain references (paper: word globals ~20% larger)."""

    def both():
        return table7(), table8()

    word, byte = once(benchmark, both)
    assert word.rows["globals region (words)"] > byte.rows["globals region (words)"]
    assert word.rows["loads_8bit"] < byte.rows["loads_8bit"]
    assert word.rows["stores_8bit"] < byte.rows["stores_8bit"]
