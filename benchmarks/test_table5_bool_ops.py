"""Table 5: operations per boolean operator -- exact reproduction."""

from repro.experiments.tables import table5


def test_table5_ops_per_operator(benchmark, once):
    result = once(benchmark, table5)
    print()
    print(result.render())
    # every cell the paper publishes is reproduced exactly
    for key, value in result.paper.items():
        assert result.rows[key] == value, key
