"""Figure 2: boolean evaluation using conditional set (M68000 style)."""

from repro.experiments.figures import figure2


def test_figure2_exact_reproduction(benchmark, once):
    result = once(benchmark, figure2)
    print()
    print(result.render())
    assert result.rows["static instructions"] == 5
    assert result.rows["dynamic instructions"] == 5.0
    assert result.rows["branches"] == 0.0
