"""Demand paging under memory pressure (paper section 3.1/3.3).

The paper's systems argument: full support for restartable page faults
is what makes demand paging possible at all ("Such limitations can
determine which memory management techniques (swapping versus paging)
are possible or feasible").  This benchmark sweeps the physical frame
pool and shows the classic fault curve: correct execution throughout,
fault counts falling as frames grow, write-backs only under pressure.
"""

from repro.compiler import compile_source
from repro.system import Kernel

SWEEP = """
program sweep;
const n = 1500;
var a: array [0..1499] of integer;
    i, pass, checksum: integer;
begin
  for pass := 1 to 2 do
    for i := 0 to n - 1 do
      a[i] := a[i] + pass + i;
  checksum := 0;
  for i := 0 to n - 1 do checksum := checksum + a[i];
  writeln(checksum)
end.
"""
EXPECTED = sum(2 * (1 + i) + 1 for i in range(1500))


def run_with_frames(frames):
    kernel = Kernel(max_frames=frames)
    kernel.add_process(compile_source(SWEEP).program)
    kernel.run(300_000_000)
    assert kernel.output(0) == [EXPECTED], frames
    return kernel


def test_fault_curve_under_memory_pressure(benchmark, once):
    frame_counts = (4, 6, 10, 32)
    kernels = once(benchmark, lambda: {f: run_with_frames(f) for f in frame_counts})
    print()
    rows = {}
    for frames, kernel in kernels.items():
        stats = kernel.pagemap.stats
        rows[frames] = stats.faults
        print(
            f"  {frames:3d} frames: {stats.faults:5d} faults, "
            f"{stats.victims_suggested:5d} evictions, "
            f"{kernel.disk.writebacks:5d} write-backs, "
            f"{kernel.cpu.stats.cycles:9d} cycles"
        )
    # monotone: more memory, fewer (or equal) faults
    ordered = [rows[f] for f in frame_counts]
    assert ordered == sorted(ordered, reverse=True)
    # under pressure replacement must actually run; with ample memory not
    assert kernels[4].pagemap.stats.victims_suggested > 0
    assert kernels[32].pagemap.stats.victims_suggested == 0
    assert kernels[4].disk.writebacks > 0
