"""Figure 4: reorganization, packing, and branch delay on the paper's fragment."""

from repro.experiments.figures import figure4


def test_figure4_transformation(benchmark, once):
    result = once(benchmark, figure4)
    print()
    print(result.render())
    rows = result.rows
    ladder = [
        rows["none: static words"],
        rows["reorganize: static words"],
        rows["pack: static words"],
        rows["branch-delay: static words"],
    ]
    assert ladder == sorted(ladder, reverse=True)
    assert ladder[-1] < ladder[0]
    # packing really happened on the fragment
    assert "|" in rows["reorganized listing"]
