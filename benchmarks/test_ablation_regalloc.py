"""Ablation: the load/store-architecture register argument (section 2.2).

"Load/store architectures can yield performance increases if
frequently-used operands are kept in registers.  Not only is redundant
memory traffic decreased, but addressing calculations are saved as
well."  Measured: the same programs with and without register
allocation of hot scalars.
"""

from repro.compiler import CompileOptions, compile_source
from repro.sim import Machine
from repro.workloads import CORPUS


def measure(name):
    out = {}
    for ra in (True, False):
        compiled = compile_source(
            CORPUS[name], CompileOptions(register_allocation=ra)
        )
        machine = Machine(compiled.program)
        stats = machine.run(60_000_000)
        out[ra] = stats
    return out


def test_register_allocation_cuts_memory_traffic(benchmark, once):
    results = once(
        benchmark, lambda: {n: measure(n) for n in ("sort", "sieve", "scanner")}
    )
    print()
    for name, stats in results.items():
        with_ra, without = stats[True], stats[False]
        traffic_ratio = (without.loads + without.stores) / max(
            1, with_ra.loads + with_ra.stores
        )
        print(
            f"  {name:14s} regalloc: {with_ra.cycles:8d} cycles, "
            f"{with_ra.loads + with_ra.stores:7d} refs | none: "
            f"{without.cycles:8d} cycles, {without.loads + without.stores:7d} refs "
            f"({traffic_ratio:.2f}x traffic)"
        )
        assert with_ra.loads + with_ra.stores < without.loads + without.stores, name
        assert with_ra.cycles < without.cycles, name


def test_unprofitable_promotion_is_declined(benchmark, once):
    """fib's parameter is used too rarely to amortize the callee-save
    traffic; the allocator must leave it in memory (equal cycles)."""
    stats = once(benchmark, lambda: measure("fib_recursive"))
    with_ra, without = stats[True], stats[False]
    assert with_ra.cycles <= without.cycles
