"""Table 6: cost of evaluating boolean expressions."""

from repro.experiments.tables import table6


def test_table6_with_paper_inputs(benchmark, once):
    result = once(benchmark, lambda: table6(use_corpus_inputs=False))
    print()
    print(result.render())
    # ordering: set-conditionally beats conditional-set beats branch-only
    total = lambda name: result.rows[f"total {name}"][0]
    assert (
        total("set conditionally (no CC)")
        < total("CC + conditional set")
        < total("CC + branch, full evaluation")
    )
    # improvement magnitudes in the paper's ballpark
    assert 25 <= result.rows["improvement conditional set / CC (full)"] <= 45
    assert 45 <= result.rows["improvement set conditionally (full)"] <= 60
    assert result.rows["improvement set conditionally (early-out)"] >= 25


def test_table6_with_corpus_inputs(benchmark):
    result = benchmark.pedantic(
        lambda: table6(use_corpus_inputs=True), iterations=1, rounds=1
    )
    print()
    print(result.render())
    total = lambda name: result.rows[f"total {name}"][0]
    assert total("set conditionally (no CC)") < total("CC + branch, full evaluation")
