"""Table 3: use of condition codes -- the savings are marginal."""

from repro.experiments.tables import table3


def test_table3_compares_saved(benchmark, once):
    result = once(benchmark, table3)
    print()
    print(result.render())
    # the paper's conclusion: savings "so small as to be essentially
    # useless" -- operators-only savings near zero, with-moves small
    assert result.rows["saved % (operators only)"] < 5.0
    assert result.rows["saved % (operators and moves)"] < 25.0
    assert result.rows["compares without condition codes"] > 100
