"""Ablation: the whole-architecture comparison on shared source.

The paper's thesis in one measurement: the same mini-Pascal programs
compiled for the MIPS model (no condition codes, postpass-scheduled,
delayed branches) and for the condition-code CISC baseline, priced with
the paper's weights (register=1, compare=2, branch=4 -- MIPS words all
cost 1 cycle, its pipeline's whole point).

Cross-architecture cycle counts are not directly commensurable -- the
assertion is only the *direction* the paper argues: the simple machine
does not lose to the CISC one on compiled code.
"""

from repro.ccmachine import CcMachine, CcStrategy, compile_cc_source
from repro.compiler import compile_source
from repro.sim import Machine
from repro.workloads import CORPUS, EXPECTED_OUTPUT

PROGRAMS = ("sort", "sieve", "scanner", "logic")


def measure(name):
    source = CORPUS[name]
    mips = Machine(compile_source(source).program)
    mips.run(60_000_000)
    assert mips.output == EXPECTED_OUTPUT[name]

    cc = CcMachine(compile_cc_source(source, CcStrategy.EARLY_OUT))
    cc.run(60_000_000)
    assert cc.output == EXPECTED_OUTPUT[name]
    return mips.stats, cc.stats


def test_simple_machine_holds_up(benchmark, once):
    results = once(benchmark, lambda: {n: measure(n) for n in PROGRAMS})
    print()
    ratios = {}
    for name, (mips, cc) in results.items():
        ratios[name] = cc.weighted_cost / mips.cycles
        print(
            f"  {name:10s} MIPS {mips.cycles:8d} cycles | "
            f"CC machine {cc.instructions:7d} instrs, weighted {cc.weighted_cost:9.0f} "
            f"-> {ratios[name]:.2f}x"
        )
    print(
        "  (sort and logic are dominated by non-power-of-two mod: the "
        "simple machine has no divide\n   hardware -- the paper's own "
        "tradeoff, 'a numeric coprocessor ... is envisioned')"
    )
    # division-light programs: the simple pipelined machine must win
    assert ratios["sieve"] > 1.0
    assert ratios["scanner"] > 1.0
    # division-heavy programs lose only through the software divide loop
    assert ratios["sort"] > 0.3
    assert ratios["logic"] > 0.1
