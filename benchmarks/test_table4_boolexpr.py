"""Table 4: boolean expression statistics."""

from repro.experiments.tables import table4


def test_table4_boolean_expressions(benchmark, once):
    result = once(benchmark, table4)
    print()
    print(result.render())
    # jumps dominate stores, and expressions average more than one
    # operator -- the inputs Table 6 weights by
    assert result.rows["expressions ending in jumps %"] > 60.0
    assert result.rows["expressions ending in stores %"] > 2.0
    assert 1.0 <= result.rows["operators per boolean expression"] <= 3.0
