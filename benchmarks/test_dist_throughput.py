"""Housekeeping benchmark: distributed-farm scheduling overhead and stealing.

Not a paper result -- it tracks the distributed scheduler itself, on
the two axes that justify its existence:

- **overhead**: coordinating localhost shard hosts over sockets must
  cost < 10% wall time versus the in-process worker pool on the same
  core count.  The protocol work per job (one JSONL dispatch, one JSONL
  result) is microseconds against simulations that run for tens of
  milliseconds, so anything above that budget means a scheduling bug,
  not serialization tax.
- **stealing**: on a deliberately skewed job mix (every heavy job
  round-robins onto one host), work stealing must beat static sharding,
  which by construction leaves one host idle while the other's queue
  drains serially.

Wall-clock comparisons only hold where the hosts can actually run in
parallel, so both timing assertions are skipped on single-core runners
(the digest identity and the steal accounting are asserted regardless
-- those are load-independent).
"""

import os
import time

from repro.farm import Job, Scheduler, aggregate, workload_jobs
from repro.farm.dist import DistScheduler, LocalShardPool
from repro.workloads import QUICK_PROGRAMS

#: tolerated distributed-scheduling overhead vs the in-process pool
OVERHEAD_BUDGET = 0.10


def spin_job(name: str, iters: int) -> Job:
    source = (
        f"program {name}; var i, s: integer; "
        f"begin s := 0; for i := 1 to {iters} do s := s + i; writeln(s) end."
    )
    return Job(kind="source", name=name, spec={"source": source})


def _skewed_jobs():
    """Heavy jobs on even indices: static round-robin piles them on host 0."""
    jobs = []
    for i in range(6):
        if i % 2 == 0:
            jobs.append(spin_job(f"heavy{i}", 400_000 + i))
        else:
            jobs.append(spin_job(f"light{i}", 200 + i))
    return jobs


def test_dist_scheduling_overhead_under_budget():
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    jobs = list(workload_jobs(QUICK_PROGRAMS))

    pool_sched = Scheduler(jobs=workers, backoff_base_s=0.01, backoff_cap_s=0.1)
    start = time.perf_counter()
    pool_records = pool_sched.run(jobs)
    pool_s = time.perf_counter() - start

    with LocalShardPool(1, workers_per_host=workers) as hosts:
        dist_sched = DistScheduler(
            hosts=hosts.specs, backoff_base_s=0.01, backoff_cap_s=0.1
        )
        start = time.perf_counter()
        dist_records = dist_sched.run(jobs)
        dist_s = time.perf_counter() - start

    # wherever the jobs ran, the aggregate digest is the same bytes
    assert aggregate(dist_records)["digest"] == aggregate(pool_records)["digest"]

    overhead = dist_s / pool_s - 1.0
    print(
        f"\ndist: in-process pool ({workers} workers) {pool_s:.2f}s, "
        f"1 shard host x {workers} workers {dist_s:.2f}s "
        f"({overhead:+.1%} overhead) on {cores} cores"
    )
    if cores >= 2:
        assert overhead < OVERHEAD_BUDGET, (
            f"distributed scheduling overhead {overhead:.1%} exceeds "
            f"{OVERHEAD_BUDGET:.0%}: pool {pool_s:.2f}s vs dist {dist_s:.2f}s"
        )


def test_stealing_beats_static_sharding_on_a_skewed_mix():
    cores = os.cpu_count() or 1
    jobs = _skewed_jobs()

    def timed(steal: bool):
        with LocalShardPool(2, workers_per_host=1) as hosts:
            scheduler = DistScheduler(
                hosts=hosts.specs,
                steal=steal,
                backoff_base_s=0.01,
                backoff_cap_s=0.1,
            )
            start = time.perf_counter()
            report = scheduler.run_report(jobs)
            return time.perf_counter() - start, report

    static_s, static_report = timed(steal=False)
    steal_s, steal_report = timed(steal=True)

    # identical results either way; stealing only moves work
    assert (
        aggregate(steal_report.records)["digest"]
        == aggregate(static_report.records)["digest"]
    )
    assert static_report.stolen == 0
    assert steal_report.stolen >= 1, (
        "the idle host never stole from the loaded one on a mix built "
        "to force it"
    )

    print(
        f"\ndist: static sharding {static_s:.2f}s, "
        f"stealing {steal_s:.2f}s ({static_s / steal_s:.2f}x, "
        f"{steal_report.stolen} stolen) on {cores} cores"
    )
    if cores >= 2:
        assert steal_s < static_s, (
            f"stealing ({steal_s:.2f}s) should beat static sharding "
            f"({static_s:.2f}s) when one host holds every heavy job"
        )
