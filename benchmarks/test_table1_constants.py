"""Table 1: constant distribution in programs."""

from repro.experiments.tables import table1


def test_table1_constant_distribution(benchmark, once):
    result = once(benchmark, table1)
    print()
    print(result.render())
    # the paper's claims: ~70% of constants fit the 4-bit operand
    # constant; the 8-bit move immediate catches all but ~5%
    assert result.rows["4-bit coverage %"] > 60.0
    assert result.rows["4+8-bit coverage %"] > 90.0
