"""The superblock JIT's reason to exist: >= 2x on a hot loop.

Lives apart from ``test_simulator_throughput.py`` because that file is
the snapshot runner's input (every test there must carry the
pytest-benchmark fixture); this one is a plain wall-clock gate, run
directly by CI's jit-differential job and ``make jit-differential``.
"""

import time

from repro.asm.assembler import assemble
from repro.sim import Machine

#: a tight counted loop: the case superblock fusion exists for
HOT_LOOP_SOURCE = """
        start:  mov #0, r8
                lim #300000, r9
        loop:   add r8, #1, r8
                blo r8, r9, loop
                nop
                trap #0
"""


def test_jit_hot_loop_speedup():
    """Fused dispatch must be >= 2x threaded dispatch on the hot loop.

    Interleaved best-of-N wall-clock comparison (same pattern as the
    overhead gates): taking the minimum of alternating samples cancels
    machine-load noise, so the ratio is stable enough to gate on.
    """
    program = assemble(HOT_LOOP_SOURCE)

    def sample(jit):
        machine = Machine(program)
        begin = time.perf_counter()
        machine.run(10_000_000, jit=jit)
        return time.perf_counter() - begin

    sample(True), sample(False)  # warm both paths
    fast_best = jit_best = float("inf")
    for _ in range(7):
        jit_best = min(jit_best, sample(True))
        fast_best = min(fast_best, sample(False))
    speedup = fast_best / jit_best
    assert speedup >= 2.0, (
        f"superblock JIT speedup {speedup:.2f}x < 2x on the hot loop "
        f"(fast {fast_best * 1e3:.1f}ms, jit {jit_best * 1e3:.1f}ms)"
    )
