"""Housekeeping benchmark: simulator and toolchain throughput.

Not a paper result -- it tracks the reproduction's own performance so
regressions in the simulator or compiler show up.
"""

from repro.compiler import compile_source
from repro.sim import Machine
from repro.workloads import CORPUS, puzzle_source


def test_simulator_throughput(benchmark):
    compiled = compile_source(CORPUS["sort"])

    def run():
        machine = Machine(compiled.program)
        return machine.run(10_000_000)

    stats = benchmark(run)
    assert stats.words > 10_000


def test_simulator_throughput_reference(benchmark):
    """The precise per-step interpreter, for fast-path speedup tracking."""
    compiled = compile_source(CORPUS["sort"])

    def run():
        machine = Machine(compiled.program)
        return machine.run(10_000_000, fast=False)

    stats = benchmark(run)
    assert stats.words > 10_000


def test_simulator_throughput_jit(benchmark):
    """The superblock JIT tier on the same workload, for tracking."""
    compiled = compile_source(CORPUS["sort"])

    def run():
        machine = Machine(compiled.program)
        return machine.run(10_000_000, jit=True)

    stats = benchmark(run)
    assert stats.words > 10_000


def test_compiler_throughput(benchmark):
    source = puzzle_source(0)

    def build():
        return compile_source(source)

    compiled = benchmark(build)
    assert compiled.static_count > 500


def test_kernel_boot_throughput(benchmark):
    from repro.system import Kernel

    program = compile_source(CORPUS["fib_iterative"]).program

    def boot_and_run():
        kernel = Kernel()
        kernel.add_process(program)
        kernel.run()
        return kernel

    kernel = benchmark(boot_and_run)
    assert kernel.output(0)
