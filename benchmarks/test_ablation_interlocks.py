"""Ablation: software-scheduled code versus hypothetical interlock hardware.

The paper's central tradeoff (section 4.2.1): impose the pipeline
interlocks in software and spend the saved hardware on speed.  Here we
run the same source both ways:

- **software**: the reorganizer schedules around the constraints; the
  machine has no interlocks (``BARE``);
- **hardware**: naive code order on the ``INTERLOCKED`` machine, which
  stalls on load-use and flushes taken branches.

The software-scheduled version must win on cycles.
"""

from repro.compiler import compile_source
from repro.reorg import OptLevel
from repro.sim import HazardMode, Machine
from repro.workloads import CORPUS


def measure(name):
    source = CORPUS[name]
    scheduled = compile_source(source, opt_level=OptLevel.BRANCH_DELAY)
    soft = Machine(scheduled.program, hazard_mode=HazardMode.BARE)
    soft.run(60_000_000)

    naive = compile_source(source, opt_level=OptLevel.NONE)
    hard = Machine(naive.program, hazard_mode=HazardMode.INTERLOCKED)
    hard.run(60_000_000)
    assert soft.output == hard.output, "both machines must agree"
    return soft.stats, hard.stats


def test_software_interlocks_beat_hardware(benchmark, once):
    results = once(benchmark, lambda: {n: measure(n) for n in ("sort", "sieve", "scanner")})
    print()
    for name, (soft, hard) in results.items():
        speedup = hard.cycles / soft.cycles
        print(
            f"  {name:10s} software {soft.cycles:8d} cycles | "
            f"hardware-interlocked {hard.cycles:8d} cycles "
            f"(stalls {hard.load_stalls}, flushes {hard.branch_flush_cycles}) "
            f"-> {speedup:.2f}x"
        )
        assert soft.cycles < hard.cycles, name
