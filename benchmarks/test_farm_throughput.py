"""Housekeeping benchmark: farm sharding throughput and fault tolerance.

Not a paper result -- it tracks the batch-execution service itself:
sharding the quick corpus over four workers must beat serial execution
by >= 2x on a machine with at least four cores (on smaller runners the
identity of the results is still asserted, only the speedup check is
skipped), and injected worker crashes and hangs must be retried and
recorded without losing or duplicating any job's result.
"""

import os
import time

from repro.farm import Job, Scheduler, aggregate, workload_jobs
from repro.farm.store import stable_view
from repro.workloads import QUICK_PROGRAMS

PARALLEL_WORKERS = 4


def _timed_batch(workers: int):
    scheduler = Scheduler(jobs=workers, backoff_base_s=0.01, backoff_cap_s=0.1)
    start = time.perf_counter()
    records = scheduler.run(workload_jobs(QUICK_PROGRAMS))
    return time.perf_counter() - start, records


def test_farm_parallel_speedup():
    serial_s, serial_records = _timed_batch(1)
    parallel_s, parallel_records = _timed_batch(PARALLEL_WORKERS)

    # sharding never changes the results, whatever the core count
    assert [stable_view(r) for r in serial_records] == [
        stable_view(r) for r in parallel_records
    ]
    assert all(r["status"] == "ok" for r in serial_records)

    cores = os.cpu_count() or 1
    print(
        f"\nfarm: serial {serial_s:.2f}s, {PARALLEL_WORKERS} workers {parallel_s:.2f}s "
        f"({serial_s / parallel_s:.2f}x) on {cores} cores"
    )
    if cores >= 4:
        assert parallel_s * 2.0 <= serial_s, (
            f"expected >= 2x speedup on a {cores}-core runner: "
            f"serial {serial_s:.2f}s vs parallel {parallel_s:.2f}s"
        )


def test_farm_absorbs_crashes_and_hangs_without_losing_results():
    chaos = [
        Job(
            kind="chaos",
            name="crashy",
            spec={"fail_attempts": 1, "mode": "crash"},
            max_attempts=3,
        ),
        Job(
            kind="chaos",
            name="hangy",
            spec={"fail_attempts": 1, "mode": "hang", "hang_s": 60.0},
            timeout_s=1.0,
            max_attempts=3,
        ),
    ]
    jobs = [*chaos, *workload_jobs(QUICK_PROGRAMS)]
    scheduler = Scheduler(jobs=PARALLEL_WORKERS, backoff_base_s=0.01, backoff_cap_s=0.1)
    report = scheduler.run_report(jobs)

    assert report.crashes == 1
    assert report.timeouts == 1
    assert report.retries >= 2
    summary = aggregate(report.records)
    assert summary["jobs"] == len(jobs)
    assert summary["duplicates"] == []
    assert summary["by_status"] == {"ok": len(jobs)}
    by_name = {r["name"]: r for r in report.records}
    assert by_name["crashy"]["attempts"] == 2
    assert by_name["hangy"]["attempts"] == 2
