"""Table 7: data reference patterns, word-allocated programs."""

from repro.experiments.tables import table7


def test_table7_word_allocated_patterns(benchmark, once):
    result = once(benchmark, table7)
    print()
    print(result.render())
    rows = result.rows
    # loads dominate stores over all data references
    assert rows["loads_percent"] > rows["stores_percent"]
    # word-allocated: objects allocated as full words dominate -- 8-bit
    # refs are the packed-structure remainder
    assert rows["loads_32bit"] > rows["loads_8bit"]
    assert rows["loads_8bit"] < 10.0
    # character references store much more often than data overall
    assert rows["char_stores_percent"] > rows["stores_percent"] - 5.0
