"""Section 3.1: free memory cycles and the zero-cost DMA engine."""

from repro.experiments.free_cycles import free_cycles


def test_free_cycle_bandwidth(benchmark, once):
    result = once(benchmark, free_cycles)
    print()
    print(result.render())
    rows = result.rows
    # substantial bandwidth is free (the paper: close to 40% wasted)
    assert rows["free fraction (optimized/packed code)"] > 0.3
    # and the DMA engine recovers it without stealing processor cycles
    assert rows["DMA words moved (wordcount run)"] > 0
