"""Fuzz cases: deterministic (seed, index) -> program mappings.

A :class:`FuzzCase` owns both the rendered source text and the unit
list it was rendered from, so the minimizer can re-render any unit
prefix without re-deriving generator state.  Case identity is purely
``(seed, index, mode)`` -- the same triple produces byte-identical
source on every host, which is what makes farm-sharded fuzz batches
digest-stable at any parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from . import astgen, mjgen, wordgen

MODE_AST = "ast"
MODE_WORDS = "words"
MODE_MINIJAVA = "minijava"
MODE_BOTH = "both"
MODES = (MODE_AST, MODE_WORDS, MODE_MINIJAVA, MODE_BOTH)


@dataclass
class FuzzCase:
    """One generated program plus everything needed to shrink it."""

    seed: int
    index: int
    mode: str          # MODE_AST or MODE_WORDS (never MODE_BOTH)
    source: str
    units: List        # shrinkable units (statements or WordUnits)
    render: Callable[[Sequence], str]  # units prefix -> complete source

    @property
    def name(self) -> str:
        return f"fuzz-{self.mode}-s{self.seed}-c{self.index}"

    @property
    def replay_command(self) -> str:
        return (
            f"mips-fuzz run --seed {self.seed} --start {self.index} "
            f"--cases 1 --mode {self.mode}"
        )


def case_mode(mode: str, index: int) -> str:
    """The concrete mode of case ``index`` under a batch mode.

    ``both`` interleaves deterministically: even indices are AST cases,
    odd indices are instruction-stream cases.  The mapping depends only
    on the global case index, never on batch boundaries, so any job
    split sees the same cases.
    """
    if mode == MODE_BOTH:
        return MODE_AST if index % 2 == 0 else MODE_WORDS
    if mode not in (MODE_AST, MODE_WORDS, MODE_MINIJAVA):
        raise ValueError(f"unknown fuzz mode {mode!r} (have {', '.join(MODES)})")
    return mode


def make_case(seed: int, index: int, mode: str) -> FuzzCase:
    """Generate case ``(seed, index)`` under ``mode`` (``both`` allowed)."""
    concrete = case_mode(mode, index)
    if concrete == MODE_AST:
        routines, units = astgen.generate_ast_program(seed, index)

        def render(prefix: Sequence) -> str:
            return astgen.render_ast_case(index, routines, prefix)

        return FuzzCase(seed, index, concrete, render(units), list(units), render)
    if concrete == MODE_MINIJAVA:
        fixed, mj_units = mjgen.generate_minijava_program(seed, index)

        def render_mj(prefix: Sequence) -> str:
            return mjgen.render_minijava_case(index, fixed, prefix)

        return FuzzCase(
            seed, index, concrete, render_mj(mj_units), list(mj_units), render_mj
        )
    units = wordgen.generate_word_units(seed, index)
    return FuzzCase(
        seed,
        index,
        concrete,
        wordgen.render_word_case(units),
        list(units),
        wordgen.render_word_case,
    )
