"""Seeded generation of raw-but-valid instruction streams.

Where :mod:`repro.fuzz.astgen` exercises the compiler, this module goes
straight at the machine: it emits assembly text the compiler would
never produce -- branch/delay-slot corners, immediate-boundary
constants straddling Table 1's encodings, condition-set chains, packed
words, ``mstep``/``dstep`` sequences -- and the differential oracle
demands all three engines agree on the outcome word for word.

Generation is organized in **units**: small atomic line groups (a
branch plus its delay slot plus its landing label, a counted loop, a
call plus its subroutine) that are individually self-contained over a
fixed register discipline.  Any prefix of the unit list assembles and
terminates, which is what lets :mod:`repro.fuzz.minimize` bisect a
failing stream without ever separating a branch from its delay slot.

Register discipline: ``r2``-``r9`` are free game for generated code,
``r1`` is the trap-output register, ``r10``-``r12`` are loop counters,
and ``sp``/``ra`` keep their conventional jobs (``sp`` is never
modified; ``ra`` only by ``jal``).  Every program ends by printing
``r2``-``r9`` via ``trap #1`` and halting via ``trap #0``, so the
engines' outputs expose the full scratch state, not just a
fingerprint.

Loops always count down a dedicated counter; subroutines never call
further; traps beyond the I/O set are never emitted -- so every
generated program halts within a small bounded step count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

#: registers generated code may freely clobber
SCRATCH = tuple(f"r{n}" for n in range(2, 10))
#: loop counters -- written only by the loop templates themselves
COUNTERS = ("r10", "r11", "r12")

#: constants straddling the 4-bit operand, 8-bit movi, and 21-bit lim
#: encodings (Table 1's immediate-size buckets)
LIM_EDGES = (
    0, 1, 2, 15, 16, 17, 127, 128, 255, 256, 257, 4095, 4096,
    32767, 32768, 65535, 65536, 1048574, 1048575,
    -1, -2, -15, -16, -255, -256, -32768, -65536, -1048575, -1048576,
)
MOVI_EDGES = (0, 1, 2, 7, 8, 15, 16, 17, 31, 127, 128, 200, 254, 255)
SHORT_IMMS = (0, 1, 2, 3, 7, 8, 14, 15)

ALU_OPS = ("add", "sub", "rsub", "and", "or", "xor", "sll", "srl", "sra")
SET_OPS = ("seq", "sne", "slt", "sle", "sgt", "sge", "slo", "sls", "shi", "shs")
BRANCH_OPS = ("beq", "bne", "blt", "ble", "bgt", "bge", "blo", "bls", "bhi", "bhs")


@dataclass
class WordUnit:
    """One shrinkable group of assembly lines."""

    lines: List[str]
    #: (name, body lines) for subroutines this unit jal's into; emitted
    #: after the epilogue by the renderer exactly when the unit survives
    subroutines: List[Tuple[str, List[str]]] = field(default_factory=list)


class WordGenerator:
    def __init__(self, rng: random.Random):
        self.rng = rng
        self._counter_cycle = 0

    # -- small pieces ------------------------------------------------------

    def reg(self) -> str:
        return self.rng.choice(SCRATCH)

    def operand(self) -> str:
        """A register or a 4-bit ``#`` constant."""
        if self.rng.random() < 0.4:
            return f"#{self.rng.choice(SHORT_IMMS)}"
        return self.reg()

    def alu_line(self) -> str:
        op = self.rng.choice(ALU_OPS)
        return f"    {op} {self.operand()}, {self.reg()}, {self.reg()}"

    def safe_delay_line(self) -> str:
        """A delay-slot filler: plain ALU or nop, never control flow."""
        if self.rng.random() < 0.3:
            return "    nop"
        return self.alu_line()

    # -- unit templates ----------------------------------------------------

    def unit_alu_chain(self, index: int) -> WordUnit:
        lines = [self.alu_line() for _ in range(self.rng.randrange(1, 4))]
        return WordUnit(lines)

    def unit_constants(self, index: int) -> WordUnit:
        """Immediate-boundary constants through every encoding size."""
        rng = self.rng
        lines = []
        for _ in range(rng.randrange(1, 4)):
            roll = rng.random()
            if roll < 0.4:
                lines.append(f"    movi #{rng.choice(MOVI_EDGES)}, {self.reg()}")
            elif roll < 0.8:
                lines.append(f"    lim {rng.choice(LIM_EDGES)}, {self.reg()}")
            else:
                lines.append(
                    f"    add #{rng.choice(SHORT_IMMS)}, {self.reg()}, {self.reg()}"
                )
        return WordUnit(lines)

    def unit_setcond_chain(self, index: int) -> WordUnit:
        """CC-style chains: compare into a register, then branch on it."""
        rng = self.rng
        flag = self.reg()
        lines = [
            f"    {rng.choice(SET_OPS)} {self.operand()}, {self.operand()}, {flag}"
        ]
        if rng.random() < 0.5:
            # feed the flag through another compare (nested conditions)
            lines.append(f"    {rng.choice(SET_OPS)} {flag}, {self.operand()}, {self.reg()}")
        label = f"l{index}_s"
        lines.append(f"    bne {flag}, #0, {label}")
        lines.append(self.safe_delay_line())
        lines.append(self.alu_line())
        lines.append(f"{label}:")
        return WordUnit(lines)

    def unit_branch_skip(self, index: int) -> WordUnit:
        """Forward branch over 1-2 words, delay slot always live."""
        rng = self.rng
        label = f"l{index}_b"
        lines = [
            f"    {rng.choice(BRANCH_OPS)} {self.operand()}, {self.operand()}, {label}",
            self.safe_delay_line(),
        ]
        for _ in range(rng.randrange(1, 3)):
            lines.append(self.alu_line())
        lines.append(f"{label}:")
        lines.append(self.alu_line())
        return WordUnit(lines)

    def unit_counted_loop(self, index: int) -> WordUnit:
        """Backward branch: count a dedicated register down to zero."""
        rng = self.rng
        counter = COUNTERS[self._counter_cycle % len(COUNTERS)]
        self._counter_cycle += 1
        label = f"l{index}_t"
        lines = [f"    movi #{rng.randrange(1, 7)}, {counter}", f"{label}:"]
        for _ in range(rng.randrange(1, 3)):
            lines.append(self.alu_line())
        lines.append(f"    sub #1, {counter}, {counter}")
        lines.append(f"    bgt {counter}, #0, {label}")
        lines.append(self.safe_delay_line())
        return WordUnit(lines)

    def unit_memory(self, index: int) -> WordUnit:
        """Loads/stores across the addressing modes, kept in range."""
        rng = self.rng
        lines = []
        for _ in range(rng.randrange(1, 3)):
            roll = rng.random()
            if roll < 0.3:
                disp = rng.choice((0, 1, 2, 3, 7, 8, 15))
                lines.append(f"    st {self.reg()}, -{disp + 1}(sp)")
                lines.append(f"    ld -{disp + 1}(sp), {self.reg()}")
            elif roll < 0.6:
                lines.append(f"    st {self.reg()}, @buf")
                lines.append(f"    ld @buf, {self.reg()}")
            elif roll < 0.85:
                # (base+index) bounded inside buf's 16 words
                base, offset = self.reg(), self.reg()
                lines.append(f"    lim buf, {base}")
                lines.append(f"    and #15, {self.reg()}, {offset}")
                lines.append(f"    ld ({base}+{offset}), {self.reg()}")
            else:
                # packed words demand disp(base) addressing, disp 0..7,
                # and the two pieces must write distinct registers
                mem_dst, alu_dst = rng.sample(SCRATCH, 2)
                lines.append("    { ld %d(sp), %s | add #1, %s, %s }"
                             % (rng.randrange(0, 8), mem_dst, self.reg(), alu_dst))
        return WordUnit(lines)

    def unit_mstep_chain(self, index: int) -> WordUnit:
        """Multiply/divide-step sequences like the runtime emits."""
        rng = self.rng
        op = rng.choice(("mstep", "dstep"))
        a, b = self.reg(), self.reg()
        lines = [f"    movi #{rng.choice(MOVI_EDGES)}, {a}"]
        lines.extend(f"    {op} {a}, {b}, {b}" for _ in range(rng.randrange(2, 5)))
        return WordUnit(lines)

    def unit_call(self, index: int) -> WordUnit:
        """jal/jmpr round trip: two delay slots on the indirect return."""
        rng = self.rng
        name = f"s{index}_f"
        body = [f"{name}:"]
        for _ in range(rng.randrange(1, 3)):
            body.append(self.alu_line())
        body.append("    jmpr ra")
        body.append(self.safe_delay_line())
        body.append(self.safe_delay_line())
        lines = [
            f"    jal {name}",
            self.safe_delay_line(),
            self.alu_line(),
        ]
        return WordUnit(lines, subroutines=[(name, body)])

    def unit_output(self, index: int) -> WordUnit:
        """Mid-stream observable: print a scratch register."""
        return WordUnit([f"    mov {self.reg()}, r1", "    trap #1"])

    def unit(self, index: int) -> WordUnit:
        templates = (
            (0.16, self.unit_alu_chain),
            (0.32, self.unit_constants),
            (0.46, self.unit_setcond_chain),
            (0.60, self.unit_branch_skip),
            (0.72, self.unit_counted_loop),
            (0.84, self.unit_memory),
            (0.90, self.unit_mstep_chain),
            (0.96, self.unit_call),
            (1.01, self.unit_output),
        )
        roll = self.rng.random()
        for ceiling, template in templates:
            if roll < ceiling:
                return template(index)
        raise AssertionError("unreachable")


HEADER = [
    ".org 0",
    "buf: .space 16",
    "start:",
]


def epilogue() -> List[str]:
    """Print every scratch register, then halt -- the observable tail
    appended after whatever unit prefix survives shrinking."""
    lines = []
    for reg in SCRATCH:
        lines.append(f"    mov {reg}, r1")
        lines.append("    trap #1")
    lines.append("    trap #0")
    return lines


def generate_word_units(seed: int, index: int) -> List[WordUnit]:
    """The deterministic unit list for case ``(seed, index)``."""
    rng = random.Random((seed * 1_000_003 + index) ^ 0x0DDBA11)
    gen = WordGenerator(rng)
    return [gen.unit(n) for n in range(rng.randrange(4, 13))]


def render_word_case(units: Sequence[WordUnit]) -> str:
    """Render a (possibly shrunk) unit list as complete assembly."""
    lines = list(HEADER)
    for unit in units:
        lines.extend(unit.lines)
    lines.extend(epilogue())
    for unit in units:
        for _, body in unit.subroutines:
            lines.extend(body)
    return "\n".join(lines) + "\n"
