"""``python -m repro.fuzz`` -- the mips-fuzz entry point (used by CI)."""

import sys

from ..cli import fuzz_main

if __name__ == "__main__":
    sys.exit(fuzz_main())
