"""Seeded structured generation of valid MiniJava programs.

The MiniJava analogue of :mod:`repro.fuzz.astgen`: every case is a
pure function of ``(seed, index)``, rendered to source text that is
valid by construction, halts by construction, and exercises what the
second front end adds to the pipeline -- heap allocation, vtable
dispatch through an inheritance chain, overrides, field mutation
through ``this``, and ``int[]`` traffic.

Termination and well-definedness are structural:

- every generated class ``A <- B <- C`` numbers its methods ``m0..m2``
  and any ``mK`` body only calls strictly lower-numbered methods, so
  the dispatch graph is acyclic in every dynamic combination of
  overrides;
- loops count down a dedicated counter the loop body never touches;
- division and modulus always use nonzero literal divisors;
- array indices are range-wrapped ``((e % len) + len) % len``.

The fixed prologue (object construction, array allocation, variable
seeding) and the probe epilogue are part of the rendering, not of the
shrinkable unit list, so **any** prefix of the units is a complete,
valid, halting program -- the property the minimizer relies on.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

INT_LOCALS = ("va", "vb", "vc")
OBJ_LOCALS = ("oa", "ob", "oc")
ARRAY_NAME = "arr"
ARRAY_LEN = 8
COUNTER = "wa"
METHODS = ("m0", "m1", "m2")

#: constants straddling the immediate encodings (the 4-bit operand
#: constant, the 8-bit movi, the 21-bit long immediate, the word edge)
EDGE_VALUES = (
    0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 100, 127, 128, 255, 256, 257,
    1000, 32767, 32768, 65535, 65536, 1048575, 1048576, 2097152,
    2147483645, 2147483647,
    -1, -2, -7, -8, -15, -16, -100, -128, -255, -256, -32768, -65536,
)

#: nonzero literal divisors (positive only: '%' on negatives is our
#: dialect's 'mod', which the differential oracle checks for identity,
#: not against Java)
DIVISORS = (2, 3, 5, 7, 8, 10, 16, 100)


def _lit(value: int) -> str:
    """MiniJava has no negative literals; render them as ``(0 - n)``."""
    return f"(0 - {-value})" if value < 0 else str(value)


def _wrapped_index(expr: str) -> str:
    return f"((({expr}) % {ARRAY_LEN}) + {ARRAY_LEN}) % {ARRAY_LEN}"


class MjGenerator:
    """One generated program: three fixed-shape classes, random meat."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.class_lines = self._gen_classes()

    # -- expressions -------------------------------------------------------

    def int_lit(self) -> str:
        rng = self.rng
        if rng.random() < 0.5:
            return _lit(rng.choice(EDGE_VALUES))
        return str(rng.randrange(0, 100))

    def int_expr(
        self,
        depth: int,
        scope: Sequence[str],
        *,
        arrays: bool = False,
        dispatch: Sequence[Tuple[str, Sequence[str]]] = (),
    ) -> str:
        """A terminating integer expression over ``scope``.

        ``dispatch`` lists ``(receiver, callable method names)`` pairs;
        nested call arguments never dispatch again, bounding depth.
        """
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            roll = rng.random()
            if roll < 0.4 or not scope:
                return self.int_lit()
            if roll < 0.8 or (not arrays and not dispatch):
                return rng.choice(list(scope))
            if dispatch and (not arrays or rng.random() < 0.5):
                receiver, names = rng.choice(list(dispatch))
                arg = self.int_expr(1, scope)
                return f"{receiver}.{rng.choice(list(names))}({arg})"
            index = _wrapped_index(self.int_expr(1, scope))
            return f"{ARRAY_NAME}[{index}]"
        op = rng.choice(("+", "-", "*", "/", "%", "+", "-"))
        left = self.int_expr(depth - 1, scope, arrays=arrays, dispatch=dispatch)
        if op in ("/", "%"):
            right = str(rng.choice(DIVISORS))
        else:
            right = self.int_expr(depth - 1, scope, arrays=arrays, dispatch=dispatch)
        return f"({left} {op} {right})"

    def bool_expr(self, depth: int, scope: Sequence[str]) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.5:
            op = rng.choice(("==", "!=", "<", "<=", ">", ">="))
            return f"({self.int_expr(1, scope)} {op} {self.int_expr(1, scope)})"
        roll = rng.random()
        if roll < 0.4:
            return f"({self.bool_expr(depth - 1, scope)} && {self.bool_expr(depth - 1, scope)})"
        if roll < 0.8:
            return f"({self.bool_expr(depth - 1, scope)} || {self.bool_expr(depth - 1, scope)})"
        return f"(!{self.bool_expr(depth - 1, scope)})"

    # -- the class hierarchy -----------------------------------------------

    def _method_body(self, index: int, fields: Sequence[str]) -> List[str]:
        """``mK``: optional field write, then a return that may call
        strictly lower-numbered methods through ``this``."""
        rng = self.rng
        scope = list(fields) + ["x"]
        callable_below = [("this", METHODS[:index])] if index > 0 else []
        lines = []
        if rng.random() < 0.4:
            target = rng.choice(list(fields))
            lines.append(f"        {target} = {self.int_expr(1, scope)};")
        value = self.int_expr(2, scope, dispatch=callable_below)
        lines.append(f"        return {value};")
        return lines

    def _gen_classes(self) -> List[str]:
        rng = self.rng
        lines: List[str] = []
        # class A: the dispatch interface everything is typed against
        lines.append("class A {")
        lines.append("    int f0;")
        lines.append("    int f1;")
        lines.append("    public A seed(int v) {")
        lines.append(f"        f0 = {self.int_expr(1, ['v'])};")
        lines.append(f"        f1 = {self.int_expr(1, ['v', 'f0'])};")
        lines.append("        return this;")
        lines.append("    }")
        lines.append("    public int bump(int v) {")
        lines.append(f"        f0 = f0 + {self.int_expr(1, ['v', 'f1'])};")
        lines.append("        return f0;")
        lines.append("    }")
        lines.append("    public int probe() {")
        lines.append(
            "        return "
            f"{self.int_expr(2, ['f0', 'f1'], dispatch=[('this', METHODS)])};"
        )
        lines.append("    }")
        for index, name in enumerate(METHODS):
            lines.append(f"    public int {name}(int x) {{")
            lines.extend(self._method_body(index, ("f0", "f1")))
            lines.append("    }")
        lines.append("}")
        # subclasses override a random subset with fresh bodies
        for cls, parent, fields in (
            ("B", "A", ("f0", "f1", "f2")),
            ("C", "B", ("f0", "f1", "f2")),
        ):
            lines.append(f"class {cls} extends {parent} {{")
            if cls == "B":
                lines.append("    int f2;")
            overridden = [m for m in METHODS if rng.random() < 0.5]
            for name in overridden:
                index = METHODS.index(name)
                lines.append(f"    public int {name}(int x) {{")
                lines.extend(self._method_body(index, fields))
                lines.append("    }")
            if rng.random() < 0.5:
                lines.append("    public int probe() {")
                lines.append(
                    "        return "
                    f"{self.int_expr(2, list(fields), dispatch=[('this', METHODS)])};"
                )
                lines.append("    }")
            lines.append("}")
        return lines

    # -- main-body statement units -----------------------------------------

    def statement(self, depth: int) -> List[str]:
        rng = self.rng
        scope = list(INT_LOCALS)
        # every listed method takes one int argument; the no-arg probe()
        # is exercised by the epilogue instead
        dispatch = [(obj, METHODS + ("bump",)) for obj in OBJ_LOCALS]
        roll = rng.random() if depth > 0 else 0.0
        if roll < 0.35:
            target = rng.choice(INT_LOCALS)
            value = self.int_expr(2, scope, arrays=True, dispatch=dispatch)
            return [f"{target} = {value};"]
        if roll < 0.5:
            index = _wrapped_index(self.int_expr(1, scope))
            value = self.int_expr(2, scope, arrays=True, dispatch=dispatch)
            return [f"{ARRAY_NAME}[{index}] = {value};"]
        if roll < 0.65:
            cond = self.bool_expr(2, scope)
            then_body = self.statement(depth - 1)
            else_body = self.statement(depth - 1) if rng.random() < 0.6 else None
            lines = [f"if ({cond}) {{"] + [f"    {s}" for s in then_body]
            if else_body is None:
                return lines + ["}"]
            return lines + ["} else {"] + [f"    {s}" for s in else_body] + ["}"]
        if roll < 0.78:
            bound = rng.randrange(1, 7)
            inner = self.statement(0)  # loop bodies never loop again
            return (
                [f"{COUNTER} = {bound};", f"while (0 < {COUNTER}) {{"]
                + [f"    {s}" for s in inner]
                + [f"    {COUNTER} = {COUNTER} - 1;", "}"]
            )
        if roll < 0.88:
            value = self.int_expr(2, scope, arrays=True, dispatch=dispatch)
            return [f"System.out.println({value});"]
        # object churn: repoint a local at a fresh instance
        target = rng.choice(OBJ_LOCALS)
        cls = rng.choice(("A", "B", "C"))
        return [f"{target} = new {cls}().seed({self.int_expr(1, scope)});"]


def _prologue(rng: random.Random) -> List[str]:
    lines = [
        f"{OBJ_LOCALS[0]} = new A().seed({_lit(rng.choice(EDGE_VALUES))});",
        f"{OBJ_LOCALS[1]} = new B().seed({_lit(rng.choice(EDGE_VALUES))});",
        f"{OBJ_LOCALS[2]} = new C().seed({_lit(rng.choice(EDGE_VALUES))});",
        f"{ARRAY_NAME} = new int[{ARRAY_LEN}];",
        f"{COUNTER} = 0;",
    ]
    lines.extend(f"{name} = {_lit(rng.choice(EDGE_VALUES))};" for name in INT_LOCALS)
    return lines


def _epilogue() -> List[str]:
    """Write back every observable -- locals, per-object probes, the
    array -- so engines and levels are compared on real state."""
    lines = [f"System.out.println({name});" for name in INT_LOCALS]
    lines.extend(f"System.out.println({obj}.probe());" for obj in OBJ_LOCALS)
    lines.extend(
        f"System.out.println({ARRAY_NAME}[{k}]);" for k in range(ARRAY_LEN)
    )
    return lines


def generate_minijava_program(seed: int, index: int) -> Tuple[List[str], List[List[str]]]:
    """The deterministic (fixed lines, statement units) for one case.

    The fixed part carries the class declarations and the prologue; the
    unit list is the shrinkable middle of ``main``.  Render any prefix
    with :func:`render_minijava_case`.
    """
    rng = random.Random((seed * 1_000_003 + index) ^ 0x3A7A11)
    gen = MjGenerator(rng)
    prologue = _prologue(rng)
    units = [gen.statement(2) for _ in range(rng.randrange(3, 9))]
    return gen.class_lines + ["@@PROLOGUE@@"] + prologue, units


def render_minijava_case(
    index: int, fixed: Sequence[str], units: Sequence[Sequence[str]]
) -> str:
    """Render a (possibly shrunk) unit list as a complete program."""
    split = list(fixed).index("@@PROLOGUE@@")
    class_lines, prologue = list(fixed[:split]), list(fixed[split + 1 :])
    lines = [f"class Fuzz{index} {{", "    public static void main(String[] s) {"]
    lines.extend(f"        A {obj};" for obj in OBJ_LOCALS)
    lines.extend(f"        int {name};" for name in INT_LOCALS)
    lines.append(f"        int[] {ARRAY_NAME};")
    lines.append(f"        int {COUNTER};")
    for stmt in prologue:
        lines.append(f"        {stmt}")
    for unit in units:
        lines.extend(f"        {line}" for line in unit)
    for stmt in _epilogue():
        lines.append(f"        {stmt}")
    lines.append("    }")
    lines.append("}")
    lines.extend(class_lines)
    return "\n".join(lines) + "\n"
