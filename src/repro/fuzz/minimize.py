"""Shrinking failing fuzz cases to minimal repro programs.

Both generators emit their programs as a list of self-contained units
(top-level statements for mini-Pascal, atomic line groups for
instruction streams), so minimization is the shared
shortest-failing-prefix bisection from :mod:`repro.shrink`: re-render
the unit prefix (the fixed epilogue rides along), re-run the oracle,
keep the shortest prefix that still diverges.  Every probe is a full
oracle run, so a minimized case is *known* to still fail -- the
artifact a human gets is the smallest program this machinery can vouch
for.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..shrink import shortest_failing_prefix_items
from .case import FuzzCase
from .oracle import CheckResult, check_ast_source, check_word_source


def _check_source(case: FuzzCase, source: str, max_steps: int) -> CheckResult:
    if case.mode == "ast":
        return check_ast_source(
            source, seed=case.seed, index=case.index, max_steps=max_steps
        )
    return check_word_source(source, max_steps=min(max_steps, 200_000))


def minimize_case(
    case: FuzzCase, *, max_steps: int = 2_000_000
) -> Optional[Dict[str, Any]]:
    """Shrink ``case`` to its shortest still-failing unit prefix.

    Returns ``None`` when the full case does not fail under the plain
    (chaos-free) oracle -- e.g. a divergence only reachable through the
    sampled fault schedule, which prefix-shrinking cannot chase.
    Otherwise returns the minimized source, its unit count, and the
    divergences the minimal program still exhibits.
    """
    full = _check_source(case, case.source, max_steps)
    if not full.failed:
        return None

    def fails(prefix: Sequence) -> bool:
        return _check_source(case, case.render(prefix), max_steps).failed

    units = shortest_failing_prefix_items(case.units, fails)
    source = case.render(units)
    result = _check_source(case, source, max_steps)
    return {
        "units": len(units),
        "units_full": len(case.units),
        "source": source,
        "divergences": result.divergences,
    }
