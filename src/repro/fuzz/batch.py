"""Fuzz batches: contiguous case ranges as content-addressed farm jobs.

A batch is ``(seed, start, count, mode)`` -- which cases it covers is a
pure function of the spec, never of how the run was sharded.  Each case
contributes a digest over everything its oracle observed, and the batch
digest folds them in index order, so ``--jobs 1`` and ``--jobs 8`` (or
a multi-host run) produce byte-identical batch records.  Divergent
cases ride along in the batch summary with their one-line replay
command; the batch status only degrades when a real divergence (or a
harness error) appears.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List

from .case import case_mode, make_case
from .oracle import check_case

#: default per-batch case count when sharding a run into jobs
DEFAULT_BATCH = 25


def run_batch(
    seed: int,
    start: int,
    count: int,
    mode: str,
    *,
    max_steps: int = 2_000_000,
) -> Dict[str, Any]:
    """Generate and oracle-check cases ``start .. start+count-1``."""
    cases: List[Dict[str, Any]] = []
    divergences: List[Dict[str, Any]] = []
    for index in range(start, start + count):
        case = make_case(seed, index, mode)
        try:
            result = check_case(case, max_steps=max_steps)
            entry = {
                "index": index,
                "mode": case.mode,
                "status": result.status,
                "digest": result.digest,
            }
            failing = result.failed
            details = result.divergences
        except Exception as exc:  # harness bug: counts as a failure
            entry = {
                "index": index,
                "mode": case.mode,
                "status": "error",
                "digest": "harness-error",
            }
            failing = True
            details = [
                {"check": "harness", "type": type(exc).__name__, "message": str(exc)}
            ]
        cases.append(entry)
        if failing:
            divergences.append(
                {
                    "index": index,
                    "mode": case.mode,
                    "name": case.name,
                    "divergences": details,
                    "replay": case.replay_command,
                }
            )
    digest = hashlib.sha256(
        "".join(f"{c['index']}:{c['digest']}" for c in cases).encode()
    ).hexdigest()[:16]
    return {
        "seed": seed,
        "start": start,
        "count": count,
        "mode": mode,
        "cases": cases,
        "divergences": divergences,
        "digest": digest,
    }


def batch_ranges(cases: int, batch: int) -> List[Dict[str, int]]:
    """Split ``cases`` into contiguous ``batch``-sized ranges."""
    if cases <= 0:
        return []
    batch = max(1, batch)
    return [
        {"start": start, "count": min(batch, cases - start)}
        for start in range(0, cases, batch)
    ]


def case_modes(mode: str, cases: int) -> Dict[str, int]:
    """How many cases of each concrete mode a run will generate."""
    counts: Dict[str, int] = {}
    for index in range(cases):
        concrete = case_mode(mode, index)
        counts[concrete] = counts.get(concrete, 0) + 1
    return counts
