"""Seeded structured generation of valid mini-Pascal programs.

The generator builds real :mod:`repro.lang.ast` nodes -- the same
dataclasses the parser produces -- and renders them back to source
text, so every generated program is valid by construction and round-
trips through the full front end.  All randomness flows from one
``random.Random`` seeded per case, making generation byte-reproducible
across runs, processes, and hosts.

Coverage targets the paper's machinery:

- arithmetic over **wraparound edge values** (powers of two straddling
  the 4-bit operand constant, the 8-bit ``movi``, the 21-bit long
  immediate, and the 32-bit word) stresses immediate selection
  (Table 1) and the runtime multiply/divide;
- nested conditionals with ``and``/``or``/``not`` conditions stress
  boolean evaluation strategy (Tables 4-6) and branch reorganization;
- bounded ``for``/``while``/``repeat`` loops and procedure/function
  calls stress the reorganizer's branch-delay machinery across
  optimization levels;
- array element access (always range-wrapped, so the program stays
  well-defined) stresses addressing-mode selection.

Programs terminate by construction: every loop is either a literal-
bounded ``for`` or counted down through a dedicated counter variable,
and division operands always use nonzero literal divisors (excluding
``-1``, whose ``INT_MIN div -1`` corner is unspecified overflow in
real Pascals).

The top-level statement list is the **shrink unit**: each statement is
self-contained over the fixed declarations, so any prefix of the list
(plus the write-back epilogue) is itself a valid program -- which is
what lets :mod:`repro.fuzz.minimize` bisect a failing program down to
a minimal repro.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..lang import ast

#: integer globals every generated program declares
INT_VARS = ("va", "vb", "vc", "vd", "ve")
#: dedicated loop-counter globals (never assigned by generated bodies)
COUNTER_VARS = ("wa", "wb")
FOR_VARS = ("ia", "ib")
#: the array global: a0[0..ARRAY_LEN-1] of integer
ARRAY_NAME = "a0"
ARRAY_LEN = 8

#: constants straddling the encodings' boundaries: the 4-bit operand
#: constant (0..15), the 8-bit movi (0..255), the 21-bit long
#: immediate, and the 32-bit word edge (Table 1's buckets)
EDGE_VALUES = (
    0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 100, 127, 128, 255, 256, 257,
    1000, 32767, 32768, 65535, 65536, 1048575, 1048576, 2097152,
    2147483645, 2147483647,
    -1, -2, -7, -8, -15, -16, -100, -128, -255, -256, -32768, -65536,
    -1048576, -2147483647, -2147483648,
)

#: nonzero literal divisors (no -1: INT_MIN div -1 is an overflow corner
#: real Pascals leave unspecified)
DIVISORS = (2, 3, 5, 7, 8, 10, 16, 100, -2, -3, -8)


# ---------------------------------------------------------------------------
# AST -> source rendering
# ---------------------------------------------------------------------------


def _render_expr(expr: ast.Expr) -> str:
    """Fully parenthesized source for an expression node."""
    if isinstance(expr, ast.IntLit):
        return f"({expr.value})" if expr.value < 0 else str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.CharLit):
        return f"chr({expr.value})"  # unused by the generator; kept total
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Index):
        return f"{_render_expr(expr.base)}[{_render_expr(expr.index)}]"
    if isinstance(expr, ast.FieldAccess):
        return f"{_render_expr(expr.base)}.{expr.field_name}"
    if isinstance(expr, ast.BinOp):
        return f"({_render_expr(expr.left)} {expr.op} {_render_expr(expr.right)})"
    if isinstance(expr, ast.UnOp):
        return f"({expr.op} {_render_expr(expr.operand)})"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(_render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"unrenderable expression {expr!r}")


def _render_stmt(stmt: ast.Stmt, indent: int) -> List[str]:
    pad = "  " * indent
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{_render_expr(stmt.target)} := {_render_expr(stmt.value)}"]
    if isinstance(stmt, ast.CallStmt):
        args = ", ".join(_render_expr(a) for a in stmt.args)
        return [f"{pad}{stmt.name}({args})" if args else f"{pad}{stmt.name}"]
    if isinstance(stmt, ast.Compound):
        lines = [f"{pad}begin"]
        lines.extend(_render_body(stmt.body, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if {_render_expr(stmt.cond)} then"]
        lines.extend(_render_stmt(_as_compound(stmt.then_branch), indent))
        if stmt.else_branch is not None:
            lines.append(f"{pad}else")
            lines.extend(_render_stmt(_as_compound(stmt.else_branch), indent))
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while {_render_expr(stmt.cond)} do"]
        lines.extend(_render_stmt(_as_compound(stmt.body), indent))
        return lines
    if isinstance(stmt, ast.Repeat):
        lines = [f"{pad}repeat"]
        lines.extend(_render_body(stmt.body, indent + 1))
        lines.append(f"{pad}until {_render_expr(stmt.cond)}")
        return lines
    if isinstance(stmt, ast.For):
        direction = "downto" if stmt.downto else "to"
        lines = [
            f"{pad}for {stmt.var} := {_render_expr(stmt.start)} "
            f"{direction} {_render_expr(stmt.stop)} do"
        ]
        lines.extend(_render_stmt(_as_compound(stmt.body), indent))
        return lines
    if isinstance(stmt, ast.Write):
        name = "writeln" if stmt.newline else "write"
        args = ", ".join(_render_expr(a) for a in stmt.args)
        return [f"{pad}{name}({args})" if args else f"{pad}{name}"]
    if isinstance(stmt, ast.Read):
        return [f"{pad}read({_render_expr(stmt.target)})"]
    raise TypeError(f"unrenderable statement {stmt!r}")


def _as_compound(stmt: Optional[ast.Stmt]) -> ast.Compound:
    if isinstance(stmt, ast.Compound):
        return stmt
    return ast.Compound(0, [stmt] if stmt is not None else [])


def _render_body(stmts: Sequence[ast.Stmt], indent: int) -> List[str]:
    lines: List[str] = []
    for position, stmt in enumerate(stmts):
        rendered = _render_stmt(stmt, indent)
        if position != len(stmts) - 1:
            rendered[-1] += ";"
        lines.extend(rendered)
    return lines


def _render_type(expr) -> str:
    if isinstance(expr, ast.NamedType):
        return expr.name
    if isinstance(expr, ast.ArrayTypeExpr):
        packed = "packed " if expr.packed else ""
        return f"{packed}array [{expr.low}..{expr.high}] of {_render_type(expr.element)}"
    raise TypeError(f"unrenderable type {expr!r}")


def _render_routine(routine: ast.Routine) -> List[str]:
    keyword = "function" if routine.is_function else "procedure"
    params = "; ".join(
        f"{'var ' if p.by_ref else ''}{p.name}: {_render_type(p.type_expr)}"
        for p in routine.params
    )
    header = f"{keyword} {routine.name}"
    if params:
        header += f"({params})"
    if routine.is_function:
        header += f": {_render_type(routine.result_type)}"
    header += ";"
    lines = [header]
    if routine.local_vars:
        lines.append("var " + "; ".join(
            f"{v.name}: {_render_type(v.type_expr)}" for v in routine.local_vars
        ) + ";")
    lines.extend(_render_stmt(routine.body, 0))
    lines[-1] += ";"
    return lines


def render_program(
    name: str,
    global_vars: Sequence[ast.VarDecl],
    routines: Sequence[ast.Routine],
    body: Sequence[ast.Stmt],
) -> str:
    """Render a generated program AST back to mini-Pascal source."""
    lines = [f"program {name};"]
    if global_vars:
        lines.append("var")
        for decl in global_vars:
            lines.append(f"  {decl.name}: {_render_type(decl.type_expr)};")
    for routine in routines:
        lines.extend(_render_routine(routine))
    lines.append("begin")
    lines.extend(_render_body(list(body), 1))
    lines.append("end.")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


def _int_lit(rng: random.Random) -> ast.IntLit:
    if rng.random() < 0.5:
        return ast.IntLit(0, rng.choice(EDGE_VALUES))
    return ast.IntLit(0, rng.randrange(0, 100))


def _wrapped_index(expr: ast.Expr) -> ast.Expr:
    """``((expr mod LEN) + LEN) mod LEN`` -- always in array range."""
    length = ast.IntLit(0, ARRAY_LEN)
    inner = ast.BinOp(0, "mod", expr, length)
    shifted = ast.BinOp(0, "+", inner, length)
    return ast.BinOp(0, "mod", shifted, ast.IntLit(0, ARRAY_LEN))


class AstGenerator:
    """One generated program: fixed declarations + a statement pool."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.functions: List[ast.Routine] = []
        self.procedures: List[ast.Routine] = []
        self._routines = self._gen_routines()

    # -- expressions -------------------------------------------------------

    def int_expr(self, depth: int, scope: Sequence[str], calls: bool = True) -> ast.Expr:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            roll = rng.random()
            if roll < 0.45:
                return _int_lit(rng)
            if roll < 0.85 or not calls:
                return ast.VarRef(0, rng.choice(list(scope)))
            if self.functions and rng.random() < 0.5:
                fn = rng.choice(self.functions)
                return ast.CallExpr(0, fn.name, [self.int_expr(0, scope, calls=False)])
            return ast.Index(
                0,
                ast.VarRef(0, ARRAY_NAME),
                _wrapped_index(self.int_expr(0, scope, calls=False)),
            )
        op = rng.choice(("+", "-", "*", "div", "mod", "+", "-"))
        left = self.int_expr(depth - 1, scope, calls)
        if op in ("div", "mod"):
            right: ast.Expr = ast.IntLit(0, rng.choice(DIVISORS))
        else:
            right = self.int_expr(depth - 1, scope, calls)
        if rng.random() < 0.1:
            left = ast.UnOp(0, "-", left)
        return ast.BinOp(0, op, left, right)

    def bool_expr(self, depth: int, scope: Sequence[str]) -> ast.Expr:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.5:
            op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
            return ast.BinOp(
                0, op, self.int_expr(1, scope, calls=False), self.int_expr(1, scope, calls=False)
            )
        roll = rng.random()
        if roll < 0.4:
            return ast.BinOp(
                0, "and", self.bool_expr(depth - 1, scope), self.bool_expr(depth - 1, scope)
            )
        if roll < 0.8:
            return ast.BinOp(
                0, "or", self.bool_expr(depth - 1, scope), self.bool_expr(depth - 1, scope)
            )
        return ast.UnOp(0, "not", self.bool_expr(depth - 1, scope))

    # -- statements --------------------------------------------------------

    def assign(self, scope: Sequence[str], targets: Sequence[str]) -> ast.Stmt:
        rng = self.rng
        if rng.random() < 0.2:
            target: ast.Expr = ast.Index(
                0,
                ast.VarRef(0, ARRAY_NAME),
                _wrapped_index(self.int_expr(1, scope, calls=False)),
            )
        else:
            target = ast.VarRef(0, rng.choice(list(targets)))
        return ast.Assign(0, target, self.int_expr(rng.randrange(1, 4), scope))

    def if_stmt(self, depth: int, scope: Sequence[str], targets: Sequence[str]) -> ast.Stmt:
        then_branch = ast.Compound(0, self.stmt_list(depth - 1, scope, targets))
        else_branch = (
            ast.Compound(0, self.stmt_list(depth - 1, scope, targets))
            if self.rng.random() < 0.6
            else None
        )
        return ast.If(0, self.bool_expr(2, scope), then_branch, else_branch)

    def for_stmt(self, depth: int, scope: Sequence[str], targets: Sequence[str]) -> ast.Stmt:
        rng = self.rng
        var = FOR_VARS[depth % len(FOR_VARS)]
        start = rng.randrange(0, 5)
        span = rng.randrange(0, 9)
        downto = rng.random() < 0.3
        body = ast.Compound(0, self.stmt_list(depth - 1, scope, targets))
        if downto:
            return ast.For(0, var, ast.IntLit(0, start + span), ast.IntLit(0, start), True, body)
        return ast.For(0, var, ast.IntLit(0, start), ast.IntLit(0, start + span), False, body)

    def while_stmt(self, depth: int, scope: Sequence[str], targets: Sequence[str]) -> ast.Stmt:
        """A counted while: terminates whatever the extra condition does."""
        rng = self.rng
        counter = COUNTER_VARS[depth % len(COUNTER_VARS)]
        bound = rng.randrange(1, 9)
        cond: ast.Expr = ast.BinOp(0, ">", ast.VarRef(0, counter), ast.IntLit(0, 0))
        if rng.random() < 0.5:
            cond = ast.BinOp(0, "and", cond, self.bool_expr(1, scope))
        body = self.stmt_list(depth - 1, scope, targets)
        body.append(
            ast.Assign(
                0,
                ast.VarRef(0, counter),
                ast.BinOp(0, "-", ast.VarRef(0, counter), ast.IntLit(0, 1)),
            )
        )
        return ast.Compound(
            0,
            [
                ast.Assign(0, ast.VarRef(0, counter), ast.IntLit(0, bound)),
                ast.While(0, cond, ast.Compound(0, body)),
            ],
        )

    def repeat_stmt(self, depth: int, scope: Sequence[str], targets: Sequence[str]) -> ast.Stmt:
        rng = self.rng
        counter = COUNTER_VARS[depth % len(COUNTER_VARS)]
        bound = rng.randrange(1, 7)
        body = self.stmt_list(depth - 1, scope, targets)
        body.append(
            ast.Assign(
                0,
                ast.VarRef(0, counter),
                ast.BinOp(0, "-", ast.VarRef(0, counter), ast.IntLit(0, 1)),
            )
        )
        until: ast.Expr = ast.BinOp(0, "<=", ast.VarRef(0, counter), ast.IntLit(0, 0))
        if rng.random() < 0.4:
            until = ast.BinOp(0, "or", until, self.bool_expr(1, scope))
        return ast.Compound(
            0,
            [
                ast.Assign(0, ast.VarRef(0, counter), ast.IntLit(0, bound)),
                ast.Repeat(0, body, until),
            ],
        )

    def write_stmt(self, scope: Sequence[str]) -> ast.Stmt:
        return ast.Write(
            0, [self.int_expr(2, scope, calls=True)], newline=self.rng.random() < 0.5
        )

    def call_stmt(self, scope: Sequence[str]) -> Optional[ast.Stmt]:
        if not self.procedures:
            return None
        proc = self.rng.choice(self.procedures)
        args: List[ast.Expr] = []
        for param in proc.params:
            if param.by_ref:
                args.append(ast.VarRef(0, self.rng.choice(INT_VARS)))
            else:
                args.append(self.int_expr(1, scope, calls=False))
        return ast.CallStmt(0, proc.name, args)

    def stmt_list(
        self, depth: int, scope: Sequence[str], targets: Sequence[str]
    ) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        for _ in range(self.rng.randrange(1, 4)):
            out.append(self.statement(depth, scope, targets))
        return out

    def statement(self, depth: int, scope: Sequence[str], targets: Sequence[str]) -> ast.Stmt:
        rng = self.rng
        if depth <= 0:
            return self.assign(scope, targets)
        roll = rng.random()
        if roll < 0.40:
            return self.assign(scope, targets)
        if roll < 0.55:
            return self.if_stmt(depth, scope, targets)
        if roll < 0.68:
            return self.for_stmt(depth, scope, targets)
        if roll < 0.78:
            return self.while_stmt(depth, scope, targets)
        if roll < 0.86:
            return self.repeat_stmt(depth, scope, targets)
        if roll < 0.94:
            return self.write_stmt(scope)
        stmt = self.call_stmt(scope)
        return stmt if stmt is not None else self.assign(scope, targets)

    # -- routines ----------------------------------------------------------

    def _gen_routines(self) -> List[ast.Routine]:
        rng = self.rng
        routines: List[ast.Routine] = []
        if rng.random() < 0.7:
            # function fz(p0: integer): integer -- pure over its argument
            # and the globals; the result assignment is the last statement
            scope = ("p0",) + INT_VARS
            body = [
                ast.Assign(0, ast.VarRef(0, "t0"), self.int_expr(2, scope, calls=False)),
                ast.Assign(
                    0,
                    ast.VarRef(0, "fz"),
                    self.int_expr(2, ("p0", "t0") + INT_VARS, calls=False),
                ),
            ]
            fn = ast.Routine(
                name="fz",
                params=[ast.Param("p0", ast.NamedType("integer"))],
                result_type=ast.NamedType("integer"),
                consts=[],
                local_vars=[ast.VarDecl("t0", ast.NamedType("integer"))],
                body=ast.Compound(0, body),
            )
            routines.append(fn)
            self.functions.append(fn)
        if rng.random() < 0.6:
            # procedure pz(p0, p1: integer; var r0: integer)
            scope = ("p0", "p1") + INT_VARS
            body: List[ast.Stmt] = [
                ast.Assign(0, ast.VarRef(0, "r0"), self.int_expr(2, scope, calls=False))
            ]
            if rng.random() < 0.5:
                body.append(
                    ast.If(
                        0,
                        self.bool_expr(1, ("p0", "p1", "r0")),
                        ast.Compound(
                            0,
                            [
                                ast.Assign(
                                    0,
                                    ast.VarRef(0, "r0"),
                                    self.int_expr(1, ("p0", "r0"), calls=False),
                                )
                            ],
                        ),
                        None,
                    )
                )
            proc = ast.Routine(
                name="pz",
                params=[
                    ast.Param("p0", ast.NamedType("integer")),
                    ast.Param("p1", ast.NamedType("integer")),
                    ast.Param("r0", ast.NamedType("integer"), by_ref=True),
                ],
                result_type=None,
                consts=[],
                local_vars=[],
                body=ast.Compound(0, body),
            )
            routines.append(proc)
            self.procedures.append(proc)
        return routines


def global_decls() -> List[ast.VarDecl]:
    decls = [ast.VarDecl(n, ast.NamedType("integer")) for n in INT_VARS]
    decls.extend(ast.VarDecl(n, ast.NamedType("integer")) for n in COUNTER_VARS)
    decls.extend(ast.VarDecl(n, ast.NamedType("integer")) for n in FOR_VARS)
    decls.append(
        ast.VarDecl(ARRAY_NAME, ast.ArrayTypeExpr(0, ARRAY_LEN - 1, ast.NamedType("integer")))
    )
    return decls


def epilogue() -> List[ast.Stmt]:
    """Write back every global -- the cross-engine/cross-level oracle's
    observable state, emitted after whatever statement prefix survives
    shrinking."""
    stmts: List[ast.Stmt] = [
        ast.Write(0, [ast.VarRef(0, name)], newline=True) for name in INT_VARS
    ]
    stmts.extend(
        ast.Write(
            0,
            [ast.Index(0, ast.VarRef(0, ARRAY_NAME), ast.IntLit(0, k))],
            newline=True,
        )
        for k in range(ARRAY_LEN)
    )
    return stmts


def generate_ast_program(
    seed: int, index: int
) -> Tuple[List[ast.Routine], List[ast.Stmt]]:
    """The deterministic (routines, top-level statement units) for a case.

    The statement list excludes the epilogue; callers render any prefix
    of it with :func:`render_ast_case`.
    """
    rng = random.Random((seed * 1_000_003 + index) ^ 0x5CA1AB1E)
    gen = AstGenerator(rng)
    units: List[ast.Stmt] = []
    # seed the globals with edge values before anything else runs
    for name in INT_VARS:
        units.append(ast.Assign(0, ast.VarRef(0, name), _int_lit(rng)))
    for _ in range(rng.randrange(3, 9)):
        units.append(gen.statement(2, INT_VARS, INT_VARS))
    return gen._routines, units


def render_ast_case(
    index: int, routines: Sequence[ast.Routine], units: Sequence[ast.Stmt]
) -> str:
    """Render a (possibly shrunk) unit list as a complete program."""
    return render_program(
        f"fuzz{index}", global_decls(), routines, list(units) + epilogue()
    )
