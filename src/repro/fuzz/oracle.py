"""The differential oracle: one case, every engine pair we have.

For a mini-Pascal case the oracle compiles the source at **every
optimization level** and runs each image on all three engines
(reference stepper, threaded fast path, superblock JIT), demanding
bit-identical observations -- status, state fingerprint, full counter
set, integer output, character output -- per level; across levels it
demands identical program *output* (counters legitimately differ when
the reorganizer does its job).  Where the CC-baseline compiler supports
the program, the :mod:`repro.ccmachine` output must match too -- the
paper's CC-elimination argument, checked program by program.  A sampled
subset of cases additionally runs under a seeded chaos fault schedule
on both fast and precise engines with the
:class:`~repro.chaos.invariants.RecoveryContractChecker` armed: final
digests must agree and the recovery contract must hold.

For an instruction-stream case the oracle assembles the source once
and runs the three engines.  Guest faults and step-budget timeouts are
*contract outcomes* -- legal, but only if every engine reports exactly
the same one; any exception outside that contract is a failure on the
spot.

Divergences are data, not exceptions: the oracle returns them in a
:class:`CheckResult` whose digest covers every observation it made, so
a batch of results is byte-comparable across hosts and parallelism.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..farm.worker import _error_info, _stats_dict, fingerprint_digest

#: optimization levels every AST case is compiled at
OPT_LEVELS = ("none", "reorganize", "pack", "branch-delay")
ENGINES = ("precise", "fast", "jit")
#: 1-in-N cases also run the chaos fault schedule
CHAOS_SAMPLE = 8
#: step ceiling for fault-injected runs: an injection that knocks a
#: program into a spin loop should cost a bounded, engine-identical
#: timeout, not the full differential budget on the precise stepper
CHAOS_MAX_STEPS = 200_000

#: test fixture hook: ``hook(source, engine) -> bool`` -- when it
#: returns True the oracle corrupts that engine's observation, planting
#: a divergence the detect -> minimize -> artifact pipeline must catch.
#: Never set outside tests.
DIVERGENCE_HOOK: Optional[Callable[[str, str], bool]] = None


@dataclass
class CheckResult:
    """Everything the oracle observed about one case."""

    mode: str
    status: str = "ok"                  # ok | divergence | error
    divergences: List[Dict[str, Any]] = field(default_factory=list)
    observations: Dict[str, Any] = field(default_factory=dict)
    cc_checked: bool = False
    chaos_checked: bool = False

    @property
    def failed(self) -> bool:
        return self.status != "ok"

    def diverge(self, check: str, detail: Dict[str, Any]) -> None:
        self.status = "divergence"
        self.divergences.append({"check": check, **detail})

    @property
    def digest(self) -> str:
        payload = json.dumps(
            {
                "mode": self.mode,
                "status": self.status,
                "divergences": self.divergences,
                "observations": self.observations,
                "cc": self.cc_checked,
                "chaos": self.chaos_checked,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _observe(program, engine: str, max_steps: int, source: str) -> Dict[str, Any]:
    """Run one engine over a fresh machine; fold the outcome into data."""
    from ..sim.faults import MachineFault
    from ..sim.machine import Machine

    machine = Machine(program)
    status, error = "ok", None
    try:
        machine.run(max_steps, fast=engine != "precise", jit=engine == "jit")
    except TimeoutError as exc:
        status, error = "timeout", _error_info(exc)
    except MachineFault as exc:
        status, error = "fault", _error_info(exc)
    observation = {
        "status": status,
        "error": error,
        "fingerprint": fingerprint_digest(machine.cpu),
        "stats": _stats_dict(machine.cpu.stats),
        "output": list(machine.output),
        "output_text": machine.output_text,
    }
    if DIVERGENCE_HOOK is not None and DIVERGENCE_HOOK(source, engine):
        observation["output"] = observation["output"] + ["planted"]
        observation["fingerprint"] = "planted-divergence"
    return observation


def _compare_engines(
    result: CheckResult, label: str, per_engine: Dict[str, Dict[str, Any]]
) -> None:
    reference = per_engine[ENGINES[0]]
    for engine in ENGINES[1:]:
        if per_engine[engine] != reference:
            keys = [
                k for k in reference
                if per_engine[engine].get(k) != reference.get(k)
            ]
            result.diverge(
                "engine",
                {
                    "where": label,
                    "engines": [ENGINES[0], engine],
                    "fields": keys,
                },
            )


def _chaos_plan(seed: int, index: int, code_size: int):
    """A small seeded bitflip schedule scaled to the program."""
    import random

    from ..chaos.plan import injection, make_plan

    rng = random.Random((seed * 1_000_003 + index) ^ 0xC4A05)
    injections = []
    for _ in range(3):
        injections.append(
            injection(
                rng.randrange(5, 200),
                "reg-flip",
                reg=rng.choice([1, 6, 7, 8, 9]),
                bit=rng.randrange(0, 16),
            )
        )
    injections.append(
        injection(
            rng.randrange(5, 200),
            "mem-flip",
            addr=rng.randrange(0, max(code_size, 1)),
            bit=rng.randrange(0, 32),
        )
    )
    return make_plan(seed, f"fuzz-{index}", injections)


def _check_chaos(
    result: CheckResult, program, seed: int, index: int, max_steps: int
) -> None:
    """The sampled fault schedule: fast vs precise under injections."""
    from ..chaos.engine import run_plan
    from ..sim.machine import Machine

    plan = _chaos_plan(seed, index, len(program.instructions))
    finals = {}
    for engine in ("precise", "fast"):
        run = run_plan(
            Machine(program),
            plan,
            fast=engine != "precise",
            max_steps=min(max_steps, CHAOS_MAX_STEPS),
        )
        finals[engine] = run.final
        if run.violations:
            result.diverge(
                "recovery-contract",
                {"engine": engine, "violations": run.violations},
            )
    if finals["fast"] != finals["precise"]:
        result.diverge("chaos-engine", {"finals": finals})
    result.observations["chaos"] = finals["precise"]
    result.chaos_checked = True


def check_ast_source(
    source: str,
    *,
    seed: int = 0,
    index: int = 0,
    max_steps: int = 2_000_000,
    chaos: bool = False,
) -> CheckResult:
    """The full oracle for one mini-Pascal source text."""
    from ..ccmachine import CcCompileError, CcMachine, compile_cc_source
    from ..compiler.driver import compile_source
    from ..reorg.reorganizer import OptLevel

    result = CheckResult(mode="ast")
    outputs: Dict[str, Any] = {}
    chaos_program = None
    for level in OPT_LEVELS:
        try:
            compiled = compile_source(source, opt_level=OptLevel(level))
        except Exception as exc:
            result.status = "error"
            result.observations[level] = {"compile_error": _error_info(exc)}
            result.diverge("compile", {"level": level, "error": _error_info(exc)})
            return result
        per_engine = {
            engine: _observe(compiled.program, engine, max_steps, source)
            for engine in ENGINES
        }
        _compare_engines(result, level, per_engine)
        reference = per_engine[ENGINES[0]]
        if reference["status"] != "ok":
            # a generated program must halt cleanly: anything else is a
            # generator or toolchain bug worth surfacing
            result.diverge(
                "ast-outcome", {"level": level, "status": reference["status"],
                                "error": reference["error"]}
            )
        outputs[level] = {
            "output": reference["output"],
            "output_text": reference["output_text"],
        }
        result.observations[level] = {
            "fingerprint": reference["fingerprint"],
            "cycles": reference["stats"]["cycles"],
            "words": reference["stats"]["words"],
            **outputs[level],
        }
        if level == "branch-delay":
            chaos_program = compiled.program
    baseline = outputs[OPT_LEVELS[0]]
    for level in OPT_LEVELS[1:]:
        if outputs[level] != baseline:
            result.diverge(
                "opt-level", {"levels": [OPT_LEVELS[0], level],
                              "outputs": [baseline, outputs[level]]}
            )
    try:
        cc_program = compile_cc_source(source)
    except CcCompileError as exc:
        result.observations["cc"] = {"skipped": str(exc)}
    else:
        cc = CcMachine(cc_program)
        try:
            cc.run(max_steps)
        except Exception as exc:
            # the MIPS side ran this program cleanly; the CC baseline
            # failing on it is itself a divergence, not a skip
            result.diverge("cc-run", {"error": _error_info(exc)})
        else:
            cc_out = {"output": list(cc.output), "output_text": cc.output_text}
            result.cc_checked = True
            result.observations["cc"] = cc_out
            if cc_out != baseline:
                result.diverge("cc-baseline", {"cc": cc_out, "mips": baseline})
    if chaos and chaos_program is not None:
        _check_chaos(result, chaos_program, seed, index, max_steps)
    return result


def check_minijava_source(
    source: str,
    *,
    seed: int = 0,
    index: int = 0,
    max_steps: int = 2_000_000,
    chaos: bool = False,
) -> CheckResult:
    """The oracle for one MiniJava source text.

    Same contract as :func:`check_ast_source` -- every optimization
    level, all three engines, bit-identical observations per level and
    identical output across levels, plus the sampled chaos schedule.
    The CC-baseline leg is skipped: the CC machine compiles only
    mini-Pascal, so there is no ground-truth CC image to compare.
    """
    from ..mjlang import compile_minijava
    from ..reorg.reorganizer import OptLevel

    result = CheckResult(mode="minijava")
    outputs: Dict[str, Any] = {}
    chaos_program = None
    for level in OPT_LEVELS:
        try:
            compiled = compile_minijava(source, opt_level=OptLevel(level))
        except Exception as exc:
            result.status = "error"
            result.observations[level] = {"compile_error": _error_info(exc)}
            result.diverge("compile", {"level": level, "error": _error_info(exc)})
            return result
        per_engine = {
            engine: _observe(compiled.program, engine, max_steps, source)
            for engine in ENGINES
        }
        _compare_engines(result, level, per_engine)
        reference = per_engine[ENGINES[0]]
        if reference["status"] != "ok":
            result.diverge(
                "minijava-outcome",
                {"level": level, "status": reference["status"],
                 "error": reference["error"]},
            )
        outputs[level] = {
            "output": reference["output"],
            "output_text": reference["output_text"],
        }
        result.observations[level] = {
            "fingerprint": reference["fingerprint"],
            "cycles": reference["stats"]["cycles"],
            "words": reference["stats"]["words"],
            **outputs[level],
        }
        if level == "branch-delay":
            chaos_program = compiled.program
    baseline = outputs[OPT_LEVELS[0]]
    for level in OPT_LEVELS[1:]:
        if outputs[level] != baseline:
            result.diverge(
                "opt-level", {"levels": [OPT_LEVELS[0], level],
                              "outputs": [baseline, outputs[level]]}
            )
    result.observations["cc"] = {"skipped": "minijava has no CC baseline"}
    if chaos and chaos_program is not None:
        _check_chaos(result, chaos_program, seed, index, max_steps)
    return result


def check_word_source(source: str, *, max_steps: int = 200_000) -> CheckResult:
    """The oracle for one raw instruction stream."""
    from ..asm.assembler import assemble

    result = CheckResult(mode="words")
    try:
        program = assemble(source)
    except Exception as exc:
        result.status = "error"
        result.diverge("assemble", {"error": _error_info(exc)})
        return result
    per_engine = {
        engine: _observe(program, engine, max_steps, source) for engine in ENGINES
    }
    _compare_engines(result, "words", per_engine)
    reference = per_engine[ENGINES[0]]
    result.observations["words"] = {
        "status": reference["status"],
        "fingerprint": reference["fingerprint"],
        "cycles": reference["stats"]["cycles"],
        "words": reference["stats"]["words"],
        "output": reference["output"],
        "error": reference["error"],
    }
    return result


def check_case(case, *, max_steps: int = 2_000_000) -> CheckResult:
    """Dispatch a :class:`~repro.fuzz.case.FuzzCase` to its oracle."""
    if case.mode == "ast":
        return check_ast_source(
            case.source,
            seed=case.seed,
            index=case.index,
            max_steps=max_steps,
            chaos=case.index % CHAOS_SAMPLE == 0,
        )
    if case.mode == "minijava":
        return check_minijava_source(
            case.source,
            seed=case.seed,
            index=case.index,
            max_steps=max_steps,
            chaos=case.index % CHAOS_SAMPLE == 0,
        )
    return check_word_source(case.source, max_steps=min(max_steps, 200_000))
