"""Property-based scenario fuzzing with a cross-engine differential oracle.

The paper's tradeoffs -- threaded dispatch, CC elimination, immediate
selection, branch reorganization -- all claim to preserve semantics
while buying performance.  This package tests that claim adversarially
instead of against a fixed corpus: seeded generators produce unbounded
valid scenarios at two levels (mini-Pascal programs via
:mod:`repro.fuzz.astgen`, raw instruction streams via
:mod:`repro.fuzz.wordgen`), and the differential oracle
(:mod:`repro.fuzz.oracle`) runs every case through each engine pair we
have: reference vs fast path vs JIT, every optimization level, the CC
baseline where the program compiles for it, and a sampled chaos fault
schedule with the recovery-contract checker armed.

Failures shrink (:mod:`repro.fuzz.minimize`) and land as standalone
repro artifacts (:mod:`repro.fuzz.artifacts`).  Batches are
content-addressed farm jobs (:mod:`repro.fuzz.batch`), so campaigns
scale over ``--jobs``, ``--hosts``, and the persistent result cache
with byte-identical records at any parallelism.
"""

from .batch import DEFAULT_BATCH, batch_ranges, run_batch
from .case import (
    MODE_AST,
    MODE_BOTH,
    MODE_MINIJAVA,
    MODE_WORDS,
    MODES,
    FuzzCase,
    make_case,
)
from .minimize import minimize_case
from .oracle import (
    CheckResult,
    check_ast_source,
    check_case,
    check_minijava_source,
    check_word_source,
)

__all__ = [
    "DEFAULT_BATCH",
    "batch_ranges",
    "run_batch",
    "MODE_AST",
    "MODE_BOTH",
    "MODE_MINIJAVA",
    "MODE_WORDS",
    "MODES",
    "FuzzCase",
    "make_case",
    "minimize_case",
    "CheckResult",
    "check_ast_source",
    "check_case",
    "check_minijava_source",
    "check_word_source",
]
