"""Failing-case repro artifacts: standalone programs plus replay data.

A divergence is only as good as its reproduction.  For every failing
case the harness writes two files into the artifact directory:

- ``<name>.pas`` / ``<name>.s`` -- the minimized program, runnable on
  its own through the normal toolchain;
- ``<name>.json`` -- the structured crash record: generator seed, case
  index, mode, the divergences observed, the shrink ratio, and a
  one-line replay command.

``mips-fuzz replay <artifact>.json`` regenerates the case from its
``(seed, index, mode)`` triple -- not from the dumped text -- and
re-runs the full oracle, so a replay proves the generator still
produces the failing program and the divergence still reproduces.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from .case import FuzzCase

SOURCE_SUFFIX = {"ast": ".pas", "words": ".s"}


def dump_artifact(
    directory: str,
    case: FuzzCase,
    divergences,
    minimized: Optional[Dict[str, Any]] = None,
) -> str:
    """Write the repro pair for a failing case; returns the JSON path."""
    os.makedirs(directory, exist_ok=True)
    source = minimized["source"] if minimized else case.source
    source_path = os.path.join(directory, case.name + SOURCE_SUFFIX[case.mode])
    with open(source_path, "w") as fh:
        fh.write(source)
    record = {
        "name": case.name,
        "seed": case.seed,
        "index": case.index,
        "mode": case.mode,
        "source_file": os.path.basename(source_path),
        "divergences": list(divergences),
        "replay": case.replay_command,
        "minimized": (
            {"units": minimized["units"], "units_full": minimized["units_full"]}
            if minimized
            else None
        ),
    }
    json_path = os.path.join(directory, case.name + ".json")
    with open(json_path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return json_path


def load_artifact(path: str) -> Dict[str, Any]:
    """Read a crash record back (tolerating a bare source path)."""
    with open(path) as fh:
        return json.load(fh)
