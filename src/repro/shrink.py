"""Reusable failure minimization by shortest-failing-prefix bisection.

Chaos plans and fuzz cases share one minimization problem: a sequence of
elements (injections, statements, instruction words) produced a failure,
and the interesting element is usually one of many.  The core here
binary-searches the shortest prefix that still reproduces the failure --
O(log n) evaluations when the failure is monotone in the prefix (adding
elements never un-breaks it), with a linear fallback when it is not.

Callers provide only ``fails_at(k)``: does the length-``k`` prefix still
fail?  The predicate is re-evaluated, never assumed, so a non-monotone
interaction between elements degrades to a linear scan instead of a
wrong answer.  Everything upstream (plans, generated programs) is
deterministic, so a returned prefix reproduces its failure on every
rerun of the same seed.

:mod:`repro.chaos.shrink` wraps this for :class:`~repro.chaos.plan.
ChaosPlan` objects (injection-level); :mod:`repro.fuzz.minimize` wraps
it for generated programs (statement-level for mini-Pascal ASTs,
word-level for instruction streams).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


def shortest_failing_prefix_length(
    count: int, fails_at: Callable[[int], bool]
) -> int:
    """The smallest ``k`` in 1..count for which ``fails_at(k)`` holds.

    ``fails_at(count)`` is expected to be True (the caller saw the
    failure on the full sequence).  Returns ``count`` unchanged when
    even the full sequence no longer fails -- the caller keeps what it
    started with rather than "shrinking" to something that passes.
    """
    if count <= 0:
        return count
    lo, hi = 1, count
    while lo < hi:
        mid = (lo + hi) // 2
        if fails_at(mid):
            hi = mid
        else:
            lo = mid + 1
    # bisection assumed monotonicity; verify before trusting the answer
    if fails_at(lo) and (lo == 1 or not fails_at(lo - 1)):
        return lo
    for length in range(1, count + 1):
        if fails_at(length):
            return length
    return count


def shortest_failing_prefix_items(
    items: Sequence[T], fails: Callable[[Sequence[T]], bool]
) -> List[T]:
    """The shortest ``items[:k]`` on which ``fails`` still holds.

    The generic sequence form: statement lists, instruction-word lists,
    anything sliceable.  Cost model matches
    :func:`shortest_failing_prefix_length`.
    """
    length = shortest_failing_prefix_length(
        len(items), lambda k: fails(items[:k])
    )
    return list(items[:length])
