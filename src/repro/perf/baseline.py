"""The deterministic cycle-count regression gate.

Wall-clock benchmarks are noisy; cycle counts are not.  Both engines
execute bit-identical instruction streams, so the per-workload counters
this module collects (cycles, stalls, flushes, memory traffic) are
exactly reproducible on any machine at any load.  That turns a
committed ``PERF_BASELINE.json`` into a *blocking* CI gate: any change
that grows a gated counter by more than :data:`DEFAULT_THRESHOLD`
fails, with the worst-offending workload and counter named -- while
the old wall-clock gate stays as a non-blocking nightly backstop.

Flow::

    python tools/bench_report.py cycles            # collect current
    python tools/bench_report.py cycles --gate PERF_BASELINE.json
    python tools/bench_report.py update-baseline   # after intended changes
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..workloads.corpus import QUICK_PROGRAMS
from ..workloads.minijava import MINIJAVA_PROGRAMS

#: the default gate collection: the quick Pascal corpus plus the
#: MiniJava corpus, so the cycle and dispatch gates watch both front
#: ends' code generation (vtable dispatch and heap traffic included)
GATE_PROGRAMS = tuple(QUICK_PROGRAMS) + tuple(MINIJAVA_PROGRAMS)

#: relative growth in any gated counter that fails the gate
DEFAULT_THRESHOLD = 0.02

#: the stats-record counters the gate watches (all engine-identical)
GATED_COUNTERS = (
    "cycles",
    "words",
    "load_stalls",
    "branch_flush_cycles",
    "loads",
    "stores",
)

BASELINE_VERSION = 1


def _gate_scheduler(jobs: int, store, cache, hosts):
    """The farm backend a gate collection runs on: local pool or shards.

    Distributed runs are admissible for the same reason ``jobs`` is:
    the gated counters are exact per job key, so *where* a workload
    simulated cannot change what it counted -- the aggregate-digest
    oracle CI enforces is precisely this property.
    """
    from ..farm.scheduler import Scheduler

    if hosts:
        from ..farm.dist import DistScheduler

        return DistScheduler(hosts=list(hosts), store=store, cache=cache)
    return Scheduler(jobs=jobs, store=store, cache=cache)


def collect_cycles(
    names: Sequence[str] = GATE_PROGRAMS,
    jobs: int = 1,
    store=None,
    cache=None,
    hosts: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, int]]:
    """Per-workload gated counters, collected through the farm.

    Sharding (``jobs``) only changes wall time; the counters in every
    record are deterministic, so the result is identical at any width.
    ``cache`` (a :class:`repro.service.cache.ResultCache`) serves
    previously-collected workloads without re-simulating -- safe for the
    same reason the gate is blocking: the counters cannot drift between
    identical jobs.  ``hosts`` (shard-host specs) runs the collection on
    the distributed farm instead of the local pool, with identical
    output.
    """
    from ..farm.job import workload_jobs

    records = _gate_scheduler(jobs, store, cache, hosts).run(workload_jobs(list(names)))
    out: Dict[str, Dict[str, int]] = {}
    for record in records:
        if record["status"] != "ok":
            raise RuntimeError(
                f"workload {record['name']!r} did not complete cleanly "
                f"(status={record['status']}): cannot build a trustworthy baseline"
            )
        stats = record["stats"] or {}
        out[record["name"]] = {counter: int(stats.get(counter, 0)) for counter in GATED_COUNTERS}
    return dict(sorted(out.items()))


#: the dispatch-floor counters (machine-independent throughput proxy):
#: ``dispatches`` is every per-word handler entry plus every fused-block
#: entry plus every reference-stepper delegation -- the number of times
#: the engine paid a dispatch, which wall-clock throughput tracks but
#: which, unlike wall clock, is exactly reproducible anywhere
DISPATCH_COUNTERS = (
    "dispatches",
    "ref_steps",
)


def collect_dispatch(
    names: Sequence[str] = GATE_PROGRAMS,
    jobs: int = 1,
    store=None,
    cache=None,
    hosts: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, int]]:
    """Per-workload dispatch counts under the JIT engine, via the farm.

    Runs every workload with ``engine="jit"`` and the engine-stats
    export on; burst boundaries, heat accumulation, and block formation
    are all serial and exact, so the counts are bit-identical on any
    machine -- which is what lets CI gate throughput without touching a
    clock.  ``cache`` serves repeat collections from the persistent
    result cache (the engine-stats live in the cached record's extras).
    ``hosts`` runs the collection on the distributed farm, identically.
    """
    from ..farm.job import workload_jobs

    records = _gate_scheduler(jobs, store, cache, hosts).run(
        workload_jobs(list(names), engine="jit", engine_stats=True)
    )
    out: Dict[str, Dict[str, int]] = {}
    for record in records:
        if record["status"] != "ok":
            raise RuntimeError(
                f"workload {record['name']!r} did not complete cleanly "
                f"(status={record['status']}): cannot build a trustworthy baseline"
            )
        engine_stats = record["extra"].get("engine_stats") or {}
        dispatches = (
            int(engine_stats.get("word_dispatches", 0))
            + int(engine_stats.get("block_entries", 0))
            + int(engine_stats.get("ref_steps", 0))
        )
        out[record["name"]] = {
            "dispatches": dispatches,
            "ref_steps": int(engine_stats.get("ref_steps", 0)),
        }
    return dict(sorted(out.items()))


def baseline_document(
    benchmarks: Dict[str, Dict[str, int]],
    counters: Sequence[str] = GATED_COUNTERS,
) -> Dict[str, Any]:
    return {
        "version": BASELINE_VERSION,
        "threshold": DEFAULT_THRESHOLD,
        "counters": list(counters),
        "benchmarks": benchmarks,
    }


def write_baseline(
    path: str,
    benchmarks: Dict[str, Dict[str, int]],
    counters: Sequence[str] = GATED_COUNTERS,
) -> None:
    with open(path, "w") as fh:
        json.dump(baseline_document(benchmarks, counters), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


@dataclass(frozen=True)
class Regression:
    benchmark: str
    counter: str
    baseline: int
    current: int

    @property
    def growth(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current > 0 else 0.0
        return (self.current - self.baseline) / self.baseline

    def render(self) -> str:
        pct = "new" if self.baseline == 0 else f"+{self.growth * 100:.2f}%"
        return (
            f"{self.benchmark}: {self.counter} {self.baseline} -> {self.current} ({pct})"
        )


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Dict[str, int]],
    threshold: Optional[float] = None,
) -> List[Regression]:
    """Every gated counter that grew past the threshold, worst first.

    Workloads present only on one side are ignored (adding a workload
    must not fail the gate; removing one is caught by review of the
    baseline diff itself).  Shrinking counters never fail -- they mean
    the baseline should be refreshed to lock in the win.
    """
    if threshold is None:
        threshold = float(baseline.get("threshold", DEFAULT_THRESHOLD))
    regressions: List[Regression] = []
    for name, counters in baseline.get("benchmarks", {}).items():
        if name not in current:
            continue
        for counter, base_value in counters.items():
            now = int(current[name].get(counter, 0))
            regression = Regression(name, counter, int(base_value), now)
            if regression.growth > threshold:
                regressions.append(regression)
    regressions.sort(key=lambda r: (-r.growth, r.benchmark, r.counter))
    return regressions


def render_gate(
    regressions: Sequence[Regression],
    threshold: float = DEFAULT_THRESHOLD,
    gate_name: str = "perf gate",
    refresh_command: str = "python tools/bench_report.py update-baseline",
) -> str:
    if not regressions:
        return f"{gate_name}: ok (no counter grew more than {threshold * 100:.0f}%)\n"
    worst = regressions[0]
    lines = [
        f"{gate_name}: FAIL -- {len(regressions)} counter(s) grew more than "
        f"{threshold * 100:.0f}%",
        f"worst offender: {worst.render()}",
    ]
    lines += [f"  {regression.render()}" for regression in regressions]
    lines.append(f"if this growth is intended, refresh the baseline with: {refresh_command}")
    return "\n".join(lines) + "\n"
