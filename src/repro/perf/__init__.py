"""Observability: perf counters, per-PC profiling, paper-claim checks.

The layer has four parts, split dynamic/static for near-zero run cost:

* :mod:`~repro.perf.profiler` -- per-PC execution counts, stall/flush
  attribution, and a bounded architectural event ring; identical under
  both execution engines.
* :mod:`~repro.perf.counters` -- hardware-style counter groups derived
  at sample time from the counts and static word properties.
* :mod:`~repro.perf.report` -- deterministic hot-spot profiles (text,
  JSON, flamegraph-collapsed).
* :mod:`~repro.perf.claims` / :mod:`~repro.perf.baseline` -- the live
  paper-bands validator and the blocking cycle-count CI gate.
"""

from .baseline import (
    DEFAULT_THRESHOLD,
    GATED_COUNTERS,
    collect_cycles,
    compare,
    load_baseline,
    render_gate,
    write_baseline,
)
from .claims import all_ok, validate
from .counters import VOLATILE_GROUPS, classify_word, collect, merge_groups, stable_groups
from .profiler import Profiler
from .report import build_profile, render_collapsed, render_json, render_text

__all__ = [
    "DEFAULT_THRESHOLD",
    "GATED_COUNTERS",
    "Profiler",
    "VOLATILE_GROUPS",
    "all_ok",
    "build_profile",
    "classify_word",
    "collect",
    "collect_cycles",
    "compare",
    "load_baseline",
    "merge_groups",
    "render_collapsed",
    "render_gate",
    "render_json",
    "render_text",
    "stable_groups",
    "validate",
    "write_baseline",
]
