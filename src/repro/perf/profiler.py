"""Per-PC cycle attribution and the architectural event ring.

The profiler is the dynamic half of the observability layer: a
dictionary of **execution counts per instruction address**, plus stall
and flush cycles attributed to the word that paid them, plus a bounded
ring buffer of architectural events (faults, traps, ``rfs``).  Every
other counter the layer reports (:mod:`repro.perf.counters`) is derived
at *sample time* by multiplying these counts against static per-word
properties, so the per-step cost of full observability is one dict
increment on the reference stepper and one dict merge per fast-path
burst -- nothing in the threaded-code handler loop changes.

Engine identity: the fast path flushes its per-burst execution counts
into the same dictionaries the reference stepper increments, and the
events the ring records (faults, traps, ``rfs``) only ever execute on
the reference stepper (the fast path bails on all of them), so an
attached profiler observes byte-identical data under either engine.

Attach with :meth:`Profiler.attach`; a detached CPU pays a single
``is None`` test per reference step and per burst flush.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: default ring capacity: enough to hold a paging storm's fault train
#: while keeping a profile record small
DEFAULT_EVENT_CAPACITY = 256


class Profiler:
    """Execution counts, stall attribution, and the event ring for one CPU."""

    __slots__ = ("counts", "stall_cycles", "flush_cycles", "_events", "_event_seq", "capacity")

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY):
        #: instruction address -> times a word at that address completed
        self.counts: Dict[int, int] = {}
        #: address -> interlock stall cycles charged at that word (INTERLOCKED)
        self.stall_cycles: Dict[int, int] = {}
        #: address -> branch flush cycles charged at that word (INTERLOCKED)
        self.flush_cycles: Dict[int, int] = {}
        self.capacity = capacity
        self._events: List[Tuple] = []
        #: total events ever recorded (so a full ring still reports drops)
        self._event_seq = 0

    # -- wiring --------------------------------------------------------

    def attach(self, cpu) -> "Profiler":
        """Install on a CPU (both engines report to it); returns self."""
        cpu.profiler = self
        return self

    @staticmethod
    def detach(cpu) -> None:
        cpu.profiler = None

    # -- recording (called from the simulator's cold paths) ------------

    def record_event(self, kind: str, words: int, pc: int, *detail) -> None:
        """Append an architectural event, evicting the oldest when full.

        ``words`` is ``stats.words`` at event time -- an engine-neutral
        timestamp (both engines count executed words identically).
        """
        ring = self._events
        if len(ring) >= self.capacity:
            del ring[0]
        ring.append((self._event_seq, kind, words, pc) + detail)
        self._event_seq += 1

    def charge_stall(self, pc: int, cycles: int = 1) -> None:
        self.stall_cycles[pc] = self.stall_cycles.get(pc, 0) + cycles

    def charge_flush(self, pc: int, cycles: int) -> None:
        self.flush_cycles[pc] = self.flush_cycles.get(pc, 0) + cycles

    # -- sampling ------------------------------------------------------

    def cycles_at(self, pc: int) -> int:
        """Cycles attributed to the word at ``pc`` (1 per issue + charges)."""
        return (
            self.counts.get(pc, 0)
            + self.stall_cycles.get(pc, 0)
            + self.flush_cycles.get(pc, 0)
        )

    @property
    def total_cycles(self) -> int:
        return (
            sum(self.counts.values())
            + sum(self.stall_cycles.values())
            + sum(self.flush_cycles.values())
        )

    @property
    def events(self) -> List[Dict[str, object]]:
        """The retained events, oldest first, as stable dicts."""
        out = []
        for entry in self._events:
            seq, kind, words, pc = entry[:4]
            event: Dict[str, object] = {"seq": seq, "kind": kind, "words": words, "pc": pc}
            if kind == "fault":
                event["cause"] = entry[4]
                event["minor"] = entry[5]
            elif kind == "trap":
                event["code"] = entry[4]
            out.append(event)
        return out

    @property
    def events_dropped(self) -> int:
        """Events evicted from the ring (total recorded minus retained)."""
        return self._event_seq - len(self._events)

    def hot_pcs(self, top: Optional[int] = None) -> List[Tuple[int, int]]:
        """``(pc, cycles)`` sorted by cycles descending, pc as tie-break."""
        pcs = set(self.counts) | set(self.stall_cycles) | set(self.flush_cycles)
        ranked = sorted(
            ((pc, self.cycles_at(pc)) for pc in pcs),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked if top is None else ranked[:top]
