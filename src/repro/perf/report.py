"""Deterministic guest hot-spot reports.

A *profile* is a plain dict built from a finished run: the top-N
hottest instruction addresses with cycle attribution, the stable
counter groups, and the architectural event trace.  Everything in it
derives from architectural state (execution counts, decode cache,
symbols), never from wall clocks or engine internals, so the same
program produces byte-identical profiles on either engine, under any
``--jobs N`` sharding, and across repeated runs -- which is what lets
profiles live in the farm's content-addressed :class:`ResultStore` and
be diffed in CI.

Three renderings: :func:`render_text` (human), :func:`render_json`
(machine, sorted keys), and :func:`render_collapsed` (one
``label;+off count`` line per hot word -- feed to any flamegraph tool).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .counters import collect, stable_groups

#: bump when the profile schema changes shape
PROFILE_VERSION = 1


def _symbol_table(program) -> List[Tuple[int, str]]:
    """``(address, name)`` sorted ascending, for nearest-label lookup."""
    symbols = getattr(program, "symbols", None) or {}
    return sorted((addr, name) for name, addr in symbols.items())


def label_for(pc: int, table: List[Tuple[int, str]]) -> str:
    """Nearest preceding symbol, as ``name`` or ``name+off``; hex otherwise."""
    best: Optional[Tuple[int, str]] = None
    for addr, name in table:
        if addr > pc:
            break
        best = (addr, name)
    if best is None:
        return f"0x{pc:x}"
    addr, name = best
    return name if addr == pc else f"{name}+{pc - addr}"


def build_profile(
    cpu,
    program=None,
    *,
    top: Optional[int] = None,
    name: Optional[str] = None,
    pagemap=None,
    dma=None,
    tiers: bool = False,
) -> Dict[str, object]:
    """Assemble the deterministic profile dict for a finished run.

    ``tiers=True`` annotates each hot entry with the JIT tier serving
    its PC (interpreted / threaded / fused).  It is an explicit opt-in
    (``mips-prof run`` under the jit engine) and never set on
    farm-exported profiles, because the tier is an engine detail: the
    rest of the profile is byte-identical across all three engines and
    the cross-engine differential suite diffs it to prove that.
    """
    profiler = cpu.profiler
    if profiler is None:
        raise ValueError("no profiler attached; call Profiler().attach(cpu) before running")
    table = _symbol_table(program)
    total = profiler.total_cycles
    engine = getattr(cpu, "_fastpath", None)
    jit_on = tiers and engine is not None and getattr(engine, "jit_enabled", False)
    hot = []
    for pc, cycles in profiler.hot_pcs(top):
        entry = {
            "pc": pc,
            "label": label_for(pc, table),
            "cycles": cycles,
            "count": profiler.counts.get(pc, 0),
            "stall_cycles": profiler.stall_cycles.get(pc, 0),
            "flush_cycles": profiler.flush_cycles.get(pc, 0),
            "pct": round(100.0 * cycles / total, 2) if total else 0.0,
        }
        if jit_on:
            entry["tier"] = engine.tier(pc)
        hot.append(entry)
    profile: Dict[str, object] = {
        "version": PROFILE_VERSION,
        "total_cycles": total,
        "hot": hot,
        "counters": stable_groups(collect(cpu, pagemap=pagemap, dma=dma)),
        "events": profiler.events,
        "events_dropped": profiler.events_dropped,
    }
    if name is not None:
        profile["name"] = name
    return profile


def render_json(profile: Dict[str, object]) -> str:
    return json.dumps(profile, sort_keys=True, separators=(",", ":"))


def render_collapsed(profile: Dict[str, object]) -> str:
    """Flamegraph-collapsed form: ``label;0xPC cycles`` per hot word."""
    lines = [
        f"{entry['label']};0x{entry['pc']:x} {entry['cycles']}"
        for entry in profile["hot"]
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def render_text(profile: Dict[str, object]) -> str:
    out = []
    name = profile.get("name")
    title = f"profile: {name}" if name else "profile"
    out.append(title)
    out.append(f"total attributed cycles: {profile['total_cycles']}")
    counters = profile["counters"]
    pipeline = counters["pipeline"]
    memory = counters["memory"]
    out.append(
        "words={words} pieces/word={pieces_per_word} stalls={load_stalls} "
        "flushes={branch_flush_cycles} free-mem={free_pct}%".format(
            words=pipeline["words"],
            pieces_per_word=pipeline["pieces_per_word"],
            load_stalls=pipeline["load_stalls"],
            branch_flush_cycles=pipeline["branch_flush_cycles"],
            free_pct=memory["free_cycle_pct"],
        )
    )
    out.append("")
    tiered = any("tier" in entry for entry in profile["hot"])
    tier_head = f" {'TIER':<11}" if tiered else ""
    out.append(f"{'CYCLES':>10} {'%':>6} {'COUNT':>10} {'PC':>8} {tier_head} LOCATION")
    for entry in profile["hot"]:
        tier_col = f" {entry.get('tier', ''):<11}" if tiered else ""
        out.append(
            f"{entry['cycles']:>10} {entry['pct']:>6.2f} {entry['count']:>10} "
            f"{entry['pc']:>#8x} {tier_col} {entry['label']}"
        )
    events = profile["events"]
    if events:
        out.append("")
        dropped = profile["events_dropped"]
        suffix = f" ({dropped} older dropped)" if dropped else ""
        out.append(f"events ({len(events)} retained{suffix}):")
        for event in events:
            detail = {
                k: v for k, v in event.items() if k not in ("seq", "kind", "words", "pc")
            }
            extra = " ".join(f"{k}={v}" for k, v in sorted(detail.items()))
            out.append(
                f"  [{event['seq']}] word {event['words']}: {event['kind']} "
                f"@0x{event['pc']:x}{(' ' + extra) if extra else ''}"
            )
    return "\n".join(out) + "\n"
