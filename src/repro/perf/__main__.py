"""``python -m repro.perf`` == ``mips-prof`` (handy in CI images)."""

import sys

from ..cli import prof_main

if __name__ == "__main__":
    sys.exit(prof_main())
