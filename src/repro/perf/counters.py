"""Hardware-style counter groups, sampled from per-PC execution counts.

The design splits observability into a **dynamic** part and a **static**
part.  The dynamic part -- maintained while the guest runs -- is just
the :class:`~repro.perf.profiler.Profiler`'s per-PC execution counts
(plus the always-on :class:`~repro.sim.cpu.CpuStats`).  Everything else
is a *static property of the instruction word at an address*: which
operations its pieces perform, which Table 1 bucket each immediate
operand falls into, whether its compare could have ridden on a
condition code set by the preceding word.  :func:`collect` multiplies
those static per-word profiles by the execution counts at sample time,
so adding a counter group costs nothing per executed instruction and
the groups are engine-identical by construction (both engines produce
identical per-PC counts).

Groups::

    pipeline    cycles, words, pieces, noops, stalls, flushes, exceptions
    mix         executed piece operations by name (add, load, cbr-eq, ...)
    immediates  executed immediate operands bucketed per Table 1
    control     branch/compare behaviour and the Table 3 CC-savings analog
    memory      data-memory usage and the section 3.1 free-cycle fraction
    system      page-map and DMA traffic (zeros on a bare machine)
    engine      fast-path compile/bail/invalidation diagnostics

The ``engine`` group is **engine-specific** (the reference stepper has
no bails); every consumer that promises byte-identical output across
engines (``mips-prof``, fingerprints, the perf gate) must exclude it --
see :data:`VOLATILE_GROUPS`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..isa.immediates import TABLE1_ROWS, ConstantClass, classify_constant
from ..isa.pieces import (
    Alu,
    CompareBranch,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    ReadSpecial,
    Rfs,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from ..isa.operations import AluOp
from ..isa.words import InstructionWord

#: groups that differ between execution engines or runs; deterministic
#: consumers (profiles, gates, digests) must drop them
VOLATILE_GROUPS = ("engine",)

#: conditions that test an order relation against zero the way a
#: condition code's N/Z flags would (mirrors Table 3's accounting)
_CC_TESTABLE = frozenset(("eq", "ne", "lt", "le", "gt", "ge"))


@dataclass
class WordProfile:
    """Static observable properties of one instruction word."""

    ops: Counter = field(default_factory=Counter)
    imm: Counter = field(default_factory=Counter)       # ConstantClass -> count
    pieces: int = 0
    noops: int = 0
    uses_memory: bool = False
    compares: int = 0          # compare-and-branch pieces
    setconds: int = 0
    #: registers this word zero-tests with an order/equality compare
    #: (the Table 3 "could a CC have saved this compare" inputs)
    zero_tested: FrozenSet[int] = frozenset()
    #: registers written by ALU operator pieces (CC "set on operations")
    alu_dsts: FrozenSet[int] = frozenset()
    #: registers written by moves/loads (CC "set on moves", VAX class)
    move_dsts: FrozenSet[int] = frozenset()
    #: static direct control-transfer targets
    targets: Tuple[int, ...] = ()


def _imm_operands(piece) -> Iterable[int]:
    """The immediate operand values an executed piece actually consumes."""
    if isinstance(piece, Alu):
        if isinstance(piece.s1, Imm):
            yield piece.s1.value
        # MOV/NOT ignore s2; its slot holds filler, not a constant
        if piece.op not in (AluOp.MOV, AluOp.NOT) and isinstance(piece.s2, Imm):
            yield piece.s2.value
    elif isinstance(piece, (SetCond, CompareBranch)):
        if isinstance(piece.s1, Imm):
            yield piece.s1.value
        if isinstance(piece.s2, Imm):
            yield piece.s2.value
    elif isinstance(piece, MovImm):
        yield piece.value
    elif isinstance(piece, LoadImm):
        yield piece.value


def _zero_tested_reg(piece) -> Optional[int]:
    """The register a compare piece tests against zero, if any."""
    if piece.cond.value not in _CC_TESTABLE:
        return None
    s1, s2 = piece.s1, piece.s2
    if isinstance(s2, Imm) and s2.value == 0 and not isinstance(s1, Imm):
        return s1.number
    if isinstance(s1, Imm) and s1.value == 0 and not isinstance(s2, Imm):
        return s2.number
    return None


def classify_word(word: InstructionWord) -> WordProfile:
    """Build the static profile of one instruction word."""
    profile = WordProfile(uses_memory=word.uses_memory)
    zero_tested = set()
    alu_dsts = set()
    move_dsts = set()
    targets = []
    for piece in word.pieces:
        if isinstance(piece, Noop):
            profile.noops += 1
            profile.ops["nop"] += 1
            continue
        profile.pieces += 1
        if isinstance(piece, Alu):
            profile.ops[piece.op.value] += 1
            if piece.op is AluOp.MOV:
                move_dsts.add(piece.dst.number)
            else:
                alu_dsts.add(piece.dst.number)
        elif isinstance(piece, MovImm):
            profile.ops["movi"] += 1
            move_dsts.add(piece.dst.number)
        elif isinstance(piece, LoadImm):
            profile.ops["lim"] += 1
            move_dsts.add(piece.dst.number)
        elif isinstance(piece, SetCond):
            profile.ops[f"set-{piece.cond.value}"] += 1
            profile.setconds += 1
        elif isinstance(piece, CompareBranch):
            profile.ops[f"cbr-{piece.cond.value}"] += 1
            profile.compares += 1
            tested = _zero_tested_reg(piece)
            if tested is not None:
                zero_tested.add(tested)
            if isinstance(piece.target, int):
                targets.append(piece.target)
        elif isinstance(piece, Jump):
            profile.ops["jump"] += 1
            if isinstance(piece.target, int):
                targets.append(piece.target)
        elif isinstance(piece, JumpIndirect):
            profile.ops["jumpi"] += 1
        elif isinstance(piece, Load):
            profile.ops["load"] += 1
            move_dsts.add(piece.dst.number)
        elif isinstance(piece, Store):
            profile.ops["store"] += 1
        elif isinstance(piece, Trap):
            profile.ops["trap"] += 1
        elif isinstance(piece, Rfs):
            profile.ops["rfs"] += 1
        elif isinstance(piece, ReadSpecial):
            profile.ops["rdspecial"] += 1
        elif isinstance(piece, WriteSpecial):
            profile.ops["wrspecial"] += 1
        else:  # pragma: no cover - decode produces no other piece types
            profile.ops["other"] += 1
        for value in _imm_operands(piece):
            profile.imm[classify_constant(value)] += 1
    profile.zero_tested = frozenset(zero_tested)
    profile.alu_dsts = frozenset(alu_dsts)
    profile.move_dsts = frozenset(move_dsts)
    profile.targets = tuple(targets)
    return profile


def _pct(numerator: float, denominator: float) -> float:
    return round(100.0 * numerator / denominator, 2) if denominator else 0.0


def collect(
    cpu,
    *,
    profiler=None,
    pagemap=None,
    dma=None,
) -> Dict[str, Dict[str, object]]:
    """Sample every counter group from a CPU (and optional system parts).

    ``profiler`` defaults to ``cpu.profiler``; the per-PC-derived groups
    (``mix``, ``immediates``, ``control``) need one attached *before*
    the run and come back empty otherwise.  Words are resolved through
    the CPU's decode cache, which holds the current word at every
    executed address (self-modified addresses report their final form).
    """
    profiler = profiler if profiler is not None else cpu.profiler
    stats = cpu.stats

    counts: Dict[int, int] = dict(profiler.counts) if profiler is not None else {}
    profiles: Dict[int, WordProfile] = {}
    for pc in counts:
        cached = cpu._decode_cache.get(pc)
        if cached is not None:
            profiles[pc] = classify_word(cached[1])

    mix: Counter = Counter()
    imm: Counter = Counter()
    branch_targets = set()
    for pc, profile in profiles.items():
        c = counts[pc]
        for op, n in profile.ops.items():
            mix[op] += n * c
        for bucket, n in profile.imm.items():
            imm[bucket] += n * c
        branch_targets.update(profile.targets)

    # Table 3's question, asked of the *executed* stream: how many
    # compare pieces test, against zero, a register the immediately
    # preceding word's ALU operator (or move/load) just wrote -- on a
    # CC machine the flags would already hold the answer.  Words that
    # are direct branch targets join control flow from elsewhere, so
    # their compares are never counted as saved.
    compares_executed = 0
    saved_by_operators = 0
    saved_by_moves = 0
    for pc, profile in profiles.items():
        c = counts[pc]
        compares_executed += profile.compares * c
        if not profile.zero_tested or pc in branch_targets:
            continue
        previous = profiles.get(pc - 1)
        if previous is None:
            continue
        if profile.zero_tested & previous.alu_dsts:
            saved_by_operators += c
        elif profile.zero_tested & previous.move_dsts:
            saved_by_moves += c

    imm_total = sum(imm.values())
    imm4 = sum(
        imm.get(bucket, 0)
        for bucket in (
            ConstantClass.ZERO,
            ConstantClass.ONE,
            ConstantClass.TWO,
            ConstantClass.SMALL,
        )
    )
    movi = imm4 + imm.get(ConstantClass.BYTE, 0)

    mem_stats = getattr(getattr(cpu, "memory", None), "stats", None)
    phys = getattr(cpu.memory, "physical", None)
    if mem_stats is None and phys is not None:
        mem_stats = getattr(phys, "stats", None)

    groups: Dict[str, Dict[str, object]] = {
        "pipeline": {
            "cycles": stats.cycles,
            "words": stats.words,
            "pieces": stats.pieces,
            "noops": stats.noops,
            "pieces_per_word": round(stats.pieces / stats.words, 3) if stats.words else 0.0,
            "load_stalls": stats.load_stalls,
            "branch_flush_cycles": stats.branch_flush_cycles,
            "exceptions": stats.exceptions,
        },
        "mix": {op: mix[op] for op in sorted(mix)},
        "immediates": {
            **{bucket.value: imm.get(bucket, 0) for bucket in TABLE1_ROWS},
            "total": imm_total,
            "imm4_coverage_pct": _pct(imm4, imm_total),
            "movi_coverage_pct": _pct(movi, imm_total),
        },
        "control": {
            "branches": stats.branches,
            "branches_taken": stats.branches_taken,
            "taken_pct": _pct(stats.branches_taken, stats.branches),
            "compares_executed": compares_executed,
            "setconds_executed": sum(
                profiles[pc].setconds * counts[pc] for pc in profiles
            ),
            "cc_saved_by_operators": saved_by_operators,
            "cc_saved_by_moves": saved_by_moves,
            "cc_savings_operators_pct": _pct(saved_by_operators, compares_executed),
            "cc_savings_with_moves_pct": _pct(
                saved_by_operators + saved_by_moves, compares_executed
            ),
        },
        "memory": {
            "loads": stats.loads,
            "stores": stats.stores,
            "memory_cycles_used": stats.memory_cycles_used,
            "free_memory_cycles": stats.free_memory_cycles,
            "free_cycle_pct": _pct(stats.free_memory_cycles, stats.words),
            "fetches": mem_stats.fetches if mem_stats is not None else 0,
            "data_reads": mem_stats.reads if mem_stats is not None else 0,
            "data_writes": mem_stats.writes if mem_stats is not None else 0,
        },
        "system": {
            "pagemap_translations": pagemap.stats.translations if pagemap else 0,
            "pagemap_faults": pagemap.stats.faults if pagemap else 0,
            "pagemap_victims_suggested": pagemap.stats.victims_suggested if pagemap else 0,
            "dma_words_moved": dma.words_moved if dma else 0,
            "dma_cycles_used": dma.cycles_used if dma else 0,
            "dma_cycles_offered": dma.cycles_offered if dma else 0,
        },
    }

    engine = cpu._fastpath
    groups["engine"] = {
        "fastpath_compiles": engine.stats.compiles if engine else 0,
        "fastpath_fallbacks": engine.stats.fallbacks if engine else 0,
        "fastpath_bails": engine.stats.bails if engine else 0,
        "fastpath_invalidations": engine.stats.invalidations if engine else 0,
        "fastpath_bursts": engine.stats.bursts if engine else 0,
        # dispatch accounting and the superblock (JIT) tier; the whole
        # group stays volatile because the reference stepper has no
        # analogue, but each counter is deterministic per workload --
        # the CI dispatch-floor gate keys on them
        "word_dispatches": engine.stats.word_dispatches if engine else 0,
        "ref_steps": engine.stats.ref_steps if engine else 0,
        "block_compiles": engine.stats.block_compiles if engine else 0,
        "block_entries": engine.stats.block_entries if engine else 0,
        "block_bails": engine.stats.block_bails if engine else 0,
        "block_invalidations": engine.stats.block_invalidations if engine else 0,
        "fused_words": engine.stats.fused_words if engine else 0,
    }
    return groups


def collect_for(target) -> Dict[str, Dict[str, object]]:
    """Counter groups for a Machine or Kernel (duck-typed system parts)."""
    return collect(
        target.cpu,
        pagemap=getattr(target, "pagemap", None),
        dma=getattr(target, "dma", None),
    )


def stable_groups(groups: Dict[str, Dict[str, object]]) -> Dict[str, Dict[str, object]]:
    """The engine-identical subset (drops :data:`VOLATILE_GROUPS`)."""
    return {name: dict(values) for name, values in groups.items() if name not in VOLATILE_GROUPS}


def merge_groups(
    all_groups: Iterable[Dict[str, Dict[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Sum counter groups across runs, recomputing the derived ratios.

    Used by corpus-wide profiling: per-workload groups shard over farm
    workers, and the merge of the shards equals the merge of a serial
    run because summation is order-independent.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for groups in all_groups:
        for name, values in groups.items():
            bucket = merged.setdefault(name, {})
            for key, value in values.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                bucket[key] = bucket.get(key, 0) + value
    # re-derive every ratio from the merged integer counters
    pipeline = merged.get("pipeline", {})
    if pipeline.get("words"):
        pipeline["pieces_per_word"] = round(pipeline.get("pieces", 0) / pipeline["words"], 3)
    immediates = merged.get("immediates", {})
    if "total" in immediates:
        imm4 = sum(
            immediates.get(b.value, 0)
            for b in (ConstantClass.ZERO, ConstantClass.ONE, ConstantClass.TWO, ConstantClass.SMALL)
        )
        movi = imm4 + immediates.get(ConstantClass.BYTE.value, 0)
        immediates["imm4_coverage_pct"] = _pct(imm4, immediates["total"])
        immediates["movi_coverage_pct"] = _pct(movi, immediates["total"])
    control = merged.get("control", {})
    if control:
        control["taken_pct"] = _pct(control.get("branches_taken", 0), control.get("branches", 0))
        control["cc_savings_operators_pct"] = _pct(
            control.get("cc_saved_by_operators", 0), control.get("compares_executed", 0)
        )
        control["cc_savings_with_moves_pct"] = _pct(
            control.get("cc_saved_by_operators", 0) + control.get("cc_saved_by_moves", 0),
            control.get("compares_executed", 0),
        )
    memory = merged.get("memory", {})
    if "free_memory_cycles" in memory and pipeline.get("words"):
        memory["free_cycle_pct"] = _pct(memory["free_memory_cycles"], pipeline["words"])
    return {name: dict(values) for name, values in merged.items()}
