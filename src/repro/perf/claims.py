"""Live validation of the paper's measured claims.

The paper's argument is empirical; these checks re-ask its questions of
the *live* counters on every CI run, so a simulator or compiler change
that drifts the reproduction off the paper's numbers fails loudly
instead of rotting silently.

Band semantics -- each claim is a **floor or ceiling, not a containment
interval**, because our dynamic measurements legitimately exceed the
paper's static ones (documented deviation, see EXPERIMENTS.md):

* *Table 1 constants*: the paper's 68.7% imm4 / 95.5% movi coverage is
  a static count over emitted code; executed streams concentrate in hot
  loops full of tiny constants, so dynamic coverage lands higher
  (~98%/~99.5% on the shipped corpus).  The paper numbers act as
  floors -- falling below them would mean the literal encodings stopped
  paying off even under the favourable dynamic weighting.
* *Free memory cycles* (section 3.1, "came close to 40%"): the paper's
  35-45% band is a floor.  Register allocation keeps operands out of
  memory, so the reproduction idles 57-96% of data-memory slots
  per program (~90% aggregate); dropping below the paper's own band
  would signal an accounting or codegen regression.
* *Table 3 condition codes*: savings from setting codes on operators is
  a ceiling (<= 2%) -- the paper's argument is that CC hardware buys
  almost nothing, and that must stay true dynamically (1.53% measured
  aggregate, 2.1% static with moves included).

Aggregation is corpus-wide (summed counters, then the ratio), matching
how the paper reports each table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

# floors/ceilings on the corpus-aggregate dynamic counters
IMM4_COVERAGE_FLOOR = 68.7     # Table 1: 4-bit literal static coverage
MOVI_COVERAGE_FLOOR = 95.5     # Table 1: +8-bit move-immediate coverage
FREE_CYCLE_FLOOR = 35.0        # section 3.1: low edge of the ~40% band
CC_SAVINGS_CEILING = 2.0       # Table 3: CCs on operators save ~1-2%


@dataclass(frozen=True)
class ClaimResult:
    name: str
    description: str
    measured: float
    bound: float
    kind: str            # "floor" | "ceiling"
    ok: bool

    def render(self) -> str:
        op = ">=" if self.kind == "floor" else "<="
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.name}: measured {self.measured:.2f}% "
            f"(claim: {op} {self.bound:.2f}%) -- {self.description}"
        )


def _floor(name: str, description: str, measured: float, bound: float) -> ClaimResult:
    return ClaimResult(name, description, measured, bound, "floor", measured >= bound)


def _ceiling(name: str, description: str, measured: float, bound: float) -> ClaimResult:
    return ClaimResult(name, description, measured, bound, "ceiling", measured <= bound)


def validate(merged_groups: Dict[str, Dict[str, object]]) -> List[ClaimResult]:
    """Check corpus-aggregate counter groups against the paper's bands."""
    immediates = merged_groups.get("immediates", {})
    control = merged_groups.get("control", {})
    memory = merged_groups.get("memory", {})
    return [
        _floor(
            "table1-imm4",
            "Table 1: constants reachable by the 4-bit literal",
            float(immediates.get("imm4_coverage_pct", 0.0)),
            IMM4_COVERAGE_FLOOR,
        ),
        _floor(
            "table1-movi",
            "Table 1: constants reachable with the 8-bit move immediate",
            float(immediates.get("movi_coverage_pct", 0.0)),
            MOVI_COVERAGE_FLOOR,
        ),
        _floor(
            "free-cycles",
            "section 3.1: data-memory bandwidth left free for DMA",
            float(memory.get("free_cycle_pct", 0.0)),
            FREE_CYCLE_FLOOR,
        ),
        _ceiling(
            "table3-cc",
            "Table 3: compares a condition code on operators would save",
            float(control.get("cc_savings_operators_pct", 100.0)),
            CC_SAVINGS_CEILING,
        ),
    ]


def render(results: Sequence[ClaimResult]) -> str:
    lines = [result.render() for result in results]
    failed = [result for result in results if not result.ok]
    lines.append(
        "all paper claims hold"
        if not failed
        else f"{len(failed)} claim(s) out of band: " + ", ".join(r.name for r in failed)
    )
    return "\n".join(lines) + "\n"


def all_ok(results: Sequence[ClaimResult]) -> bool:
    return all(result.ok for result in results)
