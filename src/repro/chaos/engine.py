"""The injection engine: drive a target along a plan, deterministically.

The engine never installs per-step hooks.  It paces execution with the
targets' resumable ``run_steps`` primitive (:class:`~repro.sim.machine.
Machine` and :class:`~repro.system.kernel.Kernel` both provide one),
pausing at the exact ``cpu.stats.words`` boundary each injection names,
applying the fault, and resuming.  Because fast-path and precise
execution count words identically, the same plan lands every injection
on the same architectural state under either engine -- which is what
makes the fastpath-vs-precise differential meaningful *under* injection,
not just on clean runs.

Outcomes are part of the record, not exceptions: a double fault becomes
``outcome="panic"`` with the structured PANIC record, an unhandled
machine fault becomes ``outcome="fault"``, a runaway (e.g. a bit flip
that destroyed a loop bound) becomes ``outcome="step-budget"``.  All of
them are deterministic and reproduce from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..farm.worker import fingerprint_digest
from ..sim.faults import KernelPanic, MachineFault, OverflowTrap
from .invariants import RecoveryContractChecker
from .plan import ChaosPlan, Injection, apply_rng

#: injections that walk forward to reach the right machine mode get a
#: bounded window; running past it records a skip, never hangs the run
WALK_LIMIT = 30_000


@dataclass
class ChaosRun:
    """Everything one plan execution produced."""

    outcome: str                       # halted | panic | fault | step-budget
    records: List[Dict[str, Any]]      # one per injection, in plan order
    final: Dict[str, Any]              # end-of-run state summary
    violations: List[Dict[str, Any]]   # recovery-contract violations
    victims: List[int]                 # pids deliberately killed by refaults
    outputs: Dict[str, List[int]] = field(default_factory=dict)


def _physical(target):
    """The physical memory behind a Machine or a Kernel."""
    return getattr(target, "physical", None) or target.memory


def _collect_outputs(target) -> Dict[str, List[int]]:
    if hasattr(target, "processes"):  # Kernel
        return {str(pid): list(target.output(pid)) for pid in range(len(target.processes))}
    return {"0": list(target.output)}


def _drive_to(target, boundary: int, fast: bool, jit: bool = False) -> None:
    cpu = target.cpu
    while not target.halted and cpu.stats.words < boundary:
        target.run_steps(boundary - cpu.stats.words, fast=fast, jit=jit)


def _walk_until(target, fast: bool, predicate, jit: bool = False) -> bool:
    """Single-step until ``predicate(cpu)``; False if the window closed."""
    cpu = target.cpu
    for _ in range(WALK_LIMIT):
        if predicate(cpu):
            return True
        if target.halted:
            return False
        target.run_steps(1, fast=fast, jit=jit)
    return False


def run_plan(
    target,
    plan: ChaosPlan,
    *,
    fast: bool = True,
    jit: bool = False,
    max_steps: int = 2_000_000,
) -> ChaosRun:
    """Execute ``target`` under ``plan``; returns the full run record.

    ``target`` must be freshly constructed (the plan's step numbers are
    absolute word counts from reset).  ``jit=True`` layers superblock
    fusion on the fast path; every record stays bit-identical, which the
    jit-differential campaigns assert.
    """
    cpu = target.cpu
    checker = RecoveryContractChecker()
    checker.install(cpu)
    records: List[Dict[str, Any]] = []
    victims: List[int] = []
    outcome = "halted"
    panic: Optional[Dict[str, Any]] = None
    fault_info: Optional[Dict[str, Any]] = None
    try:
        for index, inj in enumerate(plan.injections):
            _drive_to(target, min(inj.step, max_steps), fast, jit)
            record = {
                "index": index,
                "step": inj.step,
                "kind": inj.kind,
                "params": dict(inj.params),
            }
            if target.halted or cpu.stats.words >= max_steps:
                record["outcome"] = "not-reached"
                records.append(record)
                continue
            try:
                record["detail"] = _apply(target, plan, index, inj, fast, victims, jit)
                record["outcome"] = "applied"
            except KernelPanic as exc:
                record["detail"] = {"panic": exc.record()}
                record["outcome"] = "panic"
                records.append(record)
                raise
            record["applied_at"] = cpu.stats.words
            record["digest"] = fingerprint_digest(cpu)
            records.append(record)
        _drive_to(target, max_steps, fast, jit)
        if not target.halted:
            outcome = "step-budget"
    except KernelPanic as exc:
        outcome = "panic"
        panic = exc.record()
    except MachineFault as exc:
        outcome = "fault"
        fault_info = {
            "type": type(exc).__name__,
            "cause": exc.cause.name,
            "minor": exc.minor,
            "message": str(exc),
        }
    final = {
        "outcome": outcome,
        "words": cpu.stats.words,
        "cycles": cpu.stats.cycles,
        "exceptions": cpu.stats.exceptions,
        "digest": fingerprint_digest(cpu),
        "panic": panic,
        "fault": fault_info,
        "faults_observed": checker.observed,
    }
    return ChaosRun(
        outcome=outcome,
        records=records,
        final=final,
        violations=list(checker.violations),
        victims=victims,
        outputs=_collect_outputs(target),
    )


# ---------------------------------------------------------------------------
# injection application
# ---------------------------------------------------------------------------


def _apply(target, plan, index: int, inj: Injection, fast: bool, victims: List[int], jit: bool = False):
    cpu = target.cpu
    rng = apply_rng(plan.seed, index)
    kind = inj.kind

    if kind == "reg-flip":
        reg = inj.param("reg")
        bit = inj.param("bit")
        before = cpu.regs[reg]
        cpu.regs[reg] = before ^ (1 << bit)
        return {"reg": reg, "bit": bit, "before": before, "after": cpu.regs[reg]}

    if kind == "mem-flip":
        mem = _physical(target)
        addr = inj.param("addr")
        bit = inj.param("bit")
        before = mem.peek(addr)
        mem.poke(addr, before ^ (1 << bit))  # poke fires the fastpath watch hook
        return {"addr": addr, "bit": bit, "before": before, "after": mem.peek(addr)}

    if kind == "spurious-int":
        cpu.interrupt_line = True  # no source raised: the controller must
        return {}                  # answer INT_NONE and the kernel just return

    if kind == "int-burst":
        from ..system.devices import INT_TIMER

        count = inj.param("count", 4)
        for _ in range(count):  # duplicates coalesce, as in the controller
            target.interrupts.raise_source(INT_TIMER)
        cpu.interrupt_line = True
        return {"count": count, "pending": list(target.interrupts.pending)}

    if kind == "pagemap-drop":
        pm = target.pagemap
        clean = sorted(p for p in pm.entries if not pm.dirty.get(p, False))
        if not clean:
            return {"skipped": "no clean page mapped"}
        page = clean[rng.randrange(len(clean))]
        frame = pm.entries[page]
        pm.unmap_page(page)
        return {"page": page, "frame": frame, "clean_candidates": len(clean)}

    if kind == "dma-corrupt":
        return _apply_dma_corrupt(target, inj, rng)

    if kind == "timer-stall":
        duration = inj.param("duration")
        target._timer_stall_until = cpu.stats.words + duration
        return {"duration": duration, "until": target._timer_stall_until}

    if kind == "refault":
        # deliver at a recoverable boundary: outside any handler window
        if not _walk_until(target, fast, lambda c: not c.in_exception, jit):
            return {"skipped": "no recoverable boundary before halt"}
        victim = _current_pid(target)
        if victim is not None:
            victims.append(victim)
        cpu._take_fault(OverflowTrap("chaos: injected overflow"))
        return {"victim": victim}

    if kind == "kernel-refault":
        # deliver *inside* the exception path: this is the double fault
        if not _walk_until(target, fast, lambda c: c.in_exception, jit):
            return {"skipped": "no handler window before halt"}
        cpu._take_fault(OverflowTrap("chaos: injected fault in handler"))
        raise AssertionError("double fault did not panic")  # pragma: no cover

    raise ValueError(f"unknown injection kind {kind!r}")


def _current_pid(target) -> Optional[int]:
    if not hasattr(target, "processes"):
        return None
    from ..system.kernel import KVAR_CURPID

    return target.physical.peek(KVAR_CURPID)


def _apply_dma_corrupt(target, inj: Injection, rng) -> Dict[str, Any]:
    """A free-cycle DMA transfer with a source bit flipped mid-flight.

    The contract under test: corruption stays *confined* to the transfer
    window.  Guard words on both sides of the destination must survive,
    the words moved before the flip must match the original source, and
    the words moved after must carry the flip -- the engine never
    re-reads, re-orders, or strays.
    """
    from ..system.dma import FreeCycleDma

    mem = _physical(target)
    physical = getattr(mem, "physical", mem)  # MappedMemory -> PhysicalMemory
    src = inj.param("src")
    dst = inj.param("dst")
    length = inj.param("length")
    flip_at = inj.param("flip_at")  # index within the window, > moved prefix
    bit = inj.param("bit")
    for i in range(length):
        physical.poke(src + i, (i * 2654435761 + 97) & 0xFFFFFFFF)
    guard_lo, guard_hi = physical.peek(dst - 1), physical.peek(dst + length)
    dma = FreeCycleDma(physical)
    dma.enqueue(src, dst, length)
    prefix = flip_at  # move this many words, then corrupt the source tail
    for _ in range(prefix):
        dma.offer_free_cycle()
    flipped_before = physical.peek(src + flip_at)
    physical.poke(src + flip_at, flipped_before ^ (1 << bit))
    drained = 0
    while dma.busy and drained < 4 * length:
        dma.offer_free_cycle()
        drained += 1
    confined = (
        physical.peek(dst - 1) == guard_lo
        and physical.peek(dst + length) == guard_hi
        and dma.words_moved == length
        and all(
            physical.peek(dst + i) == physical.peek(src + i) for i in range(length)
        )
    )
    return {
        "src": src,
        "dst": dst,
        "length": length,
        "flip_at": flip_at,
        "bit": bit,
        "words_moved": dma.words_moved,
        "confined": confined,
    }
