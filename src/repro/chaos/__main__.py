"""``python -m repro.chaos`` -- the mips-chaos entry point (used by CI)."""

import sys

from ..cli import chaos_main

if __name__ == "__main__":
    sys.exit(chaos_main())
