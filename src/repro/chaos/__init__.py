"""Deterministic fault injection with recovery verification.

The paper's recovery story (sections 3.2-3.3) rests on one surprise
register and a software dispatch routine; this package adversarially
proves the reproduction's kernel, fastpath bail logic, and paging/DMA
machinery actually recover under injected faults.  Everything is seeded
and byte-reproducible: ``mips-chaos run --seed N`` emits identical JSONL
records and aggregate digests on every run.
"""

from .campaigns import CAMPAIGNS, campaign_record, run_campaign, run_campaign_plan
from .engine import ChaosRun, run_plan
from .invariants import RecoveryContractChecker, check_panic_record
from .plan import ChaosPlan, Injection, injection, make_plan
from .shrink import shortest_failing_prefix

__all__ = [
    "CAMPAIGNS",
    "ChaosPlan",
    "ChaosRun",
    "Injection",
    "RecoveryContractChecker",
    "campaign_record",
    "check_panic_record",
    "injection",
    "make_plan",
    "run_campaign",
    "run_campaign_plan",
    "run_plan",
    "shortest_failing_prefix",
]
