"""The recovery contract of the paper, as runtime-checked invariants.

Section 3.2-3.3 promises that one surprise register plus software
dispatch at address zero is enough to recover from *every* exception
class.  That promise decomposes into checkable pieces, validated on
every surprise sequence the machine runs (not only injected ones):

- **forced entry state** -- the handler starts in supervisor mode with
  interrupts, mapping, and overflow traps off;
- **previous-field save** -- the pre-exception privilege/interrupt/
  mapping/overflow bits land exactly in the previous fields (what
  ``rfs`` will restore);
- **cause fields** -- the two cause fields identify the exception that
  actually happened;
- **dispatch** -- the PC is zeroed, and the three saved return
  addresses begin at the interrupted instruction ("the offending
  instruction, its successor, and then the target of the branch");
- **single-level window** -- the machine knows it is inside the
  exception path (a second fault must become a structured panic, never
  silent state loss).

The checker installs as :attr:`repro.sim.cpu.Cpu.fault_observer`, so it
costs one attribute test per *fault* and nothing per instruction --
which is what keeps the unarmed chaos overhead under the benchmark
gate's 5%.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..sim.surprise import SurpriseRegister


class RecoveryContractChecker:
    """Observes every surprise sequence; accumulates violations."""

    def __init__(self) -> None:
        self.violations: List[Dict[str, Any]] = []
        self.observed = 0

    def install(self, cpu) -> None:
        cpu.fault_observer = self.observe

    def _fail(self, check: str, detail: str, step: int) -> None:
        self.violations.append({"check": check, "detail": detail, "step": step})

    def observe(self, cpu, fault, pre_surprise: int, pre_pc: int) -> None:
        self.observed += 1
        sr = cpu.surprise
        step = cpu.stats.words
        if not sr.supervisor:
            self._fail("entry-supervisor", "handler entered at user level", step)
        if sr.interrupts_enabled:
            self._fail("entry-interrupts-off", "interrupts left enabled on entry", step)
        if sr.mapping_enabled:
            self._fail("entry-mapping-off", "mapping left enabled on entry", step)
        if sr.overflow_traps_enabled:
            self._fail("entry-overflow-off", "overflow traps left enabled on entry", step)
        # the whole transition at once: replaying enter_exception from the
        # saved pre-state must land on exactly the value the hardware made
        reference = SurpriseRegister(value=pre_surprise)
        reference.enter_exception(fault.cause, fault.minor & 0xFFF)
        if sr.value != reference.value:
            self._fail(
                "previous-field-save",
                f"surprise {sr.value:#010x} != expected {reference.value:#010x} "
                f"from pre-state {pre_surprise:#010x}",
                step,
            )
        if sr.major_cause is not fault.cause:
            self._fail(
                "major-cause",
                f"recorded {sr.major_cause.name}, fault was {fault.cause.name}",
                step,
            )
        if sr.minor_cause != (fault.minor & 0xFFF):
            self._fail(
                "minor-cause",
                f"recorded {sr.minor_cause}, fault carried {fault.minor & 0xFFF}",
                step,
            )
        if cpu.pc != 0:
            self._fail("dispatch-pc-zero", f"pc={cpu.pc} after surprise sequence", step)
        xra = list(cpu.xra)
        if len(xra) != 3:
            self._fail("xra-count", f"{len(xra)} saved return addresses", step)
        elif xra[0] != pre_pc:
            self._fail(
                "xra-resume",
                f"first return address {xra[0]} != interrupted pc {pre_pc}",
                step,
            )
        if not cpu.in_exception:
            self._fail("exception-window", "in_exception not set after entry", step)


PANIC_FIELDS = (
    "panic",
    "handling_cause",
    "handling_minor",
    "fault_cause",
    "fault_minor",
    "xra",
    "pc",
)


def check_panic_record(record: Mapping[str, Any]) -> List[str]:
    """Structural problems with a PANIC record; empty means well-formed."""
    problems = [f"missing field {field!r}" for field in PANIC_FIELDS if field not in record]
    xra = record.get("xra")
    if not problems and (not isinstance(xra, list) or len(xra) != 3):
        problems.append("xra must list the three saved return addresses")
    return problems
