"""Plan shrinking: minimize a failing plan to its shortest prefix.

When a campaign surfaces a violation, the interesting injection is
usually one of many.  :func:`shortest_failing_prefix` binary-searches
the shortest plan prefix that still reproduces the failure -- O(log n)
runs when the failure is monotone in the prefix (adding injections never
un-breaks it), with a linear fallback when it is not.  Plans are
deterministic, so the returned prefix reproduces the failure on every
rerun of the same seed.

The bisection core lives in :mod:`repro.shrink` (shared with the fuzz
subsystem's statement- and word-level shrinkers); this module is the
:class:`ChaosPlan`-typed wrapper.
"""

from __future__ import annotations

from typing import Callable

from ..shrink import shortest_failing_prefix_length
from .plan import ChaosPlan


def shortest_failing_prefix(
    plan: ChaosPlan, fails: Callable[[ChaosPlan], bool]
) -> ChaosPlan:
    """The shortest ``plan.prefix(k)`` on which ``fails`` still holds.

    ``fails(plan)`` must be True (the caller saw the failure).  The
    predicate is re-evaluated, never assumed: if binary search lands on
    a prefix that does not actually fail (a non-monotone interaction
    between injections), a linear scan finds the true shortest failing
    prefix; if even the full plan no longer fails, the full plan is
    returned unchanged.
    """
    count = len(plan.injections)
    if count == 0:
        return plan
    length = shortest_failing_prefix_length(
        count, lambda k: fails(plan.prefix(k))
    )
    return plan.prefix(length)
