"""Reproducible fault-injection plans.

A plan is pure data: a seed, a campaign name, and a sorted tuple of
:class:`Injection` records, each naming the absolute instruction-word
boundary (``cpu.stats.words``) at which it fires, the fault kind, and
its parameters.  Two runs of the same plan against the same scenario are
byte-for-byte identical -- every randomized choice is drawn from
``random.Random`` seeded by the plan (stable across Python versions),
and all runtime choices iterate ``sorted()`` views.

Kinds understood by :mod:`repro.chaos.engine`:

===============  ==========================================================
``reg-flip``     XOR one bit of one general register
``mem-flip``     XOR one bit of one physical memory word
``spurious-int`` raise the interrupt line with no pending source
``int-burst``    raise the timer source (storm pressure; duplicates
                 coalesce in the controller, as in the hardware)
``pagemap-drop`` unmap a *clean* page-map entry (forces a re-fault; the
                 demand pager must transparently reload it)
``dma-corrupt``  run a free-cycle DMA transfer with a bit flipped in its
                 source window mid-flight; corruption must stay confined
``timer-stall``  park the timer device for N words (stall/timeout)
``refault``      deliver a synthetic fault at a normal boundary (the
                 kernel kills the current process and must isolate it)
``kernel-refault`` deliver a synthetic fault *inside* a handler -- a
                 double fault; the machine must panic cleanly
===============  ==========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

KINDS = (
    "reg-flip",
    "mem-flip",
    "spurious-int",
    "int-burst",
    "pagemap-drop",
    "dma-corrupt",
    "timer-stall",
    "refault",
    "kernel-refault",
)


@dataclass(frozen=True)
class Injection:
    """One planned fault: fires at the ``step``-th executed word."""

    step: int
    kind: str
    #: sorted (key, value) pairs -- tuples so the dataclass stays hashable
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def to_dict(self) -> Dict[str, Any]:
        return {"step": self.step, "kind": self.kind, "params": dict(self.params)}


def injection(step: int, kind: str, **params: Any) -> Injection:
    if kind not in KINDS:
        raise ValueError(f"unknown injection kind {kind!r} (have {', '.join(KINDS)})")
    return Injection(step=step, kind=kind, params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class ChaosPlan:
    """A seed-reproducible injection schedule for one campaign run."""

    seed: int
    campaign: str
    injections: Tuple[Injection, ...] = ()

    def prefix(self, n: int) -> "ChaosPlan":
        """The plan truncated to its first ``n`` injections (shrinking)."""
        return ChaosPlan(self.seed, self.campaign, self.injections[:n])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "campaign": self.campaign,
            "injections": [inj.to_dict() for inj in self.injections],
        }


def make_plan(seed: int, campaign: str, injections: Iterable[Injection]) -> ChaosPlan:
    """Build a plan with its injections in canonical (step) order."""
    ordered = tuple(sorted(injections, key=lambda i: (i.step, i.kind, i.params)))
    return ChaosPlan(seed=seed, campaign=campaign, injections=ordered)


def plan_rng(seed: int) -> random.Random:
    """The generator used while *building* a plan."""
    return random.Random(seed)


def apply_rng(seed: int, index: int) -> random.Random:
    """The generator for apply-time choices of injection ``index``.

    Derived, not shared: the plan builder and every injection draw from
    independent streams, so adding a parameter to one injection can
    never perturb another's choices.
    """
    return random.Random(seed * 1_000_003 + index + 1)
