"""Shipped chaos campaigns: scenario + plan builder + expectations.

Each campaign pairs a deterministic scenario (a bare :class:`Machine`
or a full :class:`Kernel` with processes) with a seeded plan builder
and an *expectation* describing what recovery must look like:

``recovered``
    the machine still halts, and every process the chaos did not
    deliberately kill produces byte-identical output to an uninjected
    baseline run -- the paper's isolation claim, checked end to end;
``differential``
    outcomes may legitimately change (bit flips corrupt real state),
    so the contract is determinism itself: fastpath and precise
    execution must agree bit-for-bit on every record;
``panic``
    the plan ends in a double fault, and the machine must die with a
    structured PANIC record instead of silent state loss.

On top of the per-campaign expectation, every campaign checks the
recovery-contract invariants (:mod:`repro.chaos.invariants`) on every
surprise sequence, and -- when both engines run -- the full cross-engine
differential (per-injection records, final state, outputs).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..farm.worker import _json_safe, fingerprint_digest
from .engine import ChaosRun, _collect_outputs, run_plan
from .invariants import check_panic_record
from .plan import ChaosPlan, injection, make_plan, plan_rng

# ---------------------------------------------------------------------------
# scenario programs
# ---------------------------------------------------------------------------


def _counting_source(base: int, rounds: int) -> str:
    """Writes base+0 .. base+rounds-1 to the console, then exits."""
    return f"""
start:  mov #0, r8
        lim #{rounds}, r9
        lim #{base}, r2
loop:   add r2, r8, r1
        trap #1
        add r8, #1, r8
        blo r8, r9, loop
        nop
        trap #0
"""


def _paging_source(salt: int, pages: int) -> str:
    """Writes a word per page across ``pages`` pages, reads them back,
    and prints the checksum -- demand-paging pressure with a verifiable
    answer."""
    return f"""
start:  lim #4096, r10
        lim #256, r11
        movi #{salt}, r12
        mov #0, r8
        movi #{pages}, r9
wloop:  add r8, r12, r7
        st r7, 0(r10)
        add r10, r11, r10
        add r8, #1, r8
        blo r8, r9, wloop
        nop
        lim #4096, r10
        mov #0, r8
        mov #0, r7
rloop:  ld 0(r10), r6
        nop
        add r7, r6, r7
        add r10, r11, r10
        add r8, #1, r8
        blo r8, r9, rloop
        nop
        add r7, #0, r1
        trap #1
        trap #0
"""


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------


class Campaign:
    """One named chaos scenario; subclasses fill in target and plan."""

    name: str = ""
    description: str = ""
    expects: str = "recovered"
    max_steps: int = 300_000

    def make_target(self):
        raise NotImplementedError

    def build_plan(self, seed: int, baseline_steps: int) -> ChaosPlan:
        raise NotImplementedError

    def _boundaries(
        self, rng, count: int, baseline_steps: int, lo: int = 60, frac: float = 0.85
    ):
        """``count`` distinct injection boundaries inside the live run.

        ``frac`` caps the window as a fraction of the uninjected
        baseline; campaigns whose injections *shorten* the run (killed
        processes) pass a smaller fraction so late boundaries stay
        reachable.
        """
        hi = max(lo + count + 1, int(baseline_steps * frac))
        steps = set()
        while len(steps) < count:
            steps.add(rng.randrange(lo, hi))
        return sorted(steps)


class BitflipCampaign(Campaign):
    name = "bitflips"
    description = (
        "register/memory bit flips and mid-flight DMA corruption on the "
        "bare machine; contract: fastpath and precise execution stay "
        "bit-identical whatever the flips do, and DMA corruption stays "
        "confined to its window"
    )
    expects = "differential"
    max_steps = 60_000
    _ROUNDS = 300
    _DMA_SRC = 0x200000
    _DMA_DST = 0x210000

    def _program(self):
        from ..asm import assemble

        return assemble(_counting_source(1000, self._ROUNDS))

    def make_target(self):
        from ..sim.machine import Machine

        return Machine(self._program())

    def build_plan(self, seed: int, baseline_steps: int) -> ChaosPlan:
        rng = plan_rng(seed)
        code_size = self._program().code_size
        injections = []
        steps = self._boundaries(rng, 10, baseline_steps)
        for step in steps[:6]:
            injections.append(
                injection(
                    step,
                    "reg-flip",
                    reg=rng.choice([1, 6, 7, 8, 9, 10]),
                    bit=rng.randrange(0, 16),
                )
            )
        for step in steps[6:9]:
            injections.append(
                injection(
                    step,
                    "mem-flip",
                    addr=rng.randrange(0, code_size),
                    bit=rng.randrange(0, 32),
                )
            )
        length = 64
        injections.append(
            injection(
                steps[9],
                "dma-corrupt",
                src=self._DMA_SRC,
                dst=self._DMA_DST,
                length=length,
                flip_at=rng.randrange(1, length - 1),
                bit=rng.randrange(0, 32),
            )
        )
        return make_plan(seed, self.name, injections)


class _KernelCampaign(Campaign):
    """Shared scaffolding for kernel scenarios."""

    quantum = 0
    max_frames: Optional[int] = None

    def _sources(self) -> Sequence[str]:
        raise NotImplementedError

    def make_target(self):
        from ..asm import assemble
        from ..system.kernel import Kernel

        kernel = Kernel(quantum=self.quantum, max_frames=self.max_frames)
        for source in self._sources():
            kernel.add_process(assemble(source))
        kernel.boot()
        return kernel


class InterruptStormCampaign(_KernelCampaign):
    name = "interrupt-storm"
    description = (
        "spurious interrupts (no pending source) and timer bursts against "
        "a preemptive 3-process kernel; contract: every process completes "
        "with baseline output, one refault kills only its victim"
    )
    expects = "recovered"
    quantum = 300

    def _sources(self):
        return [_counting_source(base, 30) for base in (100, 200, 300)]

    def build_plan(self, seed: int, baseline_steps: int) -> ChaosPlan:
        rng = plan_rng(seed)
        steps = self._boundaries(rng, 9, baseline_steps, lo=200)
        injections = [injection(step, "spurious-int") for step in steps[:6]]
        injections += [
            injection(step, "int-burst", count=rng.randrange(2, 6)) for step in steps[6:8]
        ]
        injections.append(injection(steps[8], "refault"))
        return make_plan(seed, self.name, injections)


class PagingChaosCampaign(_KernelCampaign):
    name = "paging-chaos"
    description = (
        "clean page-map entries dropped under frame pressure (clock "
        "eviction active); contract: the demand pager transparently "
        "reloads every dropped page and all checksums match baseline"
    )
    expects = "recovered"
    quantum = 200
    # Each drop orphans its frame (the kernel's bump allocator never
    # reclaims an unmapped frame), so the pool must absorb every
    # injected drop and still leave a working set -- too few frames
    # left and code/data pages evict each other on every access.
    max_frames = 12

    def _sources(self):
        return [_paging_source(salt, 18) for salt in (17, 43)]

    def build_plan(self, seed: int, baseline_steps: int) -> ChaosPlan:
        rng = plan_rng(seed)
        steps = self._boundaries(rng, 6, baseline_steps, lo=400)
        injections = [injection(step, "pagemap-drop") for step in steps[:5]]
        injections.append(injection(steps[5], "spurious-int"))
        return make_plan(seed, self.name, injections)


class NestedFaultsCampaign(_KernelCampaign):
    name = "nested-faults"
    description = (
        "synthetic re-faults at recoverable boundaries, then a fault "
        "delivered inside a handler; contract: recoverable refaults kill "
        "only the current process, the in-handler fault dies as a "
        "structured double-fault PANIC on both engines"
    )
    expects = "panic"
    quantum = 300

    def _sources(self):
        return [_counting_source(base, 25) for base in (100, 200, 300, 400)]

    def build_plan(self, seed: int, baseline_steps: int) -> ChaosPlan:
        rng = plan_rng(seed)
        # Two of the four processes may die to the refaults, so the run
        # can finish in roughly half the baseline steps; keep every
        # boundary inside that worst case so the final kernel-refault
        # always lands before the halt.
        steps = self._boundaries(rng, 3, baseline_steps, lo=300, frac=0.4)
        injections = [injection(step, "refault") for step in steps[:2]]
        injections.append(injection(steps[2], "kernel-refault"))
        return make_plan(seed, self.name, injections)


class DeviceStallCampaign(_KernelCampaign):
    name = "device-stall"
    description = (
        "the timer device parks for hundreds of words (stall/timeout); "
        "contract: preemption resumes after the stall and every process "
        "still completes with baseline output"
    )
    expects = "recovered"
    quantum = 250

    def _sources(self):
        return [_counting_source(base, 30) for base in (100, 200, 300)]

    def build_plan(self, seed: int, baseline_steps: int) -> ChaosPlan:
        rng = plan_rng(seed)
        steps = self._boundaries(rng, 2, baseline_steps, lo=150)
        injections = [
            injection(step, "timer-stall", duration=rng.randrange(400, 2500))
            for step in steps
        ]
        return make_plan(seed, self.name, injections)


CAMPAIGNS: Dict[str, Campaign] = {
    campaign.name: campaign
    for campaign in (
        BitflipCampaign(),
        InterruptStormCampaign(),
        PagingChaosCampaign(),
        NestedFaultsCampaign(),
        DeviceStallCampaign(),
    )
}


# ---------------------------------------------------------------------------
# running
# ---------------------------------------------------------------------------


def _baseline(campaign: Campaign) -> Dict[str, Any]:
    target = campaign.make_target()
    target.run_steps(campaign.max_steps, fast=True)
    if not target.halted:
        raise RuntimeError(
            f"campaign {campaign.name!r} baseline did not halt within "
            f"{campaign.max_steps} steps"
        )
    return {
        "steps": target.cpu.stats.words,
        "outputs": _collect_outputs(target),
        "digest": fingerprint_digest(target.cpu),
    }


def _run_digest(payload: Any) -> str:
    canonical = json.dumps(_json_safe(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run_campaign_plan(
    campaign: Campaign,
    plan: ChaosPlan,
    engines: Sequence[str] = ("fast", "precise"),
    baseline: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one plan on one campaign scenario; returns the summary dict.

    The summary is pure data with no volatile fields: the same campaign,
    seed, and engine set produce a byte-identical summary (and digest)
    on every run.
    """
    if baseline is None:
        baseline = _baseline(campaign)
    runs: Dict[str, ChaosRun] = {}
    for engine_name in engines:
        target = campaign.make_target()
        runs[engine_name] = run_plan(
            target,
            plan,
            fast=(engine_name != "precise"),
            jit=(engine_name == "jit"),
            max_steps=campaign.max_steps,
        )
    violations: List[Dict[str, Any]] = []
    for engine_name in sorted(runs):
        run = runs[engine_name]
        for violation in run.violations:
            violations.append(dict(violation, engine=engine_name))
        for record in run.records:
            detail = record.get("detail") or {}
            if detail.get("confined") is False:
                violations.append(
                    {
                        "check": "dma-confinement",
                        "detail": "DMA corruption escaped its transfer window",
                        "step": record["step"],
                        "engine": engine_name,
                    }
                )
        if campaign.expects == "panic":
            if run.outcome != "panic":
                violations.append(
                    {
                        "check": "expected-panic",
                        "detail": f"run ended {run.outcome!r}, not in a double-fault panic",
                        "step": run.final["words"],
                        "engine": engine_name,
                    }
                )
            else:
                for problem in check_panic_record(run.final["panic"]):
                    violations.append(
                        {
                            "check": "panic-record",
                            "detail": problem,
                            "step": run.final["words"],
                            "engine": engine_name,
                        }
                    )
        elif campaign.expects == "recovered":
            if run.outcome != "halted":
                violations.append(
                    {
                        "check": "recovery-completion",
                        "detail": f"machine did not halt (outcome {run.outcome!r})",
                        "step": run.final["words"],
                        "engine": engine_name,
                    }
                )
            victims = set(run.victims)
            for pid, expected in sorted(baseline["outputs"].items()):
                if int(pid) in victims:
                    continue
                if run.outputs.get(pid) != expected:
                    violations.append(
                        {
                            "check": "process-isolation",
                            "detail": f"pid {pid} output diverged from the uninjected baseline",
                            "step": run.final["words"],
                            "engine": engine_name,
                        }
                    )
    ordered = [name for name in ("fast", "precise", "jit") if name in runs]
    for i, left_name in enumerate(ordered):
        for right_name in ordered[i + 1:]:
            left, right = runs[left_name], runs[right_name]
            for check, matched in (
                ("differential-records", left.records == right.records),
                ("differential-final", left.final == right.final),
                ("differential-outputs", left.outputs == right.outputs),
            ):
                if not matched:
                    violations.append(
                        {
                            "check": check,
                            "detail": (
                                f"{left_name} and {right_name} runs diverged "
                                "under identical injections"
                            ),
                            "step": -1,
                            "engine": f"{left_name}+{right_name}",
                        }
                    )
    engine_summaries = {
        engine_name: {
            "outcome": run.outcome,
            "records": run.records,
            "final": run.final,
            "victims": run.victims,
            "outputs": run.outputs,
        }
        for engine_name, run in sorted(runs.items())
    }
    summary = {
        "campaign": campaign.name,
        "seed": plan.seed,
        "expects": campaign.expects,
        "plan": plan.to_dict(),
        "baseline": baseline,
        "engines": engine_summaries,
        "violations": violations,
    }
    summary["digest"] = _run_digest(summary)
    return summary


def run_campaign(
    name: str,
    seed: int,
    engines: Sequence[str] = ("fast", "precise"),
) -> Dict[str, Any]:
    """Build the seeded plan for campaign ``name`` and run it."""
    if name not in CAMPAIGNS:
        raise KeyError(f"unknown campaign {name!r} (have {', '.join(sorted(CAMPAIGNS))})")
    campaign = CAMPAIGNS[name]
    baseline = _baseline(campaign)
    plan = campaign.build_plan(seed, baseline["steps"])
    return run_campaign_plan(campaign, plan, engines=engines, baseline=baseline)


def campaign_record(summary: Mapping[str, Any]) -> Dict[str, Any]:
    """A farm-style result record for a campaign summary.

    Matches the worker record envelope so chaos results flow through
    :class:`~repro.farm.store.ResultStore` and ``aggregate`` unchanged.
    All fields are run-invariant (``wall_s`` pinned to 0.0), so chaos
    JSONL files byte-compare equal across reruns of the same seed.
    """
    engines = summary["engines"]
    first = engines[sorted(engines)[0]]
    failed = bool(summary["violations"])
    return {
        "key": f"chaos-{summary['campaign']}-{summary['seed']}",
        "kind": "chaos",
        "name": f"{summary['campaign']}@{summary['seed']}",
        "status": "error" if failed else "ok",
        "attempt": 1,
        "cycles": first["final"]["cycles"],
        "words": first["final"]["words"],
        "stats": None,
        "fingerprint": first["final"]["digest"],
        "output": [],
        "output_text": "",
        "rendered": None,
        "wall_s": 0.0,
        "error": (
            {
                "type": "InvariantViolation",
                "message": f"{len(summary['violations'])} recovery-contract violations",
            }
            if failed
            else None
        ),
        "retryable": False,
        "extra": {"chaos": dict(summary)},
        "payload": None,
    }
