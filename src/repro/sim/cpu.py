"""The processor core: functional execution + pipeline timing.

The modeled pipeline is the paper's five-stage, interlock-free design:

- every instruction word occupies exactly five stages and issues one per
  cycle, so in steady state **cycles == words executed** (plus the
  stalls that only the *interlocked* comparison mode charges);
- ALU results are fully bypassed (available to the next word);
- a **load** result is *not* available to the immediately following
  word: there is one load delay slot, and nothing enforces it -- in
  ``BARE`` mode the next word really reads the stale register value,
  exactly as the hardware would (section 4.2.1: there are *no* hardware
  interlocks);
- direct branches/jumps are **delayed** by one instruction, indirect
  jumps by two; the delay-slot instructions always execute;
- a memory-referencing word commits *no* register writes until its
  memory reference has committed, which is what makes faulting
  instructions restartable (section 3.3).

Hazard modes:

``BARE``
    Faithful hardware semantics.  Mis-scheduled code silently reads
    stale values.
``CHECKED``
    Like bare, but raises :class:`HazardViolation` when code reads a
    register in its load delay slot -- used to validate the reorganizer.
``INTERLOCKED``
    The hypothetical hardware-interlock machine the paper argues
    against: load-use stalls one cycle (with forwarding), and taken
    branches squash their delay slots, costing the full branch delay.
    Used for the hardware-vs-software ablation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.bits import u32
from ..isa.encoding import decode
from ..isa.operations import AluOp, alu_evaluate, alu_insert_byte, alu_overflows, compare
from ..isa.pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    Operand,
    ReadSpecial,
    Rfs,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from ..isa.registers import NUM_REGISTERS, RA, SpecialReg
from ..isa.words import InstructionWord
from .faults import (
    HazardViolation,
    IllegalInstruction,
    InterruptRequest,
    KernelPanic,
    MachineFault,
    OverflowTrap,
    PageFault,
    PrivilegeViolation,
    TrapInstruction,
)
from .memory import MemorySystem, PhysicalMemory
from .surprise import SurpriseRegister


class HazardMode(Enum):
    BARE = "bare"
    CHECKED = "checked"
    INTERLOCKED = "interlocked"


@dataclass
class CpuStats:
    """Execution statistics.

    ``free_memory_cycles`` counts executed words whose data-memory slot
    went unused -- the bandwidth the paper's *free memory cycle* pin
    exports for DMA and cache write-backs (section 3.1).
    """

    cycles: int = 0
    words: int = 0
    pieces: int = 0
    noops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branches_taken: int = 0
    memory_cycles_used: int = 0
    free_memory_cycles: int = 0
    load_stalls: int = 0
    branch_flush_cycles: int = 0
    exceptions: int = 0
    ref_notes: Counter = field(default_factory=Counter)

    @property
    def free_cycle_fraction(self) -> float:
        """Fraction of data-memory bandwidth left free."""
        if self.words == 0:
            return 0.0
        return self.free_memory_cycles / self.words


class Cpu:
    """The processor.  See the module docstring for the pipeline model."""

    def __init__(
        self,
        memory: Optional[MemorySystem] = None,
        hazard_mode: HazardMode = HazardMode.BARE,
        vectored_exceptions: bool = False,
    ):
        self.memory: MemorySystem = memory if memory is not None else PhysicalMemory()
        self.hazard_mode = hazard_mode
        #: when True, faults run the surprise sequence (PC := 0 in
        #: physical supervisor space); when False they propagate to the
        #: Python caller -- convenient for bare-metal program runs.
        self.vectored_exceptions = vectored_exceptions

        self.regs: List[int] = [0] * NUM_REGISTERS
        self.pc = 0
        self.lo = 0
        self.surprise = SurpriseRegister()
        #: the three exception return addresses (section 3.3)
        self.xra: List[int] = [0, 0, 0]
        #: on-chip segmentation: number of masked top bits (0..8)
        self.seg_mask = 0
        #: the process identifier inserted into masked addresses
        self.seg_pid = 0
        #: the single external interrupt line (section 3.3)
        self.interrupt_line = False

        #: optional trap intercept: ``hook(cpu, code) -> bool`` -- True
        #: means the trap was serviced outside the architecture
        #: (bare-metal runtime services); False falls through to the
        #: surprise sequence / Python caller.
        self.trap_hook: Optional[Callable[["Cpu", int], bool]] = None

        #: True between a vectored surprise sequence and the matching
        #: ``rfs`` -- the window in which a second fault is a double
        #: fault (the saved state would be overwritten, so nothing
        #: could recover; see :class:`~repro.sim.faults.KernelPanic`).
        self.in_exception = False
        #: optional observer ``(cpu, fault, pre_surprise, pre_pc)``
        #: called after every vectored surprise sequence -- the chaos
        #: invariant checker hooks it to validate the recovery contract.
        #: Costs one attribute test per *fault*, nothing per step.
        self.fault_observer: Optional[Callable[["Cpu", MachineFault, int, int], None]] = None

        self.stats = CpuStats()
        #: optional :class:`repro.perf.profiler.Profiler`.  When set,
        #: every completed word increments its per-PC count (the fast
        #: path merges burst counts into the same dicts) and faults,
        #: traps, and ``rfs`` land in its event ring.  Costs one ``is
        #: None`` test per reference step when detached.
        self.profiler = None
        self._pending_branches: List[List[int]] = []  # [countdown, target]
        self._forced_stream: List[int] = []  # pcs forced by rfs
        self._deferred_load: Dict[int, int] = {}  # reg number -> value in flight
        self._decode_cache: Dict[int, Tuple[int, InstructionWord]] = {}
        self._fastpath = None  # lazily-built FastPathEngine

    # ------------------------------------------------------------------
    # address translation (the on-chip segmentation unit, section 3.1)
    # ------------------------------------------------------------------

    @property
    def process_space_words(self) -> int:
        """Size of the current process's virtual space (65K..16M words)."""
        return 1 << (24 - self.seg_mask)

    def translate(self, addr: int) -> int:
        """Segment-check and translate a process address to a system address.

        The process sees a 32-bit space with two valid regions: half its
        allocation growing up from 0 and half growing down from 2**32
        ("one residing at the top of the program's virtual 32-bit
        address space, and the other at the bottom").  "Any attempt to
        reference a word between the two valid regions is treated as a
        page fault."  The on-chip unit masks the top bits and inserts
        the PID, yielding a 16M-word *system* virtual address, so the
        off-chip page map can hold entries for many processes at once
        without growing its tags.
        """
        addr = u32(addr)
        space = self.process_space_words
        half = space // 2
        if addr < half:
            offset = addr
        elif addr >= u32(-half):
            offset = addr - ((1 << 32) - space)
        else:
            raise PageFault(addr)
        return self.seg_pid * space + offset

    def _mem_addr(self, addr: int) -> Tuple[int, bool]:
        """(address presented to the memory system, was it mapped?)."""
        if self.surprise.mapping_enabled:
            return self.translate(addr), True
        return u32(addr), False

    def _read_mem(self, addr: int, fetch: bool = False) -> int:
        sysaddr, mapped = self._mem_addr(addr)
        return self.memory.read(
            sysaddr, supervisor=self.surprise.supervisor, fetch=fetch, mapped=mapped
        )

    def _write_mem(self, addr: int, value: int) -> None:
        sysaddr, mapped = self._mem_addr(addr)
        self.memory.write(sysaddr, value, supervisor=self.surprise.supervisor, mapped=mapped)

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------

    def read_operand(self, operand: Operand) -> int:
        if isinstance(operand, Imm):
            return operand.value
        return self.regs[operand.number]

    def _effective_address(self, piece) -> int:
        addr = piece.addr
        if isinstance(addr, Absolute):
            return addr.addr
        if isinstance(addr, Displacement):
            return u32(self.regs[addr.base.number] + addr.disp)
        if isinstance(addr, BaseIndex):
            return u32(self.regs[addr.base.number] + self.regs[addr.index.number])
        if isinstance(addr, BaseShifted):
            return self.regs[addr.base.number] >> addr.shift
        raise IllegalInstruction(f"bad address {addr!r}")

    # ------------------------------------------------------------------
    # fetch / next-pc machinery
    # ------------------------------------------------------------------

    def fetch(self, addr: int) -> InstructionWord:
        bits = self._read_mem(addr, fetch=True)
        cached = self._decode_cache.get(addr)
        if cached is not None and cached[0] == bits:
            return cached[1]
        try:
            word = decode(bits, addr)
        except MachineFault:
            raise
        except Exception as exc:
            raise IllegalInstruction(f"undecodable word at {addr}: {bits:#010x}") from exc
        self._decode_cache[addr] = (bits, word)
        return word

    def upcoming_pcs(self, n: int = 3) -> List[int]:
        """The next ``n`` instruction addresses, honoring pending branches.

        The first entry is the current PC (the not-yet-executed
        instruction) -- exactly the restart sequence an exception must
        save (section 3.3: "the offending instruction, its successor,
        and then the target of the branch").
        """
        pcs: List[int] = []
        pc = self.pc
        pending = [entry[:] for entry in self._pending_branches]
        forced = list(self._forced_stream)
        for _ in range(n):
            pcs.append(pc)
            next_pc = pc + 1
            fired = None
            for entry in pending:
                entry[0] -= 1
                if entry[0] == 0:
                    fired = entry[1]
            pending = [entry for entry in pending if entry[0] > 0]
            if fired is not None:
                next_pc = fired
                forced = []
            elif forced:
                next_pc = forced.pop(0)
            pc = next_pc
        return pcs

    def _advance_pc(self, pc: int, branch: Optional[Tuple[int, int]]) -> None:
        """Compute the next PC after executing the word at ``pc``."""
        next_pc = pc + 1
        fired: Optional[int] = None
        for entry in self._pending_branches:
            entry[0] -= 1
            if entry[0] == 0:
                fired = entry[1]
        self._pending_branches = [e for e in self._pending_branches if e[0] > 0]
        if fired is not None:
            next_pc = fired
            self._forced_stream = []
        elif self._forced_stream:
            next_pc = self._forced_stream.pop(0)

        if branch is not None:
            delay, target = branch
            if self.hazard_mode is HazardMode.INTERLOCKED:
                # hardware clears the pipe: slots squashed, delay charged
                self.stats.branch_flush_cycles += delay
                self.stats.cycles += delay
                if self.profiler is not None and delay:
                    self.profiler.charge_flush(pc, delay)
                self._pending_branches = []
                next_pc = target
            elif delay == 0:
                next_pc = target
            else:
                self._pending_branches.append([delay, target])

        self.pc = next_pc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction word (one pipeline issue)."""
        if self.interrupt_line and self.surprise.interrupts_enabled:
            self._take_fault(InterruptRequest("external interrupt"))
            return
        try:
            self._execute_at(self.pc)
        except MachineFault as fault:
            self._take_fault(fault)

    def fastpath(self) -> "FastPathEngine":
        """The threaded-code batch executor bound to this CPU (lazy).

        The engine shares all architectural state with the reference
        stepper; callers may freely interleave ``fastpath().run(...)``
        with :meth:`step` -- see :mod:`repro.sim.fastpath`.
        """
        if self._fastpath is None:
            from .fastpath import FastPathEngine

            self._fastpath = FastPathEngine(self)
        return self._fastpath

    def run(self, max_steps: int = 1_000_000) -> int:
        """Step repeatedly; returns the number of steps executed.

        With vectored exceptions the kernel handles everything and only
        the step budget stops the run; without, the first fault (or
        :class:`~repro.sim.faults.Halted` from a trap hook) propagates.
        """
        for step_index in range(max_steps):
            self.step()
        return max_steps

    def _take_fault(self, fault: MachineFault) -> None:
        """Run the surprise sequence, or surface the fault to Python."""
        self.stats.exceptions += 1
        if self.profiler is not None:
            self.profiler.record_event(
                "fault", self.stats.words, self.pc, fault.cause.name, fault.minor
            )
        if not self.vectored_exceptions:
            raise fault
        if self.in_exception:
            # a fault inside the exception path: the previous fields and
            # the saved return addresses would be overwritten, so the
            # interrupted state is unrecoverable -- double fault
            raise KernelPanic(
                self.surprise.major_cause,
                self.surprise.minor_cause,
                fault.cause,
                fault.minor & 0xFFF,
                self.xra,
                self.pc,
            )
        observer = self.fault_observer
        pre = (self.surprise.value, self.pc) if observer is not None else None
        # all logically-earlier instructions complete first: land the
        # in-flight load before saving state
        self._apply_deferred()
        self.xra = self.upcoming_pcs(3)
        self.surprise.enter_exception(fault.cause, fault.minor)
        self._pending_branches = []
        self._forced_stream = []
        # "the program counter is zeroed so that execution begins at the
        # start of the first physical page"
        self.pc = 0
        self.in_exception = True
        if observer is not None:
            observer(self, fault, pre[0], pre[1])

    def _apply_deferred(self) -> None:
        for number, value in self._deferred_load.items():
            self.regs[number] = value
        self._deferred_load = {}

    def _execute_at(self, pc: int) -> None:
        word = self.fetch(pc)

        # ---- hazard accounting against the in-flight load ---------------
        if self._deferred_load:
            conflicted = {r.number for r in word.reads()} & set(self._deferred_load)
            if conflicted:
                if self.hazard_mode is HazardMode.CHECKED:
                    raise HazardViolation(
                        f"word at {pc} reads r{sorted(conflicted)[0]} in a load "
                        f"delay slot: {word!r}"
                    )
                if self.hazard_mode is HazardMode.INTERLOCKED:
                    # one stall cycle, then forward the loaded value
                    self.stats.load_stalls += 1
                    self.stats.cycles += 1
                    if self.profiler is not None:
                        self.profiler.charge_stall(pc)
                    self._apply_deferred()

        mem_piece = word.mem
        reg_writes: Dict[int, int] = {}
        load_write: Dict[int, int] = {}
        special_writes: Dict[SpecialReg, int] = {}
        branch: Optional[Tuple[int, int]] = None
        is_rfs = False
        trap_code: Optional[int] = None

        pieces = word.pieces
        self.stats.pieces += sum(0 if isinstance(p, Noop) else 1 for p in pieces)

        # ---- evaluate from pre-state -------------------------------------
        # Fault ordering: overflow / privilege checks happen before the
        # memory reference; the memory reference commits before any
        # register write (restartability, section 3.3).
        for piece in pieces:
            if isinstance(piece, Alu):
                s1 = self.read_operand(piece.s1)
                if piece.op is AluOp.IC:
                    result = alu_insert_byte(self.lo, s1, self.regs[piece.dst.number])
                else:
                    s2 = self.read_operand(piece.s2)
                    if self.surprise.overflow_traps_enabled and alu_overflows(
                        piece.op, s1, s2
                    ):
                        raise OverflowTrap(f"overflow in {piece!r}")
                    result = alu_evaluate(piece.op, s1, s2)
                reg_writes[piece.dst.number] = result
            elif isinstance(piece, MovImm):
                reg_writes[piece.dst.number] = piece.value
            elif isinstance(piece, LoadImm):
                reg_writes[piece.dst.number] = u32(piece.value)
            elif isinstance(piece, SetCond):
                taken = compare(
                    piece.cond, self.read_operand(piece.s1), self.read_operand(piece.s2)
                )
                reg_writes[piece.dst.number] = 1 if taken else 0
            elif isinstance(piece, CompareBranch):
                self.stats.branches += 1
                taken = compare(
                    piece.cond, self.read_operand(piece.s1), self.read_operand(piece.s2)
                )
                if taken:
                    self.stats.branches_taken += 1
                    branch = (piece.delay_slots, int(piece.target))
            elif isinstance(piece, Jump):
                self.stats.branches += 1
                self.stats.branches_taken += 1
                branch = (piece.delay_slots, int(piece.target))
                if piece.link:
                    reg_writes[RA.number] = pc + 1 + piece.delay_slots
            elif isinstance(piece, JumpIndirect):
                self.stats.branches += 1
                self.stats.branches_taken += 1
                branch = (piece.delay_slots, self.regs[piece.reg.number])
                if piece.link:
                    reg_writes[RA.number] = pc + 1 + piece.delay_slots
            elif isinstance(piece, Trap):
                trap_code = piece.code
            elif isinstance(piece, Rfs):
                if not self.surprise.supervisor:
                    raise PrivilegeViolation("rfs at user level")
                is_rfs = True
            elif isinstance(piece, ReadSpecial):
                if piece.privileged and not self.surprise.supervisor:
                    raise PrivilegeViolation(f"{piece!r} at user level")
                reg_writes[piece.dst.number] = self._read_special(piece.sreg)
            elif isinstance(piece, WriteSpecial):
                if piece.privileged and not self.surprise.supervisor:
                    raise PrivilegeViolation(f"{piece!r} at user level")
                special_writes[piece.sreg] = self.read_operand(piece.src)
            elif isinstance(piece, (Load, Store)):
                pass  # the memory reference happens below
            elif isinstance(piece, Noop):
                self.stats.noops += 1
            else:
                raise IllegalInstruction(f"unexecutable piece {piece!r}")

        # ---- the memory reference (may fault; nothing written yet) -------
        if isinstance(mem_piece, Load):
            value = self._read_mem(self._effective_address(mem_piece))
            load_write[mem_piece.dst.number] = value
            self.stats.loads += 1
            if mem_piece.note:
                self.stats.ref_notes[mem_piece.note] += 1
        elif isinstance(mem_piece, Store):
            self._write_mem(
                self._effective_address(mem_piece), self.regs[mem_piece.src.number]
            )
            self.stats.stores += 1
            if mem_piece.note:
                self.stats.ref_notes[mem_piece.note] += 1

        # ---- commit --------------------------------------------------------
        # the previous word's in-flight load lands before this word's writes
        self._apply_deferred()
        for number, value in reg_writes.items():
            self.regs[number] = value
        for sreg, value in special_writes.items():
            self._write_special(sreg, value)
        if self.hazard_mode is HazardMode.INTERLOCKED:
            # forwarding hardware: the load value is usable immediately,
            # but remember it to charge the stall on next-word use
            for number, value in load_write.items():
                self.regs[number] = value
        self._deferred_load = load_write

        # ---- timing ----------------------------------------------------------
        self.stats.words += 1
        self.stats.cycles += 1
        profiler = self.profiler
        if profiler is not None:
            counts = profiler.counts
            counts[pc] = counts.get(pc, 0) + 1
        if word.uses_memory:
            self.stats.memory_cycles_used += 1
        else:
            self.stats.free_memory_cycles += 1

        # ---- control flow -----------------------------------------------------
        if is_rfs:
            if profiler is not None:
                profiler.record_event("rfs", self.stats.words, pc)
            # the return sequence drains the pipe: the in-flight load (if
            # any) lands before the first resumed instruction issues
            self._apply_deferred()
            self.surprise.restore_previous()
            self.in_exception = False
            self.pc = self.xra[0]
            self._forced_stream = [self.xra[1], self.xra[2]]
            self._pending_branches = []
            return

        self._advance_pc(pc, branch)

        if trap_code is not None:
            if profiler is not None:
                profiler.record_event("trap", self.stats.words, pc, trap_code)
            handled = self.trap_hook(self, trap_code) if self.trap_hook else False
            if not handled:
                # the trap word itself completed: the saved return stream
                # begins at the continuation (self.pc is already there)
                raise TrapInstruction(trap_code)

    # ------------------------------------------------------------------
    # special registers
    # ------------------------------------------------------------------

    def _read_special(self, sreg: SpecialReg) -> int:
        if sreg is SpecialReg.LO:
            return self.lo
        if sreg is SpecialReg.SURPRISE:
            return self.surprise.value
        if sreg is SpecialReg.SEG_MASK:
            return self.seg_mask
        if sreg is SpecialReg.SEG_PID:
            return self.seg_pid
        if sreg is SpecialReg.XRA0:
            return self.xra[0]
        if sreg is SpecialReg.XRA1:
            return self.xra[1]
        return self.xra[2]

    def _write_special(self, sreg: SpecialReg, value: int) -> None:
        value = u32(value)
        if sreg is SpecialReg.LO:
            self.lo = value
        elif sreg is SpecialReg.SURPRISE:
            self.surprise.value = value
        elif sreg is SpecialReg.SEG_MASK:
            if value > 8:
                raise IllegalInstruction(f"segment mask must be 0..8, got {value}")
            self.seg_mask = value
        elif sreg is SpecialReg.SEG_PID:
            self.seg_pid = value & ((1 << self.seg_mask) - 1) if self.seg_mask else 0
        elif sreg is SpecialReg.XRA0:
            self.xra[0] = value
        elif sreg is SpecialReg.XRA1:
            self.xra[1] = value
        else:
            self.xra[2] = value
