"""Bare-metal machine: program + CPU + memory + runtime services.

:class:`Machine` is the convenience harness used by tests, benchmarks
and examples when the full operating system of :mod:`repro.system` is
not needed.  It loads an assembled :class:`~repro.asm.program.Program`,
points the PC at its entry, gives it a stack, and services the runtime
trap conventions:

=======  =====================================================
trap     service
=======  =====================================================
``#0``   halt
``#1``   write the integer in ``r1`` to the output stream
``#2``   write the character in the low byte of ``r1``
``#3``   read an integer from the input queue into ``r1``
=======  =====================================================

Programs that need the real exception machinery (demand paging, context
switches) run under :class:`repro.system.kernel.Kernel` instead, where
traps vector through the surprise sequence.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from ..asm.program import Program
from ..isa.bits import s32
from ..isa.registers import SP
from .cpu import Cpu, CpuStats, HazardMode
from .faults import Halted
from .memory import PhysicalMemory

TRAP_HALT = 0
TRAP_WRITE_INT = 1
TRAP_WRITE_CHAR = 2
TRAP_READ_INT = 3

DEFAULT_STACK_TOP = (1 << 20) - 1


class Machine:
    """A loaded program ready to run on the bare CPU."""

    def __init__(
        self,
        program: Program,
        hazard_mode: HazardMode = HazardMode.BARE,
        memory_size: int = 1 << 22,
        stack_top: int = DEFAULT_STACK_TOP,
        inputs: Optional[Iterable[int]] = None,
    ):
        self.program = program
        self.memory = PhysicalMemory(memory_size)
        self.memory.load_image(program.memory)
        self.cpu = Cpu(self.memory, hazard_mode=hazard_mode)
        # seed the decode cache with the program's own InstructionWord
        # objects so analysis notes on Load/Store pieces survive
        for addr, word in program.instructions.items():
            self.cpu._decode_cache[addr] = (program.memory[addr], word)
        self.cpu.pc = program.entry
        self.cpu.regs[SP.number] = stack_top
        self.cpu.trap_hook = self._service_trap
        self.output: List[int] = []
        self.char_output: List[str] = []
        # a deque: trap #3 consumes from the front, and popleft is O(1)
        # where list.pop(0) shifts the whole queue
        self.inputs: Deque[int] = deque(inputs or [])
        self.halted = False

    # -- trap services -----------------------------------------------------

    def _service_trap(self, cpu: Cpu, code: int) -> bool:
        if code == TRAP_HALT:
            self.halted = True
            raise Halted()
        if code == TRAP_WRITE_INT:
            self.output.append(s32(cpu.regs[1]))
            return True
        if code == TRAP_WRITE_CHAR:
            self.char_output.append(chr(cpu.regs[1] & 0xFF))
            return True
        if code == TRAP_READ_INT:
            cpu.regs[1] = self.inputs.popleft() & 0xFFFFFFFF if self.inputs else 0
            return True
        return False

    # -- running --------------------------------------------------------------

    def run(self, max_steps: int = 5_000_000, fast: bool = True, jit: bool = False) -> CpuStats:
        """Run until the program halts (trap #0); returns CPU statistics.

        ``fast=True`` drives the threaded-code engine
        (:mod:`repro.sim.fastpath`), which batches execution and only
        falls back to the reference stepper on traps, faults, and
        interlock events -- behaviour and statistics are bit-identical
        to the per-step loop, which ``fast=False`` retains.
        ``jit=True`` additionally engages profile-guided superblock
        fusion (:mod:`repro.sim.jit`) on top of the fast path; output
        stays bit-identical across all three tiers.

        Raises :class:`TimeoutError` when the step budget is exhausted
        -- runaway programs are bugs, and tests should see them.
        """
        self.run_steps(max_steps, fast=fast, jit=jit)
        if not self.halted:
            raise TimeoutError(f"program did not halt within {max_steps} steps")
        return self.cpu.stats

    def run_steps(self, budget: int, fast: bool = True, jit: bool = False) -> int:
        """Execute at most ``budget`` instruction words; returns the count.

        Stops early on halt (trap #0), setting :attr:`halted`.  This is
        the resumable primitive under :meth:`run`; the chaos engine uses
        it to pause execution at exact step boundaries between
        injections.  Fast and precise engines count identically, so a
        given budget lands both at the same architectural state.
        """
        done = 0
        if fast:
            engine = self.cpu.fastpath()
            if jit:
                engine.enable_jit()
            while done < budget:
                try:
                    done += engine.run(budget - done)
                except Halted:
                    done += engine.last_run_steps
                    break
            return done
        while done < budget:
            try:
                self.cpu.step()
            except Halted:
                break
            done += 1
        return done

    @property
    def stats(self) -> CpuStats:
        return self.cpu.stats

    def counter_groups(self):
        """The observability counter groups for this machine's run.

        Per-PC-derived groups (mix, immediates, control) need a
        :class:`~repro.perf.profiler.Profiler` attached before running.
        """
        from ..perf.counters import collect

        return collect(self.cpu)

    @property
    def output_text(self) -> str:
        """Characters written via trap #2, as a string."""
        return "".join(self.char_output)

    def word_at(self, symbol_or_addr) -> int:
        """Read a data word by symbol name or address (signed view)."""
        addr = (
            self.program.symbol(symbol_or_addr)
            if isinstance(symbol_or_addr, str)
            else symbol_or_addr
        )
        return s32(self.memory.peek(addr))


def run_source(
    source: str,
    hazard_mode: HazardMode = HazardMode.BARE,
    inputs: Optional[Iterable[int]] = None,
    max_steps: int = 5_000_000,
) -> Machine:
    """Assemble and run assembly source; returns the finished machine."""
    from ..asm.assembler import assemble

    machine = Machine(assemble(source), hazard_mode=hazard_mode, inputs=inputs)
    machine.run(max_steps)
    return machine
