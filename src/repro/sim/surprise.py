"""The *surprise register* -- the machine's entire miscellaneous state.

Paper, section 3.2: "all the miscellaneous state of the processor is
encapsulated into a single surprise register -- the MIPS equivalent of a
processor status word.  The surprise register includes the current and
previous privilege levels, and enable bits for interrupts, overflow
traps and memory mapping.  Finally, there are two fields that specify
the exact nature of the last exception."

Bit layout (32 bits)::

    31..24   (reserved)
    23..12   minor cause (12 bits: trap code / fault detail)
    11..8    major cause (ExceptionCause)
     7       previous mapping enable
     6       previous interrupt enable
     5       previous privilege (1 = supervisor)
     4       (reserved)
     3       mapping enable
     2       overflow-trap enable
     1       interrupt enable
     0       current privilege (1 = supervisor)

On exception entry the hardware copies the *current* privilege, interrupt
and mapping bits into the *previous* fields, forces supervisor mode with
interrupts and mapping off, and loads the two cause fields.  The kernel's
return-from-exception path restores from the previous fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from .faults import ExceptionCause

_PRIV = 1 << 0
_INT_ENABLE = 1 << 1
_OVF_ENABLE = 1 << 2
_MAP_ENABLE = 1 << 3
_PREV_OVF = 1 << 4
_PREV_PRIV = 1 << 5
_PREV_INT = 1 << 6
_PREV_MAP = 1 << 7
_MAJOR_SHIFT = 8
_MAJOR_MASK = 0xF
_MINOR_SHIFT = 12
_MINOR_MASK = 0xFFF


@dataclass
class SurpriseRegister:
    """Mutable view of the surprise register with named accessors."""

    value: int = _PRIV  # machines reset into supervisor mode

    # -- current state bits -------------------------------------------------

    @property
    def supervisor(self) -> bool:
        """Current privilege level (True = supervisor)."""
        return bool(self.value & _PRIV)

    @supervisor.setter
    def supervisor(self, on: bool) -> None:
        self._set_bit(_PRIV, on)

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.value & _INT_ENABLE)

    @interrupts_enabled.setter
    def interrupts_enabled(self, on: bool) -> None:
        self._set_bit(_INT_ENABLE, on)

    @property
    def overflow_traps_enabled(self) -> bool:
        return bool(self.value & _OVF_ENABLE)

    @overflow_traps_enabled.setter
    def overflow_traps_enabled(self, on: bool) -> None:
        self._set_bit(_OVF_ENABLE, on)

    @property
    def mapping_enabled(self) -> bool:
        return bool(self.value & _MAP_ENABLE)

    @mapping_enabled.setter
    def mapping_enabled(self, on: bool) -> None:
        self._set_bit(_MAP_ENABLE, on)

    # -- previous state bits ------------------------------------------------

    @property
    def previous_supervisor(self) -> bool:
        return bool(self.value & _PREV_PRIV)

    @property
    def previous_interrupts(self) -> bool:
        return bool(self.value & _PREV_INT)

    @property
    def previous_mapping(self) -> bool:
        return bool(self.value & _PREV_MAP)

    @property
    def previous_overflow(self) -> bool:
        return bool(self.value & _PREV_OVF)

    # -- cause fields --------------------------------------------------------

    @property
    def major_cause(self) -> ExceptionCause:
        return ExceptionCause((self.value >> _MAJOR_SHIFT) & _MAJOR_MASK)

    @property
    def minor_cause(self) -> int:
        return (self.value >> _MINOR_SHIFT) & _MINOR_MASK

    # -- transitions ----------------------------------------------------------

    def enter_exception(self, cause: ExceptionCause, minor: int = 0) -> None:
        """The hardware part of the surprise sequence.

        Saves current privilege/interrupt/mapping into the previous
        fields, forces supervisor with interrupts and mapping off, and
        records the cause pair.
        """
        previous = 0
        if self.supervisor:
            previous |= _PREV_PRIV
        if self.interrupts_enabled:
            previous |= _PREV_INT
        if self.mapping_enabled:
            previous |= _PREV_MAP
        if self.overflow_traps_enabled:
            previous |= _PREV_OVF
        # the kernel runs supervisor, unmapped, interrupts and overflow
        # traps off; everything else is remembered in the previous fields
        self.value = (
            previous
            | _PRIV
            | (int(cause) & _MAJOR_MASK) << _MAJOR_SHIFT
            | (minor & _MINOR_MASK) << _MINOR_SHIFT
        )

    def restore_previous(self) -> None:
        """The return-from-exception transition: previous -> current."""
        self.supervisor = self.previous_supervisor
        self.interrupts_enabled = self.previous_interrupts
        self.mapping_enabled = self.previous_mapping
        self.overflow_traps_enabled = self.previous_overflow

    def _set_bit(self, mask: int, on: bool) -> None:
        if on:
            self.value |= mask
        else:
            self.value &= ~mask & 0xFFFFFFFF

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.supervisor:
            flags.append("sup")
        if self.interrupts_enabled:
            flags.append("int")
        if self.overflow_traps_enabled:
            flags.append("ovf")
        if self.mapping_enabled:
            flags.append("map")
        return (
            f"<surprise {'|'.join(flags) or 'user'} "
            f"cause={self.major_cause.name}/{self.minor_cause}>"
        )
