"""Profile-guided superblock fusion: the fast path's second gear.

The threaded-code tier (:mod:`repro.sim.fastpath`) already replaces
interpretation with one compiled handler per word, but the burst loop
still pays a dict lookup, an exception frame, and a per-word count
update for every executed word.  This module removes that remaining
dispatch cost for the code that matters: once a branch target's
execution count crosses the heat threshold, the straight-line run (or
loop body) rooted there is fused into a *single* generated-Python
handler -- the software analogue of macro-op fusion: same instruction
count, fewer dispatches per instruction.

Fusion rules (what keeps a block exact):

- A block starts at a compile-time-known branch target and extends
  through consecutive per-word-compilable words.  It splits *before*
  any other branch target (someone may jump into the middle), before
  any reference-stepper word (traps, specials, illegal words), at a
  page boundary, and at a length cap.
- At most one control-flow word is fused, and only together with its
  single delay slot: a direct ``Jump`` or ``CompareBranch`` whose delay
  word is itself fusable.  When the branch target is the block entry
  the generated handler iterates the loop *internally*, bounded by the
  burst budget -- zero dispatches per iteration.  ``JumpIndirect`` (two
  delay slots) is never fused.
- Each member word's body is emitted by the same
  :meth:`FastPathEngine._emit_word` emitter that builds the per-word
  handlers (name-prefixed so the bodies share one namespace), so the
  bail-before-mutation contract, hazard checks, deferred-load handling,
  and BARE-mode stale-read ordering are inherited verbatim.
- Progress protocol: the block reports words completed through the
  shared cell ``P[0]`` -- updated before every word that can bail and
  at every exit -- so the burst loop can expand the execution into
  exact per-word counts (whole passes plus a member-order prefix) and
  resume at ``pcs[P[0] % size]`` after a bail.
- Invalidation: stores inside a block already run the per-word
  ``FPCS``/``INVAL`` check; the engine additionally bumps a shared
  epoch on every invalidation, and blocks containing stores re-check
  the epoch at word boundaries (and at the loop back edge) so a store
  into the block's own region exits back to per-address handlers
  before any stale fused code runs.  DMA and loader pokes arrive via
  the physical memory watch hook; page-map changes drop all blocks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.pieces import CompareBranch, Jump, JumpIndirect
from ..system.mapping import PAGE_SHIFT
from .fastpath import _FALLBACK

#: fusion length cap: long runs split (diminishing returns, bounded
#: invalidation blast radius)
MAX_BLOCK_WORDS = 32
#: below this, fusion cannot beat per-word dispatch
MIN_BLOCK_WORDS = 2
#: a non-looping block is entered once per pass, so it must amortize
#: the entry overhead across enough fused words to pay for itself;
#: looping blocks amortize across iterations and stay at the minimum
MIN_STRAIGHT_WORDS = 6


class _Block:
    """A fused superblock: one callable covering ``pcs`` in order."""

    __slots__ = ("fn", "pcs", "size", "word_handler")

    def __init__(self, fn, pcs):
        self.fn = fn
        self.pcs = tuple(pcs)
        self.size = len(self.pcs)
        #: the entry's evicted per-word handler -- installing the block
        #: removes the entry from the context's handler table (so block
        #: dispatch rides the handler-miss path at zero cost to the
        #: per-word hot loop), and this keeps the single-word form
        #: available for arrivals that cannot enter the block (pending
        #: branch in flight, or burst budget smaller than one pass)
        self.word_handler = None


def build_block(engine, ctx, entry: int) -> Optional[_Block]:
    """Discover and fuse the superblock rooted at ``entry``, if any."""
    env = engine._base_env()
    members = _discover(engine, ctx, entry, env)
    if members is None or len(members) < MIN_BLOCK_WORDS:
        return None
    return _fuse(engine, entry, members, env)


def _discover(engine, ctx, entry: int, env) -> Optional[List[Tuple[int, str, object]]]:
    """Walk forward from ``entry`` collecting fusable word IRs."""
    page = entry >> PAGE_SHIFT
    targets = engine._branch_targets
    members: List[Tuple[int, str, object]] = []
    pc = entry

    def fusable(addr: int) -> bool:
        if addr != entry and addr in targets:
            return False  # split at branch targets
        if addr >> PAGE_SHIFT != page:
            return False  # never fuse across a page boundary
        handler = ctx.handlers.get(addr)
        if handler is None:
            handler = engine._compile(ctx, addr)
        return handler is not _FALLBACK

    while len(members) < MAX_BLOCK_WORDS:
        if not fusable(pc):
            break
        prefix = f"w{len(members)}_"
        ir = engine._emit_word(ctx, pc, prefix, env)
        if ir is None:  # pragma: no cover - fusable() already screened
            break
        if isinstance(ir.flow, JumpIndirect):
            break  # two delay slots: stays per-word
        if ir.flow is not None:
            members.append((pc, prefix, ir))
            # fuse the single delay slot if it is itself a plain,
            # fusable, non-target word; otherwise the block ends at the
            # flow word and exports the pending branch through st
            delay = pc + 1
            if len(members) < MAX_BLOCK_WORDS and fusable(delay):
                dprefix = f"w{len(members)}_"
                dir_ = engine._emit_word(ctx, delay, dprefix, env)
                if dir_ is not None and dir_.flow is None:
                    members.append((delay, dprefix, dir_))
            break
        members.append((pc, prefix, ir))
        pc += 1
    return members or None


def _fuse(engine, entry: int, members, env) -> Optional[_Block]:
    """Generate and compile the fused handler for ``members``."""
    size = len(members)
    flow_idx = None
    for i, (_, _, ir) in enumerate(members):
        if ir.flow is not None:
            flow_idx = i
    flow = members[flow_idx][2].flow if flow_idx is not None else None
    fused_delay = flow is not None and flow_idx == size - 2
    target = int(flow.target) if isinstance(flow, (Jump, CompareBranch)) else None
    looping = fused_delay and target == entry
    if not looping and size < MIN_STRAIGHT_WORDS:
        return None
    has_store = any(ir.is_store for _, _, ir in members)

    env["EP"] = engine._block_epoch
    lines: List[str] = []
    emit = lines.append
    if has_store:
        emit("_e0 = EP[0]")
    if looping:
        emit("_n = 0")
        emit("while True:")
        ind = "    "
    else:
        ind = ""

    def pos(k: int) -> str:
        """Expression for 'words completed before member k'."""
        if looping:
            return f"_n + {k}" if k else "_n"
        return str(k)

    fallthrough = members[-1][0] + 1
    for k, (wpc, p, ir) in enumerate(members):
        if ir.can_bail:
            emit(ind + f"P[0] = {pos(k)}")
        for line in ir.body:
            emit(ind + line)
        if k == flow_idx:
            # the per-word epilogue, folded: the pending slots are
            # statically empty here, so firing the branch is just
            # writing the countdown-1 slot
            if isinstance(flow, Jump):
                emit(ind + f"st[2] = {target}")
            else:  # CompareBranch
                emit(ind + f"if _{p}tk:")
                emit(ind + "    st[4] += 1")
                emit(ind + f"    st[2] = {target}")
            if not fused_delay:
                emit(ind + f"P[0] = {size}")
                emit(ind + f"return {wpc + 1}")
            elif ir.is_store:
                # a store fused with the branch may have invalidated
                # this very block: leave before the (possibly stale)
                # delay word, pending branch exported through st
                emit(ind + "if EP[0] != _e0:")
                emit(ind + f"    P[0] = {pos(k + 1)}")
                emit(ind + f"    return {wpc + 1}")
        elif ir.is_store and k < size - 1:
            # self-modifying store: if the epoch moved, later fused
            # words may be stale -- exit at this word boundary
            emit(ind + "if EP[0] != _e0:")
            emit(ind + f"    P[0] = {pos(k + 1)}")
            emit(ind + f"    return {wpc + 1}")

    if flow_idx is None:
        emit(f"P[0] = {size}")
        emit(f"return {fallthrough}")
    elif fused_delay:
        # the delay word consumed nothing (its body has no epilogue):
        # retire the pending slot exactly as the per-word epilogue would
        emit(ind + "_p = st[2]")
        emit(ind + "st[2] = -1")
        if looping:
            emit(ind + "if _p != -1:")  # taken: back edge to entry
            emit(ind + f"    _n += {size}")
            cond = "B - _n >= " + str(size)
            if has_store:
                cond = "EP[0] == _e0 and " + cond
            emit(ind + f"    if {cond}:")
            emit(ind + "        continue")
            emit(ind + "    P[0] = _n")
            emit(ind + f"    return {entry}")
            emit(ind + f"P[0] = _n + {size}")
            emit(ind + f"return {fallthrough}")
        else:
            emit(f"P[0] = {size}")
            emit(f"return _p if _p != -1 else {fallthrough}")
    # (flow at the last word already returned inside the loop above)

    src = "def _blk(regs, st, P, B):\n" + "\n".join("    " + line for line in lines)
    exec(src, env)  # noqa: S102 - generating the fused superblock handler
    return _Block(env["_blk"], [wpc for wpc, _, _ in members])
