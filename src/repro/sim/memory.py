"""Word-addressed memory and the memory-system interface.

Memory names 32-bit *words*: "the issue of word-based versus byte-based
addressing" (paper section 4.1) is settled in favour of word addressing;
bytes exist only inside words, reached via the insert/extract
instructions.

Two layers:

- :class:`PhysicalMemory` -- the installed RAM/ROM, a bounds-checked
  word store with access statistics.  The machine has a dual
  instruction/data interface (section 3.2), so instruction fetches are
  counted separately from data traffic.
- the :class:`MemorySystem` protocol -- what the CPU talks to.  The bare
  physical memory satisfies it directly; the systems layer wraps it with
  the off-chip page map (:mod:`repro.system.mapping`), which may raise
  :class:`~repro.sim.faults.PageFault`.  The ``mapped`` flag tells the
  wrapper whether the CPU presented a system virtual address (to be
  translated) or a physical one (kernel mode, mapping off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol

from ..isa.bits import u32
from .faults import BusError


class MemorySystem(Protocol):
    """What the CPU requires of its memory port."""

    def read(
        self, addr: int, *, supervisor: bool = True, fetch: bool = False, mapped: bool = False
    ) -> int:
        """Read the word at ``addr``; may raise a fault."""
        ...

    def write(
        self, addr: int, value: int, *, supervisor: bool = True, mapped: bool = False
    ) -> None:
        """Write the word at ``addr``; may raise a fault."""
        ...


@dataclass
class MemoryStats:
    """Access counters kept by the physical memory (dual-port model)."""

    reads: int = 0
    writes: int = 0
    fetches: int = 0

    @property
    def data_total(self) -> int:
        """Data-port traffic (loads + stores)."""
        return self.reads + self.writes


class PhysicalMemory:
    """Sparse bounds-checked word memory.

    ``size`` bounds the physical address space; addresses outside it
    raise :class:`BusError`.  Unwritten words read as zero, as real
    memory arrays power up *somewhere* and our tests deserve
    determinism.
    """

    def __init__(self, size: int = 1 << 22):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self._words: Dict[int, int] = {}
        self.stats = MemoryStats()
        #: optional observer called with the address after any write or
        #: poke -- the fast-path engine uses it to invalidate compiled
        #: handlers when code is overwritten (DMA, loaders, stores)
        self.watch_hook = None

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.size:
            raise BusError(addr)

    def read(
        self, addr: int, *, supervisor: bool = True, fetch: bool = False, mapped: bool = False
    ) -> int:
        self._check(addr)
        if fetch:
            self.stats.fetches += 1
        else:
            self.stats.reads += 1
        return self._words.get(addr, 0)

    def write(
        self, addr: int, value: int, *, supervisor: bool = True, mapped: bool = False
    ) -> None:
        self._check(addr)
        self.stats.writes += 1
        self._words[addr] = u32(value)
        if self.watch_hook is not None:
            self.watch_hook(addr)

    # -- debugging / loading conveniences (not architectural accesses) -----

    def peek(self, addr: int) -> int:
        """Read without counting as a memory cycle (for tests/loaders)."""
        self._check(addr)
        return self._words.get(addr, 0)

    def poke(self, addr: int, value: int) -> None:
        """Write without counting as a memory cycle (for tests/loaders)."""
        self._check(addr)
        self._words[addr] = u32(value)
        if self.watch_hook is not None:
            self.watch_hook(addr)

    def load_image(self, image: Dict[int, int], base: int = 0) -> None:
        """Install a program image (address -> word) at ``base``."""
        for addr, value in image.items():
            self.poke(base + addr, value)

    def __len__(self) -> int:
        return self.size
