"""Execution tracing: a disassembling single-stepper.

A thin layer over :class:`~repro.sim.cpu.Cpu` for debugging compiled
code and the kernel: each step yields the PC, the decoded instruction
word, and the registers it changed.  Used by the test suite to assert
fine-grained pipeline behaviour and by humans chasing miscompiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..isa.words import InstructionWord
from .cpu import Cpu
from .faults import Halted


@dataclass
class TraceRecord:
    """One executed instruction word."""

    step: int
    pc: int
    word: InstructionWord
    #: register number -> value after this word committed
    writes: Dict[int, int]
    #: True when the word carried a taken control transfer
    branched: bool
    #: True when the fetch at ``pc`` faulted: ``word`` is a placeholder
    #: NOP and the step vectored to the fault handler instead of
    #: executing anything at ``pc``
    fetch_faulted: bool = False

    def __repr__(self) -> str:
        changes = " ".join(f"r{n}={v:#x}" for n, v in sorted(self.writes.items()))
        marker = " ->" if self.branched else ""
        shown = "<fetch fault>" if self.fetch_faulted else repr(self.word)
        return f"{self.step:6d}  {self.pc:6d}  {shown}{marker}  {changes}"


def trace(cpu: Cpu, max_steps: int = 1000) -> Iterator[TraceRecord]:
    """Step the CPU, yielding a record per executed word.

    Stops on :class:`Halted` (swallowed) or after ``max_steps``.  Other
    faults propagate -- a tracer must not hide crashes.
    """
    for step in range(max_steps):
        pc = cpu.pc
        before = list(cpu.regs)
        taken_before = cpu.stats.branches_taken
        try:
            word = cpu.fetch(pc)
        except Exception:
            # the step below takes the same fault through the normal
            # vector; the record is explicitly marked so a placeholder
            # NOP is never mistaken for an executed word
            word = None
        try:
            cpu.step()
        except Halted:
            return
        writes = {
            n: after
            for n, (prev, after) in enumerate(zip(before, cpu.regs))
            if prev != after
        }
        yield TraceRecord(
            step,
            pc,
            word if word is not None else InstructionWord.nop(),
            writes,
            cpu.stats.branches_taken > taken_before,
            fetch_faulted=word is None,
        )


def format_trace(records: List[TraceRecord]) -> str:
    """A printable listing of trace records."""
    return "\n".join(repr(record) for record in records)


def state_fingerprint(cpu: Cpu) -> Dict[str, object]:
    """Every observable piece of CPU + stats state, as one dict.

    Used by the fast-path differential tests: two executions are
    equivalent iff their fingerprints (plus memory contents and program
    output) are equal.  Includes the in-flight pipeline state so that
    equivalence holds at *any* step boundary, not just at halt.
    """
    stats = cpu.stats
    return {
        "pc": cpu.pc,
        "regs": list(cpu.regs),
        "lo": cpu.lo,
        "surprise": cpu.surprise.value,
        "xra": list(cpu.xra),
        "seg_mask": cpu.seg_mask,
        "seg_pid": cpu.seg_pid,
        "interrupt_line": cpu.interrupt_line,
        "deferred_load": dict(cpu._deferred_load),
        "pending_branches": [tuple(e) for e in cpu._pending_branches],
        "forced_stream": list(cpu._forced_stream),
        "stats": {
            "cycles": stats.cycles,
            "words": stats.words,
            "pieces": stats.pieces,
            "noops": stats.noops,
            "loads": stats.loads,
            "stores": stats.stores,
            "branches": stats.branches,
            "branches_taken": stats.branches_taken,
            "memory_cycles_used": stats.memory_cycles_used,
            "free_memory_cycles": stats.free_memory_cycles,
            "load_stalls": stats.load_stalls,
            "branch_flush_cycles": stats.branch_flush_cycles,
            "exceptions": stats.exceptions,
            "ref_notes": dict(stats.ref_notes),
        },
    }
