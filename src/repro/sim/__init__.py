"""Machine simulator: functional execution and pipeline timing."""

from .cpu import Cpu, CpuStats, HazardMode
from .fastpath import FastPathEngine
from .faults import (
    BusError,
    ExceptionCause,
    Halted,
    HazardViolation,
    IllegalInstruction,
    InterruptRequest,
    KernelPanic,
    MachineFault,
    OverflowTrap,
    PageFault,
    PrivilegeViolation,
    TrapInstruction,
)
from .machine import (
    TRAP_HALT,
    TRAP_READ_INT,
    TRAP_WRITE_CHAR,
    TRAP_WRITE_INT,
    Machine,
    run_source,
)
from .memory import MemoryStats, MemorySystem, PhysicalMemory
from .surprise import SurpriseRegister
from .tracing import TraceRecord, format_trace, state_fingerprint, trace

__all__ = [
    "BusError",
    "Cpu",
    "CpuStats",
    "ExceptionCause",
    "FastPathEngine",
    "Halted",
    "HazardMode",
    "HazardViolation",
    "IllegalInstruction",
    "InterruptRequest",
    "KernelPanic",
    "MachineFault",
    "Machine",
    "MemoryStats",
    "MemorySystem",
    "OverflowTrap",
    "PageFault",
    "PhysicalMemory",
    "PrivilegeViolation",
    "SurpriseRegister",
    "TraceRecord",
    "TRAP_HALT",
    "TRAP_READ_INT",
    "TRAP_WRITE_CHAR",
    "TRAP_WRITE_INT",
    "TrapInstruction",
    "format_trace",
    "run_source",
    "state_fingerprint",
    "trace",
]
