"""Exception causes and fault types.

The paper (section 3.3): "By an exception we mean all synchronous and
asynchronous events that disrupt the normal flow of control.  These
include interrupts, software traps, both internal and external faults,
and unrecoverable errors such as reset."

The surprise register carries **two** exception cause fields (section
3.2: "there are two fields that specify the exact nature of the last
exception") -- a major cause and a minor code (the trap number, the
faulting address's page, the interrupt flag, ...).
"""

from __future__ import annotations

from enum import IntEnum


class ExceptionCause(IntEnum):
    """Major exception causes (the first surprise cause field)."""

    NONE = 0
    RESET = 1
    INTERRUPT = 2
    TRAP = 3          # software trap; minor field carries the 12-bit code
    OVERFLOW = 4      # arithmetic overflow with overflow traps enabled
    PAGE_FAULT = 5    # reference between the two valid segment regions
    PRIVILEGE = 6     # user-mode use of a privileged instruction
    ILLEGAL = 7       # undecodable instruction word
    BUS_ERROR = 8     # reference outside physical memory


class MachineFault(Exception):
    """Base class for faults raised during instruction execution.

    The CPU catches these and runs the surprise sequence; they escape to
    Python callers only when no exception machinery is armed.
    """

    cause = ExceptionCause.NONE

    def __init__(self, message: str = "", minor: int = 0):
        super().__init__(message or self.__class__.__name__)
        self.minor = minor


class PageFault(MachineFault):
    """A reference between the two valid regions of the address space."""

    cause = ExceptionCause.PAGE_FAULT

    def __init__(self, address: int, is_write: bool = False, is_fetch: bool = False):
        super().__init__(f"page fault at word address {address:#x}", minor=address & 0xFFF)
        self.address = address
        self.is_write = is_write
        self.is_fetch = is_fetch


class BusError(MachineFault):
    """A physical reference outside installed memory."""

    cause = ExceptionCause.BUS_ERROR

    def __init__(self, address: int):
        super().__init__(f"bus error at physical word address {address:#x}")
        self.address = address


class OverflowTrap(MachineFault):
    """Signed arithmetic overflow with overflow traps enabled."""

    cause = ExceptionCause.OVERFLOW


class PrivilegeViolation(MachineFault):
    """A privileged instruction executed at user level."""

    cause = ExceptionCause.PRIVILEGE


class IllegalInstruction(MachineFault):
    """An instruction word that does not decode."""

    cause = ExceptionCause.ILLEGAL


class TrapInstruction(MachineFault):
    """A software trap (monitor call); minor is the 12-bit trap code."""

    cause = ExceptionCause.TRAP

    def __init__(self, code: int):
        super().__init__(f"trap #{code}", minor=code)
        self.code = code


class InterruptRequest(MachineFault):
    """The single external interrupt line (section 3.3)."""

    cause = ExceptionCause.INTERRUPT


class KernelPanic(Exception):
    """A double fault: an exception raised inside the exception path.

    The surprise sequence has only one set of previous fields and one
    set of saved return addresses; a second exception before ``rfs``
    would overwrite both, so there is no state left to recover.  The
    simulator surfaces the condition as a structured panic carrying
    both cause pairs -- the exception being handled (still in the
    surprise register) and the one that hit the handler -- plus the
    three saved return addresses of the interrupted recovery.
    """

    def __init__(
        self,
        first_cause: "ExceptionCause",
        first_minor: int,
        second_cause: "ExceptionCause",
        second_minor: int,
        xra,
        pc: int,
    ):
        self.first_cause = first_cause
        self.first_minor = first_minor
        self.second_cause = second_cause
        self.second_minor = second_minor
        self.xra = list(xra)
        self.pc = pc
        super().__init__(
            f"double fault: {second_cause.name}/{second_minor} raised at pc={pc} "
            f"while handling {first_cause.name}/{first_minor} "
            f"(saved return addresses {self.xra})"
        )

    def record(self) -> dict:
        """The structured PANIC record (what the CLIs print and the
        chaos invariant checker validates)."""
        return {
            "panic": "double fault",
            "handling_cause": self.first_cause.name,
            "handling_minor": self.first_minor,
            "fault_cause": self.second_cause.name,
            "fault_minor": self.second_minor,
            "xra": list(self.xra),
            "pc": self.pc,
        }


class HazardViolation(Exception):
    """Raised in *checked* mode when code violates a pipeline constraint.

    This is a verification aid, not an architectural event: the real
    machine has no interlocks, so a violated constraint silently reads a
    stale value (which *bare* mode reproduces faithfully).
    """


class Halted(Exception):
    """Raised when the machine executes the halt convention (trap #0)."""
