"""Threaded-code fast path for the simulator.

The per-step interpreter in :class:`~repro.sim.cpu.Cpu` pays Python-level
dispatch costs (isinstance chains, dict churn, attribute lookups) for
every executed word.  This module pre-compiles each instruction word --
once, at its address -- into a specialized Python closure (threaded-code
style) and runs a batched inner loop over those handlers, only falling
back to the precise reference stepper for the rare events it cannot
prove cheap: faults, traps, privileged/special instructions, interlock
stalls, device-window accesses, and interrupt delivery.

Correctness discipline (what keeps the fast path bit-for-bit identical
to :meth:`Cpu.step`):

- **Bail before mutation.**  A handler raises the private ``_Bail``
  exception *before* touching any architectural state.  The bailed word
  then re-executes exactly once on the reference stepper, which performs
  the precise fault ordering, stats accounting, and device side effects.
- **Exact stats by counts x deltas.**  Each compiled word has a static
  stats-delta tuple; the burst loop counts executions per address and
  the flush multiplies.  Every fast word is exactly one cycle (all
  stall/flush cases bail), so ``cycles == words`` holds within a burst
  and kernel timer quanta stay exact under batching.
- **Pipeline state in a 5-slot list** (``st``): deferred-load register
  and value, the two pending-branch slots (countdown 1 and 2), and the
  dynamic taken-branch counter.  It is synced from and back to the CPU's
  canonical fields around every burst, so reference steps interleave
  transparently.
- **Self-modifying code** is caught by invalidation: fast stores check
  the written address against the set of compiled addresses, and all
  reference-path writes (including device DMA and loader pokes) report
  through :attr:`PhysicalMemory.watch_hook`.

Supported execution contexts: mapping disabled, over a bare
:class:`~repro.sim.memory.PhysicalMemory` or the physical side of a
``MappedMemory`` (device-window references bail).  Mapped (user-space)
execution falls back to the reference stepper word by word.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.bits import u32
from ..isa.encoding import decode
from ..isa.operations import AluOp, Comparison, alu_overflows
from ..isa.pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    ReadSpecial,
    Rfs,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from ..isa.registers import RA, SpecialReg

class _Bail(Exception):
    """Raised by a handler, pre-mutation, to punt to the reference stepper."""


#: pre-built instance: raising it skips exception construction
_BAIL = _Bail("fast path bail")

#: cache marker for words that must always run on the reference stepper
_FALLBACK = object()

#: ALU ops participating in overflow detection (mirrors alu_overflows)
_OVF_OPS = (AluOp.ADD, AluOp.SUB, AluOp.RSUB)

#: signed-compare trick: s32(a) < s32(b)  <=>  (a^SIGN) < (b^SIGN)
_COND_TEMPLATES = {
    Comparison.EQ: "{a} == {b}",
    Comparison.NE: "{a} != {b}",
    Comparison.LT: "({a} ^ 2147483648) < ({b} ^ 2147483648)",
    Comparison.LE: "({a} ^ 2147483648) <= ({b} ^ 2147483648)",
    Comparison.GT: "({a} ^ 2147483648) > ({b} ^ 2147483648)",
    Comparison.GE: "({a} ^ 2147483648) >= ({b} ^ 2147483648)",
    Comparison.LO: "{a} < {b}",
    Comparison.LS: "{a} <= {b}",
    Comparison.HI: "{a} > {b}",
    Comparison.HS: "{a} >= {b}",
    Comparison.T: "True",
    Comparison.F: "False",
    Comparison.BC: "({a} & {b}) == 0",
    Comparison.BS: "({a} & {b}) != 0",
    Comparison.NBC: "({a} & ({b} ^ 4294967295)) == 0",
    Comparison.NBS: "({a} & ({b} ^ 4294967295)) != 0",
}


@dataclass
class EngineStats:
    """Fast-path diagnostics (engine-specific -- the reference stepper
    has no analogue, so these never enter fingerprints or profiles that
    must match across engines)."""

    compiles: int = 0        # words compiled into handlers
    fallbacks: int = 0       # words screened out at compile time
    bails: int = 0           # handlers that punted pre-mutation at run time
    invalidations: int = 0   # compiled words dropped (SMC, DMA, loader pokes)
    bursts: int = 0          # batched inner-loop entries
    # dispatch accounting (deterministic per workload: burst boundaries,
    # heat accumulation, and block formation are all serial and exact)
    word_dispatches: int = 0    # words executed through per-address handlers
    ref_steps: int = 0          # words delegated to the reference stepper
    # superblock (JIT second gear) tier
    block_compiles: int = 0     # superblocks fused
    block_entries: int = 0      # fused-handler invocations
    block_bails: int = 0        # block executions that punted mid-block
    block_invalidations: int = 0  # blocks dropped (SMC, DMA, page-map change)
    fused_words: int = 0        # total words folded into superblocks


class _Context:
    """Handler and stats-delta caches for one execution context.

    The context key is the surprise register's privilege and
    overflow-enable bits; mapping-enabled contexts are never compiled.
    Handler caches are keyed by word address.
    """

    __slots__ = ("key", "handlers", "deltas", "blocks", "jit_attempted")

    def __init__(self, key: int):
        self.key = key
        self.handlers: Dict[int, object] = {}
        #: address -> (pieces, noops, loads, stores, branches,
        #:             taken_static, mem_used, note)
        self.deltas: Dict[int, tuple] = {}
        #: entry address -> fused superblock (populated only with JIT on)
        self.blocks: Dict[int, object] = {}
        #: entries/members already considered for fusion (no re-tries)
        self.jit_attempted: set = set()


class _WordIR:
    """One word's emitted straight-line code, sans epilogue.

    ``body`` is everything the per-word handler does except next-PC
    selection, so the superblock fuser can concatenate bodies and write
    its own control flow around them.
    """

    __slots__ = ("body", "flow", "delta", "can_bail", "is_store")

    def __init__(self, body, flow, delta, can_bail, is_store):
        self.body = body
        self.flow = flow
        self.delta = delta
        self.can_bail = can_bail
        self.is_store = is_store


class FastPathEngine:
    """Batched threaded-code executor bound to one :class:`Cpu`."""

    def __init__(self, cpu):
        self.cpu = cpu
        mem = cpu.memory
        # duck-type the memory stack: a MappedMemory exposes .physical
        # (and possibly .devices); a bare PhysicalMemory is its own store
        physical = getattr(mem, "physical", None)
        if physical is None and hasattr(mem, "_words"):
            physical = mem
        self._phys = physical
        self._devices = getattr(mem, "devices", None)
        self._supported = physical is not None and hasattr(physical, "_words")
        self._contexts: Dict[int, _Context] = {}
        self._compiled_pcs = set()
        self._disabled = False
        #: steps completed by the current/last run() call *before* any
        #: exception escaped -- callers use this to account for steps
        #: when a reference step raises (halt, hazard violation, ...)
        self.last_run_steps = 0
        self.stats = EngineStats()
        self._st = [-1, 0, -1, -1, 0]
        # ---- superblock JIT (second gear) state ----------------------
        self._jit = False
        self._jit_threshold = 64
        #: per-PC execution heat (JIT mode only; seeded from an attached
        #: profiler so tiering warms up from live counts)
        self._heat: Dict[int, int] = {}
        #: every compile-time-known branch target (block split points)
        self._branch_targets: set = set()
        #: member address -> [(context, block entry), ...]
        self._block_members: Dict[int, list] = {}
        #: bumped on every invalidation; running blocks compare against
        #: their entry snapshot and exit early when it moves
        self._block_epoch = [0]
        #: shared progress cell: blocks report words completed through it
        self._progress = [0]
        if self._supported and hasattr(physical, "watch_hook"):
            physical.watch_hook = self._on_external_write
        pagemap = getattr(mem, "pagemap", None)
        if pagemap is not None and hasattr(pagemap, "change_hook"):
            pagemap.change_hook = self._on_pagemap_change

    def enable_jit(self, threshold: Optional[int] = None) -> None:
        """Turn on profile-guided superblock fusion (the second gear).

        Hot straight-line runs and loop bodies are fused into single
        compiled handlers once their entry's execution count crosses
        ``threshold``.  Heat comes from live execution; an attached
        :class:`~repro.perf.profiler.Profiler`'s per-PC counts seed it,
        so no ahead-of-time profile files are involved.
        """
        if threshold is not None:
            self._jit_threshold = threshold
        if self._jit:
            return
        self._jit = True
        profiler = self.cpu.profiler
        if profiler is not None and profiler.counts:
            heat = self._heat
            hget = heat.get
            for wpc, c in profiler.counts.items():
                heat[wpc] = hget(wpc, 0) + c

    @property
    def jit_enabled(self) -> bool:
        return self._jit

    def tier(self, pc: int) -> str:
        """The JIT tier serving ``pc``: fused / threaded / interpreted."""
        for bctx, entry in self._block_members.get(pc, ()):
            if entry in bctx.blocks:
                return "fused"
        for ctx in self._contexts.values():
            h = ctx.handlers.get(pc)
            if h is not None and h is not _FALLBACK:
                return "threaded"
        return "interpreted"

    # ------------------------------------------------------------------
    # driving loop
    # ------------------------------------------------------------------

    def run(self, max_steps: int, cycle_limit: Optional[int] = None) -> int:
        """Execute up to ``max_steps`` words; returns the number executed.

        With ``cycle_limit``, stops at the first step boundary where
        ``stats.cycles >= cycle_limit`` -- the exact boundary the
        per-step kernel loop would have observed, because fast words are
        one cycle each and reference steps re-check before issue.

        Machine-level exceptions (halt, traps surfacing to Python,
        hazard violations) propagate from the reference stepper;
        :attr:`last_run_steps` then holds the steps completed *before*
        the raising word, matching the per-step loops this replaces.
        """
        cpu = self.cpu
        stats = cpu.stats
        surprise = cpu.surprise
        contexts = self._contexts
        estats = self.stats
        burst = self._burst_jit if self._jit else self._burst
        steps = 0
        self.last_run_steps = 0
        supported = self._supported and not self._disabled
        while True:
            self.last_run_steps = steps
            if steps >= max_steps:
                break
            if cycle_limit is not None and stats.cycles >= cycle_limit:
                break
            sv = surprise.value
            if (
                supported
                and not sv & 8  # mapping off: translation is reference territory
                and not cpu._forced_stream
                and not (cpu.interrupt_line and sv & 2)
            ):
                key = sv & 5  # privilege | overflow-enable
                ctx = contexts.get(key)
                if ctx is None:
                    ctx = _Context(key)
                    contexts[key] = ctx
                budget = max_steps - steps
                if cycle_limit is not None:
                    budget = min(budget, cycle_limit - stats.cycles)
                n = burst(ctx, budget)
                steps += n
                self.last_run_steps = steps
                if self._disabled:
                    supported = False
                if steps >= max_steps:
                    break
                if cycle_limit is not None and stats.cycles >= cycle_limit:
                    break
                # the word the burst would not touch: a fallback or
                # bailed word -- exactly one precise step
                estats.ref_steps += 1
                cpu.step()
                steps += 1
            elif supported and sv & 8:
                # mapped (user-space) execution: reference-step until the
                # next surprise transition flips mapping off again; the
                # stepper itself handles interrupts and forced streams
                while (
                    steps < max_steps
                    and (cycle_limit is None or stats.cycles < cycle_limit)
                    and surprise.value & 8
                ):
                    self.last_run_steps = steps
                    estats.ref_steps += 1
                    cpu.step()
                    steps += 1
            else:
                # interrupt delivery, a forced return stream, or an
                # unsupported memory system: one precise step
                estats.ref_steps += 1
                cpu.step()
                steps += 1
        self.last_run_steps = steps
        return steps

    # ------------------------------------------------------------------
    # the burst: sync in, run handlers, flush stats, sync out
    # ------------------------------------------------------------------

    def _burst(self, ctx: _Context, budget: int) -> int:
        cpu = self.cpu
        regs = cpu.regs
        st = self._st
        self.stats.bursts += 1

        # ---- sync pipeline state into the burst-local form ------------
        deferred = cpu._deferred_load
        if deferred:
            if len(deferred) != 1:  # cannot happen architecturally
                self._disabled = True
                return 0
            (st[0], st[1]), = deferred.items()
        else:
            st[0] = -1
        p1 = p2 = -1
        for countdown, target in cpu._pending_branches:
            # simultaneous countdowns: the later-appended entry wins the
            # fire and both retire, so last-wins assignment is exact
            if countdown == 1:
                p1 = target
            elif countdown == 2:
                p2 = target
            else:  # not a state the CPU can produce
                self._disabled = True
                return 0
        st[2], st[3], st[4] = p1, p2, 0

        pc = cpu.pc
        n = 0
        counts: Dict[int, int] = {}
        handlers = ctx.handlers
        get_handler = handlers.get
        get_count = counts.get
        try:
            while n < budget:
                h = get_handler(pc)
                if h is None:
                    if pc in counts:
                        # invalidated mid-burst: flush the executions of
                        # the old word against its old delta first
                        break
                    h = self._compile(ctx, pc)
                if h is _FALLBACK:
                    break
                try:
                    npc = h(regs, st)
                except _Bail:
                    self.stats.bails += 1
                    break
                counts[pc] = get_count(pc, 0) + 1
                pc = npc
                n += 1
        finally:
            # ---- flush stats (counts x static deltas) -----------------
            self.stats.word_dispatches += n
            stats = cpu.stats
            if counts:
                deltas = ctx.deltas
                words = pieces = noops = loads = stores = 0
                branches = taken = mem_used = 0
                for wpc, c in counts.items():
                    d = deltas[wpc]
                    words += c
                    pieces += c * d[0]
                    noops += c * d[1]
                    loads += c * d[2]
                    stores += c * d[3]
                    branches += c * d[4]
                    taken += c * d[5]
                    mem_used += c * d[6]
                    if d[7] is not None:
                        stats.ref_notes[d[7]] += c
                stats.words += words
                stats.cycles += words
                stats.pieces += pieces
                stats.noops += noops
                stats.loads += loads
                stats.stores += stores
                stats.branches += branches
                stats.branches_taken += taken + st[4]
                stats.memory_cycles_used += mem_used
                stats.free_memory_cycles += words - mem_used
                mstats = self._phys.stats
                mstats.fetches += words
                mstats.reads += loads
                mstats.writes += stores
                profiler = cpu.profiler
                if profiler is not None:
                    pcounts = profiler.counts
                    pget = pcounts.get
                    for wpc, c in counts.items():
                        pcounts[wpc] = pget(wpc, 0) + c
            elif st[4]:  # pragma: no cover - taken implies counts
                stats.branches_taken += st[4]

            # ---- sync pipeline state back to the CPU ------------------
            cpu.pc = pc
            cpu._deferred_load = {st[0]: st[1]} if st[0] != -1 else {}
            pending = []
            if st[2] != -1:
                pending.append([1, st[2]])
            if st[3] != -1:
                pending.append([2, st[3]])
            cpu._pending_branches = pending
        return n

    # ------------------------------------------------------------------
    # the JIT burst: same contract as _burst, plus the superblock tier
    # ------------------------------------------------------------------

    @staticmethod
    def _expand_block(blk, executed: int, counts: Dict[int, int], get_count) -> None:
        """Unfold a block execution into per-word counts.

        Execution order inside a block is always member order (repeated
        for looping blocks), so ``executed`` words decompose into whole
        passes plus a prefix -- which keeps the counts x deltas flush,
        profiler merge, and counter groups bit-identical to per-word
        execution.
        """
        size = blk.size
        full, rem = divmod(executed, size)
        for i, wpc in enumerate(blk.pcs):
            c = full + 1 if i < rem else full
            if c:
                counts[wpc] = get_count(wpc, 0) + c

    def _burst_jit(self, ctx: _Context, budget: int) -> int:
        """The burst loop with superblock dispatch layered on top.

        Kept separate from :meth:`_burst` so the ``jit=False`` inner
        loop is untouched -- same bytecode, same speed, same output.
        """
        cpu = self.cpu
        regs = cpu.regs
        st = self._st
        estats = self.stats
        estats.bursts += 1

        deferred = cpu._deferred_load
        if deferred:
            if len(deferred) != 1:  # cannot happen architecturally
                self._disabled = True
                return 0
            (st[0], st[1]), = deferred.items()
        else:
            st[0] = -1
        p1 = p2 = -1
        for countdown, target in cpu._pending_branches:
            if countdown == 1:
                p1 = target
            elif countdown == 2:
                p2 = target
            else:  # not a state the CPU can produce
                self._disabled = True
                return 0
        st[2], st[3], st[4] = p1, p2, 0

        pc = cpu.pc
        n = 0
        pword = 0  # words run through per-address handlers (not blocks)
        counts: Dict[int, int] = {}
        #: block -> words executed through it this burst; expanded into
        #: per-word counts once, at the flush
        bcounts: Dict[object, int] = {}
        handlers = ctx.handlers
        blocks = ctx.blocks
        get_handler = handlers.get
        get_block = blocks.get
        get_count = counts.get
        bget = bcounts.get
        P = self._progress
        #: next per-word n at which to scan for newly hot entries --
        #: without this, a trap-free hot loop would spend the whole
        #: burst in per-word dispatch and only fuse at the final flush
        check_at = 4096
        try:
            while n < budget:
                if n >= check_at:
                    check_at = n + 4096
                    self._scan_heat(ctx, counts)
                h = get_handler(pc)
                if h is None:
                    # fusing evicts the entry's per-word handler, so a
                    # block entry lands here -- the per-word hot loop
                    # pays nothing for block dispatch
                    blk = get_block(pc)
                    if blk is not None:
                        # blocks assume empty pending-branch slots at
                        # entry (that is what lets them drop per-word
                        # epilogues) and a budget for one full pass
                        if st[2] == -1 and st[3] == -1 and budget - n >= blk.size:
                            estats.block_entries += 1
                            P[0] = 0
                            try:
                                npc = blk.fn(regs, st, P, budget - n)
                            except _Bail:
                                estats.block_bails += 1
                                executed = P[0]
                                bcounts[blk] = bget(blk, 0) + executed
                                n += executed
                                # the bailed word re-executes on the
                                # reference stepper after the flush
                                pc = blk.pcs[executed % blk.size]
                                break
                            executed = P[0]
                            bcounts[blk] = bget(blk, 0) + executed
                            n += executed
                            pc = npc
                            continue
                        # block not enterable right now: run the entry
                        # word the ordinary way, without reinstalling it
                        h = blk.word_handler
                    else:
                        if pc in counts or bcounts:
                            # invalidated mid-burst: flush the executions
                            # of the old word (or of any block member,
                            # which only bcounts can see) against the old
                            # deltas first
                            break
                        h = self._compile(ctx, pc)
                if h is _FALLBACK:
                    break
                try:
                    npc = h(regs, st)
                except _Bail:
                    estats.bails += 1
                    break
                counts[pc] = get_count(pc, 0) + 1
                pc = npc
                n += 1
                pword += 1
        finally:
            # ---- flush stats (counts x static deltas) -----------------
            estats.word_dispatches += pword
            if bcounts:
                for blk, executed in bcounts.items():
                    self._expand_block(blk, executed, counts, get_count)
            stats = cpu.stats
            if counts:
                deltas = ctx.deltas
                words = pieces = noops = loads = stores = 0
                branches = taken = mem_used = 0
                for wpc, c in counts.items():
                    d = deltas[wpc]
                    words += c
                    pieces += c * d[0]
                    noops += c * d[1]
                    loads += c * d[2]
                    stores += c * d[3]
                    branches += c * d[4]
                    taken += c * d[5]
                    mem_used += c * d[6]
                    if d[7] is not None:
                        stats.ref_notes[d[7]] += c
                stats.words += words
                stats.cycles += words
                stats.pieces += pieces
                stats.noops += noops
                stats.loads += loads
                stats.stores += stores
                stats.branches += branches
                stats.branches_taken += taken + st[4]
                stats.memory_cycles_used += mem_used
                stats.free_memory_cycles += words - mem_used
                mstats = self._phys.stats
                mstats.fetches += words
                mstats.reads += loads
                mstats.writes += stores
                profiler = cpu.profiler
                if profiler is not None:
                    pcounts = profiler.counts
                    pget = pcounts.get
                    for wpc, c in counts.items():
                        pcounts[wpc] = pget(wpc, 0) + c
                # ---- tiering: accumulate heat, fuse fresh hot entries -
                heat = self._heat
                hget = heat.get
                thr = self._jit_threshold
                btargets = self._branch_targets
                attempted = ctx.jit_attempted
                for wpc, c in counts.items():
                    total = hget(wpc, 0) + c
                    heat[wpc] = total
                    if total >= thr and wpc in btargets and wpc not in attempted:
                        self._build_block(ctx, wpc)
            elif st[4]:  # pragma: no cover - taken implies counts
                stats.branches_taken += st[4]

            # ---- sync pipeline state back to the CPU ------------------
            cpu.pc = pc
            cpu._deferred_load = {st[0]: st[1]} if st[0] != -1 else {}
            pending = []
            if st[2] != -1:
                pending.append([1, st[2]])
            if st[3] != -1:
                pending.append([2, st[3]])
            cpu._pending_branches = pending
        return n

    def _scan_heat(self, ctx: _Context, counts: Dict[int, int]) -> None:
        """Mid-burst tier check: fuse entries whose projected heat
        (committed heat + this burst's so-far counts) crossed the
        threshold.  Heat itself is only committed at the flush, so this
        never double-counts."""
        heat = self._heat
        hget = heat.get
        thr = self._jit_threshold
        btargets = self._branch_targets
        attempted = ctx.jit_attempted
        for wpc, c in counts.items():
            if (
                hget(wpc, 0) + c >= thr
                and wpc in btargets
                and wpc not in attempted
            ):
                self._build_block(ctx, wpc)

    def _build_block(self, ctx: _Context, entry: int) -> None:
        """Try to fuse a superblock rooted at ``entry`` (once)."""
        ctx.jit_attempted.add(entry)
        from .jit import build_block  # local import: jit.py imports us

        blk = build_block(self, ctx, entry)
        if blk is None:
            return
        self.stats.block_compiles += 1
        self.stats.fused_words += blk.size
        ctx.blocks[entry] = blk
        # evict the entry's per-word handler (discovery compiled it)
        # into the block: block entry then rides the handler-miss path,
        # so the per-word hot loop pays nothing for block dispatch; the
        # evicted handler still serves arrivals that cannot enter the
        # block.  _compiled_pcs keeps the entry, so the memory watch
        # hook still sees external writes to it.
        blk.word_handler = ctx.handlers.pop(entry)
        members = self._block_members
        for addr in blk.pcs:
            # members never seed their own (overlapping) block
            ctx.jit_attempted.add(addr)
            members.setdefault(addr, []).append((ctx, entry))

    # ------------------------------------------------------------------
    # invalidation (self-modifying code, DMA, loader pokes)
    # ------------------------------------------------------------------

    def _invalidate(self, addr: int) -> None:
        """Drop the compiled handler(s) at ``addr`` in every context.

        Stats deltas are intentionally left behind: executions counted
        before the invalidation belong to the old word and must flush
        against its old delta; a recompile overwrites the entry.
        """
        self.stats.invalidations += 1
        for ctx in self._contexts.values():
            ctx.handlers.pop(addr, None)
        self._compiled_pcs.discard(addr)
        entries = self._block_members.pop(addr, None)
        if entries:
            # a running block observes the epoch move at its next safe
            # boundary and exits back to per-word dispatch
            self._block_epoch[0] += 1
            for bctx, entry in entries:
                blk = bctx.blocks.pop(entry, None)
                if blk is None:
                    continue
                self.stats.block_invalidations += 1
                for member in blk.pcs:
                    bctx.jit_attempted.discard(member)

    def _on_external_write(self, addr: int) -> None:
        if addr in self._compiled_pcs:
            self._invalidate(addr)

    def _on_pagemap_change(self) -> None:
        """Page-map mutation: conservatively drop every fused block.

        Blocks only ever execute with mapping off, but a remap changes
        what a later mapped fetch may alias, so the cheap safe answer is
        to fall back to per-address handlers and re-fuse on heat.
        """
        dropped = 0
        for ctx in self._contexts.values():
            if ctx.blocks:
                dropped += len(ctx.blocks)
                ctx.blocks.clear()
                ctx.jit_attempted.clear()
        if dropped:
            self.stats.block_invalidations += dropped
            self._block_members.clear()
            self._block_epoch[0] += 1

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    def _compile(self, ctx: _Context, pc: int):
        """Compile the word at ``pc`` for ``ctx``; cache and return it."""
        handler = self._try_compile(ctx, pc)
        if handler is None:
            handler = _FALLBACK
            self.stats.fallbacks += 1
        else:
            self.stats.compiles += 1
        ctx.handlers[pc] = handler
        self._compiled_pcs.add(pc)
        return handler

    def _base_env(self) -> Dict[str, object]:
        """The globals every generated handler (word or block) closes over."""
        return {
            "_B": _BAIL,
            "MW": self._phys._words,
            "MWG": self._phys._words.get,
            "CPU": self.cpu,
            "OVF": alu_overflows,
            "FPCS": self._compiled_pcs,
            "INVAL": self._invalidate,
        }

    def _try_compile(self, ctx: _Context, pc: int):
        env = self._base_env()
        ir = self._emit_word(ctx, pc, "", env)
        if ir is None:
            return None
        body = ir.body + self._emit_epilogue(ir.flow, pc)
        src = "def _h(regs, st):\n" + "\n".join("    " + line for line in body)
        exec(src, env)  # noqa: S102 - generating the threaded-code handler
        ctx.deltas[pc] = ir.delta
        return env["_h"]

    def _emit_word(self, ctx: _Context, pc: int, p: str, env: Dict[str, object]):
        """Emit the straight-line IR of the word at ``pc`` into ``env``.

        ``p`` prefixes every generated temporary so several words can be
        fused into one namespace by the superblock builder; the per-word
        handlers use the empty prefix, which reproduces the original
        generated source byte for byte.  Returns a :class:`_WordIR`
        (body sans next-PC epilogue) or ``None`` when the word belongs
        to the reference stepper.
        """
        from .cpu import HazardMode  # local import: cpu.py imports us lazily

        cpu = self.cpu
        phys = self._phys
        if not 0 <= pc < phys.size:
            return None  # reference fetch raises the BusError
        bits = phys._words.get(pc, 0)
        cached = cpu._decode_cache.get(pc)
        if cached is not None and cached[0] == bits:
            word = cached[1]
        else:
            try:
                word = decode(bits, pc)
            except Exception:
                return None  # reference fetch raises IllegalInstruction
            cpu._decode_cache[pc] = (bits, word)

        mode = cpu.hazard_mode
        checked = mode is HazardMode.CHECKED
        interlocked = mode is HazardMode.INTERLOCKED
        ovf_enabled = bool(ctx.key & 4)

        pre: list = []      # pure evaluation + all bail checks
        commit: list = []   # register/special commits (post-deferred)
        reads = sorted(r.number for r in word.reads())
        mem_piece = word.mem
        flow = None
        load_dst = None
        note = None
        pieces = noops = 0

        # ---- screen + evaluate each piece -----------------------------
        for idx, piece in enumerate(word.pieces):
            if isinstance(piece, Noop):
                noops += 1
                continue
            pieces += 1
            if isinstance(piece, (Trap, Rfs)):
                return None
            if isinstance(piece, ReadSpecial):
                if piece.sreg is not SpecialReg.LO:
                    return None
                commit.append(f"regs[{piece.dst.number}] = CPU.lo")
                continue
            if isinstance(piece, WriteSpecial):
                if piece.sreg is not SpecialReg.LO:
                    return None
                pre.append(f"_{p}w{idx} = {self._operand(piece.src)}")
                commit.append(f"CPU.lo = _{p}w{idx}")
                continue
            if isinstance(piece, MovImm):
                commit.append(f"regs[{piece.dst.number}] = {piece.value}")
                continue
            if isinstance(piece, LoadImm):
                commit.append(f"regs[{piece.dst.number}] = {u32(piece.value)}")
                continue
            if isinstance(piece, Alu):
                lines = self._emit_alu(piece, idx, ovf_enabled, env, p)
                if lines is None:
                    return None
                pre.extend(lines)
                commit.append(f"regs[{piece.dst.number}] = _{p}t{idx}")
                continue
            if isinstance(piece, SetCond):
                cond = _COND_TEMPLATES[piece.cond].format(
                    a=self._operand(piece.s1), b=self._operand(piece.s2)
                )
                pre.append(f"_{p}t{idx} = 1 if {cond} else 0")
                commit.append(f"regs[{piece.dst.number}] = _{p}t{idx}")
                continue
            if isinstance(piece, CompareBranch):
                if not isinstance(piece.target, int):
                    return None
                self._branch_targets.add(int(piece.target))
                cond = _COND_TEMPLATES[piece.cond].format(
                    a=self._operand(piece.s1), b=self._operand(piece.s2)
                )
                pre.append(f"_{p}tk = {cond}")
                if interlocked:
                    # taken branches squash the pipe: reference work
                    pre.append(f"if _{p}tk: raise _B")
                flow = piece
                continue
            if isinstance(piece, Jump):
                if not isinstance(piece.target, int) or interlocked:
                    return None
                self._branch_targets.add(int(piece.target))
                if piece.link:
                    commit.append(f"regs[{RA.number}] = {pc + 1 + piece.delay_slots}")
                flow = piece
                continue
            if isinstance(piece, JumpIndirect):
                if interlocked:
                    return None
                pre.append(f"_{p}tgt = regs[{piece.reg.number}]")
                if piece.link:
                    commit.append(f"regs[{RA.number}] = {pc + 1 + piece.delay_slots}")
                flow = piece
                continue
            if isinstance(piece, (Load, Store)):
                continue  # handled below with the address
            return None  # unknown piece type

        # ---- memory reference -----------------------------------------
        mem_lines: list = []
        if mem_piece is not None:
            ea = self._emit_ea(mem_piece, pre, p)
            if ea is None:
                return None
            note = mem_piece.note
            if isinstance(mem_piece, Load):
                mem_lines.append(f"_{p}vld = MWG({ea}, 0)")
                load_dst = mem_piece.dst.number
            else:
                pre.append(f"_{p}vst = regs[{mem_piece.src.number}]")
                mem_lines.append(f"MW[{ea}] = _{p}vst")
                mem_lines.append(f"if {ea} in FPCS: INVAL({ea})")

        # ---- assemble the body ----------------------------------------
        body: list = []
        if (checked or interlocked) and reads:
            conflict = " or ".join(f"_{p}dr == {r}" for r in reads)
            body.append(f"_{p}dr = st[0]")
            body.append(f"if _{p}dr != -1 and ({conflict}): raise _B")
        body.extend(pre)
        body.extend(mem_lines)
        body.append(f"_{p}d = st[0]")
        body.append(f"if _{p}d != -1:")
        body.append(f"    regs[_{p}d] = st[1]")
        if load_dst is None:
            body.append("    st[0] = -1")
        body.extend(commit)
        if load_dst is not None:
            if interlocked:
                body.append(f"regs[{load_dst}] = _{p}vld")
            body.append(f"st[0] = {load_dst}")
            body.append(f"st[1] = _{p}vld")

        branches = 1 if flow is not None else 0
        taken_static = 1 if isinstance(flow, (Jump, JumpIndirect)) else 0
        delta = (
            pieces,
            noops,
            1 if load_dst is not None else 0,
            1 if isinstance(mem_piece, Store) else 0,
            branches,
            taken_static,
            1 if word.uses_memory else 0,
            note,
        )
        can_bail = any("raise" in line for line in body)
        return _WordIR(body, flow, delta, can_bail, isinstance(mem_piece, Store))

    # ---- emit helpers -----------------------------------------------------

    @staticmethod
    def _operand(op) -> str:
        if isinstance(op, Imm):
            return str(op.value)
        return f"regs[{op.number}]"

    def _emit_alu(
        self, piece: Alu, idx: int, ovf_enabled: bool, env, p: str = ""
    ) -> Optional[list]:
        lines = [f"_{p}a{idx} = {self._operand(piece.s1)}"]
        a = f"_{p}a{idx}"
        op = piece.op
        if op is AluOp.MOV:
            lines.append(f"_{p}t{idx} = {a}")
            return lines
        if op is AluOp.NOT:
            lines.append(f"_{p}t{idx} = {a} ^ 4294967295")
            return lines
        if op is AluOp.IC:
            lines.append(f"_{p}sh = (CPU.lo & 3) * 8")
            lines.append(
                f"_{p}t{idx} = (regs[{piece.dst.number}] & ~(255 << _{p}sh) & 4294967295)"
                f" | (({a} & 255) << _{p}sh)"
            )
            return lines
        lines.append(f"_{p}b{idx} = {self._operand(piece.s2)}")
        b = f"_{p}b{idx}"
        if ovf_enabled and op in _OVF_OPS:
            env[f"_{p}OP{idx}"] = op
            lines.append(f"if OVF(_{p}OP{idx}, {a}, {b}): raise _B")
        if op is AluOp.ADD:
            expr = f"({a} + {b}) & 4294967295"
        elif op is AluOp.SUB:
            expr = f"({a} - {b}) & 4294967295"
        elif op is AluOp.RSUB:
            expr = f"({b} - {a}) & 4294967295"
        elif op is AluOp.AND:
            expr = f"{a} & {b}"
        elif op is AluOp.OR:
            expr = f"{a} | {b}"
        elif op is AluOp.XOR:
            expr = f"{a} ^ {b}"
        elif op is AluOp.SLL:
            expr = f"({a} << ({b} & 31)) & 4294967295"
        elif op is AluOp.SRL:
            expr = f"{a} >> ({b} & 31)"
        elif op is AluOp.SRA:
            expr = (
                f"(({a} - 4294967296) >> ({b} & 31)) & 4294967295"
                f" if {a} & 2147483648 else {a} >> ({b} & 31)"
            )
        elif op is AluOp.XC:
            expr = f"({b} >> (({a} & 3) * 8)) & 255"
        elif op is AluOp.MSTEP:
            expr = f"({a} * 2 + {b}) & 4294967295"
        elif op is AluOp.DSTEP:
            lines.append(f"_{p}sh = ({a} << 1) & 4294967295")
            lines.append(
                f"_{p}t{idx} = (_{p}sh - {b}) | 1 if _{p}sh >= {b} else _{p}sh & 4294967294"
            )
            return lines
        else:
            return None
        lines.append(f"_{p}t{idx} = {expr}")
        return lines

    def _emit_ea(self, piece, pre: list, p: str = "") -> Optional[str]:
        """Emit effective-address computation + bail checks; returns its name."""
        size = self._phys.size
        addr = piece.addr
        ea = f"_{p}ea"
        if isinstance(addr, Absolute):
            ea_val = addr.addr
            if not 0 <= ea_val < size:
                return None  # always a bus error: reference territory
            if self._devices is not None and self._devices.claims(ea_val):
                return None  # device register: always reference
            return str(ea_val)
        if isinstance(addr, Displacement):
            if addr.disp == 0:
                pre.append(f"{ea} = regs[{addr.base.number}]")
            else:
                pre.append(
                    f"{ea} = (regs[{addr.base.number}] + {addr.disp}) & 4294967295"
                )
        elif isinstance(addr, BaseIndex):
            pre.append(
                f"{ea} = (regs[{addr.base.number}] + regs[{addr.index.number}])"
                " & 4294967295"
            )
        elif isinstance(addr, BaseShifted):
            pre.append(f"{ea} = regs[{addr.base.number}] >> {addr.shift}")
        else:
            return None
        pre.append(f"if {ea} >= {size}: raise _B")
        if self._devices is not None:
            from ..system.devices import DEV_BASE, DEV_WORDS

            pre.append(f"if {DEV_BASE} <= {ea} < {DEV_BASE + DEV_WORDS}: raise _B")
        return ea

    @staticmethod
    def _emit_epilogue(flow, pc: int) -> list:
        """Next-PC logic: age the two pending-branch slots, then return.

        The two-slot model is exact: entries live at most two words, at
        most one per countdown is live between steps, and when a branch
        in a delay slot creates a same-tick tie the later-appended entry
        both wins the fire and retires the loser -- which is precisely
        what overwriting the slot expresses.
        """
        seq = pc + 1
        if isinstance(flow, Jump):
            return [
                "_p = st[2]",
                f"st[2] = {int(flow.target)}",
                "st[3] = -1",
                f"return _p if _p != -1 else {seq}",
            ]
        if isinstance(flow, JumpIndirect):
            return [
                "_p = st[2]",
                "st[2] = st[3]",
                "st[3] = _tgt",
                f"return _p if _p != -1 else {seq}",
            ]
        if isinstance(flow, CompareBranch):
            return [
                "_p = st[2]",
                "if _tk:",
                "    st[4] += 1",
                f"    st[2] = {int(flow.target)}",
                "else:",
                "    st[2] = st[3]",
                "st[3] = -1",
                f"return _p if _p != -1 else {seq}",
            ]
        return [
            "_p = st[2]",
            "st[2] = st[3]",
            "st[3] = -1",
            f"return _p if _p != -1 else {seq}",
        ]
