"""Reproductions of Tables 1-11.

Each ``tableN()`` function compiles/runs whatever it needs and returns
an :class:`~repro.experiments.base.ExperimentResult` holding measured
rows next to the paper's published values.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis import (
    PAPER_FREQUENCIES,
    PAPER_PENALTIES,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE6,
    PAPER_TABLE6_IMPROVEMENTS,
    PAPER_TABLE7,
    PAPER_TABLE8,
    PAPER_TABLE11,
    PAPER_TABLE11_IMPROVEMENTS,
    TABLE5,
    EvalStrategy,
    corpus_cc_usage,
    corpus_distribution,
    corpus_stats,
    from_measurement,
    from_paper,
    improvements,
    measure_layout,
    table6 as compute_table6,
    table11 as compute_table11,
)
from ..ccmachine.features import table2 as cc_table2
from ..compiler.layout import LayoutStrategy
from ..isa.costs import table9 as isa_table9
from .base import ExperimentResult


def table1() -> ExperimentResult:
    """Constant distribution in programs."""
    dist = corpus_distribution()
    rows: Dict[str, object] = {
        bucket.value: round(percent, 1) for bucket, percent in dist.percentages.items()
    }
    rows["4-bit coverage %"] = round(dist.imm4_coverage, 1)
    rows["4+8-bit coverage %"] = round(dist.movi_coverage, 1)
    paper = {bucket.value: value for bucket, value in PAPER_TABLE1.items()}
    paper["4-bit coverage %"] = 68.7
    paper["4+8-bit coverage %"] = 95.5
    return ExperimentResult(
        "Table 1",
        "Constant distribution in programs (percent by magnitude)",
        rows,
        paper,
        notes="the 4-bit operand constant should cover ~70%, movi all but ~5%",
    )


def table2() -> ExperimentResult:
    """Condition code operations across architectures."""
    rows = {
        name: f"{info['set rule']}; {info['use rule']}"
        for name, info in cc_table2().items()
    }
    paper = {
        "M68000": "set on operations; conditional set",
        "MIPS": "no condition code; conditional set (compare and branch)",
        "VAX": "set on moves and operations; branch",
        "360": "set on operations; branch",
        "PDP-10": "no condition code; access",
    }
    return ExperimentResult(
        "Table 2", "Condition code operations", rows, paper
    )


def table3() -> ExperimentResult:
    """Use of condition codes: compares saved."""
    usage = corpus_cc_usage()
    rows = {
        "compares without condition codes": usage.compares,
        "compares saved (operators only)": usage.saved_by_operators,
        "saved % (operators only)": round(usage.saved_operators_percent, 1),
        "moves used only to set CC": usage.moves_only_to_set_cc,
        "compares saved (operators and moves)": usage.saved_by_operators
        + usage.saved_by_moves,
        "saved % (operators and moves)": round(usage.saved_with_moves_percent, 1),
    }
    paper = {
        "compares saved (operators only)": PAPER_TABLE3["saved_by_operators"],
        "saved % (operators only)": PAPER_TABLE3["saved_by_operators_percent"],
        "moves used only to set CC": PAPER_TABLE3["moves_only_to_set_cc"],
        "saved % (operators and moves)": PAPER_TABLE3["saved_with_moves_percent"],
    }
    return ExperimentResult(
        "Table 3",
        "Use of condition codes (savings are marginal)",
        rows,
        paper,
        notes="the paper's claim: CC savings are 'so small as to be essentially useless'",
    )


def table4() -> ExperimentResult:
    """Boolean expression statistics."""
    stats = corpus_stats()
    rows = {
        "operators per boolean expression": round(stats.operators_per_expression, 2),
        "expressions ending in jumps %": round(stats.jump_percent, 1),
        "expressions ending in stores %": round(stats.store_percent, 1),
        "total boolean expressions": stats.expressions,
    }
    paper = {
        "operators per boolean expression": PAPER_TABLE4["operators_per_expression"],
        "expressions ending in jumps %": PAPER_TABLE4["jump_percent"],
        "expressions ending in stores %": PAPER_TABLE4["store_percent"],
    }
    return ExperimentResult("Table 4", "Boolean expressions", rows, paper)


def table5() -> ExperimentResult:
    """Operations per boolean operator under four strategies."""
    rows = {}
    for strategy, (static, dynamic) in TABLE5.items():
        rows[f"{strategy.value} (static c/r/b)"] = static.as_tuple()
        rows[f"{strategy.value} (dynamic c/r/b)"] = dynamic.as_tuple()
    paper = {
        f"{EvalStrategy.SET_CONDITIONALLY.value} (static c/r/b)": (2, 1, 0),
        f"{EvalStrategy.CC_CONDITIONAL_SET.value} (static c/r/b)": (2, 3, 0),
        f"{EvalStrategy.CC_BRANCH_FULL.value} (static c/r/b)": (2, 2, 2),
        f"{EvalStrategy.CC_BRANCH_EARLY_OUT.value} (static c/r/b)": (2, 0, 2),
        f"{EvalStrategy.CC_BRANCH_EARLY_OUT.value} (dynamic c/r/b)": (2, 0, 1.5),
    }
    return ExperimentResult(
        "Table 5",
        "Compare/register/branch operations per boolean operator",
        rows,
        paper,
    )


def table6(use_corpus_inputs: bool = False) -> ExperimentResult:
    """Cost of evaluating boolean expressions."""
    if use_corpus_inputs:
        stats = corpus_stats()
        ops = stats.operators_per_expression
        jump_fraction = stats.jump_percent / 100.0
        source = f"corpus inputs (ops={ops:.2f}, jump={jump_fraction:.2f})"
    else:
        ops, jump_fraction = 1.66, 0.809
        source = "paper inputs (ops=1.66, jump=0.809)"
    computed = compute_table6(ops, jump_fraction)
    rows: Dict[str, object] = {}
    for strategy, row in computed.items():
        rows[f"store {strategy.value}"] = (round(row.store_full, 1), round(row.store_early, 1))
        rows[f"jump {strategy.value}"] = (round(row.jump_full, 1), round(row.jump_early, 1))
        rows[f"total {strategy.value}"] = (round(row.total_full, 1), round(row.total_early, 1))
    for pair, value in improvements(ops, jump_fraction).items():
        rows[f"improvement {pair[0]} ({pair[1]})"] = round(value, 1)
    paper: Dict[str, object] = {}
    for (context, strategy), values in PAPER_TABLE6.items():
        paper[f"{context} {strategy.value}"] = values
    for pair, value in PAPER_TABLE6_IMPROVEMENTS.items():
        paper[f"improvement {pair[0]} ({pair[1]})"] = value
    return ExperimentResult(
        "Table 6",
        f"Cost of evaluating boolean expressions -- {source} (full, early-out)",
        rows,
        paper,
        notes="weights: register=1, compare=2, branch=4",
    )


def _ref_table(layout: LayoutStrategy, experiment_id: str, paper: Dict[str, float]) -> ExperimentResult:
    patterns = measure_layout(layout)
    rows: Dict[str, object] = {
        key: round(value, 1) for key, value in patterns.rows().items()
    }
    rows["globals region (words)"] = patterns.globals_words
    return ExperimentResult(
        experiment_id,
        f"Data reference patterns, {layout.value}-allocated programs (percent)",
        rows,
        dict(paper),
    )


def table7() -> ExperimentResult:
    """Data reference patterns in word-allocated programs."""
    return _ref_table(LayoutStrategy.WORD_ALLOCATED, "Table 7", PAPER_TABLE7)


def table8() -> ExperimentResult:
    """Data reference patterns in byte-allocated programs."""
    result = _ref_table(LayoutStrategy.BYTE_ALLOCATED, "Table 8", PAPER_TABLE8)
    return result


def table9() -> ExperimentResult:
    """Cost of various byte operations (cycles)."""
    rows: Dict[str, object] = {}
    for op, (plain, with_overhead, mips) in isa_table9().items():
        rows[op.value] = (repr(plain), repr(with_overhead), repr(mips))
    paper = {
        "load from array": ("4", "4.6", "6"),
        "store into array": ("4", "4.6", "8-12"),
        "load byte": ("6", "6.9", "8"),
        "store byte": ("6", "6.9", "10-18"),
        "load word": ("4", "4.6", "4"),
        "store word": ("4", "4.6", "4"),
    }
    return ExperimentResult(
        "Table 9",
        "Cost of byte operations (byte machine, +15% overhead, word-MIPS)",
        rows,
        paper,
    )


def table10(use_measured_frequencies: bool = False) -> ExperimentResult:
    """Cost of byte- versus word-addressed architectures."""
    rows: Dict[str, object] = {}
    paper: Dict[str, object] = {}
    for allocation in ("word-allocated", "byte-allocated"):
        if use_measured_frequencies:
            layout = (
                LayoutStrategy.WORD_ALLOCATED
                if allocation == "word-allocated"
                else LayoutStrategy.BYTE_ALLOCATED
            )
            costs = from_measurement(measure_layout(layout))
        else:
            costs = from_paper(allocation)
        word_total = costs.word_machine_total()
        byte_total = costs.byte_machine_total()
        penalty = costs.penalty_percent()
        rows[f"{allocation}: total on word-addressed MIPS"] = repr(word_total)
        rows[f"{allocation}: total on byte-addressed MIPS"] = repr(byte_total)
        rows[f"{allocation}: byte addressing penalty %"] = (
            round(penalty[0], 1),
            round(penalty[1], 1),
        )
        paper[f"{allocation}: byte addressing penalty %"] = PAPER_PENALTIES[allocation]
    source = "measured" if use_measured_frequencies else "paper"
    return ExperimentResult(
        "Table 10",
        f"Byte- vs word-addressed cost ({source} reference frequencies)",
        rows,
        paper,
        notes="word addressing wins; the paper calls these minimum improvements",
    )


def table11() -> ExperimentResult:
    """Cumulative improvements with postpass optimization."""
    rows: Dict[str, object] = {}
    paper: Dict[str, object] = {}
    for ladder in compute_table11():
        for level, count in ladder.counts.items():
            rows[f"{ladder.name} / {level.value}"] = count
        rows[f"{ladder.name} / total improvement %"] = round(
            ladder.total_improvement_percent, 1
        )
    for name, levels in PAPER_TABLE11.items():
        for level, count in levels.items():
            paper[f"{name} / {level.value}"] = count
        paper[f"{name} / total improvement %"] = PAPER_TABLE11_IMPROVEMENTS[name]
    return ExperimentResult(
        "Table 11",
        "Static instruction counts under cumulative postpass optimization",
        rows,
        paper,
        notes=(
            "our code generator starts from a tighter baseline than the "
            "paper's PCC, so absolute improvements are smaller; the "
            "cumulative ordering is the reproduced result"
        ),
    )
