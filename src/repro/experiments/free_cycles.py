"""The free-memory-cycles experiment (paper section 3.1).

Measures the fraction of the data-memory bandwidth the corpus leaves
idle -- the paper's "wasted bandwidth came close to 40%" -- and shows a
DMA engine recovering it at zero processor cost.
"""

from __future__ import annotations

from ..analysis.freecycles import PAPER_FREE_FRACTION, dma_throughput, measure
from ..reorg.reorganizer import OptLevel
from .base import ExperimentResult


def free_cycles(jobs: int = 1) -> ExperimentResult:
    """``jobs > 1`` shards the two corpus sweeps over farm workers."""
    optimized = measure(opt_level=OptLevel.BRANCH_DELAY, jobs=jobs)
    no_regalloc = measure(opt_level=OptLevel.BRANCH_DELAY, register_allocation=False, jobs=jobs)
    from ..workloads import CORPUS

    dma = dma_throughput(CORPUS["wordcount"])
    rows = {
        "free fraction (optimized/packed code)": round(optimized.aggregate_fraction, 2),
        "free fraction (no register allocation)": round(no_regalloc.aggregate_fraction, 2),
        "per-program mean (no regalloc)": round(
            sum(no_regalloc.per_program.values()) / len(no_regalloc.per_program), 2
        ),
        "per-program min": round(min(no_regalloc.per_program.values()), 2),
        "per-program max": round(max(no_regalloc.per_program.values()), 2),
        "DMA words moved (wordcount run)": dma["dma_words_moved"],
        "DMA words per instruction": round(dma["dma_words_per_instruction"], 2),
    }
    paper = {"free fraction (no register allocation)": PAPER_FREE_FRACTION}
    return ExperimentResult(
        "Free cycles (section 3.1)",
        "Unused data-memory bandwidth exported on the free-cycle pin",
        rows,
        paper,
        notes=(
            "register allocation keeps more operands out of memory than the "
            "paper's compiler, so our free fraction is higher; the DMA engine "
            "demonstrates the recovered bandwidth either way"
        ),
    )
