"""Reproductions of every table and figure in the paper's evaluation."""

from typing import Callable, Dict, List

from .base import ExperimentResult
from .figures import figure1, figure2, figure3, figure4
from .free_cycles import free_cycles
from .tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
)

#: every experiment, in paper order
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "table10": table10,
    "table11": table11,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "free_cycles": free_cycles,
}


def run_all() -> List[ExperimentResult]:
    """Run every experiment (tables first, then figures)."""
    return [build() for build in REGISTRY.values()]


__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "free_cycles",
    "run_all",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
]
