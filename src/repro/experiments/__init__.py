"""Reproductions of every table and figure in the paper's evaluation.

Experiments execute through :mod:`repro.farm`: each table/figure is one
farm job, so ``run_all(jobs=4)`` shards the evaluation across worker
processes while producing exactly the serial results (the registry
order is the submission order, and the farm returns records in
submission order regardless of completion order).
"""

from typing import Callable, Dict, List, Sequence

from .base import ExperimentResult
from .figures import figure1, figure2, figure3, figure4
from .free_cycles import free_cycles
from .tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
)

#: every experiment, in paper order
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "table10": table10,
    "table11": table11,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "free_cycles": free_cycles,
}


def run_named(
    names: Sequence[str],
    jobs: int = 1,
    store=None,
    scheduler=None,
) -> List[ExperimentResult]:
    """Run the named experiments through the farm, in the given order.

    ``jobs=1`` (the default) degrades to in-process serial execution --
    the identical code path, so results match at any job count.  A
    failed experiment raises with the worker's structured error rather
    than returning a partial list.
    """
    from ..farm import Scheduler, experiment_jobs

    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {', '.join(unknown)}")
    if scheduler is None:
        scheduler = Scheduler(jobs=jobs, store=store)
    records = scheduler.run(experiment_jobs(names))
    results: List[ExperimentResult] = []
    for record in records:
        payload = record.get("payload")
        if record["status"] != "ok" or payload is None:
            error = record.get("error") or {}
            raise RuntimeError(
                f"experiment {record['name']} failed "
                f"[{record['status']}] {error.get('type', '')}: {error.get('message', '')}"
            )
        results.append(payload)
    return results


def run_all(jobs: int = 1, store=None) -> List[ExperimentResult]:
    """Run every experiment (tables first, then figures)."""
    return run_named(list(REGISTRY), jobs=jobs, store=store)


__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "free_cycles",
    "run_all",
    "run_named",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
]
