"""Experiment result plumbing shared by all table/figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    ``rows`` maps row labels to measured values; ``paper`` carries the
    corresponding published values where the paper gives them, so
    reports and EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    rows: Dict[str, Any]
    paper: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """A plain-text report with paper values alongside."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        width = max((len(str(k)) for k in self.rows), default=10) + 2
        for key, value in self.rows.items():
            paper_value = self.paper.get(key)
            paper_text = f"   [paper: {_fmt(paper_value)}]" if paper_value is not None else ""
            lines.append(f"  {str(key):{width}s} {_fmt(value)}{paper_text}")
        for key, value in self.paper.items():
            if key not in self.rows:
                lines.append(f"  {str(key):{width}s} (not measured)   [paper: {_fmt(value)}]")
        if self.notes:
            lines.append(f"  -- {self.notes}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, tuple):
        return "(" + ", ".join(_fmt(v) for v in value) + ")"
    return str(value)
