"""Reproductions of Figures 1-4: the paper's exact code sequences, executed.

The boolean expression throughout is the paper's::

    Found := (Rec = Key) OR (I = 13);

Figures 1 and 2 run on the condition-code machine, Figure 3 on MIPS;
each sequence is executed over all four truth combinations of the two
comparisons and the dynamic averages are compared with the paper's
("Average of 7 instructions executed" vs "4.25", "no branches", ...).
Figure 4 feeds a transcription of the paper's code fragment through the
reorganizer and reports the same transformation steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..asm.assembler import assemble_pieces
from ..ccmachine.isa import (
    AbsAddr,
    Alu as CcAlu,
    Br,
    CcAluOp,
    CcCond,
    CcImm,
    CcMem,
    CcReg,
    Cmp,
    Halt,
    Move,
    Scc,
)
from ..ccmachine.machine import CcMachine, resolve
from ..isa.operations import AluOp, Comparison
from ..isa.pieces import Alu, Imm, SetCond, Trap
from ..isa.registers import Reg
from ..isa.words import InstructionWord
from ..reorg.reorganizer import ALL_LEVELS, OptLevel, reorganize
from ..sim.cpu import Cpu
from ..sim.faults import TrapInstruction
from .base import ExperimentResult

# memory homes for the three variables on the CC machine
_REC = CcMem(AbsAddr(100, "Rec"))
_KEY = CcMem(AbsAddr(101, "Key"))
_I = CcMem(AbsAddr(102, "I"))
_FOUND = CcMem(AbsAddr(103, "Found"))

#: the four truth combinations: (Rec, Key, I)
_CASES: Tuple[Tuple[int, int, int], ...] = (
    (5, 5, 13),   # both true
    (5, 5, 7),    # first true
    (5, 6, 13),   # second true
    (5, 6, 7),    # neither
)


def _figure1_full():
    """Figure 1, left: full evaluation on a CC machine."""
    r1 = CcReg(1)
    return [
        (None, Move(CcImm(0), r1)),
        (None, Cmp(_REC, _KEY)),
        (None, Br(CcCond.NE, "L")),
        (None, Move(CcImm(1), r1)),
        ("L", Cmp(_I, CcImm(13))),
        (None, Br(CcCond.NE, "D")),
        (None, Move(CcImm(1), r1)),
        ("D", Move(r1, _FOUND)),
        (None, Halt()),
    ]


def _figure1_early_out():
    """Figure 1, right: early-out evaluation."""
    return [
        (None, Move(CcImm(1), _FOUND)),
        (None, Cmp(_REC, _KEY)),
        (None, Br(CcCond.EQ, "D")),
        (None, Cmp(_I, CcImm(13))),
        (None, Br(CcCond.EQ, "D")),
        (None, Move(CcImm(0), _FOUND)),
        ("D", Halt()),
    ]


def _figure2_conditional_set():
    """Figure 2: M68000-style conditional set."""
    r1 = CcReg(1)
    return [
        (None, Cmp(_REC, _KEY)),
        (None, Scc(CcCond.EQ, _FOUND)),
        (None, Cmp(_I, CcImm(13))),
        (None, Scc(CcCond.EQ, r1)),
        (None, CcAlu(CcAluOp.OR, r1, _FOUND)),
        (None, Halt()),
    ]


def _run_cc(stream, rec: int, key: int, i: int):
    program = resolve(stream)
    machine = CcMachine(program)
    machine.memory[100], machine.memory[101], machine.memory[102] = rec, key, i
    machine.run(1000)
    # the halt is not part of the paper's sequence
    machine.stats.instructions -= 1
    found = machine.memory.get(103, 0)
    return machine.stats, found


def _cc_figure(stream_builder, expect_static: int):
    stream = stream_builder()
    static = len(stream) - 1  # minus the halt
    dynamics: List[int] = []
    branches: List[int] = []
    for rec, key, i in _CASES:
        stats, found = _run_cc(stream, rec, key, i)
        expected = 1 if (rec == key or i == 13) else 0
        assert found == expected, f"figure sequence computed {found}, wanted {expected}"
        dynamics.append(stats.instructions)
        branches.append(stats.branches)
    return static, sum(dynamics) / len(dynamics), sum(branches) / len(branches)


def figure1() -> ExperimentResult:
    """Full versus early-out boolean evaluation with condition codes."""
    full_static, full_dyn, full_br = _cc_figure(_figure1_full, 8)
    early_static, early_dyn, early_br = _cc_figure(_figure1_early_out, 6)
    rows = {
        "full evaluation: static": full_static,
        "full evaluation: avg executed": full_dyn,
        "full evaluation: branches executed": full_br,
        "early-out: static": early_static,
        "early-out: avg executed": early_dyn,
        "early-out: branches executed": early_br,
    }
    paper = {
        "full evaluation: static": 8,
        "full evaluation: avg executed": 7,
        "full evaluation: branches executed": 2,
        "early-out: static": 6,
        "early-out: avg executed": 4.25,
    }
    return ExperimentResult(
        "Figure 1", "Evaluating boolean expressions with condition codes", rows, paper
    )


def figure2() -> ExperimentResult:
    """Boolean expression evaluation using conditional set."""
    static, dyn, branches = _cc_figure(_figure2_conditional_set, 5)
    rows = {
        "static instructions": static,
        "dynamic instructions": dyn,
        "branches": branches,
    }
    paper = {"static instructions": 5, "dynamic instructions": 5, "branches": 0}
    return ExperimentResult(
        "Figure 2", "Boolean evaluation using conditional set (M68000)", rows, paper
    )


def figure3() -> ExperimentResult:
    """Boolean expression evaluation using MIPS set-conditionally."""
    rec, key, i, found = Reg(2), Reg(3), Reg(4), Reg(5)
    pieces = [
        SetCond(Comparison.EQ, rec, key, Reg(6)),
        SetCond(Comparison.EQ, i, Imm(13), Reg(7)),
        Alu(AluOp.OR, Reg(6), Reg(7), found),
    ]
    static = len(pieces)
    dynamics = []
    for rec_v, key_v, i_v in _CASES:
        cpu = Cpu()
        cpu.regs[rec.number], cpu.regs[key.number], cpu.regs[i.number] = rec_v, key_v, i_v
        for addr, piece in enumerate(pieces):
            cpu.memory.poke(addr, 0)  # placeholder; executed via words below
        # execute directly through the decode cache
        from ..isa.encoding import encode

        for addr, piece in enumerate(pieces + [Trap(0)]):
            word = InstructionWord.single(piece)
            cpu.memory.poke(addr, encode(word, addr))
        try:
            cpu.run(10)
        except TrapInstruction:
            pass
        expected = 1 if (rec_v == key_v or i_v == 13) else 0
        assert cpu.regs[found.number] == expected
        dynamics.append(cpu.stats.words - 1)  # minus the trap
    rows = {
        "static instructions": static,
        "dynamic instructions": sum(dynamics) / len(dynamics),
        "branches": 0,
    }
    paper = {"static instructions": 3, "dynamic instructions": 3, "branches": 0}
    return ExperimentResult(
        "Figure 3", "Boolean evaluation using set conditionally (MIPS)", rows, paper
    )


#: a transcription of Figure 4's "legal code" fragment (sub with the
#: constant first is our reverse subtract)
FIGURE4_SOURCE = """
start:  ld 2(ap), r0
        ble r0, #1, L11
        rsub #1, r0, r2
        st r2, 2(sp)
        ld 3(sp), r5
        add r5, r0, r0
        add #1, r4, r4
        jmp L3
L3:     add r0, r4, r1
        trap #0
L11:    mov #0, r1
        trap #0
"""


def figure4() -> ExperimentResult:
    """Reorganization, packing, and branch delay on the Figure 4 fragment."""
    stream = assemble_pieces(FIGURE4_SOURCE)
    rows: Dict[str, object] = {}
    for level in ALL_LEVELS:
        result = reorganize(stream, level)
        rows[f"{level.value}: static words"] = result.static_count
        rows[f"{level.value}: no-ops"] = result.noop_count
    final = reorganize(stream, OptLevel.BRANCH_DELAY)
    rows["reorganized listing"] = "\n" + final.listing()
    return ExperimentResult(
        "Figure 4",
        "Reorganization, packing, and branch delay (paper's fragment)",
        rows,
        notes="the paper's figure shows the same three transformations",
    )
