"""Architecture feature models behind Table 2.

Table 2 ("Condition code operations") classifies architectures by how
conditional control flow is materialized:

- does the architecture have condition codes at all;
- are they set on *operations* only, or on *moves* as well;
- is the condition consumed by a *conditional set* instruction, by a
  *branch*, or by direct *access* (PDP-10 style skip/test);
- or, with no condition codes, does the machine use compare-and-branch.

The table is reproduced by interrogating these models, and the models
are also the configuration presets for :class:`~repro.ccmachine.machine.CcMachine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from .isa import CcDiscipline


class CcSetRule(Enum):
    """What sets the condition code."""

    NONE = "no condition code"
    OPERATIONS = "set on operations"
    OPERATIONS_AND_MOVES = "set on moves and operations"


class CcUseRule(Enum):
    """How conditions reach control flow."""

    CONDITIONAL_SET = "conditional set"
    BRANCH = "branch"
    ACCESS = "access"
    COMPARE_AND_BRANCH = "compare and branch"


@dataclass(frozen=True)
class ArchitectureModel:
    """One architecture's condition-handling profile."""

    name: str
    set_rule: CcSetRule
    use_rule: CcUseRule

    @property
    def has_condition_codes(self) -> bool:
        return self.set_rule is not CcSetRule.NONE

    @property
    def has_conditional_set(self) -> bool:
        return self.use_rule is CcUseRule.CONDITIONAL_SET

    @property
    def discipline(self) -> Optional[CcDiscipline]:
        """The CC-machine simulator discipline matching this model."""
        if self.set_rule is CcSetRule.OPERATIONS:
            return CcDiscipline.OPERATIONS_ONLY
        if self.set_rule is CcSetRule.OPERATIONS_AND_MOVES:
            return CcDiscipline.OPERATIONS_AND_MOVES
        return None


#: The five architectures of Table 2.
M68000 = ArchitectureModel("M68000", CcSetRule.OPERATIONS, CcUseRule.CONDITIONAL_SET)
MIPS = ArchitectureModel("MIPS", CcSetRule.NONE, CcUseRule.CONDITIONAL_SET)
VAX = ArchitectureModel("VAX", CcSetRule.OPERATIONS_AND_MOVES, CcUseRule.BRANCH)
IBM360 = ArchitectureModel("360", CcSetRule.OPERATIONS, CcUseRule.BRANCH)
PDP10 = ArchitectureModel("PDP-10", CcSetRule.NONE, CcUseRule.ACCESS)

ALL_MODELS = (M68000, MIPS, VAX, IBM360, PDP10)


def table2() -> Dict[str, Dict[str, str]]:
    """Table 2 as a mapping: architecture -> its classification."""
    out: Dict[str, Dict[str, str]] = {}
    for model in ALL_MODELS:
        out[model.name] = {
            "condition code": "yes" if model.has_condition_codes else "no",
            "set rule": model.set_rule.value,
            "use rule": model.use_rule.value,
        }
    return out
