"""Mini-Pascal code generation for the condition-code baseline machine.

The same checked AST the MIPS compiler consumes, lowered to the CISC
CC architecture.  Three boolean-evaluation strategies correspond to the
paper's comparison (sections 2.3.1-2.3.2):

``FULL_EVAL``
    Every operand of ``and``/``or`` is evaluated and materialized with
    conditional branches (Figure 1, left column).
``EARLY_OUT``
    Short-circuit evaluation (Figure 1, right column).
``COND_SET``
    The M68000-style conditional-set instruction materializes each
    relation without branches (Figure 2).

Simple variables appear directly as memory operands (``cmp Rec, Key``),
as on the VAX.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..lang import ast
from ..lang.semantic import CheckedProgram, RoutineSymbol, VarSymbol
from ..lang.types import ArrayType, RecordType, Type
from .isa import (
    AbsAddr,
    Alu,
    Br,
    CcAluOp,
    CcCond,
    CcImm,
    CcInstr,
    CcMem,
    CcOperand,
    CcReg,
    Cmp,
    DispAddr,
    Halt,
    IdxAddr,
    Jsr,
    LabeledCcInstr,
    Move,
    Pop,
    Push,
    Rts,
    Scc,
    SysRead,
    SysWrite,
)
from .machine import CcMachine, CcProgram, resolve


class CcStrategy(Enum):
    FULL_EVAL = "full"
    EARLY_OUT = "early-out"
    COND_SET = "cond-set"


class CcCompileError(Exception):
    pass


_RELOP_TO_CC = {
    "=": CcCond.EQ,
    "<>": CcCond.NE,
    "<": CcCond.LT,
    "<=": CcCond.LE,
    ">": CcCond.GT,
    ">=": CcCond.GE,
}

_ARITH_TO_CC = {
    "+": CcAluOp.ADD,
    "-": CcAluOp.SUB,
    "*": CcAluOp.MUL,
    "div": CcAluOp.DIV,
    "mod": CcAluOp.MOD,
    "and": CcAluOp.AND,
    "or": CcAluOp.OR,
}

# r0 is the call-result register and lives outside the pool, so that
# restoring saved temporaries after a call can never clobber a result
TEMP_REGS = list(range(1, 12))
FP = CcMachine.FP
SP = CcMachine.SP
RESULT = CcReg(0)
GLOBALS_BASE = 8192


def _type_words(t: Type) -> int:
    if t.is_scalar:
        return 1
    if isinstance(t, ArrayType):
        return t.length * _type_words(t.element)
    if isinstance(t, RecordType):
        return sum(_type_words(ftype) for _name, ftype in t.fields) or 1
    raise CcCompileError(f"unsized type {t!r}")


def _field_offset(record: RecordType, name: str) -> int:
    offset = 0
    for fname, ftype in record.fields:
        if fname == name:
            return offset
        offset += _type_words(ftype)
    raise CcCompileError(f"no field {name!r}")


@dataclass
class _Place:
    kind: str  # 'global' | 'frame' | 'byref'
    addr: int = 0
    fp_offset: int = 0
    name: str = ""


class CcCodeGenerator:
    """Generates CC-machine code for one checked program."""

    def __init__(self, program: CheckedProgram, strategy: CcStrategy = CcStrategy.EARLY_OUT):
        self.program = program
        self.strategy = strategy
        self.stream: List[LabeledCcInstr] = []
        self._pending: Optional[str] = None
        self._labels = 0
        self.global_addrs: Dict[str, int] = {}
        addr = GLOBALS_BASE
        for name, symbol in program.globals.items():
            self.global_addrs[name] = addr
            addr += _type_words(symbol.type)
        self.globals_words = addr - GLOBALS_BASE
        self.places: Dict[str, _Place] = {}
        self.consts: Dict[str, int] = dict(program.consts)
        self._frame_slots = 0
        self._free_regs: List[int] = list(TEMP_REGS)
        self._epilogue = ""

    # -- plumbing ---------------------------------------------------------------

    def emit(self, instr: CcInstr) -> None:
        self.stream.append((self._pending, instr))
        self._pending = None

    def emit_label(self, name: str) -> None:
        if self._pending is not None:
            self.emit(Move(CcReg(0), CcReg(0)))
        self._pending = name

    def new_label(self, hint: str = "C") -> str:
        self._labels += 1
        return f"{hint}{self._labels}"

    def alloc(self) -> CcReg:
        if not self._free_regs:
            raise CcCompileError("out of CC-machine temporaries")
        return CcReg(self._free_regs.pop(0))

    def release(self, reg: CcReg) -> None:
        if reg.number in TEMP_REGS and reg.number not in self._free_regs:
            self._free_regs.insert(0, reg.number)

    def release_operand(self, operand: CcOperand) -> None:
        if isinstance(operand, CcReg):
            self.release(operand)
        elif isinstance(operand, CcMem) and isinstance(operand.addr, IdxAddr):
            self.release(operand.addr.base)

    # -- program ---------------------------------------------------------------------

    def generate(self) -> CcProgram:
        self.emit_label("start")
        self.emit(Move(SP, FP))
        self.places = {}
        self._frame_slots = 0
        self.consts = dict(self.program.consts)
        frame_fix = len(self.stream)
        self.emit(Alu(CcAluOp.SUB, CcImm(0), SP))
        self.gen_stmt(self.program.ast.body)
        self.emit(Halt())
        label, _ = self.stream[frame_fix]
        self.stream[frame_fix] = (label, Alu(CcAluOp.SUB, CcImm(self._frame_slots), SP))
        for routine in self.program.routines.values():
            self.gen_routine(routine)
        if self._pending is not None:
            self.emit(Move(CcReg(0), CcReg(0)))
        return resolve(self.stream)

    def gen_routine(self, symbol: RoutineSymbol) -> None:
        routine = symbol.ast_node
        assert routine is not None
        self.places = {}
        self._frame_slots = 0
        self._free_regs = list(TEMP_REGS)
        self._epilogue = f"{symbol.name}__ret"
        self.consts = dict(self.program.consts)
        self.consts.update({c.name: c.value for c in routine.consts})

        for i, param in enumerate(symbol.params):
            kind = "byref" if param.by_ref else "frame"
            self.places[param.name] = _Place(kind, fp_offset=2 + i, name=param.name)
        for local in symbol.locals:
            words = _type_words(local.type)
            first = self._frame_slots
            self._frame_slots += words
            self.places[local.name] = _Place(
                "frame", fp_offset=-(first + words), name=local.name
            )
        if symbol.is_function:
            slot = self._frame_slots
            self._frame_slots += 1
            self.places[symbol.name] = _Place(
                "frame", fp_offset=-(slot + 1), name=symbol.name
            )

        self.emit_label(symbol.name)
        self.emit(Push(FP))
        self.emit(Move(SP, FP))
        frame_fix = len(self.stream)
        self.emit(Alu(CcAluOp.SUB, CcImm(0), SP))  # patched below
        self.gen_stmt(routine.body)
        label, _ = self.stream[frame_fix]
        self.stream[frame_fix] = (label, Alu(CcAluOp.SUB, CcImm(self._frame_slots), SP))
        self.emit_label(self._epilogue)
        if symbol.is_function:
            place = self.places[symbol.name]
            self.emit(Move(CcMem(DispAddr(FP, place.fp_offset)), RESULT))
        self.emit(Move(FP, SP))
        self.emit(Pop(FP))
        self.emit(Rts())

    # -- locations --------------------------------------------------------------------

    def _place(self, name: str) -> _Place:
        if name in self.places:
            return self.places[name]
        if name in self.program.globals:
            return _Place("global", addr=self.global_addrs[name], name=name)
        raise CcCompileError(f"no storage for {name!r}")

    def loc_operand(self, expr: ast.Expr) -> CcOperand:
        """A memory operand for a designator (may evaluate subexpressions)."""
        if isinstance(expr, ast.VarRef):
            place = self._place(expr.name)
            if place.kind == "global":
                return CcMem(AbsAddr(place.addr, expr.name))
            if place.kind == "frame":
                return CcMem(DispAddr(FP, place.fp_offset))
            # byref: the slot holds the address
            reg = self.alloc()
            self.emit(Move(CcMem(DispAddr(FP, place.fp_offset)), reg))
            return CcMem(IdxAddr(reg))
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            array_type = expr.base.type  # type: ignore[attr-defined]
            assert isinstance(array_type, ArrayType)
            elem_words = _type_words(array_type.element)
            base = self.loc_operand(expr.base)
            index = self.gen_operand(expr.index)
            if isinstance(index, CcImm):
                offset = (index.value - array_type.low) * elem_words
                return self._offset_mem(base, offset)
            # dynamic index: address arithmetic in a register
            addr = self.alloc()
            self._lea(base, addr)
            idx_reg = self._to_reg(index)
            if array_type.low:
                self.emit(Alu(CcAluOp.SUB, CcImm(array_type.low), idx_reg))
            if elem_words != 1:
                self.emit(Alu(CcAluOp.MUL, CcImm(elem_words), idx_reg))
            self.emit(Alu(CcAluOp.ADD, idx_reg, addr))
            self.release(idx_reg)
            self.release_operand(base)
            return CcMem(IdxAddr(addr))
        if isinstance(expr, ast.FieldAccess):
            assert expr.base is not None
            record_type = expr.base.type  # type: ignore[attr-defined]
            assert isinstance(record_type, RecordType)
            base = self.loc_operand(expr.base)
            return self._offset_mem(base, _field_offset(record_type, expr.field_name))
        raise CcCompileError(f"not a designator: {expr!r}")

    def _offset_mem(self, base: CcOperand, offset: int) -> CcOperand:
        assert isinstance(base, CcMem)
        addr = base.addr
        if isinstance(addr, AbsAddr):
            return CcMem(AbsAddr(addr.addr + offset, addr.name))
        if isinstance(addr, DispAddr):
            return CcMem(DispAddr(addr.base, addr.offset + offset))
        # IdxAddr: fold the offset into the register
        if offset:
            self.emit(Alu(CcAluOp.ADD, CcImm(offset), addr.base))
        return base

    def _lea(self, mem: CcOperand, dst: CcReg) -> None:
        """Load the effective word address of a memory operand."""
        assert isinstance(mem, CcMem)
        addr = mem.addr
        if isinstance(addr, AbsAddr):
            self.emit(Move(CcImm(addr.addr), dst))
        elif isinstance(addr, DispAddr):
            self.emit(Move(addr.base, dst))
            if addr.offset:
                self.emit(Alu(CcAluOp.ADD, CcImm(addr.offset), dst))
        else:
            self.emit(Move(addr.base, dst))

    # -- expressions -----------------------------------------------------------------------

    def gen_operand(self, expr: ast.Expr) -> CcOperand:
        """An operand for the expression: immediate, memory, or register."""
        if isinstance(expr, ast.IntLit):
            return CcImm(expr.value)
        if isinstance(expr, ast.CharLit):
            return CcImm(expr.value)
        if isinstance(expr, ast.BoolLit):
            return CcImm(int(expr.value))
        if isinstance(expr, ast.VarRef):
            if getattr(expr, "implicit_call", False):
                return self.gen_call(expr.name, [], want_result=True)
            const = getattr(expr, "const_value", None)
            if const is None and expr.name in self.consts:
                const = self.consts[expr.name]
            if const is not None:
                return CcImm(const)
            return self.loc_operand(expr)
        if isinstance(expr, (ast.Index, ast.FieldAccess)):
            return self.loc_operand(expr)
        reg = self.gen_expr(expr)
        return reg

    def _to_reg(self, operand: CcOperand) -> CcReg:
        if isinstance(operand, CcReg):
            return operand
        reg = self.alloc()
        self.emit(Move(operand, reg))
        self.release_operand(operand)
        return reg

    def gen_expr(self, expr: ast.Expr) -> CcReg:
        """Evaluate an expression into a register."""
        if isinstance(expr, ast.BinOp):
            if expr.op in _RELOP_TO_CC or expr.op in ("and", "or"):
                return self.gen_bool_value(expr)
            assert expr.left is not None and expr.right is not None
            left = self._to_reg(self.gen_operand(expr.left))
            right = self.gen_operand(expr.right)
            self.emit(Alu(_ARITH_TO_CC[expr.op], right, left))
            self.release_operand(right)
            return left
        if isinstance(expr, ast.UnOp):
            assert expr.operand is not None
            if expr.op == "not":
                return self.gen_bool_value(expr)
            operand = self.gen_operand(expr.operand)
            reg = self._to_reg(operand)
            self.emit(Alu(CcAluOp.NEG, reg, reg))
            return reg
        if isinstance(expr, ast.CallExpr):
            return self.gen_call(expr.name, expr.args, want_result=True)
        operand = self.gen_operand(expr)
        return self._to_reg(operand)

    # -- boolean evaluation ----------------------------------------------------------

    def gen_branch(self, expr: ast.Expr, target: str, when_true: bool) -> None:
        """Branch to ``target`` iff expr == when_true (conditional contexts)."""
        if isinstance(expr, ast.BoolLit):
            if expr.value == when_true:
                self.emit(Br(CcCond.ALWAYS, target))
            return
        if isinstance(expr, ast.UnOp) and expr.op == "not":
            assert expr.operand is not None
            self.gen_branch(expr.operand, target, not when_true)
            return
        if isinstance(expr, ast.BinOp) and expr.op in _RELOP_TO_CC:
            assert expr.left is not None and expr.right is not None
            left = self.gen_operand(expr.left)
            right = self.gen_operand(expr.right)
            self.emit(Cmp(left, right))
            self.release_operand(left)
            self.release_operand(right)
            cond = _RELOP_TO_CC[expr.op]
            if not when_true:
                cond = cond.negated()
            self.emit(Br(cond, target))
            return
        if (
            isinstance(expr, ast.BinOp)
            and expr.op in ("and", "or")
            and self.strategy is CcStrategy.EARLY_OUT
        ):
            assert expr.left is not None and expr.right is not None
            if (expr.op == "or") == when_true:
                self.gen_branch(expr.left, target, when_true)
                self.gen_branch(expr.right, target, when_true)
            else:
                skip = self.new_label("Csc")
                self.gen_branch(expr.left, skip, not when_true)
                self.gen_branch(expr.right, target, when_true)
                self.emit_label(skip)
            return
        # general boolean value: zero-test it where it lives -- the VAX
        # tests memory operands directly, no move needed
        if isinstance(expr, ast.BinOp) or isinstance(expr, ast.UnOp):
            operand: CcOperand = self.gen_bool_value(expr)
        else:
            operand = self.gen_operand(expr)
        self.emit(Cmp(operand, CcImm(0)))
        self.release_operand(operand)
        self.emit(Br(CcCond.NE if when_true else CcCond.EQ, target))

    def gen_bool_value(self, expr: ast.Expr) -> CcReg:
        """Materialize a boolean expression as 0/1 in a register."""
        if isinstance(expr, ast.UnOp) and expr.op == "not":
            assert expr.operand is not None
            reg = self.gen_bool_value(expr.operand) if isinstance(
                expr.operand, (ast.BinOp, ast.UnOp)
            ) else self.gen_expr(expr.operand)
            self.emit(Alu(CcAluOp.NOT, reg, reg))
            return reg
        if isinstance(expr, ast.BinOp) and expr.op in _RELOP_TO_CC:
            assert expr.left is not None and expr.right is not None
            left = self.gen_operand(expr.left)
            right = self.gen_operand(expr.right)
            if self.strategy is CcStrategy.COND_SET:
                # cmp; scc -- branch-free (Figure 2)
                self.emit(Cmp(left, right))
                self.release_operand(left)
                self.release_operand(right)
                out = self.alloc()
                self.emit(Scc(_RELOP_TO_CC[expr.op], out))
                return out
            # branch materialization (Figure 1)
            out = self.alloc()
            done = self.new_label("Cb")
            self.emit(Move(CcImm(1), out))
            self.emit(Cmp(left, right))
            self.release_operand(left)
            self.release_operand(right)
            self.emit(Br(_RELOP_TO_CC[expr.op], done))
            self.emit(Move(CcImm(0), out))
            self.emit_label(done)
            return out
        if isinstance(expr, ast.BinOp) and expr.op in ("and", "or"):
            assert expr.left is not None and expr.right is not None
            if self.strategy is CcStrategy.EARLY_OUT:
                out = self.alloc()
                done = self.new_label("Cb")
                self.emit(Move(CcImm(1), out))
                self.gen_branch(expr, done, True)
                self.emit(Move(CcImm(0), out))
                self.emit_label(done)
                return out
            # full evaluation / conditional set: evaluate both, combine
            left = self.gen_bool_value(expr.left) if isinstance(
                expr.left, (ast.BinOp, ast.UnOp)
            ) else self.gen_expr(expr.left)
            right = self.gen_bool_value(expr.right) if isinstance(
                expr.right, (ast.BinOp, ast.UnOp)
            ) else self.gen_expr(expr.right)
            self.emit(Alu(CcAluOp.AND if expr.op == "and" else CcAluOp.OR, right, left))
            self.release(right)
            return left
        return self.gen_expr(expr)

    # -- calls -----------------------------------------------------------------------------

    def gen_call(self, name: str, args: List[ast.Expr], want_result: bool) -> CcReg:
        if name in ("ord", "chr", "abs", "odd"):
            return self._gen_builtin(name, args)
        routine = self.program.routines.get(name)
        if routine is None:
            raise CcCompileError(f"undefined routine {name!r}")
        # caller-saves: push live temporaries around the call
        saved = [n for n in TEMP_REGS if n not in self._free_regs]
        for n in saved:
            self.emit(Push(CcReg(n)))
        for arg, param in reversed(list(zip(args, routine.params))):
            if param.by_ref:
                mem = self.loc_operand(arg)
                reg = self.alloc()
                self._lea(mem, reg)
                self.release_operand(mem)
                self.emit(Push(reg))
                self.release(reg)
            else:
                operand = self.gen_operand(arg)
                self.emit(Push(operand))
                self.release_operand(operand)
        self.emit(Jsr(name))
        if args:
            self.emit(Alu(CcAluOp.ADD, CcImm(len(args)), SP))
        for n in reversed(saved):
            self.emit(Pop(CcReg(n)))
        out = self.alloc()
        if want_result:
            self.emit(Move(RESULT, out))
        return out

    def _gen_builtin(self, name: str, args: List[ast.Expr]) -> CcReg:
        reg = self._to_reg(self.gen_operand(args[0]))
        if name in ("ord", "chr"):
            return reg
        if name == "odd":
            self.emit(Alu(CcAluOp.AND, CcImm(1), reg))
            return reg
        done = self.new_label("Cabs")
        self.emit(Cmp(reg, CcImm(0)))
        self.emit(Br(CcCond.GE, done))
        self.emit(Alu(CcAluOp.NEG, reg, reg))
        self.emit_label(done)
        return reg

    # -- statements ---------------------------------------------------------------------------

    def gen_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Compound):
            for inner in stmt.body:
                self.gen_stmt(inner)
        elif isinstance(stmt, ast.Assign):
            assert stmt.target is not None and stmt.value is not None
            value = self.gen_operand(stmt.value)
            target = self.loc_operand(stmt.target)
            self.emit(Move(value, target))
            self.release_operand(value)
            self.release_operand(target)
        elif isinstance(stmt, ast.CallStmt):
            out = self.gen_call(stmt.name, stmt.args, want_result=False)
            self.release(out)
        elif isinstance(stmt, ast.If):
            assert stmt.cond is not None
            if stmt.else_branch is None:
                done = self.new_label("Cif")
                self.gen_branch(stmt.cond, done, False)
                self.gen_stmt(stmt.then_branch)
                self.emit_label(done)
            else:
                otherwise = self.new_label("Celse")
                done = self.new_label("Cif")
                self.gen_branch(stmt.cond, otherwise, False)
                self.gen_stmt(stmt.then_branch)
                self.emit(Br(CcCond.ALWAYS, done))
                self.emit_label(otherwise)
                self.gen_stmt(stmt.else_branch)
                self.emit_label(done)
        elif isinstance(stmt, ast.While):
            assert stmt.cond is not None
            top = self.new_label("Cwh")
            done = self.new_label("Cwe")
            self.emit_label(top)
            self.gen_branch(stmt.cond, done, False)
            self.gen_stmt(stmt.body)
            self.emit(Br(CcCond.ALWAYS, top))
            self.emit_label(done)
        elif isinstance(stmt, ast.Repeat):
            top = self.new_label("Crp")
            self.emit_label(top)
            for inner in stmt.body:
                self.gen_stmt(inner)
            assert stmt.cond is not None
            self.gen_branch(stmt.cond, top, False)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Write):
            self._gen_write(stmt)
        elif isinstance(stmt, ast.Read):
            assert stmt.target is not None
            target = self.loc_operand(stmt.target)
            self.emit(SysRead(target))
            self.release_operand(target)
        else:
            raise CcCompileError(f"unhandled statement {stmt!r}")

    def _gen_for(self, stmt: ast.For) -> None:
        assert stmt.start is not None and stmt.stop is not None
        var = ast.VarRef(stmt.line, stmt.var)
        var_mem = self.loc_operand(var)
        start = self.gen_operand(stmt.start)
        self.emit(Move(start, var_mem))
        self.release_operand(start)
        stop = self.gen_operand(stmt.stop)
        stop_keep: CcOperand = stop
        if not isinstance(stop, CcImm):
            slot = self._frame_slots  # a hidden frame slot below locals
            self._frame_slots += 1
            stop_keep = CcMem(DispAddr(FP, -(slot + 1)))
            self.emit(Move(stop, stop_keep))
            self.release_operand(stop)
        top = self.new_label("Cfor")
        done = self.new_label("Cfe")
        self.emit_label(top)
        self.emit(Cmp(var_mem, stop_keep))
        self.emit(Br(CcCond.LT if stmt.downto else CcCond.GT, done))
        self.gen_stmt(stmt.body)
        self.emit(Alu(CcAluOp.SUB if stmt.downto else CcAluOp.ADD, CcImm(1), var_mem))
        self.emit(Br(CcCond.ALWAYS, top))
        self.emit_label(done)
        self.release_operand(var_mem)

    def _gen_write(self, stmt: ast.Write) -> None:
        from ..lang.types import CHAR

        for arg in stmt.args:
            if isinstance(arg, ast.StringLit):
                for ch in arg.value:
                    self.emit(SysWrite(CcImm(ord(ch)), "char"))
                continue
            operand = self.gen_operand(arg)
            kind = "char" if getattr(arg, "type", None) == CHAR else "int"
            self.emit(SysWrite(operand, kind))
            self.release_operand(operand)
        if stmt.newline:
            self.emit(SysWrite(CcImm(10), "char"))


def compile_cc(
    program: CheckedProgram, strategy: CcStrategy = CcStrategy.EARLY_OUT
) -> CcProgram:
    """Compile a checked program for the CC machine."""
    generator = CcCodeGenerator(program, strategy)
    cc_program = generator.generate()
    cc_program.global_addrs = dict(generator.global_addrs)
    return cc_program


def compile_cc_source(source: str, strategy: CcStrategy = CcStrategy.EARLY_OUT) -> CcProgram:
    from ..lang.semantic import analyze

    return compile_cc(analyze(source), strategy)
