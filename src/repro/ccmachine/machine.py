"""Simulator for the condition-code baseline machine.

Sequential (no delayed branches -- this is the conventional-machine
foil), with instruction-mix statistics and the paper's Table 6 cost
model: "register operations take time 1, compares take time 2, and
branches take time 4".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..isa.bits import s32, u32
from .isa import (
    AbsAddr,
    Alu,
    Br,
    CcAluOp,
    CcCond,
    CcDiscipline,
    CcImm,
    CcInstr,
    CcMem,
    CcOperand,
    CcReg,
    Cmp,
    DispAddr,
    Halt,
    IdxAddr,
    Jsr,
    LabeledCcInstr,
    Move,
    Pop,
    Push,
    Rts,
    Scc,
    SysRead,
    SysWrite,
)

#: Table 6 cost weights
COST_REGISTER_OP = 1
COST_COMPARE = 2
COST_BRANCH = 4


class CcMachineError(Exception):
    pass


@dataclass
class CcProgram:
    """Resolved CC-machine code plus its symbol table."""

    instrs: List[CcInstr]
    symbols: Dict[str, int]
    entry: int = 0
    global_addrs: Dict[str, int] = field(default_factory=dict)

    @property
    def static_count(self) -> int:
        return len(self.instrs)

    def listing(self) -> str:
        label_at = {v: k for k, v in self.symbols.items()}
        return "\n".join(
            f"{i:5d}  {label_at.get(i, '') + ':' if i in label_at else '':14s}{ins!r}"
            for i, ins in enumerate(self.instrs)
        )


def resolve(stream: List[LabeledCcInstr], entry_symbol: str = "start") -> CcProgram:
    """Resolve labels in a CC instruction stream."""
    symbols: Dict[str, int] = {}
    instrs: List[CcInstr] = []
    for label, instr in stream:
        if label is not None:
            if label in symbols:
                raise CcMachineError(f"label {label!r} redefined")
            symbols[label] = len(instrs)
        instrs.append(instr)
    resolved: List[CcInstr] = []
    for instr in instrs:
        if isinstance(instr, (Br, Jsr)) and isinstance(instr.target, str):
            if instr.target not in symbols:
                raise CcMachineError(f"undefined label {instr.target!r}")
            if isinstance(instr, Br):
                resolved.append(Br(instr.cond, symbols[instr.target]))
            else:
                resolved.append(Jsr(symbols[instr.target]))
        else:
            resolved.append(instr)
    return CcProgram(resolved, symbols, symbols.get(entry_symbol, 0))


@dataclass
class CcStats:
    """Dynamic instruction-mix counters."""

    instructions: int = 0
    moves: int = 0
    alu_ops: int = 0
    compares: int = 0
    branches: int = 0
    branches_taken: int = 0
    scc_ops: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    calls: int = 0

    @property
    def weighted_cost(self) -> float:
        """The Table 6 cost model over the executed mix.

        Compares cost 2, branch instructions 4, everything else 1.
        """
        others = self.instructions - self.compares - self.branches
        return (
            others * COST_REGISTER_OP
            + self.compares * COST_COMPARE
            + self.branches * COST_BRANCH
        )


class CcMachine:
    """Executes a resolved CC program."""

    NUM_REGS = 16
    FP = CcReg(13)
    SP = CcReg(14)

    def __init__(
        self,
        program: CcProgram,
        discipline: CcDiscipline = CcDiscipline.OPERATIONS_AND_MOVES,
        memory_size: int = 1 << 20,
        inputs: Optional[List[int]] = None,
    ):
        self.program = program
        self.discipline = discipline
        self.regs = [0] * self.NUM_REGS
        self.memory: Dict[int, int] = {}
        self.memory_size = memory_size
        self.pc = program.entry
        self.cc_n = False
        self.cc_z = True
        self.stats = CcStats()
        self.output: List[int] = []
        self.char_output: List[str] = []
        self.inputs = list(inputs or [])
        self.halted = False
        self.regs[self.SP.number] = memory_size - 1

    # -- operand access ---------------------------------------------------------

    def _ea(self, addr) -> int:
        if isinstance(addr, AbsAddr):
            return addr.addr
        if isinstance(addr, DispAddr):
            return u32(self.regs[addr.base.number] + addr.offset)
        if isinstance(addr, IdxAddr):
            return self.regs[addr.base.number]
        raise CcMachineError(f"bad address {addr!r}")

    def read(self, operand: CcOperand) -> int:
        if isinstance(operand, CcImm):
            return u32(operand.value)
        if isinstance(operand, CcReg):
            return self.regs[operand.number]
        ea = self._ea(operand.addr)
        self.stats.memory_reads += 1
        return self.memory.get(ea, 0)

    def write(self, operand: CcOperand, value: int) -> None:
        value = u32(value)
        if isinstance(operand, CcReg):
            self.regs[operand.number] = value
            return
        if isinstance(operand, CcMem):
            ea = self._ea(operand.addr)
            if not 0 <= ea < self.memory_size:
                raise CcMachineError(f"store outside memory: {ea:#x}")
            self.stats.memory_writes += 1
            self.memory[ea] = value
            return
        raise CcMachineError(f"cannot write {operand!r}")

    # -- condition code -----------------------------------------------------------

    def set_cc(self, value: int) -> None:
        self.cc_n = s32(value) < 0
        self.cc_z = u32(value) == 0

    def cond_true(self, cond: CcCond) -> bool:
        if cond is CcCond.ALWAYS:
            return True
        if cond is CcCond.EQ:
            return self.cc_z
        if cond is CcCond.NE:
            return not self.cc_z
        if cond is CcCond.LT:
            return self.cc_n
        if cond is CcCond.GE:
            return not self.cc_n
        if cond is CcCond.LE:
            return self.cc_n or self.cc_z
        return not (self.cc_n or self.cc_z)  # GT

    # -- execution --------------------------------------------------------------------

    def _alu(self, op: CcAluOp, src: int, dst: int) -> int:
        a, b = s32(dst), s32(src)
        if op is CcAluOp.ADD:
            return u32(a + b)
        if op is CcAluOp.SUB:
            return u32(a - b)
        if op is CcAluOp.MUL:
            return u32(a * b)
        if op is CcAluOp.DIV:
            if b == 0:
                raise CcMachineError("division by zero")
            q = abs(a) // abs(b)
            return u32(q if (a < 0) == (b < 0) else -q)
        if op is CcAluOp.MOD:
            if b == 0:
                raise CcMachineError("division by zero")
            q = abs(a) // abs(b)
            q = q if (a < 0) == (b < 0) else -q
            return u32(a - q * b)
        if op is CcAluOp.AND:
            return u32(a & b)
        if op is CcAluOp.OR:
            return u32(a | b)
        if op is CcAluOp.XOR:
            return u32(a ^ b)
        if op is CcAluOp.SLL:
            return u32(u32(a) << (b & 31))
        if op is CcAluOp.SRA:
            return u32(a >> (b & 31))
        if op is CcAluOp.NEG:
            return u32(-b)
        if op is CcAluOp.NOT:
            return u32(1 - (b & 1))
        raise CcMachineError(f"bad ALU op {op}")

    def step(self) -> None:
        if not 0 <= self.pc < len(self.program.instrs):
            raise CcMachineError(f"pc out of range: {self.pc}")
        instr = self.program.instrs[self.pc]
        self.stats.instructions += 1
        next_pc = self.pc + 1

        if isinstance(instr, Move):
            self.stats.moves += 1
            value = self.read(instr.src)
            self.write(instr.dst, value)
            if instr.sets_cc(self.discipline):
                self.set_cc(value)
        elif isinstance(instr, Alu):
            self.stats.alu_ops += 1
            result = self._alu(instr.op, self.read(instr.src), self.read(instr.dst))
            self.write(instr.dst, result)
            self.set_cc(result)
        elif isinstance(instr, Cmp):
            self.stats.compares += 1
            # VAX-style compare: N/Z reflect the exact signed relation,
            # not the wrapped subtraction -- N from a 32-bit a-b is wrong
            # when the difference overflows (e.g. 2 vs INT_MIN+1), which
            # an N-only condition model cannot recover from
            a, b = s32(self.read(instr.a)), s32(self.read(instr.b))
            self.cc_n = a < b
            self.cc_z = a == b
        elif isinstance(instr, Br):
            self.stats.branches += 1
            if self.cond_true(instr.cond):
                self.stats.branches_taken += 1
                next_pc = int(instr.target)
        elif isinstance(instr, Scc):
            self.stats.scc_ops += 1
            self.write(instr.dst, 1 if self.cond_true(instr.cond) else 0)
        elif isinstance(instr, Jsr):
            self.stats.calls += 1
            sp = self.regs[self.SP.number] - 1
            self.regs[self.SP.number] = sp
            self.memory[sp] = next_pc
            self.stats.memory_writes += 1
            next_pc = int(instr.target)
        elif isinstance(instr, Rts):
            sp = self.regs[self.SP.number]
            next_pc = self.memory.get(sp, 0)
            self.stats.memory_reads += 1
            self.regs[self.SP.number] = sp + 1
        elif isinstance(instr, Push):
            sp = self.regs[self.SP.number] - 1
            self.regs[self.SP.number] = sp
            self.memory[sp] = self.read(instr.src)
            self.stats.memory_writes += 1
        elif isinstance(instr, Pop):
            sp = self.regs[self.SP.number]
            self.stats.memory_reads += 1
            self.write(instr.dst, self.memory.get(sp, 0))
            self.regs[self.SP.number] = sp + 1
        elif isinstance(instr, Halt):
            self.halted = True
            return
        elif isinstance(instr, SysWrite):
            value = self.read(instr.src)
            if instr.kind == "char":
                self.char_output.append(chr(value & 0xFF))
            else:
                self.output.append(s32(value))
        elif isinstance(instr, SysRead):
            self.write(instr.dst, self.inputs.pop(0) if self.inputs else 0)
        else:
            raise CcMachineError(f"unexecutable {instr!r}")

        self.pc = next_pc

    def run(self, max_steps: int = 5_000_000) -> CcStats:
        for _ in range(max_steps):
            if self.halted:
                return self.stats
            self.step()
        raise TimeoutError(f"CC program did not halt within {max_steps} steps")

    @property
    def output_text(self) -> str:
        return "".join(self.char_output)
