"""The condition-code baseline architecture.

The paper's argument against condition codes (section 2.3) is made by
comparison with the era's CC machines: the VAX (sets CC on operations
*and* moves), the IBM 360 (operations only), and the M68000 (operations
plus a conditional-set instruction ``scc``).  This module models that
family: a two-address register/memory architecture whose instructions
update a condition-code register as a side effect, per a configurable
*discipline*.

The machine is deliberately CISC-flavored: ``cmp Rec, Key`` may name
memory operands directly, matching the paper's Figure 1 code.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple, Union


class CcDiscipline(Enum):
    """Which instructions set the condition code (Table 2's columns)."""

    OPERATIONS_ONLY = "operations"          # 360-like
    OPERATIONS_AND_MOVES = "operations+moves"  # VAX-like


class CcCond(Enum):
    """Branch/set conditions decoded from the N/Z condition bits."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    ALWAYS = "t"

    def negated(self) -> "CcCond":
        return _NEGATED[self]


_NEGATED = {
    CcCond.EQ: CcCond.NE,
    CcCond.NE: CcCond.EQ,
    CcCond.LT: CcCond.GE,
    CcCond.LE: CcCond.GT,
    CcCond.GT: CcCond.LE,
    CcCond.GE: CcCond.LT,
    CcCond.ALWAYS: CcCond.ALWAYS,
}


class CcAluOp(Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"    # the CISC machine has multiply/divide in hardware
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRA = "sra"
    NEG = "neg"    # unary: dst = -src
    NOT = "not"    # unary (logical): dst = 1 - src for 0/1 booleans


# -- operands -----------------------------------------------------------------


@dataclass(frozen=True)
class CcReg:
    number: int

    def __repr__(self) -> str:
        return f"r{self.number}"


@dataclass(frozen=True)
class CcImm:
    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class AbsAddr:
    addr: int
    name: str = ""  # symbol, for listings

    def __repr__(self) -> str:
        return self.name or f"@{self.addr}"


@dataclass(frozen=True)
class DispAddr:
    base: CcReg
    offset: int

    def __repr__(self) -> str:
        return f"{self.offset}({self.base!r})"


@dataclass(frozen=True)
class IdxAddr:
    base: CcReg  # holds a word address

    def __repr__(self) -> str:
        return f"({self.base!r})"


CcAddr = Union[AbsAddr, DispAddr, IdxAddr]


@dataclass(frozen=True)
class CcMem:
    addr: CcAddr

    def __repr__(self) -> str:
        return repr(self.addr)


CcOperand = Union[CcReg, CcImm, CcMem]


# -- instructions ------------------------------------------------------------------


class CcInstr:
    """Base class; classification flags drive the instruction-mix stats."""

    is_move = False
    is_alu = False
    is_compare = False
    is_branch = False
    is_scc = False

    def sets_cc(self, discipline: CcDiscipline) -> bool:
        if self.is_compare or self.is_alu:
            return True
        if self.is_move:
            return discipline is CcDiscipline.OPERATIONS_AND_MOVES
        return False

    def cc_source(self) -> Optional["CcOperand"]:
        """The destination whose value determines the CC, if any."""
        return None


@dataclass(frozen=True)
class Move(CcInstr):
    """``mov src, dst`` -- register, immediate, or memory on either side."""

    src: CcOperand
    dst: CcOperand
    is_move = True

    def cc_source(self):
        return self.dst

    def __repr__(self) -> str:
        return f"mov {self.src!r},{self.dst!r}"


@dataclass(frozen=True)
class Alu(CcInstr):
    """Two-address ALU: ``dst := dst OP src`` (``NEG``/``NOT``: ``dst := OP src``)."""

    op: CcAluOp
    src: CcOperand
    dst: CcOperand
    is_alu = True

    def cc_source(self):
        return self.dst

    def __repr__(self) -> str:
        return f"{self.op.value} {self.src!r},{self.dst!r}"


@dataclass(frozen=True)
class Cmp(CcInstr):
    """``cmp a, b``: set the CC from ``a - b``; no other effect."""

    a: CcOperand
    b: CcOperand
    is_compare = True

    def __repr__(self) -> str:
        return f"cmp {self.a!r},{self.b!r}"


@dataclass(frozen=True)
class Br(CcInstr):
    """Conditional branch on the condition code."""

    cond: CcCond
    target: Union[str, int]
    is_branch = True

    def __repr__(self) -> str:
        return f"b{self.cond.value} {self.target}"


@dataclass(frozen=True)
class Scc(CcInstr):
    """Conditional set (M68000 ``scc``): ``dst := cond(CC) ? 1 : 0``."""

    cond: CcCond
    dst: CcOperand
    is_scc = True

    def __repr__(self) -> str:
        return f"s{self.cond.value} {self.dst!r}"


@dataclass(frozen=True)
class Jsr(CcInstr):
    """Call: push the return address, jump."""

    target: Union[str, int]

    def __repr__(self) -> str:
        return f"jsr {self.target}"


@dataclass(frozen=True)
class Rts(CcInstr):
    """Return: pop the return address."""

    def __repr__(self) -> str:
        return "rts"


@dataclass(frozen=True)
class Push(CcInstr):
    src: CcOperand

    def __repr__(self) -> str:
        return f"push {self.src!r}"


@dataclass(frozen=True)
class Pop(CcInstr):
    dst: CcOperand

    def __repr__(self) -> str:
        return f"pop {self.dst!r}"


@dataclass(frozen=True)
class Halt(CcInstr):
    def __repr__(self) -> str:
        return "halt"


@dataclass(frozen=True)
class SysWrite(CcInstr):
    """Write the value of ``src`` (kind: 'int' or 'char')."""

    src: CcOperand
    kind: str = "int"

    def __repr__(self) -> str:
        return f"sys.write.{self.kind} {self.src!r}"


@dataclass(frozen=True)
class SysRead(CcInstr):
    dst: CcOperand

    def __repr__(self) -> str:
        return f"sys.read {self.dst!r}"


LabeledCcInstr = Tuple[Optional[str], CcInstr]
