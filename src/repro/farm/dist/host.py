"""The shard host: one box's worth of the distributed farm.

``mips-farm host`` runs this process next to the data -- it listens on
a TCP port, announces itself with the protocol banner, and then serves
one coordinator session at a time: jobs arrive as ``dispatch``
messages, run on the **same forked worker pool the single-box farm
uses** (:func:`repro.farm.scheduler._worker_main`, byte-identical
records by construction), and stream back as ``result`` messages in
completion order.

The host is deliberately passive about policy: it answers ``ping``
with its queue depths, gives back *unstarted* jobs when the
coordinator asks to ``steal``, and enforces each job's wall budget
locally (kill the worker, return a retryable timeout record) -- but
retries, backoff, placement, and reclamation all live in the
coordinator, so a host that dies loses nothing that cannot be
recomputed elsewhere.

Where forking is unavailable the pool degrades to in-process threads:
results are identical (same executor), only isolation is weaker -- a
hung job can then only be *recorded* as timed out, not killed.
"""

from __future__ import annotations

import os
import socket
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..scheduler import _pick_context, _worker_main
from ..worker import execute_job, wall_timeout_record
from .protocol import (
    ConnectionLost,
    HandshakeError,
    JsonlConnection,
    hello_banner,
)

#: how long the host waits for the coordinator's hello_ack
ACK_TIMEOUT_S = 5.0
#: readiness-loop tick when nothing else bounds it
POLL_S = 0.25


@dataclass
class _QueuedJob:
    seq: int
    index: int
    attempt: int
    job: Dict[str, Any]
    budget_s: float


@dataclass
class _PoolWorker:
    process: Any
    conn: Any
    current: Optional[_QueuedJob] = None
    deadline: float = 0.0

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(1.0)


def _worker_entry(conn, close_fds: Tuple[int, ...]) -> None:
    # forked children inherit the host's listener and session sockets;
    # close them so a SIGKILLed host produces an immediate EOF at the
    # coordinator instead of waiting out the heartbeat timeout
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    _worker_main(conn)


class ForkPool:
    """N forked workers over duplex pipes (the single-box pool, reused)."""

    def __init__(self, size: int, close_fds: Tuple[int, ...] = ()):
        self.size = size
        self.close_fds = close_fds
        self._ctx = _pick_context()
        self._idle: List[_PoolWorker] = []
        self._busy: List[_PoolWorker] = []

    def idle_slots(self) -> int:
        return self.size - len(self._busy)

    def running(self) -> int:
        return len(self._busy)

    def wait_objects(self) -> List[Any]:
        return [w.conn for w in self._busy]

    def next_deadline(self) -> Optional[float]:
        return min((w.deadline for w in self._busy), default=None)

    def dispatch(self, item: _QueuedJob) -> None:
        if self._idle:
            worker = self._idle.pop()
        else:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_worker_entry, args=(child_conn, self.close_fds), daemon=True
            )
            process.start()
            child_conn.close()
            worker = _PoolWorker(process=process, conn=parent_conn)
        worker.current = item
        worker.deadline = time.monotonic() + item.budget_s
        worker.conn.send(("job", item.seq, item.attempt, item.job))
        self._busy.append(worker)

    def collect(self, now: float) -> List[Tuple[_QueuedJob, Dict[str, Any]]]:
        """Completed and deadline-blown jobs, as (item, record) pairs."""
        from multiprocessing.connection import wait as conn_wait

        finished: List[Tuple[_QueuedJob, Dict[str, Any]]] = []
        readable = conn_wait([w.conn for w in self._busy], timeout=0) if self._busy else []
        for worker in [w for w in self._busy if w.conn in readable]:
            item = worker.current
            try:
                _seq, _attempt, record = worker.conn.recv()
            except (EOFError, OSError):
                # the worker died mid-job: report a crash-shaped record
                # (retryable) and respawn lazily on the next dispatch
                from ..worker import crash_record

                worker.kill()
                self._busy.remove(worker)
                finished.append(
                    (item, crash_record(item.job, item.attempt,
                                        f"worker exited with code {worker.process.exitcode}"))
                )
                continue
            worker.current = None
            self._busy.remove(worker)
            self._idle.append(worker)
            finished.append((item, record))
        for worker in [w for w in self._busy if w.deadline <= now]:
            item = worker.current
            worker.kill()
            self._busy.remove(worker)
            finished.append((item, wall_timeout_record(item.job, item.attempt, item.budget_s)))
        return finished

    def stop(self) -> None:
        for worker in self._idle:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._idle + self._busy:
            worker.kill()
        self._idle, self._busy = [], []


class ThreadPool:
    """In-process fallback when the sandbox forbids forking.

    Same executor (:func:`repro.farm.worker.execute_job`), weaker
    isolation: a job past its budget is *recorded* as timed out and its
    thread abandoned (threads cannot be killed), so only use this where
    fork genuinely is unavailable.
    """

    def __init__(self, size: int):
        from concurrent.futures import ThreadPoolExecutor

        self.size = size
        self._executor = ThreadPoolExecutor(max_workers=size, thread_name_prefix="shard-job")
        self._running: List[Tuple[_QueuedJob, Any, float]] = []

    def idle_slots(self) -> int:
        return self.size - len(self._running)

    def running(self) -> int:
        return len(self._running)

    def wait_objects(self) -> List[Any]:
        return []

    def next_deadline(self) -> Optional[float]:
        return min((deadline for _i, _f, deadline in self._running), default=None)

    def dispatch(self, item: _QueuedJob) -> None:
        future = self._executor.submit(execute_job, item.job, item.attempt, True)
        self._running.append((item, future, time.monotonic() + item.budget_s))

    def collect(self, now: float) -> List[Tuple[_QueuedJob, Dict[str, Any]]]:
        finished = []
        still = []
        for item, future, deadline in self._running:
            if future.done():
                finished.append((item, future.result()))
            elif deadline <= now:
                finished.append((item, wall_timeout_record(item.job, item.attempt, item.budget_s)))
            else:
                still.append((item, future, deadline))
        self._running = still
        return finished

    def stop(self) -> None:
        self._executor.shutdown(wait=False)
        self._running = []


def _make_pool(workers: int, close_fds: Tuple[int, ...] = ()):
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods() and not os.environ.get(
        "REPRO_FARM_SERIAL"
    ):
        try:
            return ForkPool(workers, close_fds=close_fds)
        except OSError:  # pragma: no cover - environment forbids processes
            pass
    return ThreadPool(workers)


@dataclass
class HostStats:
    """What one host session did (reported in every pong)."""

    jobs_run: int = 0
    stolen_away: int = 0
    timeouts: int = 0


class ShardHost:
    """One listening shard host; serves coordinator sessions in turn."""

    def __init__(self, port: int = 0, bind: str = "127.0.0.1", workers: int = 1,
                 host_id: Optional[str] = None):
        self.workers = max(1, workers)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((bind, port))
        self._listener.listen(4)
        self.bind, self.port = self._listener.getsockname()[:2]
        self.host_id = host_id or f"{self.bind}:{self.port}"
        self.stats = HostStats()
        self._stop = False

    # -- lifecycle ---------------------------------------------------------

    def announce(self) -> str:
        return (
            f"mips-farm host: listening on {self.bind}:{self.port} "
            f"(workers={self.workers}, pid={os.getpid()})"
        )

    def serve_forever(self) -> None:
        while not self._stop:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            conn = JsonlConnection(sock)
            try:
                self._session(conn)
            except (ConnectionLost, HandshakeError):
                pass  # the coordinator went away; keep listening
            finally:
                conn.close()

    def close(self) -> None:
        self._stop = True
        try:
            self._listener.close()
        except OSError:
            pass

    # -- one coordinator session -------------------------------------------

    def _session(self, conn: JsonlConnection) -> None:
        conn.send(hello_banner(self.workers, self.host_id))
        ack = conn.receive(ACK_TIMEOUT_S)
        if ack.get("type") == "error":
            # the coordinator rejected our banner; its reason is
            # authoritative -- log and go back to listening
            print(f"mips-farm host: rejected by coordinator: {ack.get('reason')}",
                  file=sys.stderr)
            return
        if ack.get("type") != "hello_ack":
            raise HandshakeError(f"expected hello_ack, got {ack.get('type')!r}")
        pool = _make_pool(
            self.workers, close_fds=(self._listener.fileno(), conn.sock.fileno())
        )
        queue: deque = deque()
        try:
            self._serve_session(conn, pool, queue)
        finally:
            pool.stop()

    def _serve_session(self, conn: JsonlConnection, pool, queue: deque) -> None:
        from multiprocessing.connection import wait as conn_wait

        while True:
            while queue and pool.idle_slots() > 0:
                pool.dispatch(queue.popleft())

            now = time.monotonic()
            deadline = pool.next_deadline()
            timeout = POLL_S if deadline is None else max(0.0, min(deadline - now, POLL_S))
            readable = conn_wait([conn.sock] + pool.wait_objects(), timeout=timeout)

            if conn.sock in readable:
                for message in conn.drain():  # raises ConnectionLost on EOF
                    if not self._handle(conn, pool, queue, message):
                        return

            for item, record in pool.collect(time.monotonic()):
                self.stats.jobs_run += 1
                if record.get("status") == "timeout" and record.get("retryable"):
                    self.stats.timeouts += 1
                conn.send(
                    {
                        "type": "result",
                        "seq": item.seq,
                        "index": item.index,
                        "attempt": item.attempt,
                        "record": record,
                    }
                )

    def _handle(self, conn, pool, queue: deque, message: Dict[str, Any]) -> bool:
        kind = message.get("type")
        if kind == "dispatch":
            queue.append(
                _QueuedJob(
                    seq=int(message["seq"]),
                    index=int(message["index"]),
                    attempt=int(message["attempt"]),
                    job=dict(message["job"]),
                    budget_s=float(message["budget_s"]),
                )
            )
        elif kind == "steal":
            # give back *unstarted* work only, newest-queued first: the
            # jobs least likely to start here soonest travel best
            wanted = max(0, int(message.get("count", 0)))
            stolen: List[int] = []
            while queue and len(stolen) < wanted:
                stolen.append(queue.pop().seq)
            self.stats.stolen_away += len(stolen)
            conn.send({"type": "stolen", "seqs": stolen})
        elif kind == "ping":
            conn.send(
                {
                    "type": "pong",
                    "queued": len(queue),
                    "running": pool.running(),
                    "jobs_run": self.stats.jobs_run,
                    "stolen_away": self.stats.stolen_away,
                }
            )
        elif kind == "stop":
            return False
        # unknown message types are ignored: additive protocol growth
        return True


def main(argv=None) -> int:
    """``mips-farm host`` / ``python -m repro.farm.dist.host``."""
    import argparse

    parser = argparse.ArgumentParser(description="distributed-farm shard host")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port to listen on (default: OS-assigned, announced on stdout)")
    parser.add_argument("--bind", default="127.0.0.1", help="address to bind (default localhost)")
    parser.add_argument("--workers", type=int, default=max(1, (os.cpu_count() or 1)),
                        help="local forked worker processes (default: cpu count)")
    args = parser.parse_args(argv)
    host = ShardHost(port=args.port, bind=args.bind, workers=args.workers)
    print(host.announce(), flush=True)
    try:
        host.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        host.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
