"""``python -m repro.farm.dist`` starts a shard host."""

import sys

from .host import main

if __name__ == "__main__":
    sys.exit(main())
