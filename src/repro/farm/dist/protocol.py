"""The shard-host wire protocol: JSONL over stdlib TCP sockets.

One JSON object per newline-terminated line, in both directions -- the
same framing the :class:`~repro.farm.store.ResultStore` already streams
to disk, so a result record costs one ``json.dumps`` whether it lands
in a file or on a socket.

**Handshake.** The shard host speaks first: immediately on accept it
sends a *hello banner* naming its protocol version, the repo version it
is running, and the tag of the digest algorithm its records will be
aggregated under.  The coordinator validates all three and answers
``hello_ack`` -- or a structured ``error`` message followed by a close.
A mismatched host is therefore rejected in one round trip with a
machine-readable reason, never left hanging half-connected: digests
from two hosts are only comparable if both sides agree on what a
stable view is, and the banner is where that agreement is checked.

**Session messages** (after the handshake):

==============  =========================================================
coordinator →   ``dispatch`` (seq, index, attempt, job, budget_s),
                ``steal`` (count), ``ping``, ``stop``
host →          ``result`` (seq, record), ``stolen`` (seqs),
                ``pong`` (queued, running)
==============  =========================================================

``seq`` numbers are minted per dispatch, not per job: a job that is
stolen or reclaimed is re-dispatched under a fresh seq, so a stale
message from a slow host can never be confused with the live attempt.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, List, Mapping, Optional

from ... import __version__ as REPO_VERSION

#: bumped on any incompatible wire change
PROTO_VERSION = 1
#: names the aggregate-digest algorithm both sides must share: sha256
#: over the canonical JSON of record stable views (see repro.farm.store)
DIGEST_ALGORITHM = "sha256/stable-view-v1"
#: how long either side waits for the other half of the handshake
HANDSHAKE_TIMEOUT_S = 5.0
#: one socket read's worth of stream
_RECV_CHUNK = 1 << 16


class ConnectionLost(Exception):
    """The peer closed or reset the socket mid-session."""


class HandshakeError(Exception):
    """The peer's banner failed validation (carries the reason)."""


def hello_banner(workers: int, host_id: str) -> Dict[str, Any]:
    """The banner a shard host sends immediately on accept."""
    return {
        "type": "hello",
        "proto": PROTO_VERSION,
        "repo": REPO_VERSION,
        "digest": DIGEST_ALGORITHM,
        "workers": workers,
        "host_id": host_id,
    }


def validate_banner(message: Mapping[str, Any]) -> Optional[str]:
    """None if the banner is acceptable, else a human-readable reason.

    Every field that could silently skew results is checked: protocol
    (framing), repo version (job semantics), digest algorithm (what
    byte-identity even means across hosts).
    """
    if message.get("type") != "hello":
        return f"expected a hello banner, got {message.get('type')!r}"
    if message.get("proto") != PROTO_VERSION:
        return f"protocol version mismatch: host speaks {message.get('proto')!r}, coordinator speaks {PROTO_VERSION}"
    if message.get("repo") != REPO_VERSION:
        return f"repo version mismatch: host runs {message.get('repo')!r}, coordinator runs {REPO_VERSION!r}"
    if message.get("digest") != DIGEST_ALGORITHM:
        return f"digest algorithm mismatch: host aggregates {message.get('digest')!r}, coordinator expects {DIGEST_ALGORITHM!r}"
    return None


class JsonlConnection:
    """Line-framed JSON messages over one connected socket.

    Sends are blocking (messages are small; the peer is always
    reading).  Receives come in two flavours: :meth:`receive` blocks
    with a deadline (handshake), :meth:`drain` performs exactly one
    ``recv`` and parses every complete line it completes -- the shape a
    readiness loop (``selectors`` / ``connection.wait``) wants.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, message: Mapping[str, Any]) -> None:
        try:
            self.sock.sendall(json.dumps(message, sort_keys=True).encode() + b"\n")
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise ConnectionLost(str(exc)) from exc

    def _take_lines(self) -> List[Dict[str, Any]]:
        messages = []
        while b"\n" in self._buffer:
            line, self._buffer = self._buffer.split(b"\n", 1)
            if line.strip():
                messages.append(json.loads(line))
        return messages

    def receive(self, timeout_s: float = HANDSHAKE_TIMEOUT_S) -> Dict[str, Any]:
        """Block until one complete message arrives (or the deadline)."""
        deadline = time.monotonic() + timeout_s
        while True:
            ready = self._take_lines()
            if ready:
                # push any extra complete lines back in front of the
                # buffer so session traffic is not lost to the handshake
                for extra in reversed(ready[1:]):
                    self._buffer = (
                        json.dumps(extra, sort_keys=True).encode() + b"\n" + self._buffer
                    )
                return ready[0]
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise HandshakeError(f"no message within {timeout_s:.1f}s")
            self.sock.settimeout(remaining)
            try:
                chunk = self.sock.recv(_RECV_CHUNK)
            except socket.timeout as exc:
                raise HandshakeError(f"no message within {timeout_s:.1f}s") from exc
            except (ConnectionError, OSError) as exc:
                raise ConnectionLost(str(exc)) from exc
            finally:
                self.sock.settimeout(None)
            if not chunk:
                raise ConnectionLost("peer closed during handshake")
            self._buffer += chunk

    def drain(self) -> List[Dict[str, Any]]:
        """One recv's worth of complete messages (call when readable)."""
        try:
            chunk = self.sock.recv(_RECV_CHUNK)
        except (ConnectionError, OSError) as exc:
            raise ConnectionLost(str(exc)) from exc
        if not chunk:
            raise ConnectionLost("peer closed the connection")
        self._buffer += chunk
        return self._take_lines()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def parse_host_spec(spec: str) -> tuple:
    """``"host:port"`` or ``":port"`` (localhost) -> ``(host, port)``."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad host spec {spec!r} (want HOST:PORT or :PORT)")
    return (host or "127.0.0.1", int(port))
