"""The distributed farm: the single-box worker pool, spread over hosts.

Three layers, mirroring the single-box farm's shape:

- :mod:`~repro.farm.dist.protocol` -- the JSONL-over-TCP wire format
  and the version/digest handshake that keeps cross-host results
  comparable at all.
- :mod:`~repro.farm.dist.host` -- the shard host (``mips-farm host``):
  a passive server wrapping the existing forked worker pool.
- :mod:`~repro.farm.dist.coordinator` -- :class:`DistScheduler`, the
  policy end: static round-robin sharding, coordinator-mediated work
  stealing, heartbeat-driven dead-host reclamation, and serial
  degradation when every remote host is gone.

The invariant the whole package is built around: ``mips-farm run
--hosts N`` produces the byte-identical order-independent aggregate
digest for any N -- including runs where hosts are killed mid-batch.
"""

from .coordinator import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    DistScheduler,
    HeartbeatMonitor,
    LocalShardPool,
    dist_run_report,
)
from .host import ShardHost
from .protocol import (
    DIGEST_ALGORITHM,
    PROTO_VERSION,
    ConnectionLost,
    HandshakeError,
    JsonlConnection,
    hello_banner,
    parse_host_spec,
    validate_banner,
)

__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_HEARTBEAT_TIMEOUT_S",
    "DIGEST_ALGORITHM",
    "PROTO_VERSION",
    "ConnectionLost",
    "DistScheduler",
    "HandshakeError",
    "HeartbeatMonitor",
    "JsonlConnection",
    "LocalShardPool",
    "ShardHost",
    "dist_run_report",
    "hello_banner",
    "parse_host_spec",
    "validate_banner",
]
