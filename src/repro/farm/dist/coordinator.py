"""The distributed-farm coordinator: shard over hosts, steal, reclaim.

:class:`DistScheduler` generalizes the single-box
:class:`~repro.farm.scheduler.Scheduler` across shard hosts
(:mod:`repro.farm.dist.host`) reached over the JSONL socket protocol
(:mod:`repro.farm.dist.protocol`).  The policy follows the same
measure-then-spend argument the paper makes for instruction budgets:
capacity is added (a host), moved (a steal), or written off (a
reclamation) only when the accounting says the work is actually there.

- **Static sharding first**: the batch is dealt round-robin across the
  connected hosts in submission order, each host queueing what its
  local worker pool cannot start yet.  Every dispatch carries a fresh
  ``seq``, so a stale message can never be mistaken for a live attempt.
- **Work stealing fixes imbalance**: when a host has spare worker
  slots while another still has *unstarted* queue, the coordinator
  asks the loaded host to give jobs back (the host only ever yields
  jobs it has not begun -- stealing can never double-execute) and
  re-deals them to the spare capacity.
- **Heartbeats detect death**: hosts that fall silent past the timeout
  -- and hosts whose sockets EOF -- are declared lost, and every job
  assigned to them is *reclaimed*: re-queued through the existing
  crash/retry/backoff machinery exactly as if a local worker had died.
  A reclaimed job re-executes elsewhere; the original result (if the
  dead host ever finishes it) is unreachable on a closed socket, so no
  job is lost and none is duplicated.
- **Serial degradation last**: with every remote host gone, whatever
  remains runs in-process through the identical per-job executor --
  the same guarantee the single-box farm makes when forking is
  unavailable.

Because records are finalized through the same stable-view machinery,
the order-independent aggregate digest is byte-identical for any host
count, including runs where hosts die mid-batch -- the cross-host
correctness oracle CI's dist-smoke job asserts.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..job import Job
from ..scheduler import (
    DEFAULT_BACKOFF_BASE_S,
    DEFAULT_BACKOFF_CAP_S,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_TIMEOUT_S,
    FarmReport,
    Scheduler,
    _Pending,
)
from ..worker import crash_record, execute_job
from .protocol import (
    ConnectionLost,
    HandshakeError,
    JsonlConnection,
    parse_host_spec,
    validate_banner,
)

#: default heartbeat cadence and silence budget
DEFAULT_HEARTBEAT_S = 1.0
DEFAULT_HEARTBEAT_TIMEOUT_S = 10.0
#: readiness-loop tick
POLL_S = 0.2
#: connect() budget per host spec
CONNECT_TIMEOUT_S = 5.0

#: the host tag finalized records carry when the coordinator itself
#: executed them (serial degradation)
LOCAL_HOST_TAG = "local"


class HeartbeatMonitor:
    """Who needs a ping, and who has been silent too long.

    Pure bookkeeping over an injectable clock, so the dead-host policy
    is unit-testable without sockets or sleeps: ``heard`` on any
    traffic, ``due`` lists hosts whose last ping is older than the
    interval, ``expired`` lists hosts silent past the timeout.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_HEARTBEAT_S,
        timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.clock = clock
        self._last_heard: Dict[str, float] = {}
        self._last_ping: Dict[str, float] = {}

    def register(self, key: str) -> None:
        now = self.clock()
        self._last_heard[key] = now
        self._last_ping[key] = now

    def forget(self, key: str) -> None:
        self._last_heard.pop(key, None)
        self._last_ping.pop(key, None)

    def heard(self, key: str) -> None:
        self._last_heard[key] = self.clock()

    def pinged(self, key: str) -> None:
        self._last_ping[key] = self.clock()

    def due(self) -> List[str]:
        now = self.clock()
        return [k for k, t in self._last_ping.items() if now - t >= self.interval_s]

    def expired(self) -> List[str]:
        now = self.clock()
        return [k for k, t in self._last_heard.items() if now - t > self.timeout_s]

    def silent_for(self, key: str) -> float:
        return self.clock() - self._last_heard[key]


@dataclass
class _HostLink:
    """One connected shard host, as the coordinator sees it."""

    spec: str
    conn: JsonlConnection
    host_id: str
    workers: int
    alive: bool = True
    steal_pending: bool = False
    #: seq -> the pending job dispatched there
    assigned: Dict[int, _Pending] = field(default_factory=dict)
    stats: Dict[str, int] = field(
        default_factory=lambda: {"jobs": 0, "stolen": 0, "reclaimed": 0, "retries": 0}
    )

    @property
    def backlog(self) -> int:
        """Dispatched jobs beyond this host's worker capacity (queued)."""
        return max(0, len(self.assigned) - self.workers)

    @property
    def spare(self) -> int:
        return max(0, self.workers - len(self.assigned))


def _warn(payload: Dict[str, Any]) -> None:
    print(json.dumps(payload, sort_keys=True), file=sys.stderr)


class DistScheduler(Scheduler):
    """Batch executor over remote shard hosts (plus serial last resort).

    Drop-in for :class:`~repro.farm.scheduler.Scheduler`: same
    ``run``/``run_report`` surface, same store/cache plumbing, same
    deadline/retry/backoff knobs -- only the workers live behind
    ``host:port`` specs instead of fork().
    """

    def __init__(
        self,
        hosts: Sequence[str],
        timeout_s: float = DEFAULT_TIMEOUT_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        store=None,
        cache=None,
        steal: bool = True,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        connect_timeout_s: float = CONNECT_TIMEOUT_S,
        clock: Callable[[], float] = time.monotonic,
        on_progress: Optional[Callable[[int], None]] = None,
    ):
        super().__init__(
            jobs=max(1, len(list(hosts))),
            timeout_s=timeout_s,
            max_attempts=max_attempts,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
            store=store,
            serial=False,
            cache=cache,
        )
        self.hosts = [str(h) for h in hosts]
        self.steal = steal
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.clock = clock
        #: called with len(results) after every finalized record --
        #: the hook the fault-injection CLI uses to kill a host mid-batch
        self.on_progress = on_progress

    # -- connecting --------------------------------------------------------

    def _connect_hosts(self) -> List[_HostLink]:
        """Dial every spec; banner-validate; drop (never hang on) misfits."""
        links: List[_HostLink] = []
        for spec in self.hosts:
            link = self._connect_one(spec)
            if link is not None:
                links.append(link)
        return links

    def _connect_one(self, spec: str) -> Optional[_HostLink]:
        try:
            address = parse_host_spec(spec)
        except ValueError as exc:
            _warn({"warning": "shard-host-rejected", "spec": spec, "reason": str(exc)})
            return None
        try:
            sock = socket.create_connection(address, timeout=self.connect_timeout_s)
            sock.settimeout(None)
        except OSError as exc:
            _warn({"warning": "shard-host-unreachable", "spec": spec, "reason": str(exc)})
            return None
        conn = JsonlConnection(sock)
        try:
            banner = conn.receive(self.connect_timeout_s)
        except (HandshakeError, ConnectionLost, ValueError) as exc:
            _warn({"warning": "shard-host-rejected", "spec": spec, "reason": str(exc)})
            conn.close()
            return None
        reason = validate_banner(banner)
        if reason is not None:
            # a structured refusal, not a hang: tell the host why, close,
            # and report the mismatch machine-readably
            try:
                conn.send({"type": "error", "reason": reason})
            except ConnectionLost:
                pass
            conn.close()
            _warn(
                {
                    "warning": "shard-host-rejected",
                    "spec": spec,
                    "reason": reason,
                    "banner": {k: banner.get(k) for k in ("proto", "repo", "digest")},
                }
            )
            return None
        try:
            conn.send({"type": "hello_ack"})
        except ConnectionLost as exc:
            _warn({"warning": "shard-host-unreachable", "spec": spec, "reason": str(exc)})
            conn.close()
            return None
        return _HostLink(
            spec=spec,
            conn=conn,
            host_id=str(banner.get("host_id") or spec),
            workers=max(1, int(banner.get("workers") or 1)),
        )

    # -- the distributed loop ----------------------------------------------

    def _run_pool(self, items, results, report: FarmReport) -> None:
        from multiprocessing.connection import wait as conn_wait

        links = self._connect_hosts()
        monitor = HeartbeatMonitor(self.heartbeat_s, self.heartbeat_timeout_s, self.clock)
        for link in links:
            monitor.register(link.host_id)

        pending: deque = deque(_Pending(i, job) for i, job in items)
        inflight: Dict[int, _HostLink] = {}
        target = len(results) + len(items)
        next_seq = 0

        def live() -> List[_HostLink]:
            return [l for l in links if l.alive]

        def dispatch(link: _HostLink, item: _Pending) -> bool:
            nonlocal next_seq
            seq = next_seq
            next_seq += 1
            try:
                link.conn.send(
                    {
                        "type": "dispatch",
                        "seq": seq,
                        "index": item.index,
                        "attempt": item.attempt,
                        "job": item.job.to_dict(),
                        "budget_s": self._budget(item.job),
                    }
                )
            except ConnectionLost as exc:
                lose(link, f"send failed: {exc}")
                return False
            link.assigned[seq] = item
            inflight[seq] = link
            return True

        def finalize(item: _Pending, record: Dict[str, Any], link: Optional[_HostLink]) -> None:
            cap = self._attempt_cap(item.job)
            if record.get("retryable") and item.attempt < cap:
                report.retries += 1
                if link is not None:
                    link.stats["retries"] += 1
                pending.append(
                    _Pending(
                        item.index,
                        item.job,
                        item.attempt + 1,
                        self.clock() + self._backoff(item.attempt),
                    )
                )
                return
            self._finalize(results, item, record)
            if link is not None:
                link.stats["jobs"] += 1
            if self.on_progress is not None:
                self.on_progress(len(results))

        def lose(link: _HostLink, reason: str) -> None:
            """Declare a host dead and reclaim everything assigned to it."""
            if not link.alive:
                return
            link.alive = False
            monitor.forget(link.host_id)
            link.conn.close()
            reclaimed = list(link.assigned.items())
            link.assigned = {}
            for seq, item in reclaimed:
                inflight.pop(seq, None)
                report.reclaimed += 1
                link.stats["reclaimed"] += 1
                record = crash_record(
                    item.job.to_dict(),
                    item.attempt,
                    f"shard host {link.host_id} lost: {reason}",
                )
                record["host"] = link.host_id
                finalize(item, record, link)
            _warn(
                {
                    "warning": "shard-host-lost",
                    "host": link.host_id,
                    "reason": reason,
                    "reclaimed": len(reclaimed),
                }
            )

        def handle(link: _HostLink, message: Dict[str, Any]) -> None:
            monitor.heard(link.host_id)
            kind = message.get("type")
            if kind == "result":
                seq = int(message["seq"])
                item = link.assigned.pop(seq, None)
                inflight.pop(seq, None)
                if item is None:
                    return  # raced a steal/reclaim; the live attempt owns it
                record = dict(message["record"])
                record["host"] = link.host_id
                finalize(item, record, link)
            elif kind == "stolen":
                link.steal_pending = False
                for seq in message.get("seqs", []):
                    item = link.assigned.pop(int(seq), None)
                    inflight.pop(int(seq), None)
                    if item is None:
                        continue  # completed just before the host gave it up
                    report.stolen += 1
                    link.stats["stolen"] += 1
                    pending.appendleft(_Pending(item.index, item.job, item.attempt))
            # pong and unknown types only refresh the heartbeat

        # deal the batch round-robin across hosts: static sharding, the
        # baseline that stealing then improves on
        if live():
            hosts_now = live()
            position = 0
            while pending:
                item = pending.popleft()
                if not dispatch(hosts_now[position % len(hosts_now)], item):
                    pending.appendleft(item)
                    hosts_now = live()
                    if not hosts_now:
                        break
                    continue
                position += 1

        while len(results) < target:
            hosts_now = live()
            if not hosts_now:
                # every remote host is gone: reclaim already re-queued
                # the in-flight jobs, so what's left runs in-process
                self._run_serial_tail(pending, results, report)
                break
            now = self.clock()

            # re-dispatch anything whose backoff has expired, onto the
            # least-loaded live host (idle thieves included)
            for item in [p for p in pending if p.ready_at <= now]:
                pending.remove(item)
                best = min(hosts_now, key=lambda l: len(l.assigned) / l.workers)
                if not dispatch(best, item):
                    pending.appendleft(item)
                    break

            # steal: spare capacity here + unstarted backlog there
            if self.steal:
                spare = sum(l.spare for l in hosts_now)
                victims = [l for l in hosts_now if l.backlog > 0 and not l.steal_pending]
                if spare > 0 and victims:
                    victim = max(victims, key=lambda l: l.backlog)
                    try:
                        victim.conn.send(
                            {"type": "steal", "count": min(victim.backlog, spare)}
                        )
                        victim.steal_pending = True
                    except ConnectionLost as exc:
                        lose(victim, f"send failed: {exc}")

            # heartbeats out, deaths in
            for link in live():
                if link.host_id in monitor.due():
                    try:
                        link.conn.send({"type": "ping"})
                        monitor.pinged(link.host_id)
                    except ConnectionLost as exc:
                        lose(link, f"send failed: {exc}")
            for link in live():
                if link.host_id in monitor.expired():
                    lose(
                        link,
                        f"no heartbeat for {monitor.silent_for(link.host_id):.1f}s "
                        f"(timeout {self.heartbeat_timeout_s:.1f}s)",
                    )

            sockets = [l.conn.sock for l in live()]
            if not sockets:
                continue
            readable = conn_wait(sockets, timeout=POLL_S)
            for link in [l for l in live() if l.conn.sock in readable]:
                try:
                    messages = link.conn.drain()
                except ConnectionLost as exc:
                    lose(link, str(exc))
                    continue
                for message in messages:
                    handle(link, message)

        # session teardown: a polite stop to every surviving host
        for link in live():
            try:
                link.conn.send({"type": "stop"})
            except ConnectionLost:
                pass
            link.conn.close()

        report.hosts = {
            link.host_id: {"workers": link.workers, "alive": link.alive, **link.stats}
            for link in links
        }

    # -- serial last resort ------------------------------------------------

    def _run_serial_tail(self, pending: deque, results, report: FarmReport) -> None:
        """Run whatever is left in-process (every remote host is lost)."""
        if pending:
            _warn(
                {
                    "warning": "all-shard-hosts-lost",
                    "remaining_jobs": len(pending),
                    "action": "degrading to in-process serial execution",
                }
            )
        report.degraded_serial = True
        for item in sorted(pending, key=lambda p: p.index):
            cap = self._attempt_cap(item.job)
            attempt = item.attempt
            while True:
                record = execute_job(item.job.to_dict(), attempt=attempt, in_process=True)
                if record.get("retryable") and attempt < cap:
                    report.retries += 1
                    time.sleep(self._backoff(attempt))
                    attempt += 1
                    continue
                record["host"] = LOCAL_HOST_TAG
                self._finalize(results, _Pending(item.index, item.job, attempt), record)
                if self.on_progress is not None:
                    self.on_progress(len(results))
                break
        pending.clear()


# -- spawning localhost shard pools (mips-farm run --hosts N) --------------

_ANNOUNCE_RE = re.compile(r"listening on ([\d.]+):(\d+)")


class LocalShardPool:
    """N shard hosts as local subprocesses, for ``--hosts N`` and tests.

    Each host is a fresh interpreter running
    ``python -m repro.farm.dist.host --port 0``; the OS-assigned port is
    parsed from the announce line.  ``kill`` delivers SIGKILL -- the
    fault-injection path the reclamation tests drive.
    """

    def __init__(self, hosts: int, workers_per_host: Optional[int] = None):
        if hosts < 1:
            raise ValueError("hosts must be >= 1")
        workers = workers_per_host or max(1, (os.cpu_count() or 1) // hosts)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        self.processes: List[subprocess.Popen] = []
        self.specs: List[str] = []
        try:
            for _ in range(hosts):
                process = subprocess.Popen(
                    [sys.executable, "-m", "repro.farm.dist.host",
                     "--port", "0", "--workers", str(workers)],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    env=env,
                    text=True,
                )
                self.processes.append(process)
                announce = process.stdout.readline()
                match = _ANNOUNCE_RE.search(announce or "")
                if match is None:
                    raise RuntimeError(
                        f"shard host failed to start (pid {process.pid}): {announce!r}"
                    )
                self.specs.append(f"{match.group(1)}:{match.group(2)}")
        except Exception:
            self.close()
            raise

    def kill(self, position: int) -> None:
        """SIGKILL one host -- no goodbye, no flush; reclamation's job."""
        process = self.processes[position]
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
            process.wait(5.0)

    def close(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.wait(2.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait(2.0)
            if process.stdout is not None:
                process.stdout.close()

    def __enter__(self) -> "LocalShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dist_run_report(
    job_list: Sequence[Job],
    hosts: Sequence[str],
    **kwargs,
) -> Tuple[FarmReport, Dict[str, Any]]:
    """One-shot convenience: run jobs over shard hosts, report + summary."""
    from ..store import aggregate

    report = DistScheduler(hosts=list(hosts), **kwargs).run_report(job_list)
    return report, aggregate(report.records)
