"""The farm scheduler: shard jobs over worker processes, survive failures.

Design (one supervisor, N persistent workers):

- Each worker is a forked process looping over a private duplex pipe:
  receive a job envelope, run :func:`repro.farm.worker.execute_job`,
  send the record back.  Workers are *sharded* -- the supervisor hands
  the next pending job to the first idle worker, so fast jobs drain
  quickly and one slow shard cannot starve the rest.
- Every dispatch carries a wall-clock **deadline**.  A worker that
  blows it is killed and respawned; the job is retried (the hang may be
  load noise) until its attempt cap, then recorded as a timeout.  The
  in-machine ``max_steps`` guard -- the same one ``mips-sim
  --max-steps`` exposes -- bounds runaway *guest* programs from the
  inside, so the wall deadline only has to catch pathological host
  behaviour.
- A worker that **crashes** (non-zero exit, killed, pipe EOF) loses
  only its in-flight job: the supervisor records the crash, respawns
  the worker, and retries the job with capped exponential backoff.
- When the pool is unavailable -- ``--jobs 1``, a sandbox that forbids
  forking, or ``REPRO_FARM_SERIAL=1`` -- the scheduler **degrades to
  in-process serial execution** over the identical
  :func:`~repro.farm.worker.execute_job` path, so results are the same
  bytes either way.

Results are returned in *submission order* regardless of completion
order; completion-order streaming happens through the optional
:class:`~repro.farm.store.ResultStore`, whose aggregation is
order-independent.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .job import Job
from .worker import crash_record, execute_job, strip_payload, wall_timeout_record

#: default per-job wall-clock budget (generous: free_cycles runs minutes)
DEFAULT_TIMEOUT_S = 600.0
#: default attempt cap (first try + retries)
DEFAULT_MAX_ATTEMPTS = 3
#: exponential backoff: base * 2**(attempt-1), capped
DEFAULT_BACKOFF_BASE_S = 0.25
DEFAULT_BACKOFF_CAP_S = 4.0

_ENV_FORCE_SERIAL = "REPRO_FARM_SERIAL"


def _pick_context():
    """Prefer fork (cheap, inherits warmed modules); fall back gracefully."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(conn) -> None:  # pragma: no cover - runs in child processes
    """The worker loop: jobs in, records out, until told to stop."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _tag, index, attempt, job_dict = message
        record = execute_job(job_dict, attempt=attempt, in_process=False)
        try:
            conn.send((index, attempt, record))
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Pending:
    index: int
    job: Job
    attempt: int = 1
    ready_at: float = 0.0


@dataclass
class _WorkerHandle:
    process: Any
    conn: Any
    current: Optional[_Pending] = None
    deadline: float = 0.0

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(1.0)


@dataclass
class FarmReport:
    """What one scheduler run did, beyond the records themselves.

    ``crashes`` and ``timeouts`` count *occurrences* (every worker death
    and every wall-deadline kill), not final statuses -- a job that hung
    once and succeeded on retry still shows up here.  Guest-level
    timeouts (the in-machine step budget) are job results, visible in
    the records, not farm interventions.
    """

    records: List[Dict[str, Any]]
    submitted: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    degraded_serial: bool = False
    wall_s: float = 0.0
    #: jobs served from the persistent result cache without dispatch
    cache_hits: int = 0
    #: jobs that missed the cache and were actually executed
    cache_misses: int = 0
    #: distributed runs only: jobs moved off a loaded shard host onto
    #: an idle one by the coordinator
    stolen: int = 0
    #: distributed runs only: in-flight jobs recovered from a dead host
    #: and re-queued through the retry machinery
    reclaimed: int = 0
    #: distributed runs only: per-shard-host accounting, keyed by
    #: host_id -- {"workers", "alive", "jobs", "stolen", "reclaimed",
    #: "retries"}
    hosts: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> int:
        return sum(1 for r in self.records if r["status"] == "ok")


class Scheduler:
    """Batch executor over a pool of worker processes."""

    def __init__(
        self,
        jobs: int = 1,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        store=None,
        serial: Optional[bool] = None,
        cache=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.max_attempts = max(1, max_attempts)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.store = store
        #: optional repro.service.cache.ResultCache; hits skip dispatch
        #: entirely and completed deterministic jobs are written back
        self.cache = cache
        if serial is None:
            serial = jobs <= 1 or bool(os.environ.get(_ENV_FORCE_SERIAL))
        self.serial = serial
        self._ctx = None

    # -- public API --------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> List[Dict[str, Any]]:
        """Execute every job; records come back in submission order."""
        return self.run_report(jobs).records

    def run_report(self, jobs: Sequence[Job]) -> FarmReport:
        started = time.monotonic()
        jobs = list(jobs)
        report = FarmReport(records=[], submitted=len(jobs))
        if not jobs:
            report.wall_s = time.monotonic() - started
            return report
        results: Dict[int, Dict[str, Any]] = {}
        items = self._drain_cache(list(enumerate(jobs)), results, report)
        if items and self.serial:
            report.degraded_serial = True
            self._run_serial(items, results, report)
        elif items:
            try:
                self._run_pool(items, results, report)
            except OSError as exc:
                # the environment refused to give us processes: degrade
                print(
                    f"repro.farm: worker pool unavailable ({exc}); "
                    "falling back to in-process serial execution",
                    file=sys.stderr,
                )
                report.degraded_serial = True
                self._run_serial(items, results, report)
        report.records = [results[i] for i in range(len(jobs))]
        report.wall_s = time.monotonic() - started
        return report

    # -- shared plumbing ---------------------------------------------------

    def _drain_cache(
        self,
        items: List[Tuple[int, Job]],
        results: Dict[int, Dict[str, Any]],
        report: FarmReport,
    ) -> List[Tuple[int, Job]]:
        """Serve cache hits immediately; return the jobs still to run."""
        if self.cache is None:
            return items
        missed: List[Tuple[int, Job]] = []
        for index, job in items:
            record = self.cache.fetch(job, index=index)
            if record is None:
                missed.append((index, job))
                continue
            report.cache_hits += 1
            results[index] = record
            if self.store is not None:
                self.store.append(record)
        report.cache_misses = len(missed)
        return missed

    def _budget(self, job: Job) -> float:
        return job.timeout_s if job.timeout_s is not None else self.timeout_s

    def _attempt_cap(self, job: Job) -> int:
        return job.max_attempts if job.max_attempts is not None else self.max_attempts

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s)

    def _finalize(self, results: Dict[int, Dict[str, Any]], pending: _Pending, record) -> None:
        record = strip_payload(record) if record.get("payload") is None else dict(record)
        record["index"] = pending.index
        record["attempts"] = pending.attempt
        record["job_key"] = pending.job.key
        results[pending.index] = record
        if self.store is not None:
            self.store.append(record)
        if self.cache is not None:
            self.cache.put(record)

    # -- serial fallback ---------------------------------------------------

    def _run_serial(
        self,
        items: Sequence[Tuple[int, Job]],
        results: Dict[int, Dict[str, Any]],
        report: FarmReport,
    ) -> None:
        for index, job in items:
            pending = _Pending(index, job)
            cap = self._attempt_cap(job)
            while True:
                record = execute_job(job.to_dict(), attempt=pending.attempt, in_process=True)
                if record.get("retryable") and pending.attempt < cap:
                    report.retries += 1
                    time.sleep(self._backoff(pending.attempt))
                    pending.attempt += 1
                    continue
                self._finalize(results, pending, record)
                break

    # -- the pool ----------------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        return _WorkerHandle(process=process, conn=parent_conn)

    def _run_pool(
        self,
        items: Sequence[Tuple[int, Job]],
        results: Dict[int, Dict[str, Any]],
        report: FarmReport,
    ) -> None:
        from multiprocessing.connection import wait as conn_wait

        self._ctx = _pick_context()
        pending: deque = deque(_Pending(i, job) for i, job in items)
        target = len(results) + len(items)
        idle: List[_WorkerHandle] = []
        busy: List[_WorkerHandle] = []

        def requeue_or_finalize(pending_job: _Pending, record) -> None:
            cap = self._attempt_cap(pending_job.job)
            if record.get("retryable") and pending_job.attempt < cap:
                report.retries += 1
                delay = self._backoff(pending_job.attempt)
                pending.append(
                    _Pending(
                        pending_job.index,
                        pending_job.job,
                        pending_job.attempt + 1,
                        time.monotonic() + delay,
                    )
                )
            else:
                self._finalize(results, pending_job, record)

        try:
            while len(results) < target:
                now = time.monotonic()

                # hand ready work to idle workers, spawning up to N
                ready = [p for p in pending if p.ready_at <= now]
                while ready and (idle or len(idle) + len(busy) < self.jobs):
                    worker = idle.pop() if idle else self._spawn_worker()
                    item = ready.pop(0)
                    pending.remove(item)
                    worker.current = item
                    worker.deadline = now + self._budget(item.job)
                    worker.conn.send(("job", item.index, item.attempt, item.job.to_dict()))
                    busy.append(worker)

                if not busy:
                    # nothing in flight: we must be waiting out a backoff
                    next_ready = min(p.ready_at for p in pending)
                    time.sleep(max(0.0, min(next_ready - time.monotonic(), 0.5)))
                    continue

                # wait for a result, a death, or the nearest deadline
                horizon = min(w.deadline for w in busy) - time.monotonic()
                readable = conn_wait([w.conn for w in busy], timeout=max(0.0, min(horizon, 0.5)))

                for worker in [w for w in busy if w.conn in readable]:
                    item = worker.current
                    try:
                        _index, _attempt, record = worker.conn.recv()
                    except (EOFError, OSError):
                        # the worker died mid-job: kill, count, retry
                        report.crashes += 1
                        worker.kill()
                        busy.remove(worker)
                        requeue_or_finalize(
                            item,
                            crash_record(
                                item.job.to_dict(),
                                item.attempt,
                                f"worker exited with code {worker.process.exitcode}",
                            ),
                        )
                        continue
                    worker.current = None
                    busy.remove(worker)
                    idle.append(worker)
                    requeue_or_finalize(item, record)

                # enforce deadlines on whoever is still busy
                now = time.monotonic()
                for worker in [w for w in busy if w.deadline <= now]:
                    item = worker.current
                    report.timeouts += 1
                    worker.kill()
                    busy.remove(worker)
                    requeue_or_finalize(
                        item,
                        wall_timeout_record(
                            item.job.to_dict(), item.attempt, self._budget(item.job)
                        ),
                    )
        finally:
            for worker in idle:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for worker in idle + busy:
                worker.kill()
            for worker in idle + busy:
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.join(1.0)


def run_jobs(
    job_list: Sequence[Job],
    jobs: int = 1,
    store=None,
    **kwargs,
) -> List[Dict[str, Any]]:
    """One-shot convenience: schedule ``job_list`` over ``jobs`` workers."""
    return Scheduler(jobs=jobs, store=store, **kwargs).run(job_list)
