"""Job execution: what runs inside a farm worker process.

:func:`execute_job` is a pure function from a job's wire dict to a
result record (also a plain dict).  Everything a consumer could want is
in the record: cycle counts, the full :class:`~repro.sim.cpu.CpuStats`,
a state fingerprint digest (from :mod:`repro.sim.tracing`), program
output, wall time, and -- for failed jobs -- a structured error with
the machine-level cause.  Guest failures (page faults, bus errors,
step-budget exhaustion) are *results*, not worker crashes: the worker
records them and stays healthy for the next job.

The same function runs in-process when the scheduler degrades to
serial execution, so parallel and serial runs share one code path and
produce identical records (minus wall-clock noise).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, Mapping, Optional

#: statuses a record can carry
STATUS_OK = "ok"
STATUS_FAULT = "fault"        # guest machine fault (structured, deterministic)
STATUS_TIMEOUT = "timeout"    # step budget or wall-clock budget exhausted
STATUS_ERROR = "error"        # toolchain or harness error
STATUS_CRASH = "crash"        # worker process died (recorded by the scheduler)


def _json_safe(value: Any) -> Any:
    """Recursively coerce a value into JSON-representable types."""
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint_digest(cpu) -> str:
    """A short stable digest of the CPU's observable state."""
    from ..sim.tracing import state_fingerprint

    payload = json.dumps(_json_safe(state_fingerprint(cpu)), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _stats_dict(stats) -> Dict[str, Any]:
    return {
        "cycles": stats.cycles,
        "words": stats.words,
        "pieces": stats.pieces,
        "noops": stats.noops,
        "loads": stats.loads,
        "stores": stats.stores,
        "branches": stats.branches,
        "branches_taken": stats.branches_taken,
        "memory_cycles_used": stats.memory_cycles_used,
        "free_memory_cycles": stats.free_memory_cycles,
        "load_stalls": stats.load_stalls,
        "branch_flush_cycles": stats.branch_flush_cycles,
        "exceptions": stats.exceptions,
    }


def _base_record(job: Mapping[str, Any], attempt: int) -> Dict[str, Any]:
    return {
        "key": job.get("key", ""),
        "kind": job["kind"],
        "name": job["name"],
        "status": STATUS_OK,
        "attempt": attempt,
        "cycles": 0,
        "words": 0,
        "stats": None,
        "fingerprint": None,
        "output": [],
        "output_text": "",
        "rendered": None,
        "wall_s": 0.0,
        "error": None,
        "retryable": False,
        "extra": {},
        "payload": None,
    }


def _error_info(exc: BaseException) -> Dict[str, Any]:
    info: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    cause = getattr(exc, "cause", None)
    if cause is not None:
        info["cause"] = getattr(cause, "name", repr(cause))
    minor = getattr(exc, "minor", None)
    if minor is not None:
        info["minor"] = minor
    address = getattr(exc, "address", None)
    if address is not None:
        info["address"] = address
    from ..sim.faults import KernelPanic

    if isinstance(exc, KernelPanic):
        info["panic"] = exc.record()
    return info


#: engine names a job spec may select (default "fast"; "jit" layers
#: superblock fusion on the fast path, "precise" is the per-step loop)
ENGINES = ("fast", "jit", "precise")


def _engine_args(engine: str) -> Dict[str, bool]:
    """Map an engine name onto Machine.run keyword arguments."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (have {', '.join(ENGINES)})")
    return {"fast": engine != "precise", "jit": engine == "jit"}


def _run_machine(record: Dict[str, Any], machine, max_steps: int, engine: str = "fast") -> None:
    """Run a loaded machine, folding faults into the record."""
    from ..sim.faults import MachineFault

    try:
        machine.run(max_steps, **_engine_args(engine))
    except TimeoutError as exc:
        record["status"] = STATUS_TIMEOUT
        record["error"] = _error_info(exc)
    except MachineFault as exc:
        record["status"] = STATUS_FAULT
        record["error"] = _error_info(exc)
    stats = machine.stats
    record["cycles"] = stats.cycles
    record["words"] = stats.words
    record["stats"] = _stats_dict(stats)
    record["fingerprint"] = fingerprint_digest(machine.cpu)
    record["output"] = list(machine.output)
    record["output_text"] = machine.output_text


def _build_machine(job: Mapping[str, Any], program):
    from ..sim.cpu import HazardMode
    from ..sim.machine import Machine

    return Machine(
        program,
        hazard_mode=HazardMode(job.get("hazard_mode", "bare")),
        inputs=list(job.get("inputs", ())),
    )


def _compile_workload(job: Mapping[str, Any]):
    from ..compiler.codegen_mips import CompileOptions
    from ..compiler.driver import compile_source
    from ..mjlang import compile_minijava
    from ..reorg.reorganizer import OptLevel
    from ..workloads import CORPUS, MINIJAVA_CORPUS

    spec = job.get("spec", {})
    options = CompileOptions(
        register_allocation=spec.get("register_allocation", True),
    )
    opt_level = OptLevel(job.get("opt_level", "branch-delay"))
    if job["kind"] == "workload":
        # Named workloads dispatch by registry: the MiniJava corpus is
        # disjoint from the mini-Pascal one, so names stay unambiguous
        # and existing job keys are unchanged.
        if job["name"] in MINIJAVA_CORPUS:
            return compile_minijava(MINIJAVA_CORPUS[job["name"]], options, opt_level)
        source = CORPUS[job["name"]]
    else:
        source = spec["source"]
    return compile_source(source, options, opt_level=opt_level)


def _attach_profiler(job: Mapping[str, Any], machine):
    """Attach a profiler when the job's spec asks for one.

    ``spec["profile"]`` is truthy to enable; an integer limits the
    hot-spot list to that many entries (default: full attribution).
    """
    if not job.get("spec", {}).get("profile"):
        return None
    from ..perf.profiler import Profiler

    return Profiler().attach(machine.cpu)


def _export_profile(record: Dict[str, Any], job: Mapping[str, Any], machine, program) -> None:
    """Store the deterministic profile in the record, if one was asked for."""
    if machine.cpu.profiler is None:
        return
    from ..perf.report import build_profile

    requested = job.get("spec", {}).get("profile")
    top = requested if isinstance(requested, int) and not isinstance(requested, bool) else None
    record["extra"]["profile"] = build_profile(
        machine.cpu, program, top=top, name=job["name"]
    )


def _export_engine_stats(record: Dict[str, Any], job: Mapping[str, Any], machine) -> None:
    """Record the fast-path engine's dispatch counters when asked.

    Dispatch accounting (handler dispatches, block entries, reference
    steps) is deterministic per workload, which is what lets CI gate on
    it machine-independently; wall-clock noise never enters.
    """
    spec = job.get("spec", {})
    if not spec.get("engine_stats") or spec.get("engine", "fast") == "precise":
        return
    from dataclasses import asdict

    record["extra"]["engine_stats"] = asdict(machine.cpu.fastpath().stats)


def _execute_simulation(record: Dict[str, Any], job: Mapping[str, Any]) -> None:
    compiled = _compile_workload(job)
    machine = _build_machine(job, compiled.program)
    record["extra"]["static_words"] = compiled.static_count
    _attach_profiler(job, machine)
    engine = job.get("spec", {}).get("engine", "fast")
    _run_machine(record, machine, job.get("max_steps", 30_000_000), engine)
    _export_profile(record, job, machine, compiled.program)
    _export_engine_stats(record, job, machine)


def _execute_asm(record: Dict[str, Any], job: Mapping[str, Any]) -> None:
    from ..asm.assembler import assemble

    spec = job.get("spec", {})
    program = assemble(spec["source"])
    machine = _build_machine(job, program)
    if spec.get("mapped"):
        # drive the on-chip segmentation unit: references between the
        # two valid regions now raise PageFault (the page-map fault path)
        machine.cpu.surprise.mapping_enabled = True
    _attach_profiler(job, machine)
    _run_machine(record, machine, job.get("max_steps", 30_000_000), spec.get("engine", "fast"))
    _export_profile(record, job, machine, program)
    _export_engine_stats(record, job, machine)


def _execute_experiment(record: Dict[str, Any], job: Mapping[str, Any]) -> None:
    from ..experiments import REGISTRY

    name = job["name"]
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}")
    result = REGISTRY[name]()
    record["rendered"] = result.render()
    record["extra"]["experiment_id"] = result.experiment_id
    record["extra"]["title"] = result.title
    record["payload"] = result


def _execute_dma(record: Dict[str, Any], job: Mapping[str, Any]) -> None:
    from ..analysis.freecycles import dma_throughput
    from ..workloads import CORPUS

    spec = job.get("spec", {})
    source = spec.get("source") or CORPUS[job["name"]]
    report = dma_throughput(source, transfer_words=spec.get("transfer_words", 4096))
    record["words"] = int(report["instruction_words"])
    record["extra"].update(report)


def _execute_bench(record: Dict[str, Any], job: Mapping[str, Any]) -> None:
    """One pytest-benchmark test in a fresh interpreter, stats captured."""
    import subprocess
    import sys
    import tempfile

    spec = job.get("spec", {})
    cwd = spec.get("cwd") or os.getcwd()
    env = dict(os.environ)
    pythonpath = spec.get("pythonpath")
    if pythonpath:
        env["PYTHONPATH"] = os.pathsep.join(
            list(pythonpath) + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = os.path.join(tmp, "benchmark.json")
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            f"{spec['file']}::{job['name']}",
            "--benchmark-only",
            "-q",
            f"--benchmark-json={raw_path}",
        ]
        proc = subprocess.run(cmd, cwd=cwd, env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            record["status"] = STATUS_ERROR
            record["error"] = {
                "type": "BenchmarkFailed",
                "message": (proc.stdout + proc.stderr)[-2000:],
                "returncode": proc.returncode,
            }
            return
        with open(raw_path) as fh:
            raw = json.load(fh)
    for entry in raw["benchmarks"]:
        if entry["name"] == job["name"]:
            stats = entry["stats"]
            record["extra"]["bench"] = {
                "mean_s": stats["mean"],
                "stddev_s": stats["stddev"],
                "rounds": stats["rounds"],
            }
            return
    record["status"] = STATUS_ERROR
    record["error"] = {
        "type": "BenchmarkMissing",
        "message": f"pytest produced no stats for {job['name']}",
    }


def _execute_chaos(record: Dict[str, Any], job: Mapping[str, Any], attempt: int, in_process: bool) -> None:
    """Chaos jobs: real injection campaigns, or the legacy failure probe.

    A spec with a ``campaign`` key runs a seeded fault-injection
    campaign (:mod:`repro.chaos`) and records its summary; the original
    probe form (``fail_attempts``/``mode``) deliberately misbehaves for
    the first N attempts to exercise the scheduler's retry machinery.
    """
    spec = job.get("spec", {})
    if "campaign" in spec:
        from ..chaos import run_campaign

        engines = tuple(spec.get("engines", ("fast", "precise")))
        summary = run_campaign(spec["campaign"], seed=int(spec.get("seed", 0)), engines=engines)
        first = summary["engines"][sorted(summary["engines"])[0]]
        record["cycles"] = first["final"]["cycles"]
        record["words"] = first["final"]["words"]
        record["fingerprint"] = first["final"]["digest"]
        record["extra"]["chaos"] = {
            "campaign": summary["campaign"],
            "seed": summary["seed"],
            "injections": len(summary["plan"]["injections"]),
            "outcome": first["outcome"],
            "violations": summary["violations"],
            "digest": summary["digest"],
        }
        if summary["violations"]:
            record["status"] = STATUS_ERROR
            record["error"] = {
                "type": "InvariantViolation",
                "message": (
                    f"{len(summary['violations'])} recovery-contract violations "
                    f"(replay: mips-chaos run --seed {summary['seed']} "
                    f"--campaign {summary['campaign']})"
                ),
            }
        return
    fail_attempts = int(spec.get("fail_attempts", 0))
    mode = spec.get("mode", "crash")
    if attempt <= fail_attempts:
        if mode == "crash":
            if in_process:
                raise RuntimeError("chaos crash requested in-process")
            os._exit(17)
        if mode == "hang":
            time.sleep(float(spec.get("hang_s", 3600.0)))
        record["status"] = STATUS_ERROR
        record["error"] = {"type": "ChaosError", "message": f"injected failure #{attempt}"}
        record["retryable"] = True
        return
    record["extra"]["succeeded_on_attempt"] = attempt


def _execute_fuzz(record: Dict[str, Any], job: Mapping[str, Any]) -> None:
    """One differential-oracle fuzz batch (see :mod:`repro.fuzz`).

    The record's fingerprint is the batch digest -- a pure function of
    (seed, start, count, mode) -- so identical batches executed under
    any sharding produce identical records and cache cleanly.  A batch
    containing divergences becomes a non-retryable error record whose
    message carries the first case's one-line replay command.
    """
    from ..fuzz.batch import run_batch

    spec = job.get("spec", {})
    summary = run_batch(
        int(spec["seed"]),
        int(spec["start"]),
        int(spec["count"]),
        spec.get("mode", "both"),
        max_steps=job.get("max_steps", 2_000_000),
    )
    record["words"] = summary["count"]
    record["fingerprint"] = summary["digest"]
    record["extra"]["fuzz"] = {
        "seed": summary["seed"],
        "start": summary["start"],
        "count": summary["count"],
        "mode": summary["mode"],
        "cases": summary["cases"],
        "divergences": summary["divergences"],
    }
    if summary["divergences"]:
        first = summary["divergences"][0]
        record["status"] = STATUS_ERROR
        record["error"] = {
            "type": "FuzzDivergence",
            "message": (
                f"{len(summary['divergences'])} divergent case(s); first is "
                f"case {first['index']} ({first['mode']}); "
                f"replay: {first['replay']}"
            ),
        }


_EXECUTORS = {
    "workload": _execute_simulation,
    "source": _execute_simulation,
    "asm": _execute_asm,
    "experiment": _execute_experiment,
    "dma": _execute_dma,
    "bench": _execute_bench,
    "fuzz": _execute_fuzz,
}


def execute_job(
    job: Mapping[str, Any], attempt: int = 1, in_process: bool = False
) -> Dict[str, Any]:
    """Execute one job; always returns a record, never raises.

    ``attempt`` is 1-based and threaded through so chaos jobs (and any
    future attempt-aware consumer) can observe the retry history;
    ``in_process`` is True on the scheduler's serial fallback path,
    where deliberately crashing the interpreter would take the whole
    farm down.
    """
    record = _base_record(job, attempt)
    started = time.perf_counter()
    try:
        if job["kind"] == "chaos":
            _execute_chaos(record, job, attempt, in_process)
        else:
            _EXECUTORS[job["kind"]](record, job)
    except Exception as exc:  # toolchain/harness errors become records
        record["status"] = STATUS_ERROR
        record["error"] = _error_info(exc)
    record["wall_s"] = time.perf_counter() - started
    return record


def _note_chaos_replay(record: Dict[str, Any], job: Mapping[str, Any], attempt: int) -> None:
    """Make a dead chaos job replayable: pin the seed and attempt count.

    A worker that dies mid-campaign leaves no result, so the failure
    record itself must carry everything needed to reproduce the run
    (``mips-chaos run --seed N --campaign X``) and how many attempts
    were burned getting there.
    """
    record["error"]["attempt"] = attempt
    spec = job.get("spec", {})
    if job.get("kind") == "chaos" and "campaign" in spec:
        record["extra"]["chaos_seed"] = spec.get("seed", 0)
        record["extra"]["campaign"] = spec["campaign"]
        record["error"]["message"] += (
            f" (chaos attempt {attempt}; replay: mips-chaos run "
            f"--seed {spec.get('seed', 0)} --campaign {spec['campaign']})"
        )


def crash_record(job: Mapping[str, Any], attempt: int, detail: str) -> Dict[str, Any]:
    """The scheduler-side record for a worker that died mid-job."""
    record = _base_record(job, attempt)
    record["status"] = STATUS_CRASH
    record["error"] = {"type": "WorkerCrash", "message": detail}
    record["retryable"] = True
    _note_chaos_replay(record, job, attempt)
    return record


def wall_timeout_record(job: Mapping[str, Any], attempt: int, budget_s: float) -> Dict[str, Any]:
    """The scheduler-side record for a job that blew its wall-clock budget."""
    record = _base_record(job, attempt)
    record["status"] = STATUS_TIMEOUT
    record["error"] = {
        "type": "WallTimeout",
        "message": f"job exceeded its {budget_s:.1f}s wall-clock budget",
    }
    record["retryable"] = True
    _note_chaos_replay(record, job, attempt)
    return record


def strip_payload(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of the record without the in-memory payload object."""
    slim = dict(record)
    slim.pop("payload", None)
    return slim


def json_safe_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The record as it appears on a JSON-lines stream."""
    slim = {k: v for k, v in record.items() if k != "payload"}
    return _json_safe(slim)


#: consumers sometimes want a typed view; keep it lightweight
class JobResult:
    """Attribute access over a result record dict."""

    __slots__ = ("record",)

    def __init__(self, record: Mapping[str, Any]):
        self.record = dict(record)

    def __getattr__(self, item: str) -> Any:
        try:
            return self.record[item]
        except KeyError as exc:  # pragma: no cover - programming error
            raise AttributeError(item) from exc

    @property
    def ok(self) -> bool:
        return self.record["status"] == STATUS_OK

    def __repr__(self) -> str:
        return (
            f"<JobResult {self.record['name']} {self.record['status']} "
            f"cycles={self.record['cycles']} attempt={self.record['attempt']}>"
        )
