"""``repro.farm`` -- sharded, fault-tolerant batch simulation service.

The simulator got ~6x faster (the threaded-code fast path); this
subsystem makes the *orchestration* scale to match, the same way the
paper's free memory cycles export idle bandwidth: idle CPU cores run
jobs the hot path would otherwise serialize.

Pieces:

- :class:`~repro.farm.job.Job` -- a pure-data job spec (workload /
  source / experiment / DMA run) with a stable content key.
- :class:`~repro.farm.scheduler.Scheduler` -- shards jobs over N
  worker processes with per-job wall deadlines, crash recovery, capped
  exponential backoff, and graceful degradation to in-process serial
  execution when the pool is unavailable.
- :class:`~repro.farm.store.ResultStore` -- streams JSON-lines result
  records and aggregates them deterministically regardless of
  completion order.
- :mod:`~repro.farm.dist` -- the multi-host generalization: shard
  hosts over JSONL sockets, coordinator-mediated work stealing, and
  heartbeat-driven dead-host reclamation
  (:class:`~repro.farm.dist.DistScheduler`), with the same aggregate
  digest at any host count.

Entry points: ``mips-farm run`` / ``mips-farm status`` /
``mips-farm host`` on the command line, ``mips-experiments --jobs N``
for the paper's evaluation, and ``tools/bench_report.py --jobs N`` for
the benchmark gate.
"""

from .dist import DistScheduler, HeartbeatMonitor, LocalShardPool, ShardHost
from .job import (
    Job,
    experiment_jobs,
    workload_jobs,
)
from .scheduler import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_TIMEOUT_S,
    FarmReport,
    Scheduler,
    run_jobs,
)
from .store import ResultStore, aggregate, render_summary
from .worker import JobResult, execute_job

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_TIMEOUT_S",
    "DistScheduler",
    "FarmReport",
    "HeartbeatMonitor",
    "Job",
    "JobResult",
    "LocalShardPool",
    "ResultStore",
    "Scheduler",
    "ShardHost",
    "aggregate",
    "execute_job",
    "experiment_jobs",
    "render_summary",
    "run_jobs",
    "workload_jobs",
]
