"""Result persistence and deterministic aggregation.

Records stream to a JSON-lines file in **completion order** -- the farm
never buffers a run's worth of results in one process's memory -- and
:func:`aggregate` reduces any ordering of those records to the same
summary: records are keyed and sorted by ``(job key, name, index)``
before reduction, and volatile fields (wall time, attempt counts, the
record's position in the stream) are excluded from the content digest.

Two runs of the same job set therefore agree byte-for-byte on the
aggregate digest whether they ran on one worker or sixteen -- the
property the CI farm-smoke job asserts.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import IO, Any, Dict, Iterable, List, Mapping, Optional

from .worker import json_safe_record

#: record fields that vary run-to-run and are excluded from the digest
#: ("cached" marks a record served from the persistent result cache,
#: "host" names the shard host a distributed run executed on -- where
#: a record came from must not change what it digests to)
VOLATILE_FIELDS = ("wall_s", "attempt", "attempts", "index", "cached", "host")


class ResultStore:
    """Append-only JSON-lines result stream with in-memory mirroring."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.records: List[Dict[str, Any]] = []
        self._handle: Optional[IO[str]] = open(path, "w") if path else None

    def append(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """Record one result; returns the JSON-safe form that was stored."""
        safe = json_safe_record(record)
        self.records.append(safe)
        if self._handle is not None:
            self._handle.write(json.dumps(safe, sort_keys=True) + "\n")
            self._handle.flush()
        return safe

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def load(path: str) -> List[Dict[str, Any]]:
        """Read a JSON-lines result stream back into records.

        A process killed mid-``append`` leaves a partial final line on
        disk; that is crash damage, not data loss -- every complete
        record is still intact.  The partial trailing record is skipped
        with a structured warning on stderr.  A malformed line anywhere
        *else* is real corruption and still raises.
        """
        with open(path) as handle:
            lines = [
                (number, line.strip())
                for number, line in enumerate(handle, start=1)
                if line.strip()
            ]
        records = []
        for position, (number, line) in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if position == len(lines) - 1:
                    print(
                        json.dumps(
                            {
                                "warning": "truncated-result-record",
                                "path": path,
                                "line": number,
                                "detail": f"skipped partial trailing record ({exc.msg})",
                            },
                            sort_keys=True,
                        ),
                        file=sys.stderr,
                    )
                    break
                raise ValueError(
                    f"{path}:{number}: corrupt result record mid-stream: {exc}"
                ) from exc
        return records


def stable_view(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The run-invariant part of a record (what the digest covers)."""
    return {
        k: v
        for k, v in json_safe_record(record).items()
        if k not in VOLATILE_FIELDS
    }


def aggregate(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Reduce records to a deterministic summary.

    Completion order does not matter: records are sorted by a stable
    key before reduction.  Duplicate job keys are surfaced rather than
    silently merged -- a farm bug that double-records a job must fail
    loudly in the consumers.
    """
    ordered = sorted(
        (dict(r) for r in records),
        key=lambda r: (r.get("job_key") or r.get("key") or "", r.get("name", ""), r.get("index", -1)),
    )
    by_status: Dict[str, int] = {}
    total_cycles = 0
    total_words = 0
    total_attempts = 0
    total_wall = 0.0
    seen_keys: Dict[str, int] = {}
    duplicates: List[str] = []
    failures: List[Dict[str, Any]] = []
    by_host: Dict[str, int] = {}
    for record in ordered:
        status = record.get("status", "error")
        by_status[status] = by_status.get(status, 0) + 1
        if record.get("host"):
            by_host[record["host"]] = by_host.get(record["host"], 0) + 1
        total_cycles += record.get("cycles") or 0
        total_words += record.get("words") or 0
        total_attempts += record.get("attempts") or record.get("attempt") or 1
        total_wall += record.get("wall_s") or 0.0
        key = record.get("job_key") or record.get("key") or ""
        seen_keys[key] = seen_keys.get(key, 0) + 1
        if key and seen_keys[key] == 2:
            duplicates.append(key)
        if status != "ok":
            failures.append(
                {
                    "name": record.get("name"),
                    "status": status,
                    "error": record.get("error"),
                }
            )
    digest_payload = json.dumps(
        [stable_view(r) for r in ordered], sort_keys=True, separators=(",", ":")
    )
    summary = {
        "jobs": len(ordered),
        "by_status": dict(sorted(by_status.items())),
        "total_cycles": total_cycles,
        "total_words": total_words,
        "total_attempts": total_attempts,
        "total_wall_s": total_wall,
        "duplicates": duplicates,
        "failures": failures,
        "digest": hashlib.sha256(digest_payload.encode()).hexdigest(),
    }
    # only distributed runs tag records with a host; keep single-box
    # summaries (and anything diffing them) unchanged
    if by_host:
        summary["by_host"] = dict(sorted(by_host.items()))
    return summary


def render_summary(summary: Mapping[str, Any]) -> str:
    """A plain-text view of an aggregate (the ``mips-farm status`` body)."""
    lines = [
        f"jobs:        {summary['jobs']}",
        "status:      "
        + ", ".join(f"{k}={v}" for k, v in summary["by_status"].items()),
        f"cycles:      {summary['total_cycles']}",
        f"words:       {summary['total_words']}",
        f"attempts:    {summary['total_attempts']}",
        f"wall time:   {summary['total_wall_s']:.2f}s (sum over jobs)",
        f"digest:      {summary['digest']}",
    ]
    for host, count in summary.get("by_host", {}).items():
        lines.append(f"  host {host}: {count} job(s)")
    if summary["duplicates"]:
        lines.append(f"DUPLICATED JOB KEYS: {', '.join(summary['duplicates'])}")
    for failure in summary["failures"]:
        error = failure.get("error") or {}
        lines.append(
            f"  failed: {failure['name']} [{failure['status']}] "
            f"{error.get('type', '')}: {error.get('message', '')}"
        )
    return "\n".join(lines)
