"""Job specifications for the simulation farm.

A :class:`Job` names one unit of batch work -- a corpus workload to
simulate, a raw source program, one of the paper's experiments, a DMA
throughput run -- together with everything needed to execute it
reproducibly: hazard mode, optimization level, step budget, input
queue.  Jobs are pure data (no live objects), so they cross process
boundaries cheaply and two structurally-equal jobs hash to the same
**stable key**, which is what result caching and deduplication key on.

The farm never mutates a job; per-attempt state (attempt counter,
backoff deadline) lives in the scheduler.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

#: job kinds the worker knows how to execute (see repro.farm.worker)
KIND_WORKLOAD = "workload"      # corpus program by name, compiled and simulated
KIND_SOURCE = "source"          # inline mini-Pascal source text
KIND_ASM = "asm"                # inline assembly source text
KIND_EXPERIMENT = "experiment"  # one registered table/figure reproduction
KIND_DMA = "dma"                # free-cycle DMA throughput over one workload
KIND_BENCH = "bench"            # one pytest-benchmark test, run in isolation
KIND_CHAOS = "chaos"            # fault-injection probe (tests only)
KIND_FUZZ = "fuzz"              # differential-oracle fuzz batch

ALL_KINDS = (
    KIND_WORKLOAD,
    KIND_SOURCE,
    KIND_ASM,
    KIND_EXPERIMENT,
    KIND_DMA,
    KIND_BENCH,
    KIND_CHAOS,
    KIND_FUZZ,
)


def _canonical(value: Any) -> Any:
    """A JSON-stable view of a spec value (tuples become lists)."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


@dataclass(frozen=True)
class Job:
    """One schedulable unit of simulation work.

    ``spec`` carries kind-specific parameters (source text, register
    allocation flag, DMA transfer length, ...); everything else is the
    common execution envelope.
    """

    kind: str
    name: str
    spec: Mapping[str, Any] = field(default_factory=dict)
    hazard_mode: str = "bare"
    opt_level: str = "branch-delay"
    max_steps: int = 30_000_000
    inputs: Tuple[int, ...] = ()
    #: wall-clock budget; None means the scheduler default applies
    timeout_s: Optional[float] = None
    #: attempt cap; None means the scheduler default applies
    max_attempts: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r} (have {', '.join(ALL_KINDS)})")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "spec", dict(self.spec))

    @property
    def key(self) -> str:
        """A stable digest of everything that determines the result.

        Wall-clock knobs (timeout, attempt cap) are excluded: they
        bound *how long* we wait, not *what* the job computes, so a job
        keeps its key when the operator retunes the farm.
        """
        payload = json.dumps(
            {
                "kind": self.kind,
                "name": self.name,
                "spec": _canonical(self.spec),
                "hazard_mode": self.hazard_mode,
                "opt_level": self.opt_level,
                "max_steps": self.max_steps,
                "inputs": list(self.inputs),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """The wire form sent to workers (plain picklable data)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "spec": dict(self.spec),
            "hazard_mode": self.hazard_mode,
            "opt_level": self.opt_level,
            "max_steps": self.max_steps,
            "inputs": list(self.inputs),
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        return cls(
            kind=data["kind"],
            name=data["name"],
            spec=dict(data.get("spec", {})),
            hazard_mode=data.get("hazard_mode", "bare"),
            opt_level=data.get("opt_level", "branch-delay"),
            max_steps=data.get("max_steps", 30_000_000),
            inputs=tuple(data.get("inputs", ())),
            timeout_s=data.get("timeout_s"),
            max_attempts=data.get("max_attempts"),
        )


def _engine_spec(engine: str, engine_stats: bool) -> Dict[str, Any]:
    """Spec fragment selecting the simulation engine.

    The default engine ("fast") is omitted from the spec so every job
    key minted before engines existed stays stable -- cached results
    keep matching.
    """
    spec: Dict[str, Any] = {}
    if engine != "fast":
        spec["engine"] = engine
    if engine_stats:
        spec["engine_stats"] = True
    return spec


def workload_jobs(
    names: Sequence[str],
    hazard_mode: str = "bare",
    opt_level: str = "branch-delay",
    max_steps: int = 30_000_000,
    register_allocation: bool = True,
    engine: str = "fast",
    engine_stats: bool = False,
) -> Tuple[Job, ...]:
    """One simulation job per named corpus workload.

    ``engine`` selects the simulation tier ("fast", "jit", "precise");
    ``engine_stats=True`` records the fast-path dispatch counters in
    the result's extras (deterministic -- the CI dispatch gate keys on
    them).
    """
    return tuple(
        Job(
            kind=KIND_WORKLOAD,
            name=name,
            spec={
                "register_allocation": register_allocation,
                **_engine_spec(engine, engine_stats),
            },
            hazard_mode=hazard_mode,
            opt_level=opt_level,
            max_steps=max_steps,
        )
        for name in names
    )


def profile_jobs(
    names: Sequence[str],
    top: Optional[int] = None,
    hazard_mode: str = "bare",
    opt_level: str = "branch-delay",
    max_steps: int = 30_000_000,
    engine: str = "fast",
    engine_stats: bool = False,
) -> Tuple[Job, ...]:
    """Workload jobs with per-PC profiling enabled.

    The profile flag lives in the spec, so profile jobs are
    content-addressed separately from plain simulations of the same
    workload and the exported profiles shard/cache like any result.
    """
    return tuple(
        Job(
            kind=KIND_WORKLOAD,
            name=name,
            spec={
                "register_allocation": True,
                "profile": top if top is not None else True,
                **_engine_spec(engine, engine_stats),
            },
            hazard_mode=hazard_mode,
            opt_level=opt_level,
            max_steps=max_steps,
        )
        for name in names
    )


def experiment_jobs(names: Sequence[str]) -> Tuple[Job, ...]:
    """One job per registered experiment (table/figure) name."""
    return tuple(Job(kind=KIND_EXPERIMENT, name=name) for name in names)


def fuzz_jobs(
    seed: int,
    cases: int,
    mode: str = "both",
    batch: int = 25,
    max_steps: int = 2_000_000,
    start: int = 0,
) -> Tuple[Job, ...]:
    """Contiguous fuzz-case batches as content-addressed jobs.

    Which cases a batch covers is a pure function of its spec (seed,
    start, count, mode), never of the parallelism that executes it, so
    the result set is byte-identical at any ``--jobs``/``--hosts``
    split and a cached batch stays valid forever.
    """
    from ..fuzz.batch import batch_ranges

    return tuple(
        Job(
            kind=KIND_FUZZ,
            name=f"fuzz-{mode}-s{seed}-b{start + r['start']:06d}",
            spec={
                "seed": seed,
                "start": start + r["start"],
                "count": r["count"],
                "mode": mode,
            },
            max_steps=max_steps,
        )
        for r in batch_ranges(cases, batch)
    )


def chaos_jobs(
    campaigns: Sequence[str],
    seed: int,
    engines: Sequence[str] = ("fast", "precise"),
) -> Tuple[Job, ...]:
    """One fault-injection campaign job per named campaign.

    The seed is part of the spec (and therefore the job key), so a
    failing campaign is content-addressed by exactly the plan that
    failed and replays with ``mips-chaos run --seed N --campaign X``.
    """
    return tuple(
        Job(
            kind=KIND_CHAOS,
            name=f"chaos-{name}",
            spec={"campaign": name, "seed": seed, "engines": list(engines)},
        )
        for name in campaigns
    )
