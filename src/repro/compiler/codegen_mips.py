"""MIPS code generation from the checked mini-Pascal AST.

The generator emits a *piece stream* (sequential semantics) that the
postpass reorganizer schedules, packs, and assembles -- the division of
labor the paper describes in section 4.2.1.

Conventions
-----------

Registers: ``r1`` function result / trap argument; ``r2``-``r7``
expression temporaries (caller-saved); ``r8``-``r11`` register-allocated
locals (callee-saved); ``r12`` frame pointer; ``r14`` stack pointer;
``r15`` return address.

Frame (stack grows down, word addressed)::

    arg i        fp + 2 + i     (pushed by the caller, arg0 deepest)
    saved ra     fp + 1
    saved fp     fp + 0
    local i      fp - 1 - i
    saved r8..   below the locals

Boolean evaluation strategy is pluggable (paper sections 2.3.1-2.3.2):
``SET_CONDITIONALLY`` uses the MIPS *Set Conditionally* instruction for
stored booleans (branch-free, Figure 3); ``BRANCHING`` models a machine
without it (jump-based 0/1 materialization).  Conditional contexts
always use compare-and-branch, which is the natural MIPS translation.

Every ``Load``/``Store`` piece carries a ``note`` tag
``{load,store}:{8,32}:{char,word}`` so the Table 7/8 reference-pattern
analysis can classify dynamic traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple, Union

from ..isa.immediates import fits_imm4, fits_movi
from ..isa.operations import (
    NEGATED_COMPARISON,
    AluOp,
    Comparison,
)
from ..isa.pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    LoadLabel,
    MovImm,
    Operand,
    Piece,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from ..isa.registers import FP, RA, SP, Reg, SpecialReg
from ..lang import ast
from ..lang.semantic import CheckedProgram, RoutineSymbol, VarSymbol
from ..lang.types import BOOLEAN, CHAR, INTEGER, ArrayType, RecordType, Type
from ..reorg.blocks import LabeledPiece
from .layout import BYTES_PER_WORD, Layout, LayoutStrategy

TEMP_REGS = [2, 3, 4, 5, 6, 7]
SAVED_REGS = [8, 9, 10, 11]
#: when the global-pointer convention is on, r11 holds the globals base
#: for the whole run and leaves the allocatable pool
GP_REG = Reg(11)
SAVED_REGS_WITH_GP = [8, 9, 10]
RESULT_REG = Reg(1)

TRAP_HALT = 0
TRAP_WRITE_INT = 1
TRAP_WRITE_CHAR = 2
TRAP_READ_INT = 3


class CompileError(Exception):
    pass


class BooleanStrategy(Enum):
    SET_CONDITIONALLY = "setcond"
    BRANCHING = "branching"


@dataclass
class CompileOptions:
    layout: LayoutStrategy = LayoutStrategy.WORD_ALLOCATED
    boolean_strategy: BooleanStrategy = BooleanStrategy.SET_CONDITIONALLY
    register_allocation: bool = True
    #: keep the globals base in r11 so scalar globals are reached with
    #: short displacements (the packable form); era code generators used
    #: exactly this base-register discipline
    use_global_pointer: bool = True
    #: word address where the globals region begins
    globals_base: int = 8192


@dataclass
class CompiledUnit:
    """Code generator output: the piece stream plus its metadata."""

    stream: List[LabeledPiece]
    globals_base: int
    globals_words: int
    global_addrs: Dict[str, int]
    #: every constant emitted as an instruction operand (Table 1 data)
    constants: List[int]
    needs_mul: bool = False
    needs_div: bool = False
    needs_alloc: bool = False
    options: Optional[CompileOptions] = None


_RELOP_TO_COMPARISON = {
    "=": Comparison.EQ,
    "<>": Comparison.NE,
    "<": Comparison.LT,
    "<=": Comparison.LE,
    ">": Comparison.GT,
    ">=": Comparison.GE,
}


@dataclass
class Val:
    """An evaluated expression: a constant or a value in a register."""

    reg: Optional[Reg] = None
    const: Optional[int] = None
    owned: bool = False  # generator must free the temp

    @property
    def is_const(self) -> bool:
        return self.const is not None


@dataclass
class Loc:
    """A memory location.

    ``byte_grain`` locations are byte pointers (word address * 4 + byte
    offset); word-grain locations are ``base + offset`` in words, with
    ``base is None`` meaning absolute.
    """

    byte_grain: bool
    base: Optional[Reg]
    offset: int
    char: bool
    owned_base: bool = False


class _TempPool:
    """Expression temporary allocator with liveness tracking."""

    def __init__(self) -> None:
        self.free: List[int] = list(TEMP_REGS)
        self.live: List[int] = []

    def alloc(self) -> Reg:
        if not self.free:
            raise CompileError(
                "expression too deep: out of temporaries (r2-r7)"
            )
        number = self.free.pop(0)
        self.live.append(number)
        return Reg(number)

    def release(self, reg: Reg) -> None:
        if reg.number in self.live:
            self.live.remove(reg.number)
            self.free.insert(0, reg.number)

    def live_regs(self) -> List[Reg]:
        return [Reg(n) for n in sorted(self.live)]


@dataclass
class _VarPlace:
    """Where a variable lives during one routine."""

    symbol: VarSymbol
    kind: str  # 'global' | 'frame' | 'reg' | 'byref'
    addr: int = 0       # global word address
    fp_offset: int = 0  # frame-relative word offset
    reg: Optional[Reg] = None


class CodeGenerator:
    """Generates a piece stream for one checked program."""

    def __init__(self, program: CheckedProgram, options: Optional[CompileOptions] = None):
        self.program = program
        self.options = options or CompileOptions()
        self.layout = Layout(self.options.layout)
        self.stream: List[LabeledPiece] = []
        self._pending_label: Optional[str] = None
        self._label_counter = 0
        self.constants: List[int] = []
        self.needs_mul = False
        self.needs_div = False
        self.needs_alloc = False

        self.global_addrs: Dict[str, int] = {}
        self.globals_words = 0
        self._allocate_globals()

        # per-routine state
        self.temps = _TempPool()
        self.places: Dict[str, _VarPlace] = {}
        self.consts: Dict[str, int] = dict(program.consts)
        self._frame_slots = 0
        self._hidden_slots: List[int] = []
        self._current_routine: Optional[RoutineSymbol] = None
        self._epilogue_label = ""

    # ------------------------------------------------------------------
    # emission plumbing
    # ------------------------------------------------------------------

    def emit(self, piece: Piece) -> None:
        self.stream.append((self._pending_label, piece))
        self._pending_label = None

    def emit_label(self, name: str) -> None:
        if self._pending_label is not None:
            # two labels on one spot: pin the first to a harmless move
            self.emit(Alu(AluOp.MOV, Reg(0), Imm(0), Reg(0)))
        self._pending_label = name

    def new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def use_constant(self, value: int) -> None:
        self.constants.append(value)

    # ------------------------------------------------------------------
    # constants and operands
    # ------------------------------------------------------------------

    def const_operand(self, value: int) -> Optional[Operand]:
        """An operand slot for the constant, if it fits the 4-bit field."""
        if fits_imm4(value):
            return Imm(value)
        return None

    def materialize_const(self, value: int) -> Reg:
        """Place a constant into a fresh temp (movi / lim as needed)."""
        dst = self.temps.alloc()
        self._emit_const_into(value, dst)
        return dst

    def _emit_const_into(self, value: int, dst: Reg) -> None:
        """Cheapest sequence placing ``value`` in ``dst`` (any 32-bit value)."""
        from ..isa.immediates import synthesize_large

        if fits_imm4(value):
            self.emit(Alu(AluOp.MOV, Imm(value), Imm(0), dst))
        elif fits_imm4(-value):
            self.emit(Alu(AluOp.RSUB, Imm(-value), Imm(0), dst))
        elif fits_movi(value):
            self.emit(MovImm(value, dst))
        elif -LoadImm.LIMIT <= value < LoadImm.LIMIT:
            self.emit(LoadImm(value, dst))
        else:
            scratch = self.temps.alloc()
            for piece in synthesize_large(value, dst, scratch):
                self.emit(piece)
            self.temps.release(scratch)

    def val_operand(self, val: Val) -> Operand:
        """Use a value as an instruction operand (register or 4-bit imm)."""
        if val.is_const:
            operand = self.const_operand(val.const)  # type: ignore[arg-type]
            if operand is not None:
                return operand
            return self.val_reg(val)
        assert val.reg is not None
        return val.reg

    def val_reg(self, val: Val) -> Reg:
        """Force a value into a register."""
        if val.reg is not None:
            return val.reg
        assert val.const is not None
        reg = self.materialize_const(val.const)
        val.reg = reg
        val.owned = True
        return reg

    def free_val(self, val: Val) -> None:
        if val.owned and val.reg is not None:
            self.temps.release(val.reg)
            val.owned = False

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------

    def _allocate_globals(self) -> None:
        # scalars first: with the global-pointer convention their
        # displacements stay small enough for the packed short form
        addr = self.options.globals_base
        ordered = sorted(
            self.program.globals.items(),
            key=lambda item: 0 if item[1].type.is_scalar else 1,
        )
        for name, symbol in ordered:
            self.global_addrs[name] = addr
            addr += self.layout.type_words(symbol.type)
        self.globals_words = addr - self.options.globals_base

    @property
    def saved_regs(self) -> List[int]:
        if self.options.use_global_pointer:
            return SAVED_REGS_WITH_GP
        return SAVED_REGS

    def generate(self) -> CompiledUnit:
        """Generate the whole program: main body first, then routines."""
        self._gen_main()
        for routine in self.program.routines.values():
            self._gen_routine(routine)
        if self._pending_label is not None:
            self.emit(Alu(AluOp.MOV, Reg(0), Imm(0), Reg(0)))
        return CompiledUnit(
            self.stream,
            self.options.globals_base,
            self.globals_words,
            dict(self.global_addrs),
            list(self.constants),
            self.needs_mul,
            self.needs_div,
            self.needs_alloc,
            self.options,
        )

    def _gen_main(self) -> None:
        self.places = {}
        self.temps = _TempPool()
        self._frame_slots = 0
        self._current_routine = None
        self.consts = dict(self.program.consts)
        if self.options.register_allocation:
            self._allocate_main_globals()
        self.emit_label("start")
        if self.options.use_global_pointer:
            self.emit(LoadImm(self.options.globals_base, GP_REG))
        # main gets a frame for hidden slots (for-loop limits, spills)
        self.emit(Alu(AluOp.MOV, SP, Imm(0), FP))
        frame_fixup = len(self.stream)
        self.emit(Alu(AluOp.SUB, SP, Imm(0), SP))  # patched below
        self._gen_stmt(self.program.ast.body)
        self.emit(Trap(TRAP_HALT))
        self._patch_frame(frame_fixup)

    def _patch_frame(self, index: int) -> None:
        """Rewrite the frame-allocation placeholder with the final size."""
        label, _old = self.stream[index]
        size = self._frame_slots
        if fits_imm4(size):
            self.stream[index] = (label, Alu(AluOp.SUB, SP, Imm(size), SP))
        else:
            # large frame: materialize the size into a scratch register
            if size >= LoadImm.LIMIT:
                raise CompileError(f"frame too large: {size} words")
            first: Piece = (
                MovImm(size, Reg(7)) if fits_movi(size) else LoadImm(size, Reg(7))
            )
            self.stream[index] = (label, first)
            self.stream.insert(index + 1, (None, Alu(AluOp.SUB, SP, Reg(7), SP)))

    def _alloc_hidden_slot(self) -> int:
        """A compiler-private frame slot (fp-relative offset)."""
        slot = self._frame_slots
        self._frame_slots += 1
        return -(1 + slot)

    # -- register allocation -------------------------------------------------

    def _allocate_main_globals(self) -> None:
        """Promote hot scalar globals used only by the main body to registers.

        A global referenced by any routine (or whose address escapes to
        a var parameter) stays in memory; the rest are ranked by the
        main body's weighted use counts.  Registers and globals both
        start at zero, so no initialization is needed.
        """
        import types

        main_shim = types.SimpleNamespace(body=self.program.ast.body)
        touched_by_routines: Set[str] = set()
        for routine_symbol in self.program.routines.values():
            node = routine_symbol.ast_node
            if node is None:
                continue
            local_names = {p.name for p in routine_symbol.params}
            local_names |= {v.name for v in routine_symbol.locals}
            local_names.add(routine_symbol.name)
            for name, count in self._count_uses(node).items():
                if name not in local_names and count > 0:
                    touched_by_routines.add(name)
            touched_by_routines |= self._collect_addressed(node)  # type: ignore[arg-type]
        addressed = self._collect_addressed(main_shim)  # type: ignore[arg-type]
        counts = self._count_uses(main_shim)  # type: ignore[arg-type]
        candidates = []
        for name, symbol in self.program.globals.items():
            if not symbol.type.is_scalar:
                continue
            if name in touched_by_routines or name in addressed:
                continue
            count = counts.get(name, 0)
            if count > 2:
                candidates.append((count, name))
        candidates.sort(reverse=True)
        for (count, name), number in zip(candidates, self.saved_regs):
            self.places[name] = _VarPlace(
                self.program.globals[name], "reg", reg=Reg(number)
            )

    def _collect_addressed(self, routine: ast.Routine) -> Set[str]:
        """Names whose address escapes (var-parameter arguments)."""
        addressed: Set[str] = set()

        def visit_call(name: str, args: List[ast.Expr]) -> None:
            symbol = self.program.routines.get(name)
            if symbol is None:
                return
            for arg, param in zip(args, symbol.params):
                if param.by_ref and isinstance(arg, ast.VarRef):
                    addressed.add(arg.name)

        def walk_expr(expr: Optional[ast.Expr]) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.CallExpr):
                visit_call(expr.name, expr.args)
                for arg in expr.args:
                    walk_expr(arg)
            elif isinstance(expr, ast.BinOp):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, ast.UnOp):
                walk_expr(expr.operand)
            elif isinstance(expr, ast.Index):
                walk_expr(expr.base)
                walk_expr(expr.index)
            elif isinstance(expr, ast.FieldAccess):
                walk_expr(expr.base)
            elif isinstance(expr, ast.MemWord):
                walk_expr(expr.base)
            elif isinstance(expr, ast.GlobalAddr):
                # the global's memory address escapes: keep it in memory
                addressed.add(expr.name)
            elif isinstance(expr, ast.CallIndirect):
                walk_expr(expr.target)
                for arg in expr.args:
                    walk_expr(arg)
            elif isinstance(expr, ast.AllocWords):
                walk_expr(expr.size)

        def walk(stmt: Optional[ast.Stmt]) -> None:
            if stmt is None:
                return
            if isinstance(stmt, ast.Compound):
                for inner in stmt.body:
                    walk(inner)
            elif isinstance(stmt, ast.Assign):
                walk_expr(stmt.target)
                walk_expr(stmt.value)
            elif isinstance(stmt, ast.CallStmt):
                visit_call(stmt.name, stmt.args)
                for arg in stmt.args:
                    walk_expr(arg)
            elif isinstance(stmt, ast.If):
                walk_expr(stmt.cond)
                walk(stmt.then_branch)
                walk(stmt.else_branch)
            elif isinstance(stmt, ast.While):
                walk_expr(stmt.cond)
                walk(stmt.body)
            elif isinstance(stmt, ast.Repeat):
                for inner in stmt.body:
                    walk(inner)
                walk_expr(stmt.cond)
            elif isinstance(stmt, ast.For):
                walk_expr(stmt.start)
                walk_expr(stmt.stop)
                walk(stmt.body)
            elif isinstance(stmt, ast.Write):
                for arg in stmt.args:
                    walk_expr(arg)
            elif isinstance(stmt, ast.Read):
                walk_expr(stmt.target)

        walk(routine.body)
        return addressed

    def _count_uses(self, routine: ast.Routine) -> Dict[str, int]:
        counts: Dict[str, int] = {}

        def bump(name: str, weight: int = 1) -> None:
            counts[name] = counts.get(name, 0) + weight

        def walk_expr(expr: Optional[ast.Expr], weight: int) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.VarRef):
                bump(expr.name, weight)
            elif isinstance(expr, ast.BinOp):
                walk_expr(expr.left, weight)
                walk_expr(expr.right, weight)
            elif isinstance(expr, ast.UnOp):
                walk_expr(expr.operand, weight)
            elif isinstance(expr, ast.Index):
                walk_expr(expr.base, weight)
                walk_expr(expr.index, weight)
            elif isinstance(expr, ast.FieldAccess):
                walk_expr(expr.base, weight)
            elif isinstance(expr, ast.CallExpr):
                for arg in expr.args:
                    walk_expr(arg, weight)
            elif isinstance(expr, ast.MemWord):
                walk_expr(expr.base, weight)
            elif isinstance(expr, ast.CallIndirect):
                walk_expr(expr.target, weight)
                for arg in expr.args:
                    walk_expr(arg, weight)
            elif isinstance(expr, ast.AllocWords):
                walk_expr(expr.size, weight)

        def walk(stmt: Optional[ast.Stmt], weight: int) -> None:
            if stmt is None:
                return
            if isinstance(stmt, ast.Compound):
                for inner in stmt.body:
                    walk(inner, weight)
            elif isinstance(stmt, ast.Assign):
                walk_expr(stmt.target, weight)
                walk_expr(stmt.value, weight)
            elif isinstance(stmt, ast.CallStmt):
                for arg in stmt.args:
                    walk_expr(arg, weight)
            elif isinstance(stmt, ast.If):
                walk_expr(stmt.cond, weight)
                walk(stmt.then_branch, weight)
                walk(stmt.else_branch, weight)
            elif isinstance(stmt, ast.While):
                walk_expr(stmt.cond, weight * 8)
                walk(stmt.body, weight * 8)
            elif isinstance(stmt, ast.Repeat):
                for inner in stmt.body:
                    walk(inner, weight * 8)
                walk_expr(stmt.cond, weight * 8)
            elif isinstance(stmt, ast.For):
                bump(stmt.var, weight * 8)
                walk_expr(stmt.start, weight)
                walk_expr(stmt.stop, weight)
                walk(stmt.body, weight * 8)
            elif isinstance(stmt, ast.Write):
                for arg in stmt.args:
                    walk_expr(arg, weight)
            elif isinstance(stmt, ast.Read):
                walk_expr(stmt.target, weight)

        walk(routine.body, 1)
        return counts

    # -- routines ------------------------------------------------------------

    def _gen_routine(self, symbol: RoutineSymbol) -> None:
        routine = symbol.ast_node
        assert routine is not None
        self.places = {}
        self.temps = _TempPool()
        self._frame_slots = 0
        self._current_routine = symbol
        self._epilogue_label = f"{symbol.name}__ret"
        self.consts = dict(self.program.consts)
        self.consts.update({c.name: c.value for c in routine.consts})

        # decide register allocation
        reg_assignment: Dict[str, Reg] = {}
        if self.options.register_allocation:
            addressed = self._collect_addressed(routine)
            counts = self._count_uses(routine)
            candidates = []
            scalars = list(symbol.params) + list(symbol.locals)
            if symbol.is_function:
                scalars.append(
                    VarSymbol(symbol.name, symbol.result, "result", routine=symbol.name)  # type: ignore[arg-type]
                )
            for var in scalars:
                if var.by_ref or not var.type.is_scalar or var.name in addressed:
                    continue
                candidates.append((counts.get(var.name, 0), var.name))
            candidates.sort(reverse=True)
            # the callee-save push/pop (and the parameter copy) cost ~4
            # memory references per call: only promote variables whose
            # weighted use count amortizes that
            worthwhile = [(c, n) for c, n in candidates if c > 4]
            for (count, name), number in zip(worthwhile, self.saved_regs):
                reg_assignment[name] = Reg(number)

        # lay out the frame
        for i, param in enumerate(symbol.params):
            if param.name in reg_assignment:
                self.places[param.name] = _VarPlace(
                    param, "reg", reg=reg_assignment[param.name], fp_offset=2 + i
                )
            elif param.by_ref:
                self.places[param.name] = _VarPlace(param, "byref", fp_offset=2 + i)
            else:
                self.places[param.name] = _VarPlace(param, "frame", fp_offset=2 + i)
        for local in symbol.locals:
            if local.name in reg_assignment:
                self.places[local.name] = _VarPlace(local, "reg", reg=reg_assignment[local.name])
            else:
                words = self.layout.type_words(local.type)
                first = self._frame_slots
                self._frame_slots += words
                # slot block occupies fp-1-first .. fp-first-words; the
                # variable's offset addresses its lowest word
                self.places[local.name] = _VarPlace(
                    local, "frame", fp_offset=-(first + words)
                )
        if symbol.is_function and symbol.name not in self.places:
            slot = self._alloc_hidden_slot()
            result_sym = VarSymbol(symbol.name, symbol.result, "result", routine=symbol.name)  # type: ignore[arg-type]
            self.places[symbol.name] = _VarPlace(result_sym, "frame", fp_offset=slot)
        elif symbol.is_function and symbol.name in reg_assignment:
            result_sym = VarSymbol(symbol.name, symbol.result, "result", routine=symbol.name)  # type: ignore[arg-type]
            self.places[symbol.name] = _VarPlace(
                result_sym, "reg", reg=reg_assignment[symbol.name]
            )

        used_saved = sorted({p.reg.number for p in self.places.values() if p.kind == "reg"})

        # prologue
        self.emit_label(symbol.name)
        self.emit(Alu(AluOp.SUB, SP, Imm(2), SP))
        self.emit(Store(Displacement(SP, 1), RA, note="store:32:word"))
        self.emit(Store(Displacement(SP, 0), FP, note="store:32:word"))
        self.emit(Alu(AluOp.MOV, SP, Imm(0), FP))
        frame_fixup = len(self.stream)
        self.emit(Alu(AluOp.SUB, SP, Imm(0), SP))  # patched with the frame size
        for number in used_saved:
            self.emit(Alu(AluOp.SUB, SP, Imm(1), SP))
            self.emit(Store(Displacement(SP, 0), Reg(number), note="store:32:word"))
        # copy register-assigned parameters from their stack slots
        for place in self.places.values():
            if place.kind == "reg" and place.symbol.kind == "param":
                self.emit(
                    Load(Displacement(FP, place.fp_offset), place.reg, note="load:32:word")
                )

        self._gen_stmt(routine.body)

        # epilogue
        self.emit_label(self._epilogue_label)
        if symbol.is_function:
            place = self.places[symbol.name]
            if place.kind == "reg":
                assert place.reg is not None
                self.emit(Alu(AluOp.MOV, place.reg, Imm(0), RESULT_REG))
            else:
                self.emit(
                    Load(Displacement(FP, place.fp_offset), RESULT_REG, note="load:32:word")
                )
        for number in reversed(used_saved):
            self.emit(Load(Displacement(SP, 0), Reg(number), note="load:32:word"))
            self.emit(Alu(AluOp.ADD, SP, Imm(1), SP))
        self.emit(Alu(AluOp.MOV, FP, Imm(0), SP))
        self.emit(Load(Displacement(SP, 1), RA, note="load:32:word"))
        self.emit(Load(Displacement(SP, 0), FP, note="load:32:word"))
        self.emit(Alu(AluOp.ADD, SP, Imm(2), SP))
        self.emit(JumpIndirect(RA))
        self._patch_frame(frame_fixup)

    # ------------------------------------------------------------------
    # locations
    # ------------------------------------------------------------------

    def _place(self, name: str) -> _VarPlace:
        if name in self.places:
            return self.places[name]
        if name in self.program.globals:
            symbol = self.program.globals[name]
            return _VarPlace(symbol, "global", addr=self.global_addrs[name])
        raise CompileError(f"no storage for {name!r}")

    def resolve_loc(self, expr: ast.Expr) -> Loc:
        """Resolve a designator to a memory location.

        Register-resident scalars never reach here; callers check
        :meth:`reg_place` first.
        """
        if isinstance(expr, ast.VarRef):
            place = self._place(expr.name)
            char = place.symbol.type.is_byte_natured
            if place.kind == "global":
                if self.options.use_global_pointer:
                    offset = place.addr - self.options.globals_base
                    return Loc(False, GP_REG, offset, char)
                return Loc(False, None, place.addr, char)
            if place.kind == "frame":
                return Loc(False, FP, place.fp_offset, char)
            if place.kind == "byref":
                reg = self.temps.alloc()
                self.emit(
                    Load(Displacement(FP, place.fp_offset), reg, note="load:32:word")
                )
                return Loc(False, reg, 0, char, owned_base=True)
            raise CompileError(f"{expr.name!r} lives in a register")

        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            array_type = expr.base.type  # type: ignore[attr-defined]
            assert isinstance(array_type, ArrayType)
            base = self.resolve_loc(expr.base)
            if base.byte_grain:
                raise CompileError("array of byte-grain aggregates is unsupported")
            index = self.gen_expr(expr.index)
            byte_grain = self.layout.element_byte_grain(array_type)
            char = array_type.element.is_byte_natured
            if byte_grain:
                return self._byte_element_loc(base, index, array_type, char)
            elem_words = self.layout.element_words(array_type)
            if index.is_const:
                offset = (index.const - array_type.low) * elem_words  # type: ignore[operand-type]
                return Loc(False, base.base, base.offset + offset, char, base.owned_base)
            scaled = self._scale_index(index, elem_words, array_type.low)
            if base.base is None:
                return Loc(False, scaled, base.offset, char, owned_base=True)
            combined = scaled
            self.emit(Alu(AluOp.ADD, base.base, scaled, combined))
            if base.owned_base:
                self.temps.release(base.base)
            return Loc(False, combined, base.offset, char, owned_base=True)

        if isinstance(expr, ast.FieldAccess):
            assert expr.base is not None
            record_type = expr.base.type  # type: ignore[attr-defined]
            assert isinstance(record_type, RecordType)
            base = self.resolve_loc(expr.base)
            slot = self.layout.field_slot(record_type, expr.field_name)
            field_type = record_type.field_type(expr.field_name)
            assert field_type is not None
            char = field_type.is_byte_natured
            if not slot.byte_grain:
                return Loc(
                    False, base.base, base.offset + slot.word_offset, char, base.owned_base
                )
            # byte-grain field: form the byte pointer
            word_off = base.offset + slot.word_offset
            if base.base is None:
                return Loc(True, None, word_off * BYTES_PER_WORD + slot.byte_offset, char)
            ptr = self.temps.alloc()
            self._emit_add_const(base.base, word_off, ptr)
            self.emit(Alu(AluOp.SLL, ptr, Imm(2), ptr))
            self._emit_add_const(ptr, slot.byte_offset, ptr)
            if base.owned_base:
                self.temps.release(base.base)
            return Loc(True, ptr, 0, char, owned_base=True)

        if isinstance(expr, ast.MemWord):
            # heap word: base expression + constant word offset
            assert expr.base is not None
            base = self.gen_expr(expr.base)
            if base.is_const:
                return Loc(False, None, base.const + expr.offset, False)  # type: ignore[operator]
            reg = self.val_reg(base)
            return Loc(False, reg, expr.offset, False, owned_base=base.owned)

        raise CompileError(f"not a designator: {expr!r}")

    def _byte_element_loc(
        self, base: Loc, index: Val, array_type: ArrayType, char: bool
    ) -> Loc:
        """Byte pointer for an element of a byte-grain array."""
        low = array_type.low
        if index.is_const and base.base is None:
            byte_ptr = base.offset * BYTES_PER_WORD + (index.const - low)  # type: ignore[operand-type]
            return Loc(True, None, byte_ptr, char)
        ptr = self.temps.alloc()
        if base.base is None:
            self.emit(LoadImm(base.offset * BYTES_PER_WORD, ptr))
        else:
            self._emit_add_const(base.base, base.offset, ptr)
            self.emit(Alu(AluOp.SLL, ptr, Imm(2), ptr))
            if base.owned_base:
                self.temps.release(base.base)
        index_op = self.val_operand(index)
        if index.is_const and fits_imm4(index.const - low):  # type: ignore[operand-type]
            self.emit(Alu(AluOp.ADD, ptr, Imm(index.const - low), ptr))  # type: ignore[operand-type]
        else:
            reg = self.val_reg(index)
            self.emit(Alu(AluOp.ADD, ptr, reg, ptr))
            if low:
                self._emit_add_const(ptr, -low, ptr)
        self.free_val(index)
        return Loc(True, ptr, 0, char, owned_base=True)

    def _scale_index(self, index: Val, elem_words: int, low: int) -> Reg:
        """(index - low) * elem_words into a fresh temp."""
        reg = self.val_reg(index)
        out = self.temps.alloc()
        self.emit(Alu(AluOp.MOV, reg, Imm(0), out))
        self.free_val(index)
        if low:
            self._emit_add_const(out, -low, out)
        if elem_words != 1:
            if elem_words & (elem_words - 1) == 0:
                shift = elem_words.bit_length() - 1
                self.emit(Alu(AluOp.SLL, out, Imm(shift), out))
            else:
                out2 = self._runtime_mul_const(out, elem_words)
                self.temps.release(out)
                return out2
        return out

    def _runtime_mul_const(self, reg: Reg, value: int) -> Reg:
        """Multiply by a non-power-of-two constant with shifts and adds."""
        out = self.temps.alloc()
        shifts = [i for i in range(32) if value & (1 << i)]
        first = True
        scratch = self.temps.alloc()
        for shift in shifts:
            if shift == 0:
                source: Operand = reg
            else:
                # chain through the 4-bit shift field for set bits >= 16
                step = min(shift, 15)
                self.emit(Alu(AluOp.SLL, reg, Imm(step), scratch))
                remaining = shift - step
                while remaining > 0:
                    step = min(remaining, 15)
                    self.emit(Alu(AluOp.SLL, scratch, Imm(step), scratch))
                    remaining -= step
                source = scratch
            if first:
                self.emit(Alu(AluOp.MOV, source, Imm(0), out))
                first = False
            else:
                self.emit(Alu(AluOp.ADD, out, source, out))
        self.temps.release(scratch)
        return out

    def _emit_add_const(self, src: Reg, value: int, dst: Reg) -> None:
        """dst := src + value using the cheapest constant form."""
        if value == 0:
            if src != dst:
                self.emit(Alu(AluOp.MOV, src, Imm(0), dst))
            return
        if fits_imm4(value):
            self.emit(Alu(AluOp.ADD, src, Imm(value), dst))
        elif fits_imm4(-value):
            self.emit(Alu(AluOp.SUB, src, Imm(-value), dst))
        else:
            temp = self.materialize_const(value)
            self.emit(Alu(AluOp.ADD, src, temp, dst))
            self.temps.release(temp)

    def free_loc(self, loc: Loc) -> None:
        if loc.owned_base and loc.base is not None:
            self.temps.release(loc.base)

    # ------------------------------------------------------------------
    # loads and stores
    # ------------------------------------------------------------------

    def load_loc(self, loc: Loc) -> Reg:
        """Load from a resolved location into a fresh temp."""
        dst = self.temps.alloc()
        kind = "char" if loc.char else "word"
        if not loc.byte_grain:
            address = self._word_address(loc)
            self.emit(Load(address, dst, note=f"load:32:{kind}"))
        elif loc.base is None:
            # constant byte pointer: the selector is a literal
            word_addr = loc.offset // BYTES_PER_WORD
            selector = loc.offset % BYTES_PER_WORD
            self.emit(Load(Absolute(word_addr), dst, note=f"load:8:{kind}"))
            self.emit(Alu(AluOp.XC, Imm(selector), dst, dst))
        else:
            self.emit(Load(BaseShifted(loc.base, 2), dst, note=f"load:8:{kind}"))
            self.emit(Alu(AluOp.XC, loc.base, dst, dst))
        return dst

    def store_loc(self, loc: Loc, value: Val) -> None:
        """Store a value to a resolved location."""
        kind = "char" if loc.char else "word"
        if not loc.byte_grain:
            reg = self.val_reg(value)
            address = self._word_address(loc)
            self.emit(Store(address, reg, note=f"store:32:{kind}"))
            return
        # byte store: fetch word, insert, store back (paper section 4.1)
        reg = self.val_reg(value)
        word = self.temps.alloc()
        if loc.base is None:
            word_addr = loc.offset // BYTES_PER_WORD
            selector = loc.offset % BYTES_PER_WORD
            self.emit(Load(Absolute(word_addr), word, note=f"load:8:{kind}"))
            self.emit(WriteSpecial(SpecialReg.LO, Imm(selector)))
            self.emit(Alu(AluOp.IC, reg, Imm(0), word))
            self.emit(Store(Absolute(word_addr), word, note=f"store:8:{kind}"))
        else:
            self.emit(Load(BaseShifted(loc.base, 2), word, note=f"load:8:{kind}"))
            self.emit(WriteSpecial(SpecialReg.LO, loc.base))
            self.emit(Alu(AluOp.IC, reg, Imm(0), word))
            self.emit(Store(BaseShifted(loc.base, 2), word, note=f"store:8:{kind}"))
        self.temps.release(word)

    def _word_address(self, loc: Loc):
        if loc.base is None:
            return Absolute(loc.offset)
        return Displacement(loc.base, loc.offset)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def reg_place(self, expr: ast.Expr) -> Optional[_VarPlace]:
        """The register place of a VarRef, if it has one."""
        if isinstance(expr, ast.VarRef) and expr.name in self.places:
            place = self.places[expr.name]
            if place.kind == "reg":
                return place
        return None

    def gen_expr(self, expr: ast.Expr) -> Val:
        """Evaluate an expression to a :class:`Val`."""
        if isinstance(expr, ast.IntLit):
            self.use_constant(expr.value)
            return Val(const=expr.value)
        if isinstance(expr, ast.CharLit):
            self.use_constant(expr.value)
            return Val(const=expr.value)
        if isinstance(expr, ast.BoolLit):
            self.use_constant(int(expr.value))
            return Val(const=int(expr.value))
        if isinstance(expr, ast.StringLit):
            raise CompileError("string literals are only allowed in write()")
        if isinstance(expr, ast.VarRef):
            if getattr(expr, "implicit_call", False):
                return self.gen_call(expr.name, [], want_result=True)
            const_value = getattr(expr, "const_value", None)
            if const_value is None and expr.name in self.consts:
                const_value = self.consts[expr.name]
            if const_value is not None:
                self.use_constant(const_value)
                return Val(const=const_value)
            place = self.reg_place(expr)
            if place is not None:
                assert place.reg is not None
                return Val(reg=place.reg, owned=False)
            loc = self.resolve_loc(expr)
            reg = self.load_loc(loc)
            self.free_loc(loc)
            return Val(reg=reg, owned=True)
        if isinstance(expr, (ast.Index, ast.FieldAccess, ast.MemWord)):
            loc = self.resolve_loc(expr)
            reg = self.load_loc(loc)
            self.free_loc(loc)
            return Val(reg=reg, owned=True)
        if isinstance(expr, ast.UnOp):
            return self._gen_unop(expr)
        if isinstance(expr, ast.BinOp):
            return self._gen_binop(expr)
        if isinstance(expr, ast.CallExpr):
            return self._gen_call_expr(expr)
        if isinstance(expr, ast.LabelAddr):
            out = self.temps.alloc()
            self.emit(LoadLabel(expr.label, out))
            return Val(reg=out, owned=True)
        if isinstance(expr, ast.GlobalAddr):
            addr = self.global_addrs[expr.name]
            self.use_constant(addr)
            return Val(const=addr)
        if isinstance(expr, ast.CallIndirect):
            return self._gen_call_indirect(expr)
        if isinstance(expr, ast.AllocWords):
            return self._gen_alloc(expr)
        raise CompileError(f"unhandled expression {expr!r}")

    def _gen_unop(self, expr: ast.UnOp) -> Val:
        assert expr.operand is not None
        if expr.op == "-":
            value = self.gen_expr(expr.operand)
            if value.is_const:
                return Val(const=-value.const)  # type: ignore[operand-type]
            out = self.temps.alloc()
            self.emit(Alu(AluOp.RSUB, value.reg, Imm(0), out))
            self.free_val(value)
            return Val(reg=out, owned=True)
        # not
        if self.options.boolean_strategy is BooleanStrategy.BRANCHING:
            return self._gen_bool_by_branching(expr)
        value = self.gen_expr(expr.operand)
        if value.is_const:
            return Val(const=1 - value.const)  # type: ignore[operand-type]
        out = self.temps.alloc()
        self.emit(Alu(AluOp.XOR, value.reg, Imm(1), out))
        self.free_val(value)
        return Val(reg=out, owned=True)

    def _gen_binop(self, expr: ast.BinOp) -> Val:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op in ("+", "-", "*", "div", "mod"):
            return self._gen_arith(expr)
        if op in _RELOP_TO_COMPARISON:
            if self.options.boolean_strategy is BooleanStrategy.BRANCHING:
                return self._gen_bool_by_branching(expr)
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            out = self.temps.alloc()
            self.emit(
                SetCond(
                    _RELOP_TO_COMPARISON[op],
                    self.val_operand(left),
                    self.val_operand(right),
                    out,
                )
            )
            self.free_val(left)
            self.free_val(right)
            return Val(reg=out, owned=True)
        if op in ("and", "or"):
            if self.options.boolean_strategy is BooleanStrategy.BRANCHING:
                return self._gen_bool_by_branching(expr)
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            out = self.temps.alloc()
            alu = AluOp.AND if op == "and" else AluOp.OR
            self.emit(Alu(alu, self.val_operand(left), self.val_operand(right), out))
            self.free_val(left)
            self.free_val(right)
            return Val(reg=out, owned=True)
        raise CompileError(f"unhandled operator {op!r}")

    def _gen_arith(self, expr: ast.BinOp) -> Val:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        left = self.gen_expr(expr.left)
        # constant folding -- wrapped to the 32-bit register width the
        # runtime ALU would have produced, or folded and computed values
        # disagree on wraparound edges
        if left.is_const and isinstance(expr.right, (ast.IntLit, ast.CharLit)):
            from ..isa.bits import s32

            rv = expr.right.value
            lv = left.const
            assert lv is not None
            if op == "+":
                return Val(const=s32(lv + rv))
            if op == "-":
                return Val(const=s32(lv - rv))
            if op == "*":
                return Val(const=s32(lv * rv))
            if op == "div" and rv != 0:
                quotient = abs(lv) // abs(rv)
                return Val(const=s32(quotient if (lv < 0) == (rv < 0) else -quotient))
            if op == "mod" and rv != 0:
                quotient = abs(lv) // abs(rv)
                signed = quotient if (lv < 0) == (rv < 0) else -quotient
                return Val(const=s32(lv - signed * rv))

        if op in ("+", "-"):
            right = self.gen_expr(expr.right)
            out = self.temps.alloc()
            alu = AluOp.ADD if op == "+" else AluOp.SUB
            if op == "-" and right.is_const and not fits_imm4(right.const or 0):
                # x - big  ==  x + (-big) handled via add of materialized
                reg = self.val_reg(right)
                self.emit(Alu(AluOp.SUB, self.val_operand(left), reg, out))
            else:
                self.emit(
                    Alu(alu, self.val_operand(left), self.val_operand(right), out)
                )
            self.free_val(left)
            self.free_val(right)
            return Val(reg=out, owned=True)

        if op == "*":
            right = self.gen_expr(expr.right)
            const, other = (
                (right, left)
                if right.is_const
                else (left, right) if left.is_const else (None, None)
            )
            if const is not None and other is not None:
                value = const.const
                assert value is not None
                if value == 0:
                    self.free_val(other)
                    return Val(const=0)
                if value == 1:
                    return other
                if value > 0 and bin(value).count("1") <= 8:
                    # shift-and-add expansion: ~2 ops per set bit beats
                    # the ~200-cycle software multiply loop decisively
                    reg = self.val_reg(other)
                    out = self._runtime_mul_const(reg, value)
                    self.free_val(other)
                    return Val(reg=out, owned=True)
            self.needs_mul = True
            return self._gen_runtime_binary("__mul", left, right, result_reg=1)

        # div / mod: a power-of-two divisor strength-reduces to a short
        # sign-correct shift sequence (truncation toward zero)
        if isinstance(expr.right, ast.IntLit) and expr.right.value > 0:
            divisor = expr.right.value
            if divisor == 1:
                if op == "div":
                    return left
                self.free_val(left)
                return Val(const=0)
            if divisor & (divisor - 1) == 0:
                return self._gen_pow2_divmod(left, divisor, want_mod=(op == "mod"))

        right = self.gen_expr(expr.right)
        self.needs_div = True
        return self._gen_runtime_binary(
            "__divmod", left, right, result_reg=1 if op == "div" else 4
        )

    def _gen_pow2_divmod(self, left: Val, divisor: int, want_mod: bool) -> Val:
        """``x div 2**k`` / ``x mod 2**k`` with Pascal truncation.

        bias = (x >> 31) & (2**k - 1); q = (x + bias) >>a k;
        r = x - (q << k).  Correct for negative dividends, no branches,
        no overflow (the bias never pushes x past zero).
        """
        k = divisor.bit_length() - 1
        x = self.val_reg(left)
        sign = self.temps.alloc()
        # arithmetic shift right by 31, within the 4-bit shift field
        self.emit(Alu(AluOp.SRA, x, Imm(15), sign))
        self.emit(Alu(AluOp.SRA, sign, Imm(15), sign))
        self.emit(Alu(AluOp.SRA, sign, Imm(1), sign))
        mask = divisor - 1
        if fits_imm4(mask):
            self.emit(Alu(AluOp.AND, sign, Imm(mask), sign))
        else:
            mask_reg = self.materialize_const(mask)
            self.emit(Alu(AluOp.AND, sign, mask_reg, sign))
            self.temps.release(mask_reg)
        quotient = self.temps.alloc()
        self.emit(Alu(AluOp.ADD, x, sign, quotient))
        self.temps.release(sign)
        self._emit_shift(AluOp.SRA, quotient, k)
        if not want_mod:
            self.free_val(left)
            return Val(reg=quotient, owned=True)
        self._emit_shift(AluOp.SLL, quotient, k)
        remainder = self.temps.alloc()
        self.emit(Alu(AluOp.SUB, x, quotient, remainder))
        self.temps.release(quotient)
        self.free_val(left)
        return Val(reg=remainder, owned=True)

    def _emit_shift(self, op: AluOp, reg: Reg, amount: int) -> None:
        """Shift by any amount through the 4-bit immediate field."""
        while amount > 0:
            step = min(amount, 15)
            self.emit(Alu(op, reg, Imm(step), reg))
            amount -= step

    def _spill_live_temps(self, keep: List[Reg]) -> List[Reg]:
        """Push caller-saved temps that stay live across a call."""
        keep_numbers = {r.number for r in keep}
        spilled = [r for r in self.temps.live_regs() if r.number not in keep_numbers]
        for reg in spilled:
            self.emit(Alu(AluOp.SUB, SP, Imm(1), SP))
            self.emit(Store(Displacement(SP, 0), reg, note="store:32:word"))
        return spilled

    def _restore_spilled(self, spilled: List[Reg]) -> None:
        for reg in reversed(spilled):
            self.emit(Load(Displacement(SP, 0), reg, note="load:32:word"))
            self.emit(Alu(AluOp.ADD, SP, Imm(1), SP))

    def _gen_runtime_binary(
        self, routine: str, left: Val, right: Val, result_reg: int
    ) -> Val:
        """Call ``routine`` with args in r2/r3; result in ``result_reg``."""
        left_reg = self.val_reg(left)
        right_reg = self.val_reg(right)
        spilled = self._spill_live_temps(keep=[])
        # arguments: r2 and r3 (the spill preserved any live values)
        if right_reg.number == 2 and left_reg.number != 3:
            self.emit(Alu(AluOp.MOV, right_reg, Imm(0), Reg(3)))
            self.emit(Alu(AluOp.MOV, left_reg, Imm(0), Reg(2)))
        elif right_reg.number == 2 and left_reg.number == 3:
            # swap via xor-free three-move through r4
            self.emit(Alu(AluOp.MOV, right_reg, Imm(0), Reg(4)))
            self.emit(Alu(AluOp.MOV, left_reg, Imm(0), Reg(2)))
            self.emit(Alu(AluOp.MOV, Reg(4), Imm(0), Reg(3)))
        else:
            if left_reg.number != 2:
                self.emit(Alu(AluOp.MOV, left_reg, Imm(0), Reg(2)))
            if right_reg.number != 3:
                self.emit(Alu(AluOp.MOV, right_reg, Imm(0), Reg(3)))
        self.free_val(left)
        self.free_val(right)
        self.emit(Jump(routine, link=True))
        # park the result in r1 (never spilled) before restoring temps,
        # then copy it into a pool register
        if result_reg != RESULT_REG.number:
            self.emit(Alu(AluOp.MOV, Reg(result_reg), Imm(0), RESULT_REG))
        self._restore_spilled(spilled)
        out = self.temps.alloc()
        self.emit(Alu(AluOp.MOV, RESULT_REG, Imm(0), out))
        return Val(reg=out, owned=True)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _gen_call_expr(self, expr: ast.CallExpr) -> Val:
        if expr.name in ("ord", "chr", "abs", "odd"):
            return self._gen_builtin(expr)
        return self.gen_call(expr.name, expr.args, want_result=True)

    def _gen_builtin(self, expr: ast.CallExpr) -> Val:
        arg = self.gen_expr(expr.args[0])
        if expr.name in ("ord", "chr"):
            return arg  # representation is already the ordinal
        if expr.name == "odd":
            out = self.temps.alloc()
            self.emit(Alu(AluOp.AND, self.val_operand(arg), Imm(1), out))
            self.free_val(arg)
            return Val(reg=out, owned=True)
        # abs
        reg = self.val_reg(arg)
        out = self.temps.alloc()
        done = self.new_label("Labs")
        self.emit(Alu(AluOp.MOV, reg, Imm(0), out))
        self.emit(CompareBranch(Comparison.GE, reg, Imm(0), done))
        self.emit(Alu(AluOp.RSUB, reg, Imm(0), out))
        self.emit_label(done)
        self.free_val(arg)
        return Val(reg=out, owned=True)

    def gen_call(self, name: str, args: List[ast.Expr], want_result: bool) -> Val:
        routine = self.program.routines.get(name)
        if routine is None:
            raise CompileError(f"undefined routine {name!r}")
        spilled = self._spill_live_temps(keep=[])
        # push arguments right to left so arg0 lands deepest
        for arg, param in reversed(list(zip(args, routine.params))):
            if param.by_ref:
                reg = self._gen_reference(arg)
            else:
                value = self.gen_expr(arg)
                reg = self.val_reg(value)
            self.emit(Alu(AluOp.SUB, SP, Imm(1), SP))
            self.emit(Store(Displacement(SP, 0), reg, note="store:32:word"))
            if param.by_ref:
                self.temps.release(reg)
            else:
                self.free_val(value)
        self.emit(Jump(name, link=True))
        nargs = len(args)
        if nargs:
            if fits_imm4(nargs):
                self.emit(Alu(AluOp.ADD, SP, Imm(nargs), SP))
            else:
                temp = self.materialize_const(nargs)
                self.emit(Alu(AluOp.ADD, SP, temp, SP))
                self.temps.release(temp)
        # r1 holds the result and is never spilled; restore the pool
        # first, then copy the result into a pool register
        self._restore_spilled(spilled)
        if not want_result:
            return Val(const=0)
        out = self.temps.alloc()
        self.emit(Alu(AluOp.MOV, RESULT_REG, Imm(0), out))
        return Val(reg=out, owned=True)

    def _gen_call_indirect(self, expr: ast.CallIndirect) -> Val:
        """Call through a computed code address (MiniJava vtable dispatch).

        Same frame protocol as :meth:`gen_call` -- arguments pushed
        right to left, callee sees arg0 deepest -- but the transfer is
        a linking indirect jump through a register instead of a direct
        ``jal``.
        """
        assert expr.target is not None
        spilled = self._spill_live_temps(keep=[])
        for arg in reversed(expr.args):
            value = self.gen_expr(arg)
            reg = self.val_reg(value)
            self.emit(Alu(AluOp.SUB, SP, Imm(1), SP))
            self.emit(Store(Displacement(SP, 0), reg, note="store:32:word"))
            self.free_val(value)
        target = self.gen_expr(expr.target)
        target_reg = self.val_reg(target)
        self.emit(JumpIndirect(target_reg, link=True))
        self.free_val(target)
        nargs = len(expr.args)
        if nargs:
            if fits_imm4(nargs):
                self.emit(Alu(AluOp.ADD, SP, Imm(nargs), SP))
            else:
                temp = self.materialize_const(nargs)
                self.emit(Alu(AluOp.ADD, SP, temp, SP))
                self.temps.release(temp)
        self._restore_spilled(spilled)
        out = self.temps.alloc()
        self.emit(Alu(AluOp.MOV, RESULT_REG, Imm(0), out))
        return Val(reg=out, owned=True)

    def _gen_alloc(self, expr: ast.AllocWords) -> Val:
        """Bump-allocate ``size`` words via the ``__alloc`` runtime routine."""
        assert expr.size is not None
        self.needs_alloc = True
        size = self.gen_expr(expr.size)
        size_reg = self.val_reg(size)
        spilled = self._spill_live_temps(keep=[])
        if size_reg.number != 2:
            self.emit(Alu(AluOp.MOV, size_reg, Imm(0), Reg(2)))
        self.free_val(size)
        self.emit(Jump("__alloc", link=True))
        # block base comes back in r1, which is never spilled
        self._restore_spilled(spilled)
        out = self.temps.alloc()
        self.emit(Alu(AluOp.MOV, RESULT_REG, Imm(0), out))
        return Val(reg=out, owned=True)

    def _gen_reference(self, expr: ast.Expr) -> Reg:
        """The word address of a designator, in a fresh temp."""
        loc = self.resolve_loc(expr)
        if loc.byte_grain:
            raise CompileError("cannot pass byte-grain data by reference")
        out = self.temps.alloc()
        if loc.base is None:
            self.emit(LoadImm(loc.offset, out))
        else:
            self._emit_add_const(loc.base, loc.offset, out)
        self.free_loc(loc)
        return out

    # ------------------------------------------------------------------
    # boolean evaluation
    # ------------------------------------------------------------------

    def gen_branch(self, expr: ast.Expr, target: str, when_true: bool) -> None:
        """Branch to ``target`` iff ``expr == when_true``, else fall through.

        Conditional contexts compile to compare-and-branch directly --
        the natural no-condition-code translation (section 2.3.1) --
        with short-circuit evaluation of ``and``/``or``.
        """
        if isinstance(expr, ast.BoolLit):
            if expr.value == when_true:
                self.emit(Jump(target))
            return
        if isinstance(expr, ast.UnOp) and expr.op == "not":
            assert expr.operand is not None
            self.gen_branch(expr.operand, target, not when_true)
            return
        if isinstance(expr, ast.BinOp) and expr.op in _RELOP_TO_COMPARISON:
            assert expr.left is not None and expr.right is not None
            cond = _RELOP_TO_COMPARISON[expr.op]
            if not when_true:
                cond = NEGATED_COMPARISON[cond]
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            self.emit(
                CompareBranch(cond, self.val_operand(left), self.val_operand(right), target)
            )
            self.free_val(left)
            self.free_val(right)
            return
        if isinstance(expr, ast.BinOp) and expr.op in ("and", "or"):
            assert expr.left is not None and expr.right is not None
            # short-circuit (the paper's early-out evaluation)
            if (expr.op == "or") == when_true:
                # either side reaching `when_true` suffices
                self.gen_branch(expr.left, target, when_true)
                self.gen_branch(expr.right, target, when_true)
            else:
                skip = self.new_label("Lsc")
                self.gen_branch(expr.left, skip, not when_true)
                self.gen_branch(expr.right, target, when_true)
                self.emit_label(skip)
            return
        # general boolean value: compare against zero
        value = self.gen_expr(expr)
        cond = Comparison.NE if when_true else Comparison.EQ
        self.emit(CompareBranch(cond, self.val_operand(value), Imm(0), target))
        self.free_val(value)

    def _gen_bool_by_branching(self, expr: ast.Expr) -> Val:
        """Materialize a boolean with branches (no conditional set)."""
        out = self.temps.alloc()
        done = self.new_label("Lb")
        self.use_constant(1)
        self.emit(Alu(AluOp.MOV, Imm(1), Imm(0), out))
        self.gen_branch(expr, done, True)
        self.use_constant(0)
        self.emit(Alu(AluOp.MOV, Imm(0), Imm(0), out))
        self.emit_label(done)
        return Val(reg=out, owned=True)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _gen_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Compound):
            for inner in stmt.body:
                self._gen_stmt(inner)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.CallStmt):
            self.gen_call(stmt.name, stmt.args, want_result=False)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.Repeat):
            self._gen_repeat(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Write):
            self._gen_write(stmt)
        elif isinstance(stmt, ast.Read):
            self._gen_read(stmt)
        else:
            raise CompileError(f"unhandled statement {stmt!r}")

    def _gen_assign(self, stmt: ast.Assign) -> None:
        assert stmt.target is not None and stmt.value is not None
        place = self.reg_place(stmt.target)
        value = self.gen_expr(stmt.value)
        if place is not None:
            assert place.reg is not None
            if value.is_const:
                self._emit_const_into(value.const or 0, place.reg)
            else:
                assert value.reg is not None
                self.emit(Alu(AluOp.MOV, value.reg, Imm(0), place.reg))
            self.free_val(value)
            return
        loc = self.resolve_loc(stmt.target)
        self.store_loc(loc, value)
        self.free_val(value)
        self.free_loc(loc)

    def _gen_if(self, stmt: ast.If) -> None:
        assert stmt.cond is not None
        if stmt.else_branch is None:
            done = self.new_label("Lif")
            self.gen_branch(stmt.cond, done, False)
            self._gen_stmt(stmt.then_branch)
            self.emit_label(done)
        else:
            else_label = self.new_label("Lelse")
            done = self.new_label("Lif")
            self.gen_branch(stmt.cond, else_label, False)
            self._gen_stmt(stmt.then_branch)
            self.emit(Jump(done))
            self.emit_label(else_label)
            self._gen_stmt(stmt.else_branch)
            self.emit_label(done)

    def _gen_while(self, stmt: ast.While) -> None:
        assert stmt.cond is not None
        top = self.new_label("Lwhile")
        done = self.new_label("Lwend")
        self.emit_label(top)
        self.gen_branch(stmt.cond, done, False)
        self._gen_stmt(stmt.body)
        self.emit(Jump(top))
        self.emit_label(done)

    def _gen_repeat(self, stmt: ast.Repeat) -> None:
        assert stmt.cond is not None
        top = self.new_label("Lrep")
        self.emit_label(top)
        for inner in stmt.body:
            self._gen_stmt(inner)
        self.gen_branch(stmt.cond, top, False)

    def _gen_for(self, stmt: ast.For) -> None:
        assert stmt.start is not None and stmt.stop is not None
        var_expr = ast.VarRef(stmt.line, stmt.var)
        var_expr.type = INTEGER  # type: ignore[attr-defined]
        # initialize the loop variable
        init = ast.Assign(stmt.line, var_expr, stmt.start)
        self._gen_stmt(init)
        # evaluate the limit once into a hidden slot (or keep a constant)
        stop = self.gen_expr(stmt.stop)
        stop_slot: Optional[int] = None
        stop_const: Optional[int] = None
        if stop.is_const:
            stop_const = stop.const
        else:
            stop_slot = self._alloc_hidden_slot()
            reg = self.val_reg(stop)
            self.emit(Store(Displacement(FP, stop_slot), reg, note="store:32:word"))
        self.free_val(stop)

        top = self.new_label("Lfor")
        done = self.new_label("Lfend")
        cond = Comparison.LT if stmt.downto else Comparison.GT
        self.emit_label(top)
        current = self.gen_expr(var_expr)
        if stop_const is not None:
            limit_op = self.const_operand(stop_const)
            if limit_op is None:
                limit_reg = self.materialize_const(stop_const)
                self.emit(
                    CompareBranch(cond, self.val_operand(current), limit_reg, done)
                )
                self.temps.release(limit_reg)
            else:
                self.emit(
                    CompareBranch(cond, self.val_operand(current), limit_op, done)
                )
        else:
            limit = self.temps.alloc()
            assert stop_slot is not None
            self.emit(Load(Displacement(FP, stop_slot), limit, note="load:32:word"))
            self.emit(CompareBranch(cond, self.val_operand(current), limit, done))
            self.temps.release(limit)
        self.free_val(current)
        self._gen_stmt(stmt.body)
        # increment / decrement
        step = ast.BinOp(
            stmt.line, "-" if stmt.downto else "+", var_expr, ast.IntLit(stmt.line, 1)
        )
        step.type = INTEGER  # type: ignore[attr-defined]
        self._gen_stmt(ast.Assign(stmt.line, var_expr, step))
        self.emit(Jump(top))
        self.emit_label(done)

    def _gen_write(self, stmt: ast.Write) -> None:
        for arg in stmt.args:
            if isinstance(arg, ast.StringLit):
                for ch in arg.value:
                    self.use_constant(ord(ch))
                    self._emit_const_to_r1(ord(ch))
                    self.emit(Trap(TRAP_WRITE_CHAR))
                continue
            value = self.gen_expr(arg)
            arg_type = getattr(arg, "type", INTEGER)
            if value.is_const:
                self._emit_const_to_r1(value.const or 0)
            else:
                assert value.reg is not None
                self.emit(Alu(AluOp.MOV, value.reg, Imm(0), RESULT_REG))
            self.free_val(value)
            self.emit(Trap(TRAP_WRITE_CHAR if arg_type == CHAR else TRAP_WRITE_INT))
        if stmt.newline:
            self._emit_const_to_r1(10)
            self.emit(Trap(TRAP_WRITE_CHAR))

    def _emit_const_to_r1(self, value: int) -> None:
        self._emit_const_into(value, RESULT_REG)

    def _gen_read(self, stmt: ast.Read) -> None:
        assert stmt.target is not None
        self.emit(Trap(TRAP_READ_INT))
        place = self.reg_place(stmt.target)
        if place is not None:
            assert place.reg is not None
            self.emit(Alu(AluOp.MOV, RESULT_REG, Imm(0), place.reg))
            return
        value = Val(reg=RESULT_REG, owned=False)
        loc = self.resolve_loc(stmt.target)
        self.store_loc(loc, value)
        self.free_loc(loc)


def generate(program: CheckedProgram, options: Optional[CompileOptions] = None) -> CompiledUnit:
    """Generate the MIPS piece stream for a checked program."""
    return CodeGenerator(program, options).generate()
