"""The mini-Pascal compiler targeting the MIPS model."""

from .codegen_mips import (
    BooleanStrategy,
    CodeGenerator,
    CompileError,
    CompileOptions,
    CompiledUnit,
    generate,
)
from .driver import CompiledProgram, compile_checked, compile_source, piece_stream
from .layout import BYTES_PER_WORD, FieldSlot, Layout, LayoutStrategy
from .runtime import runtime_stream

__all__ = [
    "BooleanStrategy",
    "BYTES_PER_WORD",
    "CodeGenerator",
    "CompileError",
    "CompileOptions",
    "CompiledProgram",
    "CompiledUnit",
    "FieldSlot",
    "Layout",
    "LayoutStrategy",
    "compile_checked",
    "compile_source",
    "generate",
    "piece_stream",
    "runtime_stream",
]
