"""The compiler driver: source text to runnable program.

Pipeline (the paper's, section 4.2.1): front end -> code generator
(piece stream) -> **postpass reorganizer** (scheduling, packing,
branch-delay optimization, no-op insertion) -> assembled image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..asm.program import Program
from ..lang.semantic import CheckedProgram, analyze
from ..reorg.blocks import LabeledPiece
from ..reorg.reorganizer import OptLevel, ReorgResult, reorganize
from .codegen_mips import CompileOptions, CompiledUnit, generate
from .runtime import runtime_stream


@dataclass
class CompiledProgram:
    """Everything the toolchain produced for one source program."""

    checked: CheckedProgram
    unit: CompiledUnit
    reorg: ReorgResult
    program: Program

    @property
    def static_count(self) -> int:
        return self.reorg.static_count

    def global_addr(self, name: str) -> int:
        return self.unit.global_addrs[name]


def compile_checked(
    checked: CheckedProgram,
    options: Optional[CompileOptions] = None,
    opt_level: OptLevel = OptLevel.BRANCH_DELAY,
) -> CompiledProgram:
    """Compile an already-analyzed program."""
    unit = generate(checked, options)
    stream: List[LabeledPiece] = list(unit.stream)
    stream.extend(runtime_stream(unit.needs_mul, unit.needs_div, unit.needs_alloc))
    result = reorganize(stream, opt_level)
    program = result.to_program(entry_symbol="start")
    return CompiledProgram(checked, unit, result, program)


def compile_source(
    source: str,
    options: Optional[CompileOptions] = None,
    opt_level: OptLevel = OptLevel.BRANCH_DELAY,
) -> CompiledProgram:
    """Compile mini-Pascal source text down to a program image."""
    return compile_checked(analyze(source), options, opt_level)


def piece_stream(
    source: str, options: Optional[CompileOptions] = None, with_runtime: bool = True
) -> List[LabeledPiece]:
    """The raw code-generator output for a source program.

    This is the reorganizer's input -- what Table 11 feeds through the
    optimization levels.
    """
    unit = generate(analyze(source), options)
    stream = list(unit.stream)
    if with_runtime:
        stream.extend(runtime_stream(unit.needs_mul, unit.needs_div, unit.needs_alloc))
    return stream
