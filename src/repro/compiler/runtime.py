"""The compiler's runtime support library, written in MIPS assembly.

The machine has no multiply or divide instructions (the paper envisions
a numeric coprocessor for intensive arithmetic; occasional use is
synthesized in software).  The compiler calls these routines:

``__mul``
    ``r1 := r2 * r3`` (32-bit wrapping, sign-agnostic shift-and-add).
    Clobbers ``r4``.
``__divmod``
    ``r1 := r2 div r3`` (truncating toward zero, Pascal semantics) and
    ``r4 := r2 mod r3`` (sign follows the dividend).  Clobbers
    ``r5``-``r7``.  Division by zero raises ``trap #5``.
``__alloc``
    ``r1 := base of a fresh r2-word block`` -- the MiniJava front end's
    bump allocator (objects, vtv-pointed records, int arrays).  The
    next-free pointer lives at word ``HEAP_POINTER_ADDR`` and is lazily
    initialized on first use; physical memory starts zeroed and blocks
    are never reused, so every allocation is implicitly zero-filled.
    Exhausting the arena raises ``trap #6`` (a structured machine
    fault, like division's ``trap #5``).  Clobbers ``r3``-``r5``.

Calling convention: arguments in ``r2``/``r3``, ``jal`` links through
``ra``; the routines use no stack.  The sources below are *piece
streams* with sequential semantics -- the postpass reorganizer
schedules them around the pipeline constraints like any other code.
"""

from __future__ import annotations

from typing import List

from ..asm.assembler import assemble_pieces
from ..reorg.blocks import LabeledPiece

MUL_SOURCE = """
__mul:      mov #0, r1
__mul_1:    beq r3, #0, __mul_3
            and r3, #1, r4
            beq r4, #0, __mul_2
            add r1, r2, r1
__mul_2:    sll r2, #1, r2
            srl r3, #1, r3
            jmp __mul_1
__mul_3:    jmpr ra
"""

DIVMOD_SOURCE = """
__divmod:   bne r3, #0, __dm_0
            trap #5
__dm_0:     mov #0, r7
            bge r2, #0, __dm_1
            rsub r2, #0, r2
            xor r7, #3, r7
__dm_1:     bge r3, #0, __dm_2
            rsub r3, #0, r3
            xor r7, #1, r7
__dm_2:     mov #0, r4
            mov #0, r1
            movi #32, r6
__dm_3:     beq r6, #0, __dm_6
            sll r4, #1, r4
            srl r2, #15, r5
            srl r5, #15, r5
            srl r5, #1, r5
            or r4, r5, r4
            sll r2, #1, r2
            sll r1, #1, r1
            blo r4, r3, __dm_5
            sub r4, r3, r4
            or r1, #1, r1
__dm_5:     sub r6, #1, r6
            jmp __dm_3
__dm_6:     and r7, #1, r5
            beq r5, #0, __dm_7
            rsub r1, #0, r1
__dm_7:     and r7, #2, r5
            beq r5, #0, __dm_8
            rsub r4, #0, r4
__dm_8:     jmpr ra
"""

# Heap layout for the bump allocator.  The compiler places globals from
# word 8192 up; the arena sits above them and well below the default
# stack top ((1 << 20) - 1, growing down).  The pointer word holds the
# next free word address, 0 until the first allocation (fresh physical
# memory is zeroed), so no startup code is needed to initialize it.
HEAP_POINTER_ADDR = 16384
HEAP_BASE = HEAP_POINTER_ADDR + 1
HEAP_LIMIT = 1 << 19

#: trap code raised when the arena is exhausted (no handler: the
#: machine surfaces it as a TrapInstruction fault on every engine)
TRAP_HEAP_EXHAUSTED = 6

ALLOC_SOURCE = f"""
__alloc:    ld @{HEAP_POINTER_ADDR}, r3
            bne r3, #0, __al_0
            lim #{HEAP_BASE}, r3
__al_0:     add r3, r2, r4
            lim #{HEAP_LIMIT}, r5
            bgt r4, r5, __al_1
            st r4, @{HEAP_POINTER_ADDR}
            mov r3, r1
            jmpr ra
__al_1:     trap #{TRAP_HEAP_EXHAUSTED}
"""

# Multiprecision arithmetic without carry bits (paper section 2.3.3):
# "multiprecision arithmetic can be synthesized with 31-bit words."
# Numbers are limb vectors, each limb holding 31 value bits; the carry
# out of a limb addition is simply bit 31 of the 32-bit sum -- no
# condition-code carry flag needed.
#
# ``__mpadd``: r1:r2 := (r2:r3) + (r4:r5), 62-bit quantities as
# (high limb : low limb) pairs; returns high in r1, low in r2.
# ``__mpsub``: same operands, difference; a borrow propagates as the
# sign bit of the 32-bit limb difference.
MPADD_SOURCE = """
__mpadd:    add r3, r5, r6
            srl r6, #15, r7
            srl r7, #15, r7
            srl r7, #1, r7
            sll r6, #1, r6
            srl r6, #1, r6
            add r2, r4, r1
            add r1, r7, r1
            mov r6, r2
            jmpr ra
"""

MPSUB_SOURCE = """
__mpsub:    sub r3, r5, r6
            srl r6, #15, r7
            srl r7, #15, r7
            srl r7, #1, r7
            sll r6, #1, r6
            srl r6, #1, r6
            sub r2, r4, r1
            sub r1, r7, r1
            mov r6, r2
            jmpr ra
"""

#: registers clobbered by each runtime routine (beyond the result regs)
CLOBBERS = {
    "__mul": {1, 2, 3, 4},
    "__divmod": {1, 2, 3, 4, 5, 6, 7},
    "__alloc": {1, 2, 3, 4, 5},
    "__mpadd": {1, 2, 6, 7},
    "__mpsub": {1, 2, 6, 7},
}


def multiprec_stream() -> List[LabeledPiece]:
    """The multiprecision add/subtract routines as a piece stream."""
    return assemble_pieces(MPADD_SOURCE + MPSUB_SOURCE)


def runtime_stream(
    need_mul: bool, need_div: bool, need_alloc: bool = False
) -> List[LabeledPiece]:
    """The piece stream of the required runtime routines."""
    source = ""
    if need_mul:
        source += MUL_SOURCE
    if need_div:
        source += DIVMOD_SOURCE
    if need_alloc:
        source += ALLOC_SOURCE
    if not source:
        return []
    return assemble_pieces(source)
