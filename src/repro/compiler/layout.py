"""Data layout strategies: word-allocated versus byte-allocated.

The paper's Tables 7 and 8 contrast two compilations of the same
programs:

- **word-allocated** (Table 7): "allocates all objects as words unless
  they occur in a packed structure" -- only ``packed`` arrays/records
  put characters and booleans in bytes;
- **byte-allocated** (Table 8): "allocates all characters and booleans
  as bytes" -- every char/boolean array element and record field is a
  byte, packed four to a word.

Scalar variables occupy a word under both strategies (even
byte-oriented compilers word-align scalars); the contrast lives in
aggregates, which is where the paper's character data (strings,
buffers) resides.  The word-allocated globals are correspondingly
larger ("The global activation records of the word-based allocation
version average 20% larger").

Byte-grain data is addressed with *byte pointers*: ``word_address * 4 +
byte_offset``, dereferenced with the base-shifted load and the
extract/insert byte instructions (paper section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from ..lang.types import ArrayType, RecordType, Type

BYTES_PER_WORD = 4


class LayoutStrategy(Enum):
    WORD_ALLOCATED = "word"
    BYTE_ALLOCATED = "byte"


@dataclass(frozen=True)
class FieldSlot:
    """Where a record field lives relative to the record's word base."""

    word_offset: int
    byte_offset: int  # 0 for word-grain fields
    byte_grain: bool


class Layout:
    """Size and offset computation under one strategy."""

    def __init__(self, strategy: LayoutStrategy = LayoutStrategy.WORD_ALLOCATED):
        self.strategy = strategy
        self._record_cache: Dict[RecordType, Tuple[int, Dict[str, FieldSlot]]] = {}

    # -- grain decisions -----------------------------------------------------

    def element_byte_grain(self, array: ArrayType) -> bool:
        """Do this array's elements live in bytes?"""
        if not array.element.is_byte_natured:
            return False
        if array.packed:
            return True
        return self.strategy is LayoutStrategy.BYTE_ALLOCATED

    def field_byte_grain(self, record: RecordType, field_type: Type) -> bool:
        if not field_type.is_byte_natured:
            return False
        if record.packed:
            return True
        return self.strategy is LayoutStrategy.BYTE_ALLOCATED

    # -- sizes ------------------------------------------------------------------

    def type_words(self, t: Type) -> int:
        """Storage size in words."""
        if t.is_scalar:
            return 1
        if isinstance(t, ArrayType):
            if self.element_byte_grain(t):
                return (t.length + BYTES_PER_WORD - 1) // BYTES_PER_WORD
            return t.length * self.type_words(t.element)
        if isinstance(t, RecordType):
            return self.record_layout(t)[0]
        raise ValueError(f"unsized type {t!r}")

    def element_words(self, array: ArrayType) -> int:
        """Words per element (word-grain arrays only)."""
        if self.element_byte_grain(array):
            raise ValueError("byte-grain arrays are indexed by byte")
        return self.type_words(array.element)

    # -- records --------------------------------------------------------------------

    def record_layout(self, record: RecordType) -> Tuple[int, Dict[str, FieldSlot]]:
        """(size in words, field name -> slot)."""
        if record in self._record_cache:
            return self._record_cache[record]
        slots: Dict[str, FieldSlot] = {}
        word_offset = 0
        byte_fields: List[Tuple[str, Type]] = []
        for name, ftype in record.fields:
            if self.field_byte_grain(record, ftype):
                byte_fields.append((name, ftype))
            else:
                slots[name] = FieldSlot(word_offset, 0, False)
                word_offset += self.type_words(ftype)
        for i, (name, _ftype) in enumerate(byte_fields):
            slots[name] = FieldSlot(
                word_offset + i // BYTES_PER_WORD, i % BYTES_PER_WORD, True
            )
        if byte_fields:
            word_offset += (len(byte_fields) + BYTES_PER_WORD - 1) // BYTES_PER_WORD
        size = max(word_offset, 1)
        self._record_cache[record] = (size, slots)
        return size, slots

    def field_slot(self, record: RecordType, name: str) -> FieldSlot:
        slot = self.record_layout(record)[1].get(name)
        if slot is None:
            raise KeyError(f"record has no field {name!r}")
        return slot
