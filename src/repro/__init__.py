"""repro -- reproduction of Hennessy et al., *Hardware/Software Tradeoffs
for Increased Performance* (ASPLOS 1982).

The package implements, from scratch, the complete system described in the
paper:

- :mod:`repro.isa` -- the Stanford-MIPS-style instruction set (word
  addressed, load/store, no condition codes, instruction pieces packed into
  32-bit words).
- :mod:`repro.asm` -- a two-pass assembler for that instruction set.
- :mod:`repro.sim` -- a functional simulator and a five-stage pipeline
  timing model **without hardware interlocks**.
- :mod:`repro.reorg` -- the postpass reorganizer: dependence-DAG
  scheduling, instruction packing, and delayed-branch optimization.
- :mod:`repro.lang` / :mod:`repro.compiler` -- a mini-Pascal front end and
  a compiler targeting both the MIPS model and a condition-code baseline.
- :mod:`repro.ccmachine` -- the condition-code architecture used as the
  paper's comparison baseline.
- :mod:`repro.system` -- the systems layer: segmentation, paging, the
  surprise register, exceptions, context switching, free-cycle DMA.
- :mod:`repro.analysis`, :mod:`repro.workloads`, :mod:`repro.experiments`
  -- the measurement machinery that regenerates every table and figure in
  the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = [
    "isa",
    "asm",
    "sim",
    "reorg",
    "lang",
    "compiler",
    "ccmachine",
    "system",
    "analysis",
    "workloads",
    "experiments",
]
