"""Command-line entry points.

========================  ===================================================
``mips-asm file.s``       assemble and list a program
``mips-sim file.s``       assemble and run (bare metal, trap I/O)
``mips-reorg file.s``     reorganize a piece stream at every level
``mipsc file.pas``        compile mini-Pascal and run it
``mips-experiments``      run the paper's tables and figures
========================  ===================================================
"""

from __future__ import annotations

import argparse
import sys


def asm_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="MIPS assembler")
    parser.add_argument("source", help="assembly source file")
    args = parser.parse_args(argv)
    from .asm import assemble

    with open(args.source) as handle:
        program = assemble(handle.read())
    print(program.disassemble())
    print(f"; {program.code_size} instruction words, entry {program.entry}")
    return 0


def sim_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="MIPS simulator (bare metal)")
    parser.add_argument("source", help="assembly source file")
    parser.add_argument("--mode", choices=["bare", "checked", "interlocked"], default="bare")
    parser.add_argument("--max-steps", type=int, default=5_000_000)
    parser.add_argument("--input", type=int, action="append", default=[])
    args = parser.parse_args(argv)
    from .sim import HazardMode, Machine
    from .asm import assemble

    with open(args.source) as handle:
        machine = Machine(
            assemble(handle.read()),
            hazard_mode=HazardMode(args.mode),
            inputs=args.input,
        )
    stats = machine.run(args.max_steps)
    for value in machine.output:
        print(value)
    if machine.output_text:
        print(machine.output_text, end="")
    print(
        f"; {stats.words} words, {stats.cycles} cycles, "
        f"{stats.free_cycle_fraction:.0%} free memory cycles",
        file=sys.stderr,
    )
    return 0


def reorg_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="postpass reorganizer")
    parser.add_argument("source", help="assembly source file (pieces + labels only)")
    parser.add_argument(
        "--level",
        choices=["none", "reorganize", "pack", "branch-delay"],
        default="branch-delay",
    )
    args = parser.parse_args(argv)
    from .asm import assemble_pieces
    from .reorg import ALL_LEVELS, OptLevel, reorganize

    with open(args.source) as handle:
        stream = assemble_pieces(handle.read())
    for level in ALL_LEVELS:
        result = reorganize(stream, level)
        marker = " *" if level.value == args.level else ""
        print(f"; {level.value}: {result.static_count} words{marker}")
    result = reorganize(stream, OptLevel(args.level))
    print(result.listing())
    return 0


def compile_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="mini-Pascal compiler + simulator")
    parser.add_argument("source", help="mini-Pascal source file")
    parser.add_argument("--layout", choices=["word", "byte"], default="word")
    parser.add_argument("--no-run", action="store_true", help="only list the code")
    parser.add_argument("--max-steps", type=int, default=30_000_000)
    parser.add_argument("--input", type=int, action="append", default=[])
    args = parser.parse_args(argv)
    from .compiler import CompileOptions, LayoutStrategy, compile_source
    from .sim import Machine

    with open(args.source) as handle:
        compiled = compile_source(
            handle.read(), CompileOptions(layout=LayoutStrategy(args.layout))
        )
    if args.no_run:
        print(compiled.reorg.listing())
        return 0
    machine = Machine(compiled.program, inputs=args.input)
    stats = machine.run(args.max_steps)
    for value in machine.output:
        print(value)
    if machine.output_text:
        print(machine.output_text, end="")
    print(
        f"; static {compiled.static_count} words, ran {stats.words} words "
        f"in {stats.cycles} cycles",
        file=sys.stderr,
    )
    return 0


def experiments_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="reproduce the paper's evaluation")
    parser.add_argument(
        "names",
        nargs="*",
        help="experiments to run (default: all); e.g. table11 figure1",
    )
    args = parser.parse_args(argv)
    from .experiments import REGISTRY

    names = args.names or list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} (have: {', '.join(REGISTRY)})")
    for name in names:
        print(REGISTRY[name]().render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(experiments_main())
