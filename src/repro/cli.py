"""Command-line entry points.

========================  ===================================================
``mips-asm file.s``       assemble and list a program
``mips-sim file.s``       assemble and run (bare metal, trap I/O)
``mips-reorg file.s``     reorganize a piece stream at every level
``mipsc file.pas``        compile mini-Pascal and run it
``mips-experiments``      run the paper's tables and figures (``--jobs N``)
``mips-farm``             batch simulation service: ``run`` / ``status`` /
                          ``host`` (distributed shard host)
``mips-chaos``            fault-injection campaigns: ``run`` / ``list``
``mips-serve``            gateway + result cache: ``serve`` / ``submit`` /
                          ``status`` / ``warm``
========================  ===================================================
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

#: exit code for an unusable invocation (e.g. an unknown --lang)
EXIT_USAGE = 2
#: exit code when a guest program exhausts its --max-steps budget
EXIT_STEP_BUDGET = 3
#: exit code for an unrecoverable guest fault or a double-fault panic
EXIT_PANIC = 4


def _check_lang(lang: str, supported) -> int:
    """Validate a ``--lang`` value: 0 if supported, else a structured
    stderr record and :data:`EXIT_USAGE` (never a traceback)."""
    if lang in supported:
        return 0
    record = {
        "error": "unknown-lang",
        "lang": lang,
        "supported": sorted(supported),
    }
    print(f"error: unknown --lang {lang!r}", file=sys.stderr)
    print(json.dumps(record, sort_keys=True), file=sys.stderr)
    return EXIT_USAGE


def _compile_for_lang(lang: str, source: str, options, opt_level=None):
    """Front-end dispatch shared by ``mipsc`` and ``mips-sim``."""
    if lang == "minijava":
        from .mjlang import compile_minijava

        if opt_level is None:
            return compile_minijava(source, options)
        return compile_minijava(source, options, opt_level)
    from .compiler import compile_source

    if opt_level is None:
        return compile_source(source, options)
    return compile_source(source, options, opt_level)


def _report_guest_failure(machine, exc) -> int:
    """Print a structured PANIC/FAULT record for a dead guest.

    A :class:`~repro.sim.faults.KernelPanic` (double fault) carries both
    surprise cause fields and the three saved return addresses; a plain
    machine fault reports its cause pair and the would-be return
    addresses.  Either way: one structured stderr record and a clean
    nonzero exit instead of a Python traceback.
    """
    from .sim import KernelPanic

    if isinstance(exc, KernelPanic):
        print(f"PANIC: {exc}", file=sys.stderr)
        print(json.dumps(exc.record(), sort_keys=True), file=sys.stderr)
        return EXIT_PANIC
    record = {
        "fault": type(exc).__name__,
        "cause": exc.cause.name,
        "minor": exc.minor,
        "pc": machine.cpu.pc,
        "xra": machine.cpu.upcoming_pcs(3),
    }
    print(f"FAULT: {exc} at pc={machine.cpu.pc}", file=sys.stderr)
    print(json.dumps(record, sort_keys=True), file=sys.stderr)
    return EXIT_PANIC


def asm_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="MIPS assembler")
    parser.add_argument("source", help="assembly source file")
    args = parser.parse_args(argv)
    from .asm import assemble

    with open(args.source) as handle:
        program = assemble(handle.read())
    print(program.disassemble())
    print(f"; {program.code_size} instruction words, entry {program.entry}")
    return 0


def sim_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="MIPS simulator (bare metal)")
    parser.add_argument("source", help="assembly source file")
    parser.add_argument("--mode", choices=["bare", "checked", "interlocked"], default="bare")
    parser.add_argument(
        "--max-steps",
        type=int,
        default=5_000_000,
        help="step budget: a program still running after this many steps "
        "is reported as runaway instead of hanging the process "
        "(default 5,000,000; the farm's per-job guard uses the same limit)",
    )
    parser.add_argument("--input", type=int, action="append", default=[])
    parser.add_argument(
        "--jit",
        action="store_true",
        help="enable profile-guided superblock fusion on the fast path "
        "(behaviour and output are bit-identical; hot loops run faster)",
    )
    parser.add_argument(
        "--lang",
        default="asm",
        help="source language: asm (default), pascal, or minijava "
        "(high-level sources are compiled at branch-delay level first)",
    )
    args = parser.parse_args(argv)
    bad_lang = _check_lang(args.lang, ("asm", "pascal", "minijava"))
    if bad_lang:
        return bad_lang
    from .sim import HazardMode, KernelPanic, Machine, MachineFault

    with open(args.source) as handle:
        source = handle.read()
    if args.lang == "asm":
        from .asm import assemble

        program = assemble(source)
    else:
        from .compiler import CompileOptions

        program = _compile_for_lang(args.lang, source, CompileOptions()).program
    machine = Machine(
        program,
        hazard_mode=HazardMode(args.mode),
        inputs=args.input,
    )
    try:
        stats = machine.run(args.max_steps, jit=args.jit)
    except (MachineFault, KernelPanic) as exc:
        return _report_guest_failure(machine, exc)
    except TimeoutError:
        print(
            f"error: program did not halt within {args.max_steps} steps "
            f"(pc={machine.cpu.pc}, {machine.stats.cycles} cycles executed); "
            "raise --max-steps if this is expected",
            file=sys.stderr,
        )
        return EXIT_STEP_BUDGET
    for value in machine.output:
        print(value)
    if machine.output_text:
        print(machine.output_text, end="")
    print(
        f"; {stats.words} words, {stats.cycles} cycles, "
        f"{stats.free_cycle_fraction:.0%} free memory cycles",
        file=sys.stderr,
    )
    return 0


def reorg_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="postpass reorganizer")
    parser.add_argument("source", help="assembly source file (pieces + labels only)")
    parser.add_argument(
        "--level",
        choices=["none", "reorganize", "pack", "branch-delay"],
        default="branch-delay",
    )
    args = parser.parse_args(argv)
    from .asm import assemble_pieces
    from .reorg import ALL_LEVELS, OptLevel, reorganize

    with open(args.source) as handle:
        stream = assemble_pieces(handle.read())
    for level in ALL_LEVELS:
        result = reorganize(stream, level)
        marker = " *" if level.value == args.level else ""
        print(f"; {level.value}: {result.static_count} words{marker}")
    result = reorganize(stream, OptLevel(args.level))
    print(result.listing())
    return 0


def compile_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="mini-Pascal / MiniJava compiler + simulator"
    )
    parser.add_argument("source", help="source file (mini-Pascal or MiniJava)")
    parser.add_argument(
        "--lang",
        default="pascal",
        help="source language: pascal (default) or minijava",
    )
    parser.add_argument("--layout", choices=["word", "byte"], default="word")
    parser.add_argument("--no-run", action="store_true", help="only list the code")
    parser.add_argument(
        "--max-steps",
        type=int,
        default=30_000_000,
        help="step budget: a program still running after this many steps "
        "is reported as runaway instead of hanging the process "
        "(default 30,000,000; the farm's per-job guard uses the same limit)",
    )
    parser.add_argument("--input", type=int, action="append", default=[])
    args = parser.parse_args(argv)
    bad_lang = _check_lang(args.lang, ("pascal", "minijava"))
    if bad_lang:
        return bad_lang
    from .compiler import CompileOptions, LayoutStrategy
    from .sim import KernelPanic, Machine, MachineFault

    with open(args.source) as handle:
        compiled = _compile_for_lang(
            args.lang,
            handle.read(),
            CompileOptions(layout=LayoutStrategy(args.layout)),
        )
    if args.no_run:
        print(compiled.reorg.listing())
        return 0
    machine = Machine(compiled.program, inputs=args.input)
    try:
        stats = machine.run(args.max_steps)
    except (MachineFault, KernelPanic) as exc:
        return _report_guest_failure(machine, exc)
    except TimeoutError:
        print(
            f"error: program did not halt within {args.max_steps} steps "
            f"(pc={machine.cpu.pc}, {machine.stats.cycles} cycles executed); "
            "raise --max-steps if this is expected",
            file=sys.stderr,
        )
        return EXIT_STEP_BUDGET
    for value in machine.output:
        print(value)
    if machine.output_text:
        print(machine.output_text, end="")
    print(
        f"; static {compiled.static_count} words, ran {stats.words} words "
        f"in {stats.cycles} cycles",
        file=sys.stderr,
    )
    return 0


def experiments_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="reproduce the paper's evaluation")
    parser.add_argument(
        "names",
        nargs="*",
        help="experiments to run (default: all); e.g. table11 figure1",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="farm worker processes (default 1: in-process serial execution; "
        "output is identical at any value)",
    )
    parser.add_argument(
        "--results",
        metavar="FILE",
        help="also stream per-experiment result records to a JSON-lines file",
    )
    args = parser.parse_args(argv)
    from .experiments import REGISTRY, run_named
    from .farm import ResultStore

    names = args.names or list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} (have: {', '.join(REGISTRY)})")
    store = ResultStore(args.results) if args.results else None
    try:
        results = run_named(names, jobs=args.jobs, store=store)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if store is not None:
            store.close()
    for result in results:
        print(result.render())
        print()
    return 0


def _add_batch_options(parser) -> None:
    """Job-selection flags shared by ``mips-farm run`` and ``mips-serve``."""
    parser.add_argument(
        "--workload",
        action="append",
        default=[],
        metavar="NAME",
        help="corpus program to simulate (repeatable; default: the quick corpus)",
    )
    parser.add_argument(
        "--experiment",
        action="append",
        default=[],
        metavar="NAME",
        help="paper experiment to run as a job (repeatable)",
    )
    parser.add_argument(
        "--mode", choices=["bare", "checked", "interlocked"], default="bare"
    )
    parser.add_argument(
        "--opt",
        choices=["none", "reorganize", "pack", "branch-delay"],
        default="branch-delay",
        help="postpass optimization level for compiled workloads",
    )
    parser.add_argument(
        "--no-regalloc",
        action="store_true",
        help="compile without register allocation (era-compiler mode)",
    )
    parser.add_argument("--max-steps", type=int, default=30_000_000)
    parser.add_argument(
        "--sim-engine",
        choices=["fast", "jit", "precise"],
        default="fast",
        dest="sim_engine",
        help="simulation engine for workload jobs (results are identical; "
        "'jit' is fastest on loop-heavy workloads)",
    )


def _batch_jobs(args, parser):
    """The canonical job list for a batch-selection argument set."""
    from .experiments import REGISTRY
    from .farm.job import experiment_jobs, workload_jobs
    from .workloads import CORPUS, MINIJAVA_CORPUS, QUICK_PROGRAMS

    workloads = args.workload or (list(QUICK_PROGRAMS) if not args.experiment else [])
    bad = [n for n in workloads if n not in CORPUS and n not in MINIJAVA_CORPUS]
    bad += [n for n in args.experiment if n not in REGISTRY]
    if bad:
        parser.error(f"unknown workloads/experiments: {', '.join(bad)}")
    return list(
        workload_jobs(
            workloads,
            hazard_mode=args.mode,
            opt_level=args.opt,
            max_steps=args.max_steps,
            register_allocation=not args.no_regalloc,
            engine=args.sim_engine,
        )
    ) + list(experiment_jobs(args.experiment))


def _write_stable_results(path: str, records) -> None:
    """Stable-view JSONL in submission order -- deterministic at any --jobs.

    These are the same bytes, line for line, that ``mips-serve submit``
    streams for the same job list, which is what lets CI ``cmp`` a
    gateway run against a direct farm run.
    """
    from .farm.store import stable_view

    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(stable_view(record), sort_keys=True) + "\n")


def farm_main(argv=None) -> int:
    """``mips-farm``: batch workload execution over the simulation farm."""
    parser = argparse.ArgumentParser(
        description="sharded, fault-tolerant batch simulation service"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a batch of simulation jobs")
    _add_batch_options(run_p)
    run_p.add_argument("--jobs", type=int, default=1, metavar="N", help="worker processes")
    run_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS", help="per-job wall budget"
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts after a transient failure (default 2)",
    )
    run_p.add_argument(
        "--results", metavar="FILE", help="stream result records to a JSON-lines file"
    )
    run_p.add_argument(
        "--stable-results",
        metavar="FILE",
        help="write stable-view JSONL in submission order (deterministic bytes "
        "at any --jobs; comparable with a `mips-serve submit` stream)",
    )
    run_p.add_argument(
        "--cache",
        metavar="DIR",
        help="persistent result cache: serve content-addressed hits without "
        "executing, store completed deterministic results back",
    )
    run_p.add_argument(
        "--hosts",
        type=int,
        default=None,
        metavar="N",
        help="distributed mode: spawn N localhost shard hosts and run the "
        "batch across them (aggregate digest is identical at any N)",
    )
    run_p.add_argument(
        "--host",
        action="append",
        default=[],
        metavar="SPEC",
        dest="host_specs",
        help="distributed mode: connect to an already-running shard host at "
        "HOST:PORT (repeatable; ':PORT' means localhost); combinable with "
        "--hosts",
    )
    run_p.add_argument(
        "--host-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per --hosts-spawned shard host "
        "(default: cpu count / hosts)",
    )
    run_p.add_argument(
        "--no-steal",
        action="store_true",
        help="distributed mode: disable work stealing (static round-robin "
        "sharding only; results are identical, load balance is not)",
    )
    run_p.add_argument(
        "--kill-host-after",
        type=int,
        default=None,
        metavar="J",
        help="fault injection: SIGKILL the first --hosts-spawned shard host "
        "once J results are in, to exercise dead-host reclamation "
        "(CI asserts the digest survives this)",
    )

    status_p = sub.add_parser("status", help="summarize a results file")
    status_p.add_argument("results", help="JSON-lines file written by `mips-farm run`")

    host_p = sub.add_parser(
        "host", help="run a distributed shard host (a `mips-farm run --host` target)"
    )
    host_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default: OS-assigned, announced on stdout)",
    )
    host_p.add_argument("--bind", default="127.0.0.1", help="address to bind")
    host_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="local forked worker processes (default: cpu count)",
    )

    args = parser.parse_args(argv)

    if args.command == "host":
        from .farm.dist.host import main as host_main

        host_argv = ["--port", str(args.port), "--bind", args.bind]
        if args.workers is not None:
            host_argv += ["--workers", str(args.workers)]
        return host_main(host_argv)

    from .farm import ResultStore, Scheduler, aggregate, render_summary

    if args.command == "status":
        records = ResultStore.load(args.results)
        summary = aggregate(records)
        print(render_summary(summary))
        return 0 if not summary["failures"] and not summary["duplicates"] else 1

    job_list = _batch_jobs(args, parser)

    kwargs = {}
    if args.timeout is not None:
        kwargs["timeout_s"] = args.timeout
    if args.retries is not None:
        kwargs["max_attempts"] = 1 + args.retries
    if args.cache:
        from .service.cache import ResultCache

        kwargs["cache"] = ResultCache(args.cache)
    if args.kill_host_after is not None and not args.hosts:
        parser.error("--kill-host-after needs --hosts (it kills a spawned host)")

    store = ResultStore(args.results) if args.results else None
    pool = None
    try:
        if args.hosts or args.host_specs:
            from .farm.dist import DistScheduler, LocalShardPool

            specs = list(args.host_specs)
            if args.hosts:
                pool = LocalShardPool(args.hosts, workers_per_host=args.host_workers)
                specs = pool.specs + specs
            on_progress = None
            if args.kill_host_after is not None:
                victim_pool, threshold, killed = pool, args.kill_host_after, []

                def on_progress(done: int) -> None:
                    if done >= threshold and not killed:
                        killed.append(True)
                        victim_pool.kill(0)

            scheduler = DistScheduler(
                hosts=specs,
                store=store,
                steal=not args.no_steal,
                on_progress=on_progress,
                **kwargs,
            )
        else:
            scheduler = Scheduler(jobs=args.jobs, store=store, **kwargs)
        report = scheduler.run_report(job_list)
    finally:
        if pool is not None:
            pool.close()
        if store is not None:
            store.close()
    if args.stable_results:
        _write_stable_results(args.stable_results, report.records)
    for record in report.records:
        status = record["status"]
        line = f"{record['name']:24s} {status:8s} attempt(s)={record['attempts']}"
        if record.get("cached"):
            line += " (cached)"
        if record["stats"]:
            line += f" cycles={record['cycles']} words={record['words']}"
        if record["error"]:
            line += f"  {record['error'].get('type', '')}: {record['error'].get('message', '')}"
        print(line)
    summary = aggregate(report.records)
    if report.hosts:
        mode = f"{len(report.hosts)} shard host(s)"
        if report.degraded_serial:
            mode += " + serial tail"
    elif report.degraded_serial:
        mode = "serial (in-process)"
    else:
        mode = f"{args.jobs} workers"
    print()
    farm_line = (
        f"farm: {report.submitted} jobs via {mode}, "
        f"{report.retries} retries, {report.crashes} crashes, "
        f"{report.timeouts} timeouts, {report.wall_s:.2f}s wall"
    )
    if report.hosts:
        farm_line += f", {report.stolen} stolen, {report.reclaimed} reclaimed"
    if args.cache:
        farm_line += f", {report.cache_hits} cache hits / {report.cache_misses} misses"
    print(farm_line)
    for host_id, acct in sorted(report.hosts.items()):
        state = "" if acct["alive"] else " LOST"
        print(
            f"  shard {host_id}: workers={acct['workers']} jobs={acct['jobs']} "
            f"stolen={acct['stolen']} reclaimed={acct['reclaimed']} "
            f"retries={acct['retries']}{state}"
        )
    print(render_summary(summary))
    return 0 if summary["by_status"].get("ok", 0) == summary["jobs"] else 1


def chaos_main(argv=None) -> int:
    """``mips-chaos``: seeded fault-injection campaigns with verification."""
    parser = argparse.ArgumentParser(
        description="deterministic fault injection with recovery verification"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run chaos campaigns from a seed")
    run_p.add_argument("--seed", type=int, required=True, help="plan seed (reproducible)")
    run_p.add_argument(
        "--campaign",
        action="append",
        default=[],
        metavar="NAME",
        help="campaign to run (repeatable; default: all shipped campaigns)",
    )
    run_p.add_argument(
        "--engine",
        choices=["fast", "precise", "jit", "both", "all"],
        default="both",
        help="execution engine(s); 'both' runs fast+precise, 'all' adds the "
        "superblock JIT tier -- multi-engine runs check the full pairwise "
        "differential",
    )
    run_p.add_argument(
        "--results", metavar="FILE", help="stream result records to a JSON-lines file"
    )
    run_p.add_argument(
        "--shrink",
        action="store_true",
        help="on violation, minimize the plan to its shortest failing prefix",
    )

    sub.add_parser("list", help="list the shipped campaigns")

    args = parser.parse_args(argv)
    from .chaos import CAMPAIGNS, campaign_record, run_campaign
    from .farm import ResultStore, aggregate

    if args.command == "list":
        for name in sorted(CAMPAIGNS):
            print(f"{name:16s} {CAMPAIGNS[name].description}")
        return 0

    names = args.campaign or sorted(CAMPAIGNS)
    unknown = [n for n in names if n not in CAMPAIGNS]
    if unknown:
        parser.error(
            f"unknown campaigns: {', '.join(unknown)} (have: {', '.join(sorted(CAMPAIGNS))})"
        )
    engines = {
        "both": ("fast", "precise"),
        "all": ("fast", "precise", "jit"),
    }.get(args.engine, (args.engine,))

    store = ResultStore(args.results) if args.results else None
    failed = 0
    try:
        for name in names:
            summary = run_campaign(name, seed=args.seed, engines=engines)
            if store is not None:
                store.append(campaign_record(summary))
            violations = summary["violations"]
            outcome = summary["engines"][sorted(summary["engines"])[0]]["outcome"]
            print(
                f"{name:16s} seed={args.seed} injections={len(summary['plan']['injections'])} "
                f"outcome={outcome} violations={len(violations)} digest={summary['digest']}"
            )
            for violation in violations:
                print(
                    f"  VIOLATION [{violation['engine']}] {violation['check']} "
                    f"at step {violation['step']}: {violation['detail']}",
                    file=sys.stderr,
                )
            if violations:
                failed += 1
                if args.shrink:
                    _shrink_and_report(name, args.seed, engines)
    finally:
        if store is not None:
            store.close()
    if store is not None:
        summary = aggregate(ResultStore.load(args.results))
        print(f"aggregate digest: {summary['digest']}")
    return 1 if failed else 0


def serve_main(argv=None) -> int:
    """``mips-serve``: the simulation gateway and its command-line clients.

    ``serve`` runs the asyncio HTTP/JSON gateway in front of the farm;
    ``submit`` posts a batch and streams deterministic stable-view
    JSONL to stdout; ``status`` reads the gateway counters (or one
    cached result by job key); ``warm`` populates the on-disk cache
    offline, no server required.
    """
    parser = argparse.ArgumentParser(
        description="simulation-as-a-service gateway with a persistent "
        "content-addressed result cache"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="run the HTTP/JSON gateway")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=None, help="TCP port (default 8471)")
    serve_p.add_argument(
        "--cache",
        default=".mips-cache",
        metavar="DIR",
        help="persistent result cache directory (default .mips-cache)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="farm worker processes per batch"
    )
    serve_p.add_argument(
        "--quota",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant bound on jobs executing or queued (default 64); "
        "a request pushing past it gets 429 + Retry-After",
    )
    serve_p.add_argument(
        "--shard",
        action="append",
        default=[],
        metavar="SPEC",
        help="front the distributed farm: run batches on the shard host at "
        "HOST:PORT instead of the local pool (repeatable; start hosts "
        "with `mips-farm host`)",
    )

    submit_p = sub.add_parser(
        "submit", help="submit a batch, stream stable-view JSONL to stdout"
    )
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=None)
    submit_p.add_argument("--tenant", default="anon", help="quota accounting identity")
    submit_p.add_argument(
        "--results", metavar="FILE", help="also write the streamed lines to FILE"
    )
    _add_batch_options(submit_p)

    status_p = sub.add_parser("status", help="gateway counters, or one cached result")
    status_p.add_argument("key", nargs="?", help="job key to look up (default: /stats)")
    status_p.add_argument("--host", default="127.0.0.1")
    status_p.add_argument("--port", type=int, default=None)

    warm_p = sub.add_parser("warm", help="populate the cache offline (no server needed)")
    warm_p.add_argument("--cache", required=True, metavar="DIR")
    warm_p.add_argument("--jobs", type=int, default=1, metavar="N", help="worker processes")
    _add_batch_options(warm_p)

    args = parser.parse_args(argv)
    from .service import DEFAULT_PORT, DEFAULT_QUOTA_JOBS

    port = args.port if getattr(args, "port", None) is not None else DEFAULT_PORT

    if args.command == "serve":
        import asyncio

        from .service import Gateway, ResultCache

        cache = ResultCache(args.cache)
        gateway = Gateway(
            cache=cache,
            host=args.host,
            port=port,
            farm_jobs=args.jobs,
            quota_jobs=args.quota if args.quota is not None else DEFAULT_QUOTA_JOBS,
            shard_hosts=args.shard,
        )

        async def _serve() -> None:
            await gateway.start()
            backend = (
                f"shards {', '.join(gateway.shard_hosts)}"
                if gateway.shard_hosts
                else f"{gateway.farm_jobs} local worker(s)"
            )
            print(
                f"mips-serve: listening on http://{gateway.host}:{gateway.port} "
                f"(cache {args.cache}: {len(cache)} entries, "
                f"quota {gateway.quota_jobs} jobs/tenant, {backend})",
                flush=True,
            )
            await gateway.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            pass
        return 0

    from .service import ServiceClient, ServiceError

    if args.command == "status":
        client = ServiceClient(args.host, port)
        try:
            payload = client.result(args.key) if args.key else client.stats()
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: cannot reach gateway at {args.host}:{port}: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if args.command == "warm":
        from .farm import Scheduler, aggregate
        from .service import ResultCache

        cache = ResultCache(args.cache)
        report = Scheduler(jobs=args.jobs, cache=cache).run_report(_batch_jobs(args, parser))
        summary = aggregate(report.records)
        print(
            f"warm: {report.submitted} jobs, {report.cache_hits} already cached, "
            f"{report.cache_misses} executed, digest {summary['digest']}"
        )
        return 0 if summary["by_status"].get("ok", 0) == summary["jobs"] else 1

    # submit
    from .farm import aggregate

    jobs = _batch_jobs(args, parser)
    client = ServiceClient(args.host, port, tenant=args.tenant)
    try:
        result = client.submit([job.to_dict() for job in jobs])
    except ServiceError as exc:
        if exc.status == 429:
            print(
                f"error: {exc} (retry after {exc.retry_after or 1}s)", file=sys.stderr
            )
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot reach gateway at {args.host}:{port}: {exc}", file=sys.stderr)
        return 2
    out = open(args.results, "w") if args.results else None
    try:
        for line in result.lines:
            print(line)
            if out is not None:
                out.write(line + "\n")
    finally:
        if out is not None:
            out.close()
    summary = aggregate(result.records)
    ok = summary["by_status"].get("ok", 0)
    print(
        f"service: jobs={len(result.records)} hits={result.cache_hits} "
        f"misses={result.cache_misses} coalesced={result.coalesced} "
        f"digest={summary['digest']}",
        file=sys.stderr,
    )
    return 0 if ok == summary["jobs"] else 1


def prof_main(argv=None) -> int:
    """``mips-prof``: deterministic guest profiling and the paper-claims check.

    Every byte this command prints derives from architectural state, so
    output is identical across engines, across ``--jobs N``, and across
    repeated runs -- diff two invocations to prove a change is
    cycle-neutral.
    """
    parser = argparse.ArgumentParser(
        description="per-PC guest profiler with hardware-style counters"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="profile one program")
    run_p.add_argument(
        "target", help="assembly source file, or a corpus workload name"
    )
    run_p.add_argument("--top", type=int, default=20, metavar="N", help="hot words to show")
    run_p.add_argument(
        "--format",
        choices=["text", "json", "collapsed"],
        default="text",
        help="text report, canonical JSON, or flamegraph-collapsed stacks",
    )
    run_p.add_argument(
        "--engine",
        choices=["fast", "precise", "jit"],
        default="fast",
        help="execution engine (output is identical whichever runs; with "
        "'jit', hot entries additionally report their compilation tier)",
    )
    run_p.add_argument("--mode", choices=["bare", "checked", "interlocked"], default="bare")
    run_p.add_argument("--max-steps", type=int, default=30_000_000)
    run_p.add_argument("--input", type=int, action="append", default=[])

    corpus_p = sub.add_parser(
        "corpus", help="profile the quick corpus through the farm (JSONL out)"
    )
    corpus_p.add_argument("--jobs", type=int, default=1, metavar="N", help="worker processes")
    corpus_p.add_argument("--top", type=int, default=20, metavar="N")
    corpus_p.add_argument(
        "--results", metavar="FILE", help="also stream full farm records to a JSONL file"
    )
    corpus_p.add_argument(
        "--engine",
        choices=["fast", "precise", "jit"],
        default="fast",
        help="execution engine for every corpus job (profiles are identical "
        "whichever runs -- CI diffs them to prove it)",
    )

    claims_p = sub.add_parser(
        "claims", help="validate live counters against the paper's bands"
    )
    claims_p.add_argument("--jobs", type=int, default=1, metavar="N")

    args = parser.parse_args(argv)

    if args.command == "run":
        return _prof_run(args)

    from .farm import ResultStore, Scheduler
    from .farm.job import profile_jobs
    from .perf import merge_groups, render_json, validate
    from .perf.claims import render as render_claims
    from .workloads import MINIJAVA_PROGRAMS, QUICK_PROGRAMS

    store = ResultStore(getattr(args, "results", None)) if args.command == "corpus" else None
    try:
        records = Scheduler(jobs=args.jobs, store=store).run(
            profile_jobs(
                list(QUICK_PROGRAMS) + list(MINIJAVA_PROGRAMS),
                top=getattr(args, "top", None),
                engine=getattr(args, "engine", "fast"),
            )
        )
    finally:
        if store is not None:
            store.close()
    failed = [r["name"] for r in records if r["status"] != "ok"]
    if failed:
        print(f"error: workloads failed: {', '.join(sorted(failed))}", file=sys.stderr)
        return 1
    profiles = sorted(
        (record["extra"]["profile"] for record in records), key=lambda p: p["name"]
    )

    if args.command == "corpus":
        for profile in profiles:
            print(render_json(profile))
        return 0

    merged = merge_groups([profile["counters"] for profile in profiles])
    results = validate(merged)
    print(render_claims(results), end="")
    return 0 if all(result.ok for result in results) else 1


def _prof_run(args) -> int:
    import os

    from .perf import Profiler, build_profile, render_collapsed, render_json, render_text
    from .sim import HazardMode, KernelPanic, Machine, MachineFault

    if os.path.exists(args.target):
        from .asm import assemble

        with open(args.target) as handle:
            program = assemble(handle.read())
        name = os.path.basename(args.target)
    else:
        from .compiler.codegen_mips import CompileOptions
        from .compiler.driver import compile_source
        from .mjlang import compile_minijava
        from .workloads import CORPUS, MINIJAVA_CORPUS

        if args.target in MINIJAVA_CORPUS:
            program = compile_minijava(
                MINIJAVA_CORPUS[args.target], CompileOptions()
            ).program
        elif args.target in CORPUS:
            program = compile_source(CORPUS[args.target], CompileOptions()).program
        else:
            print(
                f"error: {args.target!r} is neither a file nor a corpus workload",
                file=sys.stderr,
            )
            return 2
        name = args.target

    machine = Machine(program, hazard_mode=HazardMode(args.mode), inputs=args.input)
    Profiler().attach(machine.cpu)
    try:
        machine.run(
            args.max_steps,
            fast=(args.engine != "precise"),
            jit=(args.engine == "jit"),
        )
    except (MachineFault, KernelPanic) as exc:
        return _report_guest_failure(machine, exc)
    except TimeoutError:
        print(
            f"error: program did not halt within {args.max_steps} steps",
            file=sys.stderr,
        )
        return EXIT_STEP_BUDGET
    profile = build_profile(
        machine.cpu, program, top=args.top, name=name, tiers=(args.engine == "jit")
    )
    if args.format == "json":
        print(render_json(profile))
    elif args.format == "collapsed":
        print(render_collapsed(profile), end="")
    else:
        print(render_text(profile), end="")
    return 0


def _shrink_and_report(name: str, seed: int, engines) -> None:
    """Minimize a failing campaign plan and describe the culprit prefix."""
    from .chaos import CAMPAIGNS, run_campaign_plan, shortest_failing_prefix
    from .chaos.campaigns import _baseline

    campaign = CAMPAIGNS[name]
    baseline = _baseline(campaign)
    plan = campaign.build_plan(seed, baseline["steps"])

    def fails(candidate) -> bool:
        result = run_campaign_plan(campaign, candidate, engines=engines, baseline=baseline)
        return bool(result["violations"])

    shrunk = shortest_failing_prefix(plan, fails)
    last = shrunk.injections[-1].to_dict() if shrunk.injections else None
    print(
        f"  shrunk: {len(plan.injections)} -> {len(shrunk.injections)} injections; "
        f"last in failing prefix: {last}",
        file=sys.stderr,
    )


def fuzz_main(argv=None) -> int:
    """``mips-fuzz``: differential-oracle fuzzing over the farm."""
    parser = argparse.ArgumentParser(
        description="property-based scenario fuzzing with a cross-engine "
        "differential oracle"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="generate and oracle-check a case range")
    run_p.add_argument("--cases", type=int, default=100, metavar="N", help="case count")
    run_p.add_argument("--seed", type=int, default=0, help="generator seed")
    run_p.add_argument(
        "--start", type=int, default=0, metavar="K", help="first case index"
    )
    run_p.add_argument(
        "--fuzz-mode",
        "--mode",
        choices=["ast", "words", "minijava", "both"],
        default="both",
        dest="fuzz_mode",
        help="case level: mini-Pascal programs, raw instruction streams, "
        "MiniJava programs, or an even/odd interleave of ast and words",
    )
    run_p.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="B",
        help="cases per farm job (default 25)",
    )
    run_p.add_argument("--max-steps", type=int, default=2_000_000)
    run_p.add_argument("--jobs", type=int, default=1, metavar="N", help="worker processes")
    run_p.add_argument(
        "--hosts",
        type=int,
        default=None,
        metavar="N",
        help="distributed mode: spawn N localhost shard hosts",
    )
    run_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS", help="per-job wall budget"
    )
    run_p.add_argument(
        "--results", metavar="FILE", help="stream result records to a JSON-lines file"
    )
    run_p.add_argument(
        "--stable-results",
        metavar="FILE",
        help="write stable-view JSONL in submission order (deterministic "
        "bytes at any --jobs/--hosts)",
    )
    run_p.add_argument(
        "--cache",
        metavar="DIR",
        help="persistent result cache for fuzz batches (content-addressed "
        "by seed/start/count/mode)",
    )
    run_p.add_argument(
        "--artifacts",
        metavar="DIR",
        default="fuzz-artifacts",
        help="directory for minimized failing-case repro artifacts",
    )
    run_p.add_argument(
        "--no-shrink",
        action="store_true",
        help="dump failing cases unminimized (faster triage of big batches)",
    )

    replay_p = sub.add_parser(
        "replay", help="re-run a dumped failing case deterministically"
    )
    replay_p.add_argument("artifact", help="crash record (<name>.json) to replay")

    args = parser.parse_args(argv)

    if args.command == "replay":
        return _fuzz_replay(args.artifact)

    from .farm import ResultStore, Scheduler
    from .farm.job import fuzz_jobs
    from .fuzz.batch import DEFAULT_BATCH

    job_list = list(
        fuzz_jobs(
            args.seed,
            args.cases,
            mode=args.fuzz_mode,
            batch=args.batch if args.batch is not None else DEFAULT_BATCH,
            max_steps=args.max_steps,
            start=args.start,
        )
    )
    kwargs = {}
    if args.timeout is not None:
        kwargs["timeout_s"] = args.timeout
    if args.cache:
        from .service.cache import ResultCache

        kwargs["cache"] = ResultCache(args.cache)

    store = ResultStore(args.results) if args.results else None
    pool = None
    try:
        if args.hosts:
            from .farm.dist import DistScheduler, LocalShardPool

            pool = LocalShardPool(args.hosts)
            scheduler = DistScheduler(hosts=pool.specs, store=store, **kwargs)
        else:
            scheduler = Scheduler(jobs=args.jobs, store=store, **kwargs)
        report = scheduler.run_report(job_list)
    finally:
        if pool is not None:
            pool.close()
        if store is not None:
            store.close()
    if args.stable_results:
        _write_stable_results(args.stable_results, report.records)

    checked = 0
    divergences = []
    for record in report.records:
        fuzz = record.get("extra", {}).get("fuzz")
        if fuzz is None:
            # a crashed/timed-out batch never reports cases: surface it
            print(
                f"{record['name']:28s} {record['status']:8s} "
                f"{(record.get('error') or {}).get('type', '')}",
                file=sys.stderr,
            )
            continue
        checked += len(fuzz["cases"])
        divergences.extend(fuzz["divergences"])
    digest = hashlib.sha256(
        "".join(r.get("fingerprint") or "" for r in report.records).encode()
    ).hexdigest()[:16]
    mode_note = f"{len(report.hosts)} host(s)" if report.hosts else f"{args.jobs} job(s)"
    print(
        f"fuzz: {checked}/{args.cases} cases checked over {len(job_list)} "
        f"batch(es) via {mode_note}, seed {args.seed}, mode {args.fuzz_mode}, "
        f"digest {digest}"
    )
    if args.cache:
        print(f"cache: {report.cache_hits} hits / {report.cache_misses} misses")
    if checked < args.cases:
        print("fuzz: some batches did not complete", file=sys.stderr)
        return 2
    if not divergences:
        print("fuzz: no divergences")
        return 0
    print(f"fuzz: {len(divergences)} divergent case(s)", file=sys.stderr)
    from .fuzz.artifacts import dump_artifact
    from .fuzz.case import make_case
    from .fuzz.minimize import minimize_case

    for entry in divergences:
        case = make_case(args.seed, entry["index"], entry["mode"])
        minimized = None if args.no_shrink else minimize_case(case, max_steps=args.max_steps)
        path = dump_artifact(args.artifacts, case, entry["divergences"], minimized)
        shrink_note = (
            f" (shrunk {minimized['units_full']} -> {minimized['units']} units)"
            if minimized
            else ""
        )
        print(f"  case {entry['index']} ({entry['mode']}): {path}{shrink_note}", file=sys.stderr)
        print(f"    replay: mips-fuzz replay {path}", file=sys.stderr)
    return 1


def _fuzz_replay(artifact_path: str) -> int:
    """Regenerate a dumped case from its seed triple and re-check it."""
    from .fuzz.artifacts import load_artifact
    from .fuzz.case import make_case
    from .fuzz.oracle import check_case

    record = load_artifact(artifact_path)
    case = make_case(int(record["seed"]), int(record["index"]), record["mode"])
    result = check_case(case)
    print(
        f"replay {case.name}: status={result.status} digest={result.digest} "
        f"(artifact recorded {len(record.get('divergences', []))} divergence(s))"
    )
    for div in result.divergences:
        print(f"  {div.get('check')}: {json.dumps(div, sort_keys=True)[:200]}")
    return 1 if result.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(experiments_main())
