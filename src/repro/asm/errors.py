"""Assembler diagnostics."""

from __future__ import annotations

from typing import Optional


class AsmError(Exception):
    """An assembly-time error, carrying source position when known."""

    def __init__(self, message: str, line: Optional[int] = None, source: Optional[str] = None):
        self.message = message
        self.line = line
        self.source = source
        location = f"line {line}: " if line is not None else ""
        context = f"\n    {source.strip()}" if source else ""
        super().__init__(f"{location}{message}{context}")


class UndefinedSymbol(AsmError):
    """A label or equate was referenced but never defined."""


class DuplicateSymbol(AsmError):
    """A label or equate was defined twice."""
