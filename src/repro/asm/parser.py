"""Parser for MIPS assembly source.

Syntax overview (one statement per line, ``;`` starts a comment)::

    .org 0
    .equ BUFSIZE, 64
    buf: .space BUFSIZE
    msg: .ascii "hello"
    tbl: .word 1, 2, 3, msg

    start:
        lim buf, r2          ; long immediate (symbols allowed)
        movi #200, r3        ; 8-bit move immediate
        add #1, r2, r2       ; 4-bit operand constant
        ld 2(ap), r0         ; displacement(base)
        ld (r2+r3), r1       ; (base+index)
        ld (r0>>2), r1       ; base shifted (packed byte arrays)
        ld @buf, r1          ; absolute
        st r1, 0(sp)
        xc r0, r1, r1        ; extract byte
        mov r1, lo           ; load the byte selector
        ic r3, r2            ; insert byte (selector in lo)
        seq r2, r3, r4       ; set conditionally
        ble r0, #1, done     ; compare-and-branch (1 delay slot)
        nop
        jal fib              ; direct call (1 delay slot)
        nop
        jmpr ra              ; indirect jump (2 delay slots)
        nop
        nop
        trap #17
        { ld 0(sp), r1 | add #1, sp, sp }   ; explicitly packed word
    done:

Register operands accept ``rN`` and the conventional aliases ``rv fp ap
sp ra``; ``#N`` immediates accept decimal, ``0x`` hex, and ``'c'``
character constants.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from ..isa.operations import AluOp, Comparison
from ..isa.pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    Operand,
    Piece,
    ReadSpecial,
    Rfs,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from ..isa.registers import REGISTER_ALIASES, Reg, SpecialReg
from .errors import AsmError
from .statements import (
    Ascii,
    Equ,
    Label,
    Org,
    PackedStmt,
    PieceStmt,
    SourceStatement,
    Space,
    WordData,
)

_THREE_OPERAND_ALU = {
    "add": AluOp.ADD,
    "sub": AluOp.SUB,
    "rsub": AluOp.RSUB,
    "and": AluOp.AND,
    "or": AluOp.OR,
    "xor": AluOp.XOR,
    "sll": AluOp.SLL,
    "srl": AluOp.SRL,
    "sra": AluOp.SRA,
    "mstep": AluOp.MSTEP,
    "dstep": AluOp.DSTEP,
    "xc": AluOp.XC,
}

_SET_MNEMONICS = {f"s{c.value}": c for c in Comparison}
# 'st' would collide with the store mnemonic; the always/never sets are
# spelled out.
del _SET_MNEMONICS["st"]
del _SET_MNEMONICS["sf"]
_SET_MNEMONICS["sett"] = Comparison.T
_SET_MNEMONICS["setf"] = Comparison.F

_BRANCH_MNEMONICS = {f"b{c.value}": c for c in Comparison}

_SPECIAL_REGS = {s.value: s for s in SpecialReg}

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.*)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        if ch == ";" and not in_string:
            break
        out.append(ch)
    return "".join(out).strip()


def _split_operands(text: str) -> List[str]:
    """Split on top-level commas (commas inside parens/strings are kept)."""
    parts: List[str] = []
    depth = 0
    in_string = False
    current = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if not in_string:
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
                continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_integer(text: str) -> Optional[int]:
    """Parse a numeric literal: decimal, 0x hex, or 'c' character."""
    text = text.strip()
    if not text:
        return None
    negative = text.startswith("-")
    body = text[1:] if negative else text
    if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
        inner = text[1:-1]
        unescaped = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\'": "'", "\\\\": "\\"}.get(inner, inner)
        if len(unescaped) != 1:
            return None
        return ord(unescaped)
    try:
        value = int(body, 0)
    except ValueError:
        return None
    return -value if negative else value


class LineParser:
    """Parses one source line into zero or more statements."""

    def __init__(self, line_number: int, source: str):
        self.line_number = line_number
        self.source = source

    def error(self, message: str) -> AsmError:
        return AsmError(message, self.line_number, self.source)

    # -- operand parsing ---------------------------------------------------

    def parse_register(self, text: str) -> Reg:
        text = text.strip().lower()
        if text in REGISTER_ALIASES:
            return Reg(REGISTER_ALIASES[text])
        if re.fullmatch(r"r\d+", text):
            number = int(text[1:])
            if number < 16:
                return Reg(number)
        raise self.error(f"expected a register, got {text!r}")

    def parse_operand(self, text: str) -> Operand:
        """A register or a ``#N`` short immediate (0-15)."""
        text = text.strip()
        if text.startswith("#"):
            value = parse_integer(text[1:])
            if value is None:
                raise self.error(f"bad immediate {text!r}")
            if not 0 <= value <= 15:
                raise self.error(
                    f"operand constant {value} exceeds the 4-bit range 0..15 "
                    "(use movi/lim or a reverse operator)"
                )
            return Imm(value)
        return self.parse_register(text)

    def parse_value_or_symbol(self, text: str) -> Union[int, str]:
        text = text.strip()
        if text.startswith("#"):
            text = text[1:].strip()
        value = parse_integer(text)
        if value is not None:
            return value
        if _SYMBOL_RE.match(text):
            return text
        raise self.error(f"expected a number or symbol, got {text!r}")

    def parse_address(self, text: str):
        """One of the four memory addressing modes (symbolic values allowed).

        Returns either an Address or a tuple marking a symbolic form the
        assembler must resolve: ``("abs", sym)`` or ``("disp", sym, base)``.
        """
        text = text.strip()
        if text.startswith("@"):
            value = self.parse_value_or_symbol(text[1:])
            if isinstance(value, int):
                return Absolute(value)
            return ("abs", value)
        shifted = re.fullmatch(r"\(\s*([A-Za-z0-9_]+)\s*>>\s*(\d+)\s*\)", text)
        if shifted:
            return BaseShifted(self.parse_register(shifted.group(1)), int(shifted.group(2)))
        indexed = re.fullmatch(r"\(\s*([A-Za-z0-9_]+)\s*\+\s*([A-Za-z0-9_]+)\s*\)", text)
        if indexed:
            return BaseIndex(
                self.parse_register(indexed.group(1)), self.parse_register(indexed.group(2))
            )
        disp = re.fullmatch(r"(-?[A-Za-z0-9_']*)\s*\(\s*([A-Za-z0-9_]+)\s*\)", text)
        if disp:
            base = self.parse_register(disp.group(2))
            offset_text = disp.group(1) or "0"
            value = self.parse_value_or_symbol(offset_text)
            if isinstance(value, int):
                return Displacement(base, value)
            return ("disp", value, base)
        raise self.error(f"bad address {text!r}")

    # -- statement parsing ---------------------------------------------------

    def parse_piece(self, text: str) -> Piece:
        """Parse one instruction piece (mnemonic + operands)."""
        text = text.strip()
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(operand_text) if operand_text else []

        def arity(n: int) -> List[str]:
            if len(operands) != n:
                raise self.error(f"{mnemonic} expects {n} operands, got {len(operands)}")
            return operands

        if mnemonic == "nop":
            arity(0)
            return Noop()

        if mnemonic == "rfs":
            arity(0)
            return Rfs()

        if mnemonic in _THREE_OPERAND_ALU:
            a, b, c = arity(3)
            return Alu(
                _THREE_OPERAND_ALU[mnemonic],
                self.parse_operand(a),
                self.parse_operand(b),
                self.parse_register(c),
            )

        if mnemonic in ("mov", "not"):
            a, b = arity(2)
            if b.strip().lower() in _SPECIAL_REGS and mnemonic == "mov":
                return WriteSpecial(_SPECIAL_REGS[b.strip().lower()], self.parse_operand(a))
            op = AluOp.MOV if mnemonic == "mov" else AluOp.NOT
            return Alu(op, self.parse_operand(a), Imm(0), self.parse_register(b))

        if mnemonic == "movi":
            a, b = arity(2)
            value = parse_integer(a.lstrip("#"))
            if value is None or not 0 <= value <= 255:
                raise self.error(f"movi constant must be 0..255, got {a!r}")
            return MovImm(value, self.parse_register(b))

        if mnemonic == "lim":
            a, b = arity(2)
            value = self.parse_value_or_symbol(a)
            dst = self.parse_register(b)
            if isinstance(value, int):
                return LoadImm(value, dst)
            # symbolic long immediate: resolved by the assembler
            return _SymbolicLim(value, dst)

        if mnemonic == "ic":
            # 'ic src,dst' or the paper's 'ic lo,src,dst'
            if len(operands) == 3 and operands[0].strip().lower() == "lo":
                operands.pop(0)
            a, b = arity(2)
            return Alu(AluOp.IC, self.parse_operand(a), Imm(0), self.parse_register(b))

        if mnemonic == "ld":
            a, b = arity(2)
            address = self.parse_address(a)
            dst = self.parse_register(b)
            if isinstance(address, tuple):
                return _SymbolicMem(False, address, dst)
            return Load(address, dst)

        if mnemonic == "st":
            a, b = arity(2)
            src = self.parse_register(a)
            address = self.parse_address(b)
            if isinstance(address, tuple):
                return _SymbolicMem(True, address, src)
            return Store(address, src)

        if mnemonic in _SET_MNEMONICS:
            a, b, c = arity(3)
            return SetCond(
                _SET_MNEMONICS[mnemonic],
                self.parse_operand(a),
                self.parse_operand(b),
                self.parse_register(c),
            )

        if mnemonic in _BRANCH_MNEMONICS:
            a, b, c = arity(3)
            return CompareBranch(
                _BRANCH_MNEMONICS[mnemonic],
                self.parse_operand(a),
                self.parse_operand(b),
                self.parse_target(c),
            )

        if mnemonic in ("jmp", "jal"):
            (a,) = arity(1)
            return Jump(self.parse_target(a), link=(mnemonic == "jal"))

        if mnemonic in ("jmpr", "jalr"):
            (a,) = arity(1)
            return JumpIndirect(self.parse_register(a), link=(mnemonic == "jalr"))

        if mnemonic == "trap":
            (a,) = arity(1)
            code = parse_integer(a.lstrip("#"))
            if code is None or not 0 <= code < 4096:
                raise self.error(f"trap code must be 0..4095, got {a!r}")
            return Trap(code)

        if mnemonic == "rdspec":
            a, b = arity(2)
            name = a.strip().lower()
            if name not in _SPECIAL_REGS:
                raise self.error(f"unknown special register {a!r}")
            return ReadSpecial(_SPECIAL_REGS[name], self.parse_register(b))

        if mnemonic == "wrspec":
            a, b = arity(2)
            name = b.strip().lower()
            if name not in _SPECIAL_REGS:
                raise self.error(f"unknown special register {b!r}")
            return WriteSpecial(_SPECIAL_REGS[name], self.parse_operand(a))

        raise self.error(f"unknown mnemonic {mnemonic!r}")

    def parse_target(self, text: str) -> Union[int, str]:
        value = self.parse_value_or_symbol(text)
        return value

    def parse_statement(self, text: str):
        """Parse the body of a line (label already stripped)."""
        if text.startswith("{"):
            if not text.endswith("}"):
                raise self.error("unterminated packed word")
            inner = text[1:-1]
            halves = inner.split("|")
            if len(halves) != 2:
                raise self.error("a packed word is written { mem | alu }")
            mem = self.parse_piece(halves[0])
            alu = self.parse_piece(halves[1])
            return PackedStmt(mem, alu)

        if text.startswith("."):
            return self.parse_directive(text)

        return PieceStmt(self.parse_piece(text))

    def parse_directive(self, text: str):
        parts = text.split(None, 1)
        name = parts[0].lower()
        body = parts[1] if len(parts) > 1 else ""
        if name == ".org":
            value = parse_integer(body)
            if value is None or value < 0:
                raise self.error(f"bad .org address {body!r}")
            return Org(value)
        if name == ".word":
            values = [self.parse_value_or_symbol(item) for item in _split_operands(body)]
            if not values:
                raise self.error(".word needs at least one value")
            return WordData(values)
        if name == ".space":
            count = parse_integer(body)
            if count is None or count < 0:
                raise self.error(f"bad .space count {body!r}")
            return Space(count)
        if name == ".equ":
            items = _split_operands(body)
            if len(items) != 2 or not _SYMBOL_RE.match(items[0]):
                raise self.error(".equ needs a name and a value")
            value = parse_integer(items[1])
            if value is None:
                raise self.error(f"bad .equ value {items[1]!r}")
            return Equ(items[0], value)
        if name == ".ascii":
            body = body.strip()
            if len(body) < 2 or body[0] != '"' or body[-1] != '"':
                raise self.error('.ascii needs a "quoted" string')
            return Ascii(body[1:-1])
        raise self.error(f"unknown directive {name!r}")


# Symbolic placeholder pieces resolved by the assembler's second pass.


class _SymbolicLim(Piece):
    """``lim symbol, dst`` before symbol resolution."""

    def __init__(self, symbol: str, dst: Reg):
        self.symbol = symbol
        self.dst = dst

    def writes(self):
        return frozenset({self.dst})

    def __repr__(self) -> str:
        return f"lim {self.symbol},{self.dst!r}"


class _SymbolicMem(Piece):
    """A load/store whose address contains an unresolved symbol."""

    def __init__(self, is_store_op: bool, address_form: tuple, register: Reg):
        self.is_store_op = is_store_op
        self.address_form = address_form
        self.register = register

    @property
    def is_load(self):  # type: ignore[override]
        return not self.is_store_op

    @property
    def is_store(self):  # type: ignore[override]
        return self.is_store_op

    def __repr__(self) -> str:
        op = "st" if self.is_store_op else "ld"
        return f"{op} <{self.address_form}>,{self.register!r}"


def parse(source: str) -> List[SourceStatement]:
    """Parse assembly source into positioned statements."""
    statements: List[SourceStatement] = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        if not text:
            continue
        while True:
            match = _LABEL_RE.match(text)
            if not match:
                break
            statements.append(
                SourceStatement(Label(match.group(1)), line_number, raw)
            )
            text = match.group(2).strip()
            if not text:
                break
        if not text:
            continue
        parser = LineParser(line_number, raw)
        statements.append(SourceStatement(parser.parse_statement(text), line_number, raw))
    return statements
