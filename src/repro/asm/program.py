"""Assembled program images.

A :class:`Program` is a memory image of 32-bit words -- encoded
instructions and literal data share the single word-addressed space --
plus the symbol table and a listing that remembers which addresses hold
instructions (used by disassembly and by the pipeline simulator's decode
cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.encoding import decode, encode
from ..isa.words import InstructionWord


@dataclass
class Program:
    """An assembled (or compiled) program.

    Attributes:
        memory: word address -> 32-bit value (instructions are encoded).
        instructions: word address -> the InstructionWord placed there.
        symbols: label -> word address (or .equ value).
        entry: address execution should begin at.
    """

    memory: Dict[int, int] = field(default_factory=dict)
    instructions: Dict[int, InstructionWord] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0

    def place_word(self, addr: int, word: InstructionWord) -> None:
        """Place an instruction word at ``addr`` (encoding it into memory)."""
        self.memory[addr] = encode(word, addr)
        self.instructions[addr] = word

    def place_data(self, addr: int, value: int) -> None:
        self.memory[addr] = value & 0xFFFFFFFF

    def fetch(self, addr: int) -> InstructionWord:
        """Decode the instruction at ``addr`` (consulting the cache first)."""
        if addr in self.instructions:
            return self.instructions[addr]
        if addr not in self.memory:
            raise KeyError(f"no instruction at word address {addr}")
        word = decode(self.memory[addr], addr)
        self.instructions[addr] = word
        return word

    @property
    def size(self) -> int:
        """Number of occupied memory words."""
        return len(self.memory)

    @property
    def code_size(self) -> int:
        """Number of instruction words (the static count of Table 11)."""
        return len(self.instructions)

    def symbol(self, name: str) -> int:
        if name not in self.symbols:
            raise KeyError(f"undefined symbol {name!r}")
        return self.symbols[name]

    def disassemble(self, start: Optional[int] = None, count: Optional[int] = None) -> str:
        """A human-readable listing of the instruction region."""
        addresses = sorted(self.instructions)
        if start is not None:
            addresses = [a for a in addresses if a >= start]
        if count is not None:
            addresses = addresses[:count]
        label_at = {addr: name for name, addr in self.symbols.items()}
        lines: List[str] = []
        for addr in addresses:
            label = f"{label_at[addr]}:" if addr in label_at else ""
            lines.append(f"{addr:6d}  {label:12s}{self.instructions[addr]!r}")
        return "\n".join(lines)
