"""The two-pass assembler.

Pass 1 walks the statements maintaining a location counter, recording
label addresses and ``.equ`` values.  Pass 2 resolves symbolic operands
(branch targets, ``lim symbol``, symbolic displacements/absolutes) and
encodes each word into the program image.

The assembler performs **no** reordering, packing, or delay-slot
management -- those belong to the reorganizer (:mod:`repro.reorg`),
which the paper runs as a separate postpass over both compiler output
and hand-written assembly.  Writing via :func:`assemble_with_reorg`
routes the piece stream through that postpass first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..isa.pieces import (
    Absolute,
    CompareBranch,
    Displacement,
    Jump,
    Load,
    LoadImm,
    Piece,
    Store,
)
from ..isa.words import InstructionWord
from .errors import AsmError, DuplicateSymbol, UndefinedSymbol
from .parser import SourceStatement, _SymbolicLim, _SymbolicMem, parse
from .program import Program
from .statements import (
    Ascii,
    Equ,
    Label,
    Org,
    PackedStmt,
    PieceStmt,
    Space,
    WordData,
)


@dataclass
class _Placement:
    """Where a statement's words will land (filled by pass 1)."""

    stmt: SourceStatement
    address: int


def _statement_size(stmt: SourceStatement) -> int:
    body = stmt.stmt
    if isinstance(body, (PieceStmt, PackedStmt)):
        return 1
    if isinstance(body, WordData):
        return len(body.values)
    if isinstance(body, Space):
        return body.count
    if isinstance(body, Ascii):
        return body.word_count
    return 0


def assemble(source: str, entry_symbol: Optional[str] = "start") -> Program:
    """Assemble source text into a :class:`Program`.

    ``entry_symbol`` names the entry point; when absent (or not defined)
    the lowest instruction address is used.
    """
    statements = parse(source)
    symbols: Dict[str, int] = {}
    placements: List[_Placement] = []

    # pass 1: addresses and symbols
    location = 0
    for stmt in statements:
        body = stmt.stmt
        if isinstance(body, Org):
            location = body.address
            continue
        if isinstance(body, Equ):
            if body.name in symbols:
                raise DuplicateSymbol(f"symbol {body.name!r} redefined", stmt.line, stmt.source)
            symbols[body.name] = body.value
            continue
        if isinstance(body, Label):
            if body.name in symbols:
                raise DuplicateSymbol(f"symbol {body.name!r} redefined", stmt.line, stmt.source)
            symbols[body.name] = location
            continue
        placements.append(_Placement(stmt, location))
        location += _statement_size(stmt)

    # pass 2: resolve and encode
    program = Program(symbols=dict(symbols))
    resolver = _Resolver(symbols)
    for placement in placements:
        body = placement.stmt.stmt
        addr = placement.address
        try:
            if isinstance(body, PieceStmt):
                piece = resolver.resolve(body.piece)
                program.place_word(addr, InstructionWord.single(piece))
            elif isinstance(body, PackedStmt):
                mem = resolver.resolve(body.mem)
                alu = resolver.resolve(body.alu)
                program.place_word(addr, InstructionWord.packed(mem, alu))
            elif isinstance(body, WordData):
                for i, value in enumerate(body.values):
                    program.place_data(addr + i, resolver.value(value))
            elif isinstance(body, Space):
                for i in range(body.count):
                    program.place_data(addr + i, 0)
            elif isinstance(body, Ascii):
                for i, value in enumerate(body.words()):
                    program.place_data(addr + i, value)
        except AsmError:
            raise
        except (KeyError, ValueError) as exc:
            raise AsmError(str(exc), placement.stmt.line, placement.stmt.source) from exc

    if entry_symbol and entry_symbol in symbols:
        program.entry = symbols[entry_symbol]
    elif program.instructions:
        program.entry = min(program.instructions)
    return program


class _Resolver:
    """Replaces symbolic references in parsed pieces with addresses."""

    def __init__(self, symbols: Dict[str, int]):
        self.symbols = symbols

    def value(self, ref: Union[int, str]) -> int:
        if isinstance(ref, int):
            return ref
        if ref not in self.symbols:
            raise UndefinedSymbol(f"undefined symbol {ref!r}")
        return self.symbols[ref]

    def resolve(self, piece: Piece) -> Piece:
        if isinstance(piece, CompareBranch) and isinstance(piece.target, str):
            return CompareBranch(piece.cond, piece.s1, piece.s2, self.value(piece.target))
        if isinstance(piece, Jump) and isinstance(piece.target, str):
            return Jump(self.value(piece.target), piece.link)
        if isinstance(piece, _SymbolicLim):
            return LoadImm(self.value(piece.symbol), piece.dst)
        if isinstance(piece, _SymbolicMem):
            form = piece.address_form
            if form[0] == "abs":
                address = Absolute(self.value(form[1]))
            else:  # ("disp", symbol, base)
                address = Displacement(form[2], self.value(form[1]))
            if piece.is_store_op:
                return Store(address, piece.register)
            return Load(address, piece.register)
        return piece


def assemble_pieces(source: str) -> List[Tuple[Optional[str], Piece]]:
    """Parse source into a labeled piece stream for the reorganizer.

    Returns ``(label, piece)`` pairs where ``label`` marks the first
    piece after each label definition.  Directives other than labels are
    rejected -- the reorganizer consumes pure instruction streams.
    """
    pending_label: Optional[str] = None
    out: List[Tuple[Optional[str], Piece]] = []
    for stmt in parse(source):
        body = stmt.stmt
        if isinstance(body, Label):
            if pending_label is not None:
                raise AsmError(
                    f"consecutive labels {pending_label!r}/{body.name!r} not supported here",
                    stmt.line,
                    stmt.source,
                )
            pending_label = body.name
        elif isinstance(body, PieceStmt):
            out.append((pending_label, body.piece))
            pending_label = None
        else:
            raise AsmError(
                f"only labels and pieces are allowed in a reorganizer stream, got {body!r}",
                stmt.line,
                stmt.source,
            )
    if pending_label is not None:
        raise AsmError(f"label {pending_label!r} at end of stream")
    return out
