"""Statement forms produced by the assembly parser.

A source file is a sequence of statements: label definitions, directives,
single pieces, and explicitly packed words (``{ mem | alu }``).  Pieces at
this level may carry *symbolic* branch targets and displacement
expressions; the two-pass assembler resolves them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..isa.pieces import Piece


@dataclass(frozen=True)
class Label:
    """``name:`` -- defines ``name`` as the current location counter."""

    name: str


@dataclass(frozen=True)
class Org:
    """``.org N`` -- set the location counter."""

    address: int


@dataclass(frozen=True)
class WordData:
    """``.word v, v, ...`` -- literal data words (values or symbols)."""

    values: List[Union[int, str]]


@dataclass(frozen=True)
class Space:
    """``.space N`` -- reserve N zeroed words."""

    count: int


@dataclass(frozen=True)
class Equ:
    """``.equ name, value`` -- define an assembly-time constant."""

    name: str
    value: int


@dataclass(frozen=True)
class Ascii:
    """``.ascii "text"`` -- characters packed four per word, low byte first.

    On the word-addressed machine, strings are packed byte arrays
    accessed through the byte insert/extract instructions (paper
    section 4.1).
    """

    text: str

    @property
    def word_count(self) -> int:
        return (len(self.text) + 3) // 4

    def words(self) -> List[int]:
        out: List[int] = []
        data = self.text.encode("ascii")
        for i in range(0, len(data), 4):
            chunk = data[i : i + 4]
            value = 0
            for j, byte in enumerate(chunk):
                value |= byte << (8 * j)
            out.append(value)
        return out


@dataclass(frozen=True)
class PieceStmt:
    """A single instruction piece (one word when not packed later)."""

    piece: Piece


@dataclass(frozen=True)
class PackedStmt:
    """An explicitly packed word written ``{ mem-piece | alu-piece }``."""

    mem: Piece
    alu: Piece


Statement = Union[Label, Org, WordData, Space, Equ, Ascii, PieceStmt, PackedStmt]


@dataclass
class SourceStatement:
    """A parsed statement together with its source position."""

    stmt: Statement
    line: int
    source: str
