"""Two-pass assembler for the MIPS instruction set."""

from .assembler import assemble, assemble_pieces
from .errors import AsmError, DuplicateSymbol, UndefinedSymbol
from .parser import parse, parse_integer
from .program import Program

__all__ = [
    "AsmError",
    "DuplicateSymbol",
    "Program",
    "UndefinedSymbol",
    "assemble",
    "assemble_pieces",
    "parse",
    "parse_integer",
]
