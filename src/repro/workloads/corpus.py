"""The workload corpus.

The paper's empirical tables come from "a collection of Pascal programs
including compilers, optimizers, and VLSI design aid software; the
programs are reasonably involved with text handling, and little or no
compute intensive (e.g., floating point) tasks are included."

This corpus reproduces that character: a scanner (compiler-like), a
symbol table (compiler-like), text utilities (string handling, word
counting), VLSI design-aid work (rectangle overlap checking), plus the
classic integer kernels (sieve, sorting) and the Table 11 benchmarks.

Every program is deterministic and prints values checked against the
Python oracles in ``EXPECTED_OUTPUT``.
"""

from __future__ import annotations

from typing import Dict, List

from .fib import FIB_ITERATIVE, FIB_RECURSIVE, fib
from .puzzle import puzzle_source

# ---------------------------------------------------------------------------
# scanner: a tokenizer over a packed character buffer (compiler-like)
# ---------------------------------------------------------------------------

SCANNER = """
program scanner;
const buflen = 115;
type buffer = array [0..127] of char;
var buf: buffer;
    pos, start, idents, numbers, symbols, keywords: integer;
    ch: char;

procedure fill;
var i: integer;
begin
  { 'if x1 > 42 then y := y + 3 else begin z9 := 0 end ...' }
  buf[0] := 'i'; buf[1] := 'f'; buf[2] := ' ';
  buf[3] := 'x'; buf[4] := '1'; buf[5] := ' ';
  buf[6] := '>'; buf[7] := ' ';
  buf[8] := '4'; buf[9] := '2'; buf[10] := ' ';
  buf[11] := 't'; buf[12] := 'h'; buf[13] := 'e'; buf[14] := 'n'; buf[15] := ' ';
  buf[16] := 'y'; buf[17] := ' ';
  buf[18] := ':'; buf[19] := '='; buf[20] := ' ';
  buf[21] := 'y'; buf[22] := ' ';
  buf[23] := '+'; buf[24] := ' ';
  buf[25] := '3'; buf[26] := ' ';
  buf[27] := 'e'; buf[28] := 'l'; buf[29] := 's'; buf[30] := 'e'; buf[31] := ' ';
  buf[32] := 'b'; buf[33] := 'e'; buf[34] := 'g'; buf[35] := 'i'; buf[36] := 'n'; buf[37] := ' ';
  buf[38] := 'z'; buf[39] := '9'; buf[40] := ' ';
  buf[41] := ':'; buf[42] := '='; buf[43] := ' ';
  buf[44] := '0'; buf[45] := ' ';
  buf[46] := 'e'; buf[47] := 'n'; buf[48] := 'd'; buf[49] := ' ';
  for i := 50 to buflen - 1 do begin
    { repeat a tail: 'ab 12 + ' }
    pos := i mod 8;
    if pos = 0 then buf[i] := 'a';
    if pos = 1 then buf[i] := 'b';
    if pos = 2 then buf[i] := ' ';
    if pos = 3 then buf[i] := '1';
    if pos = 4 then buf[i] := '2';
    if pos = 5 then buf[i] := ' ';
    if pos = 6 then buf[i] := '+';
    if pos = 7 then buf[i] := ' '
  end
end;

function isletter(c: char): boolean;
begin
  isletter := (c >= 'a') and (c <= 'z')
end;

function isdigit(c: char): boolean;
begin
  isdigit := (c >= '0') and (c <= '9')
end;

function iskeyword(first: char; len: integer): boolean;
begin
  { crude keyword filter: if/then/else/begin/end shapes }
  iskeyword := false;
  if (first = 'i') and (len = 2) then iskeyword := true;
  if (first = 't') and (len = 4) then iskeyword := true;
  if (first = 'e') and (len = 4) then iskeyword := true;
  if (first = 'b') and (len = 5) then iskeyword := true;
  if (first = 'e') and (len = 3) then iskeyword := true
end;

begin
  fill;
  idents := 0; numbers := 0; symbols := 0; keywords := 0;
  pos := 0;
  while pos < buflen do begin
    ch := buf[pos];
    if isletter(ch) then begin
      start := pos;
      while (pos < buflen) and (isletter(buf[pos]) or isdigit(buf[pos])) do
        pos := pos + 1;
      if iskeyword(ch, pos - start) then
        keywords := keywords + 1
      else
        idents := idents + 1
    end else if isdigit(ch) then begin
      while (pos < buflen) and isdigit(buf[pos]) do pos := pos + 1;
      numbers := numbers + 1
    end else begin
      if ch <> ' ' then symbols := symbols + 1;
      pos := pos + 1
    end
  end;
  writeln(keywords);
  writeln(idents);
  writeln(numbers);
  writeln(symbols)
end.
"""


def _scanner_expected() -> List[int]:
    buf = list("if x1 > 42 then y := y + 3 else begin z9 := 0 end ")
    for i in range(50, 115):
        buf.append("ab 12 + "[i % 8])
    idents = numbers = symbols = keywords = 0
    pos = 0
    buflen = 115
    while pos < buflen:
        ch = buf[pos]
        if ch.isalpha():
            start = pos
            while pos < buflen and (buf[pos].isalpha() or buf[pos].isdigit()):
                pos += 1
            length = pos - start
            if (ch, length) in (("i", 2), ("t", 4), ("e", 4), ("b", 5), ("e", 3)):
                keywords += 1
            else:
                idents += 1
        elif ch.isdigit():
            while pos < buflen and buf[pos].isdigit():
                pos += 1
            numbers += 1
        else:
            if ch != " ":
                symbols += 1
            pos += 1
    return [keywords, idents, numbers, symbols]


# ---------------------------------------------------------------------------
# vlsi: rectangle overlap checking (design-rule-check flavored)
# ---------------------------------------------------------------------------

VLSI_RECTS = """
program vlsirects;
const nrects = 24;
type rect = record x0, y0, x1, y1, layer: integer end;
var rects: array [0..23] of rect;
    i, j, overlaps, area, seed: integer;

function nextrand: integer;
begin
  seed := (seed * 109 + 89) mod 1024;
  nextrand := seed
end;

function overlap(a, b: integer): boolean;
var ok: boolean;
begin
  ok := true;
  if rects[a].x1 <= rects[b].x0 then ok := false;
  if rects[b].x1 <= rects[a].x0 then ok := false;
  if rects[a].y1 <= rects[b].y0 then ok := false;
  if rects[b].y1 <= rects[a].y0 then ok := false;
  if rects[a].layer <> rects[b].layer then ok := false;
  overlap := ok
end;

begin
  seed := 7;
  for i := 0 to nrects - 1 do begin
    rects[i].x0 := nextrand mod 100;
    rects[i].y0 := nextrand mod 100;
    rects[i].x1 := rects[i].x0 + 1 + nextrand mod 20;
    rects[i].y1 := rects[i].y0 + 1 + nextrand mod 20;
    rects[i].layer := nextrand mod 3
  end;
  overlaps := 0;
  for i := 0 to nrects - 2 do
    for j := i + 1 to nrects - 1 do
      if overlap(i, j) then overlaps := overlaps + 1;
  area := 0;
  for i := 0 to nrects - 1 do
    area := area + (rects[i].x1 - rects[i].x0) * (rects[i].y1 - rects[i].y0);
  writeln(overlaps);
  writeln(area)
end.
"""


def _vlsi_expected() -> List[int]:
    seed = 7

    def nextrand() -> int:
        nonlocal seed
        seed = (seed * 109 + 89) % 1024
        return seed

    rects = []
    for _ in range(24):
        x0 = nextrand() % 100
        y0 = nextrand() % 100
        x1 = x0 + 1 + nextrand() % 20
        y1 = y0 + 1 + nextrand() % 20
        layer = nextrand() % 3
        rects.append((x0, y0, x1, y1, layer))
    overlaps = 0
    for i in range(23):
        for j in range(i + 1, 24):
            a, b = rects[i], rects[j]
            ok = not (
                a[2] <= b[0] or b[2] <= a[0] or a[3] <= b[1] or b[3] <= a[1]
            ) and a[4] == b[4]
            if ok:
                overlaps += 1
    area = sum((r[2] - r[0]) * (r[3] - r[1]) for r in rects)
    return [overlaps, area]


# ---------------------------------------------------------------------------
# strings: copy / compare / reverse / search over packed char arrays
# ---------------------------------------------------------------------------

STRINGS = """
program strings;
const n = 26;
type line = packed array [0..31] of char;
var a, b: line;
    i, matches, firstdiff: integer;

procedure copyline(var src, dst: line; len: integer);
var i: integer;
begin
  for i := 0 to len - 1 do dst[i] := src[i]
end;

procedure reverse(var s: line; len: integer);
var i: integer;
    t: char;
begin
  for i := 0 to (len div 2) - 1 do begin
    t := s[i];
    s[i] := s[len - 1 - i];
    s[len - 1 - i] := t
  end
end;

function countchar(var s: line; len: integer; c: char): integer;
var i, k: integer;
begin
  k := 0;
  for i := 0 to len - 1 do
    if s[i] = c then k := k + 1;
  countchar := k
end;

begin
  for i := 0 to n - 1 do a[i] := chr(ord('a') + i);
  copyline(a, b, n);
  reverse(b, n);
  matches := 0;
  for i := 0 to n - 1 do
    if a[i] = b[i] then matches := matches + 1;
  firstdiff := -1;
  i := 0;
  while (firstdiff < 0) and (i < n) do begin
    if a[i] <> b[i] then firstdiff := i;
    i := i + 1
  end;
  writeln(matches);
  writeln(firstdiff);
  writeln(countchar(b, n, 'a'));
  writeln(ord(b[0]) - ord('a'))
end.
"""

#: a..z reversed shares no positions with itself (even length), differs at 0,
#: contains one 'a', and starts with 'z' (25 letters after 'a')
_STRINGS_EXPECTED = [0, 0, 1, 25]


# ---------------------------------------------------------------------------
# sort + search
# ---------------------------------------------------------------------------

SORT = """
program sorter;
const n = 64;
var a: array [0..63] of integer;
    i, j, key, seed, found, checksum: integer;

function nextrand: integer;
begin
  seed := (seed * 75 + 74) mod 8191;
  nextrand := seed
end;

function bsearch(key: integer): integer;
var lo, hi, mid, at: integer;
begin
  lo := 0; hi := n - 1; at := -1;
  while lo <= hi do begin
    mid := (lo + hi) div 2;
    if a[mid] = key then begin
      at := mid;
      hi := lo - 1
    end else if a[mid] < key then
      lo := mid + 1
    else
      hi := mid - 1
  end;
  bsearch := at
end;

begin
  seed := 11;
  for i := 0 to n - 1 do a[i] := nextrand;
  { insertion sort }
  for i := 1 to n - 1 do begin
    key := a[i];
    j := i - 1;
    while (j >= 0) and (a[j] > key) do begin
      a[j + 1] := a[j];
      j := j - 1
    end;
    a[j + 1] := key
  end;
  checksum := 0;
  for i := 0 to n - 1 do checksum := checksum + a[i] * (i mod 7);
  found := bsearch(a[17]);
  writeln(a[0]);
  writeln(a[63]);
  writeln(checksum);
  writeln(found)
end.
"""


def _sort_expected() -> List[int]:
    seed = 11
    values = []
    for _ in range(64):
        seed = (seed * 75 + 74) % 8191
        values.append(seed)
    values.sort()
    checksum = sum(v * (i % 7) for i, v in enumerate(values))
    key = values[17]
    found = -1
    lo, hi = 0, 63
    while lo <= hi:
        mid = (lo + hi) // 2
        if values[mid] == key:
            found = mid
            hi = lo - 1
        elif values[mid] < key:
            lo = mid + 1
        else:
            hi = mid - 1
    return [values[0], values[63], checksum, found]


# ---------------------------------------------------------------------------
# sieve of Eratosthenes (boolean array)
# ---------------------------------------------------------------------------

SIEVE = """
program sieve;
const n = 500;
var flags: array [0..500] of boolean;
    i, k, count, largest: integer;
begin
  for i := 0 to n do flags[i] := true;
  flags[0] := false;
  flags[1] := false;
  i := 2;
  while i * i <= n do begin
    if flags[i] then begin
      k := i * i;
      while k <= n do begin
        flags[k] := false;
        k := k + i
      end
    end;
    i := i + 1
  end;
  count := 0;
  largest := 0;
  for i := 2 to n do
    if flags[i] then begin
      count := count + 1;
      largest := i
    end;
  writeln(count);
  writeln(largest)
end.
"""


def _sieve_expected() -> List[int]:
    n = 500
    flags = [True] * (n + 1)
    flags[0] = flags[1] = False
    i = 2
    while i * i <= n:
        if flags[i]:
            for k in range(i * i, n + 1, i):
                flags[k] = False
        i += 1
    primes = [i for i in range(2, n + 1) if flags[i]]
    return [len(primes), primes[-1]]


# ---------------------------------------------------------------------------
# hashsym: an open-addressing symbol table over short char keys
# ---------------------------------------------------------------------------

HASHSYM = """
program hashsym;
const tsize = 128;
      nsyms = 60;
var keys: packed array [0..511] of char;  { 4 chars per symbol slot }
    table: array [0..127] of integer;     { -1 empty, else symbol id }
    values: array [0..127] of integer;
    i, inserted, probes, hits, seed: integer;

function nextrand: integer;
begin
  seed := (seed * 109 + 89) mod 1024;
  nextrand := seed
end;

function hash(sym: integer): integer;
var h, k: integer;
begin
  h := 0;
  for k := 0 to 3 do
    h := (h * 31 + ord(keys[sym * 4 + k])) mod tsize;
  hash := h
end;

function samekey(a, b: integer): boolean;
var k: integer;
    same: boolean;
begin
  same := true;
  for k := 0 to 3 do
    if keys[a * 4 + k] <> keys[b * 4 + k] then same := false;
  samekey := same
end;

function lookup(sym: integer): integer;
var h, at: integer;
    stop: boolean;
begin
  h := hash(sym);
  at := -1;
  stop := false;
  while not stop do begin
    probes := probes + 1;
    if table[h] = -1 then
      stop := true
    else if samekey(table[h], sym) then begin
      at := h;
      stop := true
    end else
      h := (h + 1) mod tsize
  end;
  lookup := at
end;

procedure insert(sym: integer);
var h: integer;
begin
  h := lookup(sym);
  if h = -1 then begin
    h := hash(sym);
    while table[h] <> -1 do h := (h + 1) mod tsize;
    table[h] := sym;
    values[h] := sym * 3;
    inserted := inserted + 1
  end
end;

begin
  seed := 5;
  probes := 0;
  inserted := 0;
  hits := 0;
  for i := 0 to nsyms - 1 do begin
    keys[i * 4 + 0] := chr(ord('a') + nextrand mod 26);
    keys[i * 4 + 1] := chr(ord('a') + nextrand mod 26);
    keys[i * 4 + 2] := chr(ord('a') + nextrand mod 13);
    keys[i * 4 + 3] := chr(ord('a') + nextrand mod 7)
  end;
  for i := 0 to tsize - 1 do table[i] := -1;
  for i := 0 to nsyms - 1 do insert(i);
  for i := 0 to nsyms - 1 do
    if lookup(i) >= 0 then hits := hits + 1;
  writeln(inserted);
  writeln(hits);
  writeln(probes)
end.
"""


def _hashsym_expected() -> List[int]:
    seed = 5

    def nextrand() -> int:
        nonlocal seed
        seed = (seed * 109 + 89) % 1024
        return seed

    tsize, nsyms = 128, 60
    keys: List[str] = []
    for _ in range(nsyms):
        a = chr(ord("a") + nextrand() % 26)
        b = chr(ord("a") + nextrand() % 26)
        c = chr(ord("a") + nextrand() % 13)
        d = chr(ord("a") + nextrand() % 7)
        keys.append(a + b + c + d)
    table: List[int] = [-1] * tsize
    probes = 0
    inserted = 0

    def hash_of(sym: int) -> int:
        h = 0
        for ch in keys[sym]:
            h = (h * 31 + ord(ch)) % tsize
        return h

    def lookup(sym: int) -> int:
        nonlocal probes
        h = hash_of(sym)
        while True:
            probes += 1
            if table[h] == -1:
                return -1
            if keys[table[h]] == keys[sym]:
                return h
            h = (h + 1) % tsize

    def insert(sym: int) -> None:
        nonlocal inserted
        if lookup(sym) == -1:
            h = hash_of(sym)
            while table[h] != -1:
                h = (h + 1) % tsize
            table[h] = sym
            inserted += 1

    for i in range(nsyms):
        insert(i)
    hits = sum(1 for i in range(nsyms) if lookup(i) >= 0)
    return [inserted, hits, probes]


# ---------------------------------------------------------------------------
# wordcount: lines/words/chars over a synthesized text buffer
# ---------------------------------------------------------------------------

WORDCOUNT = """
program wordcount;
const buflen = 200;
type buffer = array [0..255] of char;
var buf: buffer;
    i, lines, words, chars, seed: integer;
    inword: boolean;

function nextrand: integer;
begin
  seed := (seed * 109 + 89) mod 1024;
  nextrand := seed
end;

begin
  seed := 3;
  for i := 0 to buflen - 1 do begin
    chars := nextrand mod 10;
    if chars < 6 then
      buf[i] := chr(ord('a') + chars)
    else if chars < 9 then
      buf[i] := ' '
    else
      buf[i] := chr(10)
  end;
  lines := 0; words := 0; chars := 0;
  inword := false;
  for i := 0 to buflen - 1 do begin
    chars := chars + 1;
    if buf[i] = chr(10) then begin
      lines := lines + 1;
      inword := false
    end else if buf[i] = ' ' then
      inword := false
    else begin
      if not inword then words := words + 1;
      inword := true
    end
  end;
  writeln(lines);
  writeln(words);
  writeln(chars)
end.
"""


def _wordcount_expected() -> List[int]:
    seed = 3

    def nextrand() -> int:
        nonlocal seed
        seed = (seed * 109 + 89) % 1024
        return seed

    buf = []
    for _ in range(200):
        c = nextrand() % 10
        if c < 6:
            buf.append(chr(ord("a") + c))
        elif c < 9:
            buf.append(" ")
        else:
            buf.append("\n")
    lines = words = chars = 0
    inword = False
    for ch in buf:
        chars += 1
        if ch == "\n":
            lines += 1
            inword = False
        elif ch == " ":
            inword = False
        else:
            if not inword:
                words += 1
            inword = True
    return [lines, words, chars]


# ---------------------------------------------------------------------------
# logic: boolean-flag evaluation (design-aid flavored: rule checking
# stores verdicts, exercising the paper's stored-boolean code paths)
# ---------------------------------------------------------------------------

LOGIC = """
program logic;
const n = 48;
var width, spacing, layer, seed, i, violations, clean, waived: integer;
    toowide, toonarrow, badspace, samelayer, violation, ok, waivable: boolean;

function nextrand: integer;
begin
  seed := (seed * 109 + 89) mod 1024;
  nextrand := seed
end;

begin
  seed := 13;
  violations := 0;
  clean := 0;
  waived := 0;
  for i := 1 to n do begin
    width := nextrand mod 40;
    spacing := nextrand mod 12;
    layer := nextrand mod 4;
    toowide := width > 30;
    toonarrow := width < 4;
    badspace := (spacing < 3) and (layer <> 0);
    samelayer := (layer = 1) or (layer = 2);
    violation := toowide or toonarrow or badspace;
    ok := not violation and (width >= 8);
    waivable := violation and samelayer and (spacing >= 2);
    if violation then violations := violations + 1;
    if ok then clean := clean + 1;
    if waivable then waived := waived + 1
  end;
  writeln(violations);
  writeln(clean);
  writeln(waived)
end.
"""


def _logic_expected() -> List[int]:
    seed = 13

    def nextrand() -> int:
        nonlocal seed
        seed = (seed * 109 + 89) % 1024
        return seed

    violations = clean = waived = 0
    for _ in range(48):
        width = nextrand() % 40
        spacing = nextrand() % 12
        layer = nextrand() % 4
        toowide = width > 30
        toonarrow = width < 4
        badspace = spacing < 3 and layer != 0
        samelayer = layer in (1, 2)
        violation = toowide or toonarrow or badspace
        ok = not violation and width >= 8
        waivable = violation and samelayer and spacing >= 2
        if violation:
            violations += 1
        if ok:
            clean += 1
        if waivable:
            waived += 1
    return [violations, clean, waived]


# ---------------------------------------------------------------------------
# calc: a recursive-descent expression evaluator (the most compiler-like
# member of the corpus: a parser walking a character buffer)
# ---------------------------------------------------------------------------

CALC = """
program calc;
const buflen = 40;
type buffer = packed array [0..63] of char;
var buf: buffer;
    pos, results, total: integer;

procedure fill;
begin
  { three expressions separated by ';':  }
  {   2+3*4;  (2+3)*(4+5);  9-2-3+8*(1+1)  }
  buf[0] := '2'; buf[1] := '+'; buf[2] := '3'; buf[3] := '*'; buf[4] := '4';
  buf[5] := ';';
  buf[6] := '('; buf[7] := '2'; buf[8] := '+'; buf[9] := '3'; buf[10] := ')';
  buf[11] := '*'; buf[12] := '('; buf[13] := '4'; buf[14] := '+'; buf[15] := '5';
  buf[16] := ')'; buf[17] := ';';
  buf[18] := '9'; buf[19] := '-'; buf[20] := '2'; buf[21] := '-'; buf[22] := '3';
  buf[23] := '+'; buf[24] := '8'; buf[25] := '*'; buf[26] := '('; buf[27] := '1';
  buf[28] := '+'; buf[29] := '1'; buf[30] := ')'; buf[31] := ';';
  buf[32] := '7'; buf[33] := '*'; buf[34] := '7'; buf[35] := '-'; buf[36] := '8';
  buf[37] := '*'; buf[38] := '6'; buf[39] := ';'
end;

function peekch: char;
begin
  peekch := buf[pos]
end;

function parsefactor: integer;
var value: integer;
begin
  if peekch = '(' then begin
    pos := pos + 1;
    value := parseexpr;
    pos := pos + 1  { the ')' }
  end else begin
    value := ord(peekch) - ord('0');
    pos := pos + 1
  end;
  parsefactor := value
end;

function parseterm: integer;
var value: integer;
begin
  value := parsefactor;
  while peekch = '*' do begin
    pos := pos + 1;
    value := value * parsefactor
  end;
  parseterm := value
end;

function parseexpr: integer;
var value, rhs: integer;
    op: char;
begin
  value := parseterm;
  while (peekch = '+') or (peekch = '-') do begin
    op := peekch;
    pos := pos + 1;
    rhs := parseterm;
    if op = '+' then value := value + rhs else value := value - rhs
  end;
  parseexpr := value
end;

begin
  fill;
  pos := 0;
  results := 0;
  total := 0;
  while pos < buflen do begin
    total := total + parseexpr;
    results := results + 1;
    pos := pos + 1  { the ';' }
  end;
  writeln(results);
  writeln(total)
end.
"""

#: 2+3*4=14, (2+3)*(4+5)=45, 9-2-3+8*2=20, 7*7-8*6=1 -> 4 results, total 80
_CALC_EXPECTED = [4, 14 + 45 + 20 + 1]


# ---------------------------------------------------------------------------
# the corpus registry
# ---------------------------------------------------------------------------

#: name -> mini-Pascal source
CORPUS: Dict[str, str] = {
    "scanner": SCANNER,
    "vlsi_rects": VLSI_RECTS,
    "strings": STRINGS,
    "sort": SORT,
    "sieve": SIEVE,
    "hashsym": HASHSYM,
    "wordcount": WORDCOUNT,
    "logic": LOGIC,
    "calc": CALC,
    "fib_recursive": FIB_RECURSIVE,
    "fib_iterative": FIB_ITERATIVE,
    "puzzle0_quick": puzzle_source(0, limit=25),
    "puzzle1_quick": puzzle_source(1, limit=25),
}

#: name -> expected integer outputs (oracles)
EXPECTED_OUTPUT: Dict[str, List[int]] = {
    "scanner": _scanner_expected(),
    "vlsi_rects": _vlsi_expected(),
    "strings": _STRINGS_EXPECTED,
    "sort": _sort_expected(),
    "sieve": _sieve_expected(),
    "hashsym": _hashsym_expected(),
    "wordcount": _wordcount_expected(),
    "logic": _logic_expected(),
    "calc": list(_CALC_EXPECTED),
    "fib_recursive": [fib(16)],
    "fib_iterative": [fib(40)],
}

#: the text-handling subset used for the reference-pattern tables
TEXT_HEAVY = ("scanner", "strings", "hashsym", "wordcount", "calc")

#: programs cheap enough to execute in simulator-bound test loops
QUICK_PROGRAMS = (
    "scanner",
    "vlsi_rects",
    "strings",
    "sort",
    "sieve",
    "hashsym",
    "wordcount",
    "logic",
    "calc",
    "fib_recursive",
    "fib_iterative",
)
