"""The Puzzle benchmark (Baskett) -- Table 11's other two programs.

Reference [2] of the paper: "Baskett, F. Puzzle: an informal compute
bound benchmark.  Widely circulated and run."  A 5x5x5 cube is packed
with 13+3+1+1 pieces by exhaustive search over an 8x8x8 coordinate
space; the canonical success count is ``kount = 2005``.

Two implementations, as in the paper ("two implementations of the
Puzzle benchmark"):

- **Puzzle 0** -- the subscripted version: the piece shapes live in a
  two-dimensional array ``p[piece][cell]``;
- **Puzzle 1** -- the pointer-style version: the shapes are flattened
  into one vector indexed by a computed base, the way the C pointer
  version strides through memory.

``puzzle_source(variant, limit)`` emits mini-Pascal text.  ``limit``
bounds the search (``trial`` succeeds once ``kount`` reaches it) so
simulator-bound tests stay fast; ``limit = 0`` runs the full search.
"""

from __future__ import annotations

_COMMON_DECLS = """
const d = 8;
      size = 511;
      typemax = 12;
      classmax = 3;
      limit = {limit};
var puzzle: array [0..511] of boolean;
    piececount: array [0..3] of integer;
    pclass: array [0..12] of integer;
    piecemax: array [0..12] of integer;
    m, n, kount: integer;
    ok: boolean;
"""

# piece definitions: (imax, jmax, kmax, class)
_PIECES = [
    (3, 1, 0, 0),
    (1, 0, 3, 0),
    (0, 3, 1, 0),
    (1, 3, 0, 0),
    (3, 0, 1, 0),
    (0, 1, 3, 0),
    (2, 0, 0, 1),
    (0, 2, 0, 1),
    (0, 0, 2, 1),
    (1, 1, 0, 2),
    (1, 0, 1, 2),
    (0, 1, 1, 2),
    (1, 1, 1, 3),
]

_PIECE_COUNTS = [13, 3, 1, 1]


def _init_body(indexer) -> str:
    """The puzzle initialization, shared by both variants.

    ``indexer(piece, cell_expr)`` renders an assignment target for the
    shape array.
    """
    lines = []
    lines.append("  for m := 0 to size do puzzle[m] := true;")
    lines.append("  for i := 1 to 5 do")
    lines.append("    for j := 1 to 5 do")
    lines.append("      for k := 1 to 5 do")
    lines.append("        puzzle[i + d * (j + d * k)] := false;")
    lines.append("  for i := 0 to typemax do")
    lines.append("    for m := 0 to size do")
    lines.append(f"      {indexer('i', 'm')} := false;")
    for index, (imax, jmax, kmax, pclass) in enumerate(_PIECES):
        lines.append(f"  for i := 0 to {imax} do")
        lines.append(f"    for j := 0 to {jmax} do")
        lines.append(f"      for k := 0 to {kmax} do")
        lines.append(
            f"        {indexer(str(index), 'i + d * (j + d * k)')} := true;"
        )
        lines.append(f"  pclass[{index}] := {pclass};")
        lines.append(
            f"  piecemax[{index}] := {imax} + d * {jmax} + d * d * {kmax};"
        )
    for pclass, count in enumerate(_PIECE_COUNTS):
        lines.append(f"  piececount[{pclass}] := {count};")
    return "\n".join(lines)


def _subscript_source(limit: int) -> str:
    decls = _COMMON_DECLS.format(limit=limit)
    init = _init_body(lambda piece, cell: f"p[{piece}][{cell}]")
    return f"""
program puzzle0;
{decls}
    p: array [0..12] of array [0..511] of boolean;

function fit(i, j: integer): boolean;
var k: integer;
    good: boolean;
begin
  good := true;
  k := 0;
  while good and (k <= piecemax[i]) do begin
    if p[i][k] then
      if puzzle[j + k] then good := false;
    k := k + 1
  end;
  fit := good
end;

function place(i, j: integer): integer;
var k, at: integer;
begin
  for k := 0 to piecemax[i] do
    if p[i][k] then puzzle[j + k] := true;
  piececount[pclass[i]] := piececount[pclass[i]] - 1;
  at := 0;
  k := j;
  while (at = 0) and (k <= size) do begin
    if not puzzle[k] then at := k;
    k := k + 1
  end;
  place := at
end;

procedure unplace(i, j: integer);
var k: integer;
begin
  for k := 0 to piecemax[i] do
    if p[i][k] then puzzle[j + k] := false;
  piececount[pclass[i]] := piececount[pclass[i]] + 1
end;

function trial(j: integer): boolean;
var i, k: integer;
    done: boolean;
begin
  done := false;
  if limit > 0 then
    if kount >= limit then done := true;
  i := 0;
  while (not done) and (i <= typemax) do begin
    if piececount[pclass[i]] <> 0 then
      if fit(i, j) then begin
        k := place(i, j);
        if trial(k) or (k = 0) then begin
          kount := kount + 1;
          done := true
        end else
          unplace(i, j)
      end;
    i := i + 1
  end;
  if not done then kount := kount + 1;
  trial := done
end;

procedure init;
var i, j, k: integer;
begin
{init}
end;

begin
  init;
  kount := 0;
  m := 1 + d * (1 + d);
  ok := fit(0, m);
  if ok then begin
    n := place(0, m);
    if trial(n) then
      writeln(kount)
    else
      writeln(-1)
  end else
    writeln(-2)
end.
"""


def _pointer_source(limit: int) -> str:
    decls = _COMMON_DECLS.format(limit=limit)
    init = _init_body(lambda piece, cell: f"pflat[({piece}) * 512 + ({cell})]")
    return f"""
program puzzle1;
{decls}
    pflat: array [0..6655] of boolean;

function fit(i, j: integer): boolean;
var k, pb: integer;
    good: boolean;
begin
  good := true;
  pb := i * 512;
  k := 0;
  while good and (k <= piecemax[i]) do begin
    if pflat[pb + k] then
      if puzzle[j + k] then good := false;
    k := k + 1
  end;
  fit := good
end;

function place(i, j: integer): integer;
var k, at, pb: integer;
begin
  pb := i * 512;
  for k := 0 to piecemax[i] do
    if pflat[pb + k] then puzzle[j + k] := true;
  piececount[pclass[i]] := piececount[pclass[i]] - 1;
  at := 0;
  k := j;
  while (at = 0) and (k <= size) do begin
    if not puzzle[k] then at := k;
    k := k + 1
  end;
  place := at
end;

procedure unplace(i, j: integer);
var k, pb: integer;
begin
  pb := i * 512;
  for k := 0 to piecemax[i] do
    if pflat[pb + k] then puzzle[j + k] := false;
  piececount[pclass[i]] := piececount[pclass[i]] + 1
end;

function trial(j: integer): boolean;
var i, k: integer;
    done: boolean;
begin
  done := false;
  if limit > 0 then
    if kount >= limit then done := true;
  i := 0;
  while (not done) and (i <= typemax) do begin
    if piececount[pclass[i]] <> 0 then
      if fit(i, j) then begin
        k := place(i, j);
        if trial(k) or (k = 0) then begin
          kount := kount + 1;
          done := true
        end else
          unplace(i, j)
      end;
    i := i + 1
  end;
  if not done then kount := kount + 1;
  trial := done
end;

procedure init;
var i, j, k: integer;
begin
{init}
end;

begin
  init;
  kount := 0;
  m := 1 + d * (1 + d);
  ok := fit(0, m);
  if ok then begin
    n := place(0, m);
    if trial(n) then
      writeln(kount)
    else
      writeln(-1)
  end else
    writeln(-2)
end.
"""


def puzzle_source(variant: int = 0, limit: int = 0) -> str:
    """Mini-Pascal source for Puzzle ``variant`` (0 subscript, 1 pointer).

    ``limit > 0`` makes ``trial`` succeed once ``kount`` reaches the
    limit, bounding the search for simulator-bound runs.
    """
    if variant == 0:
        return _subscript_source(limit)
    if variant == 1:
        return _pointer_source(limit)
    raise ValueError(f"no puzzle variant {variant}")


PUZZLE0 = puzzle_source(0)
PUZZLE1 = puzzle_source(1)
