"""The MiniJava workload corpus.

Object-oriented companions to the mini-Pascal corpus, exercising what
that corpus cannot: heap allocation, vtable dispatch, ``this``
threading through recursive methods, and pointer-linked structures.
Every program has a pure-Python oracle computing its expected output,
so divergence anywhere in the front end, lowering, reorganizer, or
engines is caught against ground truth.

Kept separate from :data:`repro.workloads.CORPUS` because the source-
level analyses (``repro.analysis.*``) parse that registry as
mini-Pascal.
"""

from __future__ import annotations

from typing import Dict, List

# ---------------------------------------------------------------------------
# mj_list: a Cons/Nil linked list -- dispatch replaces the nil check
# ---------------------------------------------------------------------------

MJ_LIST = """
class MJListMain {
    public static void main(String[] a) {
        List l;
        int i;
        l = new List();
        i = 1;
        while (i < 13) {
            l = l.prepend(i * i - i);
            i = i + 1;
        }
        System.out.println(l.length());
        System.out.println(l.sum());
        System.out.println(l.max(0 - 100));
        l = l.reverse(new List());
        System.out.println(l.head());
        System.out.println(l.sum());
    }
}
class List {
    public boolean isNil() { return true; }
    public int head() { return 0 - 1; }
    public List tail() { return this; }
    public int length() { return 0; }
    public int sum() { return 0; }
    public int max(int best) { return best; }
    public List reverse(List acc) { return acc; }
    public List prepend(int v) {
        Cons c;
        List r;
        c = new Cons();
        r = c.init(v, this);
        return r;
    }
}
class Cons extends List {
    int value;
    List rest;
    public List init(int v, List r) {
        value = v;
        rest = r;
        return this;
    }
    public boolean isNil() { return false; }
    public int head() { return value; }
    public List tail() { return rest; }
    public int length() { return 1 + rest.length(); }
    public int sum() { return value + rest.sum(); }
    public int max(int best) {
        int b;
        if (value > best) b = value; else b = best;
        return rest.max(b);
    }
    public List reverse(List acc) { return rest.reverse(acc.prepend(value)); }
}
"""


def _mj_list_expected() -> List[int]:
    values = [i * i - i for i in range(1, 13)]
    # prepend order: the list holds values reversed; reverse restores it
    return [len(values), sum(values), max(values), values[0], sum(values)]


# ---------------------------------------------------------------------------
# mj_tree: a binary search tree -- Node/leaf dispatch, this-threaded insert
# ---------------------------------------------------------------------------

MJ_TREE = """
class MJTreeMain {
    public static void main(String[] a) {
        Tree t;
        int i;
        int seed;
        t = new Tree();
        seed = 7;
        i = 0;
        while (i < 20) {
            t = t.insert(seed);
            seed = (seed * 13 + 5) % 97;
            i = i + 1;
        }
        System.out.println(t.size());
        System.out.println(t.height());
        System.out.println(t.sum());
        if (t.contains(7)) System.out.println(1); else System.out.println(0);
        if (t.contains(50)) System.out.println(1); else System.out.println(0);
    }
}
class Tree {
    public boolean isLeaf() { return true; }
    public int size() { return 0; }
    public int height() { return 0; }
    public int sum() { return 0; }
    public boolean contains(int v) { return false; }
    public Tree insert(int v) {
        Node n;
        Tree r;
        n = new Node();
        r = n.init(v, new Tree(), new Tree());
        return r;
    }
}
class Node extends Tree {
    int value;
    Tree left;
    Tree right;
    public Tree init(int v, Tree l, Tree r) {
        value = v;
        left = l;
        right = r;
        return this;
    }
    public boolean isLeaf() { return false; }
    public Tree insert(int v) {
        if (v < value) {
            left = left.insert(v);
        } else {
            if (value < v) right = right.insert(v);
        }
        return this;
    }
    public int size() { return 1 + left.size() + right.size(); }
    public int height() {
        int lh;
        int rh;
        int h;
        lh = left.height();
        rh = right.height();
        if (lh < rh) h = rh + 1; else h = lh + 1;
        return h;
    }
    public int sum() { return value + left.sum() + right.sum(); }
    public boolean contains(int v) {
        boolean r;
        if (v == value) {
            r = true;
        } else {
            if (v < value) r = left.contains(v); else r = right.contains(v);
        }
        return r;
    }
}
"""


def _mj_tree_expected() -> List[int]:
    class _Node:
        def __init__(self, value: int):
            self.value = value
            self.left = None
            self.right = None

    def insert(node, v):
        if node is None:
            return _Node(v)
        if v < node.value:
            node.left = insert(node.left, v)
        elif node.value < v:
            node.right = insert(node.right, v)
        return node

    def size(node):
        return 0 if node is None else 1 + size(node.left) + size(node.right)

    def height(node):
        return 0 if node is None else 1 + max(height(node.left), height(node.right))

    def total(node):
        return 0 if node is None else node.value + total(node.left) + total(node.right)

    def contains(node, v):
        if node is None:
            return False
        if v == node.value:
            return True
        return contains(node.left, v) if v < node.value else contains(node.right, v)

    root = None
    seed = 7
    for _ in range(20):
        root = insert(root, seed)
        seed = (seed * 13 + 5) % 97
    return [
        size(root),
        height(root),
        total(root),
        1 if contains(root, 7) else 0,
        1 if contains(root, 50) else 0,
    ]


# ---------------------------------------------------------------------------
# mj_shapes: dispatch-heavy -- three overriding shape classes behind one
# interface, iterated through a polymorphic list thousands of slots deep
# ---------------------------------------------------------------------------

MJ_SHAPES = """
class MJShapesMain {
    public static void main(String[] a) {
        ShapeList l;
        Shape s;
        int i;
        int total;
        int[] sizes;
        sizes = new int[6];
        i = 0;
        while (i < 6) {
            sizes[i] = i + 2;
            i = i + 1;
        }
        l = new ShapeList();
        s = new Shape();
        i = 0;
        while (i < 6) {
            if (i % 3 == 0) {
                s = new Square().setSize(sizes[i]);
            } else {
                if (i % 3 == 1) s = new Rect().setSize(sizes[i]);
                else s = new Tri().setSize(sizes[i]);
            }
            l = l.push(s);
            i = i + 1;
        }
        System.out.println(l.count());
        System.out.println(l.totalArea());
        System.out.println(l.totalPerimeter());
        total = 0;
        i = 0;
        while (i < 50) {
            total = total + l.areaAt(i % 6);
            i = i + 1;
        }
        System.out.println(total);
    }
}
class Shape {
    int size;
    public Shape setSize(int n) {
        size = n;
        return this;
    }
    public int area() { return 0; }
    public int perimeter() { return 0; }
}
class Square extends Shape {
    public int area() { return size * size; }
    public int perimeter() { return 4 * size; }
}
class Rect extends Shape {
    public int area() { return size * (size + 3); }
    public int perimeter() { return 2 * (size + size + 3); }
}
class Tri extends Shape {
    public int area() { return size * (size + 1) / 2; }
    public int perimeter() { return 3 * size; }
}
class ShapeList {
    public int count() { return 0; }
    public int totalArea() { return 0; }
    public int totalPerimeter() { return 0; }
    public int areaAt(int i) { return 0; }
    public ShapeList push(Shape s) {
        ShapeCell c;
        ShapeList r;
        c = new ShapeCell();
        r = c.init(s, this);
        return r;
    }
}
class ShapeCell extends ShapeList {
    Shape shape;
    ShapeList rest;
    public ShapeList init(Shape s, ShapeList r) {
        shape = s;
        rest = r;
        return this;
    }
    public int count() { return 1 + rest.count(); }
    public int totalArea() { return shape.area() + rest.totalArea(); }
    public int totalPerimeter() { return shape.perimeter() + rest.totalPerimeter(); }
    public int areaAt(int i) {
        int r;
        if (i == 0) r = shape.area(); else r = rest.areaAt(i - 1);
        return r;
    }
}
"""


def _mj_shapes_expected() -> List[int]:
    def area(kind: int, n: int) -> int:
        if kind == 0:
            return n * n
        if kind == 1:
            return n * (n + 3)
        return n * (n + 1) // 2

    def perimeter(kind: int, n: int) -> int:
        if kind == 0:
            return 4 * n
        if kind == 1:
            return 2 * (n + n + 3)
        return 3 * n

    sizes = [i + 2 for i in range(6)]
    shapes = [(i % 3, sizes[i]) for i in range(6)]
    stack = list(reversed(shapes))  # push prepends
    total = sum(area(k, n) for k, n in stack)
    perim = sum(perimeter(k, n) for k, n in stack)
    probe = sum(area(*stack[i % 6]) for i in range(50))
    return [len(stack), total, perim, probe]


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

#: name -> MiniJava source
MINIJAVA_CORPUS: Dict[str, str] = {
    "mj_list": MJ_LIST,
    "mj_tree": MJ_TREE,
    "mj_shapes": MJ_SHAPES,
}

#: name -> expected integer outputs (pure-Python oracles)
MINIJAVA_EXPECTED: Dict[str, List[int]] = {
    "mj_list": _mj_list_expected(),
    "mj_tree": _mj_tree_expected(),
    "mj_shapes": _mj_shapes_expected(),
}

#: iteration order for batch tooling (farm, prof, baselines)
MINIJAVA_PROGRAMS = tuple(MINIJAVA_CORPUS)
