"""The workload corpus: mini-Pascal programs matching the paper's data set."""

from .corpus import CORPUS, EXPECTED_OUTPUT, QUICK_PROGRAMS, TEXT_HEAVY
from .fib import FIB_ITERATIVE, FIB_RECURSIVE, fib
from .puzzle import PUZZLE0, PUZZLE1, puzzle_source

__all__ = [
    "CORPUS",
    "EXPECTED_OUTPUT",
    "FIB_ITERATIVE",
    "FIB_RECURSIVE",
    "PUZZLE0",
    "PUZZLE1",
    "QUICK_PROGRAMS",
    "TEXT_HEAVY",
    "fib",
    "puzzle_source",
]
