"""The workload corpus: mini-Pascal programs matching the paper's data
set, plus the MiniJava companions exercising the second front end."""

from .corpus import CORPUS, EXPECTED_OUTPUT, QUICK_PROGRAMS, TEXT_HEAVY
from .fib import FIB_ITERATIVE, FIB_RECURSIVE, fib
from .minijava import MINIJAVA_CORPUS, MINIJAVA_EXPECTED, MINIJAVA_PROGRAMS
from .puzzle import PUZZLE0, PUZZLE1, puzzle_source

__all__ = [
    "CORPUS",
    "EXPECTED_OUTPUT",
    "FIB_ITERATIVE",
    "FIB_RECURSIVE",
    "MINIJAVA_CORPUS",
    "MINIJAVA_EXPECTED",
    "MINIJAVA_PROGRAMS",
    "PUZZLE0",
    "PUZZLE1",
    "QUICK_PROGRAMS",
    "TEXT_HEAVY",
    "fib",
    "puzzle_source",
]
