"""Fibonacci -- the first program of Table 11.

Both the recursive version (the classic benchmark form) and an
iterative one, each printing ``fib(N)``.
"""

FIB_RECURSIVE = """
program fibonacci;
const n = 16;
var result: integer;

function fib(k: integer): integer;
begin
  if k <= 1 then
    fib := k
  else
    fib := fib(k - 1) + fib(k - 2)
end;

begin
  result := fib(n);
  writeln(result)
end.
"""

FIB_ITERATIVE = """
program fibiter;
const n = 40;
var a, b, t, i: integer;
begin
  a := 0;
  b := 1;
  for i := 2 to n do begin
    t := a + b;
    a := b;
    b := t
  end;
  writeln(b)
end.
"""


def fib(n: int) -> int:
    """Reference implementation for test oracles."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


#: expected output of FIB_RECURSIVE (fib(16))
FIB_RECURSIVE_EXPECTED = fib(16)
#: expected output of FIB_ITERATIVE (fib(40))
FIB_ITERATIVE_EXPECTED = fib(40)
