"""Instruction *pieces* -- the unit of work in the MIPS instruction set.

The paper's machine allocates resources (ALU, register ports, the memory
interface) to *pieces*; a 32-bit instruction word holds either one full
piece or a packed pair of one short memory piece and one short ALU piece
(section 3.3: "An instruction can consist of a load or store piece and an
ALU piece; the combined instruction can behave much like an auto
increment or decrement addressing mode").

The compiler's code generator emits a stream of pieces; the postpass
reorganizer (:mod:`repro.reorg`) schedules them and packs compatible
pieces into :class:`repro.isa.words.InstructionWord` objects.

Every piece reports the registers it reads and writes -- the dependence
information the reorganizer's DAG construction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Union

from .operations import AluOp, Comparison
from .registers import Reg, SpecialReg


@dataclass(frozen=True)
class Imm:
    """A short literal operand occupying a register slot (4 bits, 0-15).

    The paper, section 2.2: "every operation can optionally contain a
    four-bit constant in the range 0-15 in place of a register field."
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 15:
            raise ValueError(f"short immediate out of range 0..15: {self.value}")

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]

#: A branch/jump target: a symbolic label before assembly, a word address after.
Target = Union[str, int]


def operand_reads(operand: Operand) -> FrozenSet[Reg]:
    """Registers read by an operand (empty for immediates)."""
    if isinstance(operand, Reg):
        return frozenset({operand})
    return frozenset()


class Piece:
    """Base class for all instruction pieces."""

    #: pieces that reference data memory
    is_load = False
    is_store = False
    #: pieces that change control flow
    is_flow = False
    #: number of delay slots that follow (flow pieces only)
    delay_slots = 0
    #: requires supervisor privilege
    privileged = False

    def reads(self) -> FrozenSet[Reg]:
        """General registers this piece reads."""
        return frozenset()

    def writes(self) -> FrozenSet[Reg]:
        """General registers this piece writes."""
        return frozenset()

    def reads_special(self) -> FrozenSet[SpecialReg]:
        """Special registers this piece reads."""
        return frozenset()

    def writes_special(self) -> FrozenSet[SpecialReg]:
        """Special registers this piece writes."""
        return frozenset()

    @property
    def is_memory(self) -> bool:
        """True for pieces that use the data-memory interface."""
        return self.is_load or self.is_store


@dataclass(frozen=True)
class Noop(Piece):
    """An explicit no-operation word.

    The machine has no interlock hardware; when the reorganizer cannot
    fill a delay, it inserts one of these (section 4.2.1).
    """

    def __repr__(self) -> str:
        return "nop"


@dataclass(frozen=True)
class Alu(Piece):
    """A three-operand ALU piece: ``dst = s1 OP s2``.

    ``MOV`` and ``NOT`` ignore ``s2``.  ``IC`` (insert byte) additionally
    reads the ``LO`` byte-selector special register.  ``RSUB`` computes
    ``s2 - s1`` so that a short literal can act as a negated left operand.
    """

    op: AluOp
    s1: Operand
    s2: Operand
    dst: Reg

    def reads(self) -> FrozenSet[Reg]:
        if self.op in (AluOp.MOV, AluOp.NOT):
            return operand_reads(self.s1)
        regs = operand_reads(self.s1) | operand_reads(self.s2)
        if self.op is AluOp.IC:
            # insert byte rewrites part of dst: the old value is an input
            regs |= {self.dst}
        return regs

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    def reads_special(self) -> FrozenSet[SpecialReg]:
        if self.op is AluOp.IC:
            return frozenset({SpecialReg.LO})
        return frozenset()

    def __repr__(self) -> str:
        if self.op in (AluOp.MOV, AluOp.NOT):
            return f"{self.op.value} {self.s1!r},{self.dst!r}"
        return f"{self.op.value} {self.s1!r},{self.s2!r},{self.dst!r}"


@dataclass(frozen=True)
class MovImm(Piece):
    """Move-immediate: load an 8-bit constant 0-255 into any register.

    Section 2.2: "a move immediate instruction will load an 8-bit
    constant into any register"; together with the 4-bit operand
    constants this covers all but ~5% of constants (Table 1).
    """

    value: int
    dst: Reg

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255:
            raise ValueError(f"movi constant out of range 0..255: {self.value}")

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    def __repr__(self) -> str:
        return f"movi #{self.value},{self.dst!r}"


@dataclass(frozen=True)
class LoadImm(Piece):
    """Long-immediate load: a signed 21-bit constant into a register.

    This is the "long immediate" form of the five load types listed in
    section 2.2.  Constants outside +-2^20 are synthesized by the
    assembler/compiler from ``lim``/``sll``/``or`` sequences.
    """

    value: int
    dst: Reg

    LIMIT = 1 << 20

    def __post_init__(self) -> None:
        if not -self.LIMIT <= self.value < self.LIMIT:
            raise ValueError(f"long immediate out of range: {self.value}")

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    def __repr__(self) -> str:
        return f"lim #{self.value},{self.dst!r}"


@dataclass(frozen=True)
class LoadLabel(Piece):
    """Symbolic long-immediate: the address of a code label into a register.

    This is how the compiler takes the address of a routine entry (the
    MiniJava front end fills vtables with method addresses) before the
    layout is known.  The reorganizer resolves it to a plain
    :class:`LoadImm` once label addresses are assigned; it never
    survives into an encoded program image.
    """

    label: str
    dst: Reg

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    def __repr__(self) -> str:
        return f"lim {self.label},{self.dst!r}"


# --------------------------------------------------------------------------
# addressing modes (the five load/store types of section 2.2)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Absolute:
    """Absolute word address (21-bit field)."""

    addr: int

    def __post_init__(self) -> None:
        if not 0 <= self.addr < (1 << 21):
            raise ValueError(f"absolute address out of range: {self.addr}")

    def reads(self) -> FrozenSet[Reg]:
        return frozenset()

    def __repr__(self) -> str:
        return f"@{self.addr}"


@dataclass(frozen=True)
class Displacement:
    """``disp(base)``: word address ``base + disp`` (signed 17-bit disp)."""

    base: Reg
    disp: int = 0

    LIMIT = 1 << 16

    def __post_init__(self) -> None:
        if not -self.LIMIT <= self.disp < self.LIMIT:
            raise ValueError(f"displacement out of range: {self.disp}")

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.base})

    def __repr__(self) -> str:
        return f"{self.disp}({self.base!r})"


@dataclass(frozen=True)
class BaseIndex:
    """``(base+index)``: word address is the sum of two registers."""

    base: Reg
    index: Reg

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.base, self.index})

    def __repr__(self) -> str:
        return f"({self.base!r}+{self.index!r})"


@dataclass(frozen=True)
class BaseShifted:
    """``(base>>n)``: the base register shifted right by n, 0 < n <= 4.

    Used for accessing packed arrays of 2**n-bit objects: a *byte
    pointer* shifted right by 2 yields the word address holding the byte
    (section 4.1: ``ld (r0>>2),r1``).
    """

    base: Reg
    shift: int

    def __post_init__(self) -> None:
        if not 1 <= self.shift <= 4:
            raise ValueError(f"base shift out of range 1..4: {self.shift}")

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.base})

    def __repr__(self) -> str:
        return f"({self.base!r}>>{self.shift})"


Address = Union[Absolute, Displacement, BaseIndex, BaseShifted]


@dataclass(frozen=True)
class Load(Piece):
    """Load a word from data memory into ``dst``.

    The result is *not* bypassable to the immediately following
    instruction: the machine has no interlocks, so one load delay slot
    must be scheduled by software (section 4.2.1).
    """

    addr: Address
    dst: Reg
    #: analysis tag (e.g. the access kind the compiler emitted this for);
    #: never affects semantics, equality, or encoding
    note: Optional[str] = field(default=None, compare=False, repr=False)
    is_load = True

    def reads(self) -> FrozenSet[Reg]:
        return self.addr.reads()

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    def __repr__(self) -> str:
        return f"ld {self.addr!r},{self.dst!r}"


@dataclass(frozen=True)
class Store(Piece):
    """Store register ``src`` to data memory."""

    addr: Address
    src: Reg
    #: analysis tag, mirroring :class:`Load`; semantically inert
    note: Optional[str] = field(default=None, compare=False, repr=False)
    is_store = True

    def reads(self) -> FrozenSet[Reg]:
        return self.addr.reads() | {self.src}

    def __repr__(self) -> str:
        return f"st {self.src!r},{self.addr!r}"


@dataclass(frozen=True)
class SetCond(Piece):
    """*Set Conditionally*: ``dst = 1 if (s1 cond s2) else 0``.

    Section 2.3.2: "MIPS provides a powerful Set Conditionally
    instruction with the same 16 comparisons found in conditional
    branches" -- the branch-free boolean evaluation primitive behind
    Figure 3 and Tables 5-6.
    """

    cond: Comparison
    s1: Operand
    s2: Operand
    dst: Reg

    def reads(self) -> FrozenSet[Reg]:
        return operand_reads(self.s1) | operand_reads(self.s2)

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    def __repr__(self) -> str:
        return f"s{self.cond.value} {self.s1!r},{self.s2!r},{self.dst!r}"


@dataclass(frozen=True)
class CompareBranch(Piece):
    """Compare-and-branch with one of the 16 comparisons.

    The branch is *delayed* with a single instruction delay: if
    instruction ``i`` branches to ``L`` and the branch is taken, the
    executed sequence is ``i``, ``i+1``, ``L`` (section 4.2.1).
    """

    cond: Comparison
    s1: Operand
    s2: Operand
    target: Target
    is_flow = True
    delay_slots = 1

    def reads(self) -> FrozenSet[Reg]:
        return operand_reads(self.s1) | operand_reads(self.s2)

    def __repr__(self) -> str:
        return f"b{self.cond.value} {self.s1!r},{self.s2!r},{self.target}"


@dataclass(frozen=True)
class Jump(Piece):
    """Direct jump (optionally linking the return address into ``ra``).

    Direct jumps have a one-instruction branch delay.
    """

    target: Target
    link: bool = False
    is_flow = True
    delay_slots = 1

    def writes(self) -> FrozenSet[Reg]:
        from .registers import RA

        return frozenset({RA}) if self.link else frozenset()

    def __repr__(self) -> str:
        return f"{'jal' if self.link else 'jmp'} {self.target}"


@dataclass(frozen=True)
class JumpIndirect(Piece):
    """Indirect jump through a register; branch delay of **two**.

    Section 3.3: "returns to sequences that include indirect jumps ...
    have a branch delay of two."
    """

    reg: Reg
    link: bool = False
    is_flow = True
    delay_slots = 2

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.reg})

    def writes(self) -> FrozenSet[Reg]:
        from .registers import RA

        return frozenset({RA}) if self.link else frozenset()

    def __repr__(self) -> str:
        return f"{'jalr' if self.link else 'jmpr'} {self.reg!r}"


@dataclass(frozen=True)
class Trap(Piece):
    """Software trap with a 12-bit code (4096 monitor calls, section 3.3)."""

    code: int
    is_flow = True
    delay_slots = 0

    def __post_init__(self) -> None:
        if not 0 <= self.code < 4096:
            raise ValueError(f"trap code out of range 0..4095: {self.code}")

    def __repr__(self) -> str:
        return f"trap #{self.code}"


@dataclass(frozen=True)
class Rfs(Piece):
    """Return from surprise (privileged).

    Atomically restores the previous privilege/interrupt/mapping fields
    of the surprise register and reloads the instruction stream with the
    three saved return addresses ``xra0, xra1, xra2`` followed by
    sequential execution -- the paper's "return from interrupt sequence"
    that must "accept alternating references from two different address
    and privilege spaces" (section 3.3).
    """

    is_flow = True
    delay_slots = 0
    privileged = True

    def __repr__(self) -> str:
        return "rfs"


@dataclass(frozen=True)
class ReadSpecial(Piece):
    """Read a special register into a general register.

    Reading the surprise or segmentation registers requires supervisor
    privilege (section 3.2: "The only instructions that require
    supervisor privilege are those that read and write the surprise
    register and the on-chip segmentation registers").
    """

    sreg: SpecialReg
    dst: Reg

    def reads_special(self) -> FrozenSet[SpecialReg]:
        return frozenset({self.sreg})

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    @property
    def privileged(self) -> bool:  # type: ignore[override]
        return self.sreg is not SpecialReg.LO

    def __repr__(self) -> str:
        return f"rdspec {self.sreg.value},{self.dst!r}"


@dataclass(frozen=True)
class WriteSpecial(Piece):
    """Write a general register (or short literal) to a special register.

    Writing ``LO`` (the byte selector used by insert byte) is
    unprivileged: ``mov rl,lo`` in the paper's store-byte sequence.
    """

    sreg: SpecialReg
    src: Operand

    def reads(self) -> FrozenSet[Reg]:
        return operand_reads(self.src)

    def writes_special(self) -> FrozenSet[SpecialReg]:
        return frozenset({self.sreg})

    @property
    def privileged(self) -> bool:  # type: ignore[override]
        return self.sreg is not SpecialReg.LO

    def __repr__(self) -> str:
        return f"wrspec {self.src!r},{self.sreg.value}"


#: pieces eligible for the ALU slot of a packed word (structural check in
#: :func:`repro.isa.words.can_pack` refines this)
ALU_SLOT_TYPES = (Alu, SetCond, MovImm)
#: pieces eligible for the memory slot of a packed word
MEM_SLOT_TYPES = (Load, Store)
