"""32-bit instruction words and the piece-packing rules.

A word holds either a single piece or a *packed* pair (one short memory
piece + one short ALU piece).  The packed encoding (see
:mod:`repro.isa.encoding`) constrains what fits:

- the memory piece must use the ``disp(base)`` addressing mode with a
  displacement in 0..7;
- the ALU piece must use an opcode from the packable subset and its
  second source must be a register (the packed word has no room for a
  second immediate field);
- a ``MovImm`` may ride in the ALU slot (its 8-bit constant fits);
- the two pieces must not write the same register (one write port per
  destination field).

Semantics of a packed word: both pieces read the register file as it was
*before* the word executed, then both write.  This is what lets a packed
``ld 0(sp) / add #1,sp,sp`` behave "much like an auto increment
addressing mode" (paper section 3.3).  For restartability, the paper
requires that a memory-referencing word commits **no** register writes
until the memory reference itself has committed; the simulator's fault
machinery honors this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from .operations import PACKABLE_ALU_OPS, AluOp
from .pieces import (
    Alu,
    Displacement,
    Imm,
    Load,
    MovImm,
    Noop,
    Piece,
    SetCond,
    Store,
)
from .registers import Reg

#: packed memory displacements must fit in the 3-bit short field
PACKED_DISP_LIMIT = 8


class PackingError(ValueError):
    """Raised when two pieces cannot share an instruction word."""


#: shift opcodes: the packed word's wide (immediate-capable) field holds
#: the shift amount and the narrow field the shifted register
_SHIFT_OPS = frozenset({AluOp.SLL, AluOp.SRL, AluOp.SRA})
#: commutative opcodes: an immediate in s2 can swap into s1
_COMMUTATIVE = frozenset({AluOp.ADD, AluOp.AND, AluOp.OR, AluOp.XOR})


def canonical_alu(piece: Alu) -> Alu:
    """The immediate-in-the-wide-field form of an ALU piece.

    The packed encoding's second source field is register-only, so an
    immediate operand must ride in the first field: commutative
    operations swap operands, and a subtract-immediate becomes the
    paper's *reverse subtract* with the operands exchanged
    (``sub r,#k`` == ``rsub #k,r``).  Semantically identical.
    """
    if not isinstance(piece.s2, Imm):
        return piece
    if piece.op in _COMMUTATIVE:
        return Alu(piece.op, piece.s2, piece.s1, piece.dst)
    if piece.op is AluOp.SUB:
        return Alu(AluOp.RSUB, piece.s2, piece.s1, piece.dst)
    if piece.op is AluOp.RSUB:
        return Alu(AluOp.SUB, piece.s2, piece.s1, piece.dst)
    return piece


def packable_form(alu: Piece) -> Optional[Piece]:
    """An equivalent piece eligible for the packed ALU slot, or None."""
    if isinstance(alu, MovImm):
        return alu
    if not isinstance(alu, Alu):
        return None
    if alu.op not in PACKABLE_ALU_OPS:
        return None
    if alu.op in (AluOp.MOV, AluOp.NOT):
        return alu
    if alu.op in _SHIFT_OPS:
        # wide field holds the amount; the shifted value needs a register
        return alu if isinstance(alu.s1, Reg) else None
    candidate = canonical_alu(alu)
    if candidate.op not in PACKABLE_ALU_OPS:
        return None
    if isinstance(candidate.s2, Imm):
        return None
    return candidate


def packing_obstacle(mem: Piece, alu: Piece) -> Optional[str]:
    """Why ``mem`` and ``alu`` cannot pack into one word (None if they can).

    This is the *structural* check (field widths, port conflicts).  The
    reorganizer separately guarantees *semantic* independence -- packed
    pieces execute in parallel, so neither may depend on the other's
    result.
    """
    if not isinstance(mem, (Load, Store)):
        return f"memory slot cannot hold {type(mem).__name__}"
    if not isinstance(mem.addr, Displacement):
        return "packed memory piece must use disp(base) addressing"
    if not 0 <= mem.addr.disp < PACKED_DISP_LIMIT:
        return f"packed displacement must be 0..{PACKED_DISP_LIMIT - 1}"

    if isinstance(alu, Alu):
        if alu.op not in PACKABLE_ALU_OPS:
            return f"opcode {alu.op.value} not in the packed subset"
        if alu.op in _SHIFT_OPS:
            if not isinstance(alu.s1, Reg):
                return "packed shift needs a register source"
        elif alu.op not in (AluOp.MOV, AluOp.NOT) and isinstance(alu.s2, Imm):
            return "packed ALU second source must be a register"
    elif isinstance(alu, MovImm):
        pass  # 8-bit constant + dst fits the short ALU field
    else:
        return f"ALU slot cannot hold {type(alu).__name__}"

    mem_writes = mem.writes()
    if mem_writes and mem_writes & alu.writes():
        return "both pieces write the same register"
    return None


def can_pack(mem: Piece, alu: Piece) -> bool:
    """True when the two pieces fit together in one instruction word."""
    return packing_obstacle(mem, alu) is None


@dataclass(frozen=True)
class InstructionWord:
    """One 32-bit instruction word: a single piece or a packed pair."""

    mem: Optional[Piece] = None
    alu: Optional[Piece] = None

    def __post_init__(self) -> None:
        if self.mem is None and self.alu is None:
            raise PackingError("an instruction word must hold at least a nop")
        if self.mem is not None and self.alu is not None:
            obstacle = packing_obstacle(self.mem, self.alu)
            if obstacle is not None:
                raise PackingError(obstacle)

    # -- constructors -----------------------------------------------------

    @classmethod
    def single(cls, piece: Piece) -> "InstructionWord":
        """Wrap one piece in its own word."""
        if piece.is_memory:
            return cls(mem=piece, alu=None)
        return cls(mem=None, alu=piece)

    @classmethod
    def packed(cls, mem: Piece, alu: Piece) -> "InstructionWord":
        """Pack a memory piece and an ALU piece into one word."""
        return cls(mem=mem, alu=alu)

    @classmethod
    def nop(cls) -> "InstructionWord":
        return cls.single(Noop())

    # -- structure ---------------------------------------------------------

    @property
    def is_packed(self) -> bool:
        return self.mem is not None and self.alu is not None

    @property
    def pieces(self) -> Tuple[Piece, ...]:
        """The pieces in the word, memory piece first."""
        out: List[Piece] = []
        if self.mem is not None:
            out.append(self.mem)
        if self.alu is not None:
            out.append(self.alu)
        return tuple(out)

    @property
    def flow(self) -> Optional[Piece]:
        """The flow-control piece held by this word, if any."""
        for piece in self.pieces:
            if piece.is_flow:
                return piece
        return None

    @property
    def is_nop(self) -> bool:
        return len(self.pieces) == 1 and isinstance(self.pieces[0], Noop)

    @property
    def uses_memory(self) -> bool:
        """True when the word consumes a data-memory cycle.

        The complement of this over a program run is the paper's *free
        memory cycles* (section 3.1): word slots whose memory cycle can
        be exported for DMA, I/O, or cache write-backs.
        """
        return self.mem is not None

    def reads(self) -> FrozenSet[Reg]:
        out: FrozenSet[Reg] = frozenset()
        for piece in self.pieces:
            out |= piece.reads()
        return out

    def writes(self) -> FrozenSet[Reg]:
        out: FrozenSet[Reg] = frozenset()
        for piece in self.pieces:
            out |= piece.writes()
        return out

    def __repr__(self) -> str:
        if self.is_packed:
            return f"[{self.mem!r} | {self.alu!r}]"
        return repr(self.pieces[0])


def words_from_pieces(pieces: Iterable[Piece]) -> List[InstructionWord]:
    """One word per piece, in order, with no packing.

    This is the "None" optimization level of Table 11 before no-op
    insertion: the naive translation of a piece stream.
    """
    return [InstructionWord.single(piece) for piece in pieces]
