"""Cycle-cost model for the byte-versus-word addressing study (Table 9).

The paper prices each operation in clock cycles: "We assume that the
cost of an instruction is equal to the number of clock cycles needed to
execute that instruction (or instruction piece)."  A load or store is 4
cycles on word-addressed MIPS.  A *byte-addressed* MIPS would pay a
15-20% operand-path overhead on **every** memory operation (section 4.1),
while word-addressed MIPS pays extra explicit instructions only on byte
accesses (extract/insert sequences, section 4.1's code fragments).

:func:`byte_operation_costs` reproduces Table 9 exactly and is reused by
Table 10 (frequencies x costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

#: base cost, in cycles, of one memory reference instruction
MEMORY_REFERENCE_CYCLES = 4
#: cost of one ALU instruction piece
ALU_CYCLES = 1
#: the paper's low estimate of the byte-addressing operand-path overhead
BYTE_ADDRESSING_OVERHEAD_LOW = 0.15
#: the paper's high estimate
BYTE_ADDRESSING_OVERHEAD_HIGH = 0.20


class MemOperation(Enum):
    """The six rows of Table 9."""

    LOAD_FROM_ARRAY = "load from array"
    STORE_INTO_ARRAY = "store into array"
    LOAD_BYTE = "load byte"
    STORE_BYTE = "store byte"
    LOAD_WORD = "load word"
    STORE_WORD = "store word"


@dataclass(frozen=True)
class CostRange:
    """An inclusive cost interval in cycles (degenerate when lo == hi)."""

    lo: float
    hi: float

    @classmethod
    def point(cls, value: float) -> "CostRange":
        return cls(value, value)

    def scaled(self, factor: float) -> "CostRange":
        return CostRange(self.lo * factor, self.hi * factor)

    def __add__(self, other: "CostRange") -> "CostRange":
        return CostRange(self.lo + other.lo, self.hi + other.hi)

    @property
    def midpoint(self) -> float:
        return (self.lo + self.hi) / 2

    def __repr__(self) -> str:
        if self.lo == self.hi:
            return f"{self.lo:g}"
        return f"{self.lo:g}-{self.hi:g}"


def byte_machine_costs(overhead: float = 0.0) -> Dict[MemOperation, CostRange]:
    """Costs on a byte-addressed MIPS with the given operand-path overhead.

    With ``overhead == 0`` this is Table 9's "Cost with byte operations"
    column; with 0.15 it is the "Cost with overhead" column.  On the
    byte-addressed machine every operation is a single memory reference
    (array accesses included), but *all* references pay the overhead.
    """
    base = MEMORY_REFERENCE_CYCLES * (1 + overhead)
    load_byte = (MEMORY_REFERENCE_CYCLES + 2) * (1 + overhead)
    return {
        MemOperation.LOAD_FROM_ARRAY: CostRange.point(base),
        MemOperation.STORE_INTO_ARRAY: CostRange.point(base),
        # byte loads/stores through a byte *pointer* still need the
        # pointer arithmetic the paper charges at 6 cycles base
        MemOperation.LOAD_BYTE: CostRange.point(load_byte),
        MemOperation.STORE_BYTE: CostRange.point(load_byte),
        MemOperation.LOAD_WORD: CostRange.point(base),
        MemOperation.STORE_WORD: CostRange.point(base),
    }


def word_machine_costs() -> Dict[MemOperation, CostRange]:
    """Costs on word-addressed MIPS using the byte insert/extract support.

    Table 9's "Cost with MIPS operations" column:

    - load from a (packed byte) array: load base-shifted + extract
      = 4 + 2 -> 6 cycles;
    - store into a packed array: optional fetch of the target word (often
      already in a register), move to the byte selector, insert, store:
      8-12 cycles;
    - byte load through a byte pointer: 4 (load) + 2 x ALU... the paper
      charges 8; byte store: 10-18;
    - plain word load/store: 4, with no addressing overhead.
    """
    return {
        MemOperation.LOAD_FROM_ARRAY: CostRange.point(6),
        MemOperation.STORE_INTO_ARRAY: CostRange(8, 12),
        MemOperation.LOAD_BYTE: CostRange.point(8),
        MemOperation.STORE_BYTE: CostRange(10, 18),
        MemOperation.LOAD_WORD: CostRange.point(4),
        MemOperation.STORE_WORD: CostRange.point(4),
    }


def table9(overhead: float = BYTE_ADDRESSING_OVERHEAD_LOW) -> Dict[MemOperation, Tuple[CostRange, CostRange, CostRange]]:
    """The three cost columns of Table 9 for each operation row."""
    plain = byte_machine_costs(0.0)
    with_overhead = byte_machine_costs(overhead)
    mips = word_machine_costs()
    return {op: (plain[op], with_overhead[op], mips[op]) for op in MemOperation}
