"""Constant handling: immediate fitting and the Table 1 classification.

The architecture offers three escalating ways to materialize a constant
(paper section 2.2):

1. a **4-bit operand constant** 0-15 directly in a register slot of any
   operation -- covering ~70% of constants (Table 1);
2. the **8-bit move-immediate** into any register -- all but ~5%;
3. the **long-immediate load** (a full instruction word).

Small *negative* constants are expressed with **reverse operators**
rather than sign extension: ``x - (-3)`` is not needed -- instead
``x + 3`` uses ``add``, and ``(-3) + x``/``x + (-3)`` rewrite to
``rsub #3`` or ``sub #3``; comparisons against small negatives swap to
the reversed comparison.  "MIPS uses the latter approach because it
allows more constants to be expressed and eliminates the need for sign
extension in the constant insertion hardware."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from .operations import AluOp
from .pieces import Alu, Imm, LoadImm, MovImm, Piece, Reg


class ConstantClass(Enum):
    """Magnitude buckets of Table 1 ("Constant distribution in programs")."""

    ZERO = "0"
    ONE = "1"
    TWO = "2"
    SMALL = "3 - 15"        # fits the 4-bit operand constant
    BYTE = "16 - 255"       # fits the 8-bit move immediate
    LARGE = "> 255"         # needs a long immediate

    @property
    def order(self) -> int:
        return list(ConstantClass).index(self)


#: Table 1 row order
TABLE1_ROWS = list(ConstantClass)


def classify_constant(value: int) -> ConstantClass:
    """Bucket a constant by magnitude, exactly as Table 1 does."""
    magnitude = abs(value)
    if magnitude == 0:
        return ConstantClass.ZERO
    if magnitude == 1:
        return ConstantClass.ONE
    if magnitude == 2:
        return ConstantClass.TWO
    if magnitude <= 15:
        return ConstantClass.SMALL
    if magnitude <= 255:
        return ConstantClass.BYTE
    return ConstantClass.LARGE


def fits_imm4(value: int) -> bool:
    """True when the constant can ride in a 4-bit operand slot."""
    return 0 <= value <= 15

def fits_imm4_reversed(value: int) -> bool:
    """True when ``-value`` fits a 4-bit slot (usable via a reverse op)."""
    return 0 <= -value <= 15


def fits_movi(value: int) -> bool:
    """True when the constant fits the 8-bit move-immediate."""
    return 0 <= value <= 255


@dataclass(frozen=True)
class MaterializedConstant:
    """Plan for getting a constant into a register.

    ``pieces`` is the instruction sequence (empty when the constant can
    be used in place as an operand).
    """

    value: int
    pieces: List[Piece]

    @property
    def cost(self) -> int:
        return len(self.pieces)


def materialize(value: int, dst: Reg) -> List[Piece]:
    """Instruction pieces that place ``value`` into register ``dst``.

    Selection order: 4-bit constant moved (1 short op), 8-bit move
    immediate, long immediate, and finally a two-word
    ``lim``/``sll``/``or`` synthesis for values beyond the 21-bit long
    immediate.
    """
    if fits_imm4(value):
        return [Alu(AluOp.MOV, Imm(value), Imm(0), dst)]
    if fits_imm4_reversed(value):
        # dst = s2 - s1 = 0 - |value| = value, via the reverse subtract
        return [Alu(AluOp.RSUB, Imm(-value), Imm(0), dst)]
    if fits_movi(value):
        return [MovImm(value, dst)]
    if -LoadImm.LIMIT <= value < LoadImm.LIMIT:
        return [LoadImm(value, dst)]
    raise ValueError(
        f"{value} exceeds the long-immediate range; use synthesize_large "
        "with a scratch register"
    )


def synthesize_large(value: int, dst: Reg, scratch: Reg) -> List[Piece]:
    """Materialize an arbitrary 32-bit constant using a scratch register."""
    low = value & 0xFFFF
    high = (value >> 16) & 0xFFFF
    return [
        LoadImm(high, dst),
        Alu(AluOp.SLL, dst, Imm(8), dst),
        Alu(AluOp.SLL, dst, Imm(8), dst),
        LoadImm(low, scratch),
        Alu(AluOp.OR, dst, scratch, dst),
    ]


def materialization_class(value: int) -> ConstantClass:
    """The cheapest mechanism class that covers ``value`` (for reporting)."""
    return classify_constant(value)
