"""ALU operations and the sixteen comparison codes.

The paper (section 2.3.1) specifies that MIPS implements conditional
control flow with a *compare-and-branch* instruction offering one of 16
comparisons covering both signed and unsigned arithmetic, and that the
same 16 comparisons are available in the *Set Conditionally* instruction.

The ALU operation set is the simple RISC repertoire plus the two byte
instructions of section 4.1 (insert byte / extract byte) and the *reverse*
subtract used to express small negative constants without sign-extension
hardware (section 2.2: "provide reverse operators that allow the constants
to be treated as negative").
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict

from .bits import s32, u32, overflows_add, overflows_sub


class AluOp(Enum):
    """Arithmetic/logic operations available in an ALU piece."""

    ADD = "add"
    SUB = "sub"          # dst = s1 - s2
    RSUB = "rsub"        # dst = s2 - s1 (reverse subtract)
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"          # shift left logical by s2 (mod 32)
    SRL = "srl"          # shift right logical
    SRA = "sra"          # shift right arithmetic
    MOV = "mov"          # dst = s1 (s2 ignored)
    NOT = "not"          # dst = ~s1 (s2 ignored)
    IC = "ic"            # insert byte: uses the LO byte selector
    XC = "xc"            # extract byte: selector in s1, word in s2
    MSTEP = "mstep"      # one Booth multiply step (see below)
    DSTEP = "dstep"      # one restoring-division step

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Opcodes allowed in the short ALU field of a *packed* instruction word.
#: The packed encoding only has a 4-bit opcode field (see
#: :mod:`repro.isa.encoding`), so the less frequent operations are
#: excluded and must occupy a full word.
PACKABLE_ALU_OPS = frozenset(
    {
        AluOp.ADD,
        AluOp.SUB,
        AluOp.RSUB,
        AluOp.AND,
        AluOp.OR,
        AluOp.XOR,
        AluOp.SLL,
        AluOp.SRL,
        AluOp.SRA,
        AluOp.MOV,
        AluOp.NOT,
    }
)


def _extract_byte(selector: int, word: int) -> int:
    """Extract the byte of ``word`` named by the low 2 bits of ``selector``.

    Byte 0 is the least significant byte.  This is the semantics of the
    paper's ``xc`` instruction: "extract the byte specified by the low
    order two bits of a byte pointer".
    """
    shift = (selector & 0x3) * 8
    return (u32(word) >> shift) & 0xFF


def _insert_byte(selector: int, source: int, word: int) -> int:
    """Insert the low byte of ``source`` into ``word`` at the selected byte."""
    shift = (selector & 0x3) * 8
    mask = 0xFF << shift
    return (u32(word) & ~mask & 0xFFFFFFFF) | ((source & 0xFF) << shift)


def _mstep(acc: int, multiplicand: int) -> int:
    """One multiply step: shift-and-add on the accumulator.

    A full 32x32 multiply is synthesized from 32 ``mstep`` instructions by
    the runtime library (the chip has no multi-cycle multiplier; the paper
    notes a numeric coprocessor is envisioned for intensive arithmetic).
    The step computes ``acc*2 + multiplicand`` -- the classic
    shift-accumulate kernel driven by the multiplier bits in software.
    """
    return u32(u32(acc) * 2 + u32(multiplicand))


def _dstep(remainder: int, divisor: int) -> int:
    """One restoring-division step: conditional subtract after shift."""
    shifted = u32(remainder << 1)
    if shifted >= u32(divisor):
        return u32(shifted - u32(divisor)) | 1
    return shifted & ~1 & 0xFFFFFFFF


_ALU_FUNCS: Dict[AluOp, Callable[[int, int], int]] = {
    AluOp.ADD: lambda a, b: u32(a + b),
    AluOp.SUB: lambda a, b: u32(a - b),
    AluOp.RSUB: lambda a, b: u32(b - a),
    AluOp.AND: lambda a, b: u32(a & b),
    AluOp.OR: lambda a, b: u32(a | b),
    AluOp.XOR: lambda a, b: u32(a ^ b),
    AluOp.SLL: lambda a, b: u32(u32(a) << (b & 31)),
    AluOp.SRL: lambda a, b: u32(a) >> (b & 31),
    AluOp.SRA: lambda a, b: u32(s32(a) >> (b & 31)),
    AluOp.MOV: lambda a, b: u32(a),
    AluOp.NOT: lambda a, b: u32(~a),
    AluOp.XC: _extract_byte,
    AluOp.MSTEP: _mstep,
    AluOp.DSTEP: _dstep,
}


def alu_evaluate(op: AluOp, s1: int, s2: int) -> int:
    """Evaluate a two-source ALU operation; returns the unsigned image.

    ``IC`` (insert byte) is three-source (selector, source byte, target
    word) and must be evaluated with :func:`alu_insert_byte` instead.
    """
    if op is AluOp.IC:
        raise ValueError("insert byte needs the LO selector; use alu_insert_byte")
    return _ALU_FUNCS[op](u32(s1), u32(s2))


def alu_insert_byte(lo_selector: int, source: int, word: int) -> int:
    """Evaluate the insert-byte instruction (``ic lo,src,dst``)."""
    return _insert_byte(lo_selector, source, word)


def alu_overflows(op: AluOp, s1: int, s2: int) -> bool:
    """True when the signed result of ``op`` overflows 32 bits.

    Only ``ADD``, ``SUB`` and ``RSUB`` participate in overflow detection;
    the machine traps (when enabled in the surprise register) rather than
    setting a condition code (paper section 2.3.3).
    """
    if op is AluOp.ADD:
        return overflows_add(s1, s2)
    if op is AluOp.SUB:
        return overflows_sub(s1, s2)
    if op is AluOp.RSUB:
        return overflows_sub(s2, s1)
    return False


class Comparison(Enum):
    """The sixteen comparison codes of compare-and-branch / set-conditionally.

    Signed (``LT``..``GE``), unsigned (``LO``..``HS``), equality, the two
    constant outcomes, and two bit-test codes.  The set is closed under
    operand exchange (``LT`` <-> ``GT`` etc.), which is what lets the
    compiler use *reverse comparisons* to treat an unsigned 4-bit literal
    as a negative operand (section 2.2).
    """

    EQ = "eq"    # s1 == s2
    NE = "ne"    # s1 != s2
    LT = "lt"    # signed s1 <  s2
    LE = "le"    # signed s1 <= s2
    GT = "gt"    # signed s1 >  s2
    GE = "ge"    # signed s1 >= s2
    LO = "lo"    # unsigned s1 <  s2
    LS = "ls"    # unsigned s1 <= s2
    HI = "hi"    # unsigned s1 >  s2
    HS = "hs"    # unsigned s1 >= s2
    T = "t"      # always
    F = "f"      # never
    BC = "bc"    # bits clear: s1 & s2 == 0
    BS = "bs"    # bits set:   s1 & s2 != 0
    NBC = "nbc"  # not all bits clear under mask complement: s1 & ~s2 == 0
    NBS = "nbs"  # some bit set outside mask: s1 & ~s2 != 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_COMPARE_FUNCS: Dict[Comparison, Callable[[int, int], bool]] = {
    Comparison.EQ: lambda a, b: u32(a) == u32(b),
    Comparison.NE: lambda a, b: u32(a) != u32(b),
    Comparison.LT: lambda a, b: s32(a) < s32(b),
    Comparison.LE: lambda a, b: s32(a) <= s32(b),
    Comparison.GT: lambda a, b: s32(a) > s32(b),
    Comparison.GE: lambda a, b: s32(a) >= s32(b),
    Comparison.LO: lambda a, b: u32(a) < u32(b),
    Comparison.LS: lambda a, b: u32(a) <= u32(b),
    Comparison.HI: lambda a, b: u32(a) > u32(b),
    Comparison.HS: lambda a, b: u32(a) >= u32(b),
    Comparison.T: lambda a, b: True,
    Comparison.F: lambda a, b: False,
    Comparison.BC: lambda a, b: (u32(a) & u32(b)) == 0,
    Comparison.BS: lambda a, b: (u32(a) & u32(b)) != 0,
    Comparison.NBC: lambda a, b: (u32(a) & u32(~b)) == 0,
    Comparison.NBS: lambda a, b: (u32(a) & u32(~b)) != 0,
}

#: comparison obtained by exchanging the two operands
SWAPPED_COMPARISON = {
    Comparison.EQ: Comparison.EQ,
    Comparison.NE: Comparison.NE,
    Comparison.LT: Comparison.GT,
    Comparison.LE: Comparison.GE,
    Comparison.GT: Comparison.LT,
    Comparison.GE: Comparison.LE,
    Comparison.LO: Comparison.HI,
    Comparison.LS: Comparison.HS,
    Comparison.HI: Comparison.LO,
    Comparison.HS: Comparison.LS,
    Comparison.T: Comparison.T,
    Comparison.F: Comparison.F,
    Comparison.BC: Comparison.BC,
    Comparison.BS: Comparison.BS,
}

#: comparison whose outcome is the logical negation
NEGATED_COMPARISON = {
    Comparison.EQ: Comparison.NE,
    Comparison.NE: Comparison.EQ,
    Comparison.LT: Comparison.GE,
    Comparison.LE: Comparison.GT,
    Comparison.GT: Comparison.LE,
    Comparison.GE: Comparison.LT,
    Comparison.LO: Comparison.HS,
    Comparison.LS: Comparison.HI,
    Comparison.HI: Comparison.LS,
    Comparison.HS: Comparison.LO,
    Comparison.T: Comparison.F,
    Comparison.F: Comparison.T,
    Comparison.BC: Comparison.BS,
    Comparison.BS: Comparison.BC,
    Comparison.NBC: Comparison.NBS,
    Comparison.NBS: Comparison.NBC,
}


def compare(cond: Comparison, s1: int, s2: int) -> bool:
    """Evaluate comparison ``cond`` on the two 32-bit operands."""
    return _COMPARE_FUNCS[cond](s1, s2)


assert len(Comparison) == 16, "the paper specifies exactly 16 comparisons"
