"""32-bit integer helpers.

The modeled machine is a 32-bit word machine.  Python integers are
unbounded, so every architectural value is normalized through these
helpers: :func:`u32` produces the unsigned (two's-complement) image of a
value and :func:`s32` its signed interpretation.
"""

from __future__ import annotations

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
SIGN_BIT = 0x80000000

#: Size of the virtual address space in *words* (the paper: "the virtual
#: address space of 16 million words").
VIRTUAL_SPACE_WORDS = 16 * 1024 * 1024

MIN_INT32 = -(2**31)
MAX_INT32 = 2**31 - 1


def u32(value: int) -> int:
    """Return the unsigned 32-bit image of ``value`` (two's complement)."""
    return value & WORD_MASK


def s32(value: int) -> int:
    """Return the signed interpretation of the low 32 bits of ``value``."""
    value &= WORD_MASK
    if value & SIGN_BIT:
        return value - (1 << WORD_BITS)
    return value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int."""
    if bits <= 0:
        raise ValueError("bit width must be positive")
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def fits_unsigned(value: int, bits: int) -> bool:
    """True when ``value`` is representable as an unsigned ``bits``-bit field."""
    return 0 <= value < (1 << bits)


def fits_signed(value: int, bits: int) -> bool:
    """True when ``value`` is representable as a signed ``bits``-bit field."""
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def add32(a: int, b: int) -> int:
    """32-bit wrapping addition (unsigned image)."""
    return u32(a + b)


def sub32(a: int, b: int) -> int:
    """32-bit wrapping subtraction (unsigned image)."""
    return u32(a - b)


def overflows_add(a: int, b: int) -> bool:
    """True when signed 32-bit addition of ``a`` and ``b`` overflows."""
    result = s32(a) + s32(b)
    return not (MIN_INT32 <= result <= MAX_INT32)


def overflows_sub(a: int, b: int) -> bool:
    """True when signed 32-bit subtraction ``a - b`` overflows."""
    result = s32(a) - s32(b)
    return not (MIN_INT32 <= result <= MAX_INT32)
