"""The MIPS instruction set model.

Public surface: registers (:class:`Reg`, conventional aliases), ALU and
comparison operations, instruction :mod:`pieces <repro.isa.pieces>`,
packed :class:`InstructionWord` objects, the 32-bit binary
:mod:`encoding <repro.isa.encoding>`, immediate/constant handling, and
the byte-addressing cost model.
"""

from .bits import (
    MAX_INT32,
    MIN_INT32,
    VIRTUAL_SPACE_WORDS,
    WORD_BITS,
    WORD_MASK,
    s32,
    sign_extend,
    u32,
)
from .costs import (
    ALU_CYCLES,
    BYTE_ADDRESSING_OVERHEAD_HIGH,
    BYTE_ADDRESSING_OVERHEAD_LOW,
    MEMORY_REFERENCE_CYCLES,
    CostRange,
    MemOperation,
    byte_machine_costs,
    table9,
    word_machine_costs,
)
from .encoding import EncodingError, decode, encode
from .immediates import (
    ConstantClass,
    TABLE1_ROWS,
    classify_constant,
    fits_imm4,
    fits_imm4_reversed,
    fits_movi,
    materialize,
    synthesize_large,
)
from .operations import (
    NEGATED_COMPARISON,
    PACKABLE_ALU_OPS,
    SWAPPED_COMPARISON,
    AluOp,
    Comparison,
    alu_evaluate,
    alu_insert_byte,
    alu_overflows,
    compare,
)
from .pieces import (
    Absolute,
    Address,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    Operand,
    Piece,
    ReadSpecial,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from .registers import (
    ALL_REGISTERS,
    AP,
    FP,
    NUM_REGISTERS,
    RA,
    REGISTER_ALIASES,
    RV,
    SP,
    Reg,
    SpecialReg,
    reg,
)
from .words import InstructionWord, PackingError, can_pack, packing_obstacle, words_from_pieces

__all__ = [
    # bits
    "MAX_INT32", "MIN_INT32", "VIRTUAL_SPACE_WORDS", "WORD_BITS", "WORD_MASK",
    "s32", "sign_extend", "u32",
    # costs
    "ALU_CYCLES", "BYTE_ADDRESSING_OVERHEAD_HIGH", "BYTE_ADDRESSING_OVERHEAD_LOW",
    "MEMORY_REFERENCE_CYCLES", "CostRange", "MemOperation",
    "byte_machine_costs", "table9", "word_machine_costs",
    # encoding
    "EncodingError", "decode", "encode",
    # immediates
    "ConstantClass", "TABLE1_ROWS", "classify_constant", "fits_imm4",
    "fits_imm4_reversed", "fits_movi", "materialize", "synthesize_large",
    # operations
    "NEGATED_COMPARISON", "PACKABLE_ALU_OPS", "SWAPPED_COMPARISON",
    "AluOp", "Comparison", "alu_evaluate", "alu_insert_byte",
    "alu_overflows", "compare",
    # pieces
    "Absolute", "Address", "Alu", "BaseIndex", "BaseShifted", "CompareBranch",
    "Displacement", "Imm", "Jump", "JumpIndirect", "Load", "LoadImm",
    "MovImm", "Noop", "Operand", "Piece", "ReadSpecial", "SetCond", "Store",
    "Trap", "WriteSpecial",
    # registers
    "ALL_REGISTERS", "AP", "FP", "NUM_REGISTERS", "RA", "REGISTER_ALIASES",
    "RV", "SP", "Reg", "SpecialReg", "reg",
    # words
    "InstructionWord", "PackingError", "can_pack", "packing_obstacle",
    "words_from_pieces",
]
