"""Register model for the MIPS machine.

The machine has sixteen 32-bit general registers ``r0`` .. ``r15``.  All
sixteen are general: unlike later MIPS designs there is no hardwired zero
register, because any operand slot may hold a 4-bit literal constant
instead of a register (paper section 2.2).

Software conventions (used by the compiler and the mini operating system,
not enforced by hardware):

========  =====  =======================================
alias     reg    role
========  =====  =======================================
``rv``    r1     function return value
``sp``    r14    stack pointer
``ap``    r13    argument pointer
``fp``    r12    frame pointer
``ra``    r15    return address (written by ``jal``)
========  =====  =======================================

Beyond the general file the architecture defines a handful of *special*
registers reachable only by dedicated instructions: the byte-selector
register ``lo`` used by insert-byte, the *surprise register* (the
machine's entire miscellaneous state -- see :mod:`repro.system.surprise`),
and the on-chip segmentation registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

NUM_REGISTERS = 16

#: software-convention aliases accepted by the assembler
REGISTER_ALIASES = {
    "rv": 1,
    "fp": 12,
    "ap": 13,
    "sp": 14,
    "ra": 15,
}

#: canonical alias for each conventional register number (for disassembly)
ALIAS_BY_NUMBER = {number: alias for alias, number in REGISTER_ALIASES.items()}


@dataclass(frozen=True, order=True)
class Reg:
    """A general register operand, ``r0`` through ``r15``."""

    number: int

    def __post_init__(self) -> None:
        if not 0 <= self.number < NUM_REGISTERS:
            raise ValueError(f"register number out of range: {self.number}")

    def __repr__(self) -> str:
        return f"r{self.number}"

    @property
    def name(self) -> str:
        """Assembly name, preferring the conventional alias if any."""
        return ALIAS_BY_NUMBER.get(self.number, f"r{self.number}")


class SpecialReg(Enum):
    """Special registers outside the general file.

    ``LO`` is the byte-selector register consumed by the insert-byte
    instruction (paper section 4.1: "for insert the byte pointer must be
    moved to a special register").  ``SURPRISE`` is the processor status
    word equivalent (section 3.2).  ``SEG_MASK`` and ``SEG_PID`` are the
    on-chip segmentation registers (section 3.1).
    """

    LO = "lo"
    SURPRISE = "surprise"
    SEG_MASK = "segmask"
    SEG_PID = "segpid"
    # The three exception return addresses latched by the surprise
    # sequence (section 3.3: "Three return addresses are saved in order
    # to allow returns to sequences that include indirect jumps").
    XRA0 = "xra0"
    XRA1 = "xra1"
    XRA2 = "xra2"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def reg(number_or_name) -> Reg:
    """Build a :class:`Reg` from a number, an ``rN`` string, or an alias."""
    if isinstance(number_or_name, Reg):
        return number_or_name
    if isinstance(number_or_name, int):
        return Reg(number_or_name)
    name = number_or_name.strip().lower()
    if name in REGISTER_ALIASES:
        return Reg(REGISTER_ALIASES[name])
    if name.startswith("r") and name[1:].isdigit():
        return Reg(int(name[1:]))
    raise ValueError(f"not a register: {number_or_name!r}")


# Conventional registers, importable by name.
RV = Reg(1)
FP = Reg(12)
AP = Reg(13)
SP = Reg(14)
RA = Reg(15)

ALL_REGISTERS = tuple(Reg(n) for n in range(NUM_REGISTERS))
