"""Binary encoding of instruction words.

Every instruction word is exactly 32 bits (paper section 2.2: "Load and
store instructions in MIPS are at most 32 bits in length").  The top
three bits select the format:

======  ========  ====================================================
tag     format    fields
======  ========  ====================================================
``000``  SPECIAL  subop(5): nop, trap(code12), rdspec, wrspec
``001``  ALU      op(5) s1(5) s2(5) dst(4)
``010``  MOVI     value(8) dst(4)
``011``  SET      cond(4) s1(5) s2(5) dst(4)
``100``  CMPBR    cond(4) s1(5) s2(5) offset(15, signed, word-relative)
``101``  JUMP     ind(1) link(1) addr(24) | reg(4)
``110``  MEM      ls(1) mode(3) r(4) [addr21 | base4+disp17 |
                  base4+index4 | base4+shift3 | imm21]
``111``  PACKED   ls(1) memreg(4) base(4) disp(3) op(4) s1(5) s2(4) dst(4)
======  ========  ====================================================

A 5-bit operand field is ``is_imm(1) value(4)``: a register number or a
4-bit literal.  The packed format is the tightest fit: 1+4+4+3 bits of
short memory piece plus 4+5+4+4 bits of short ALU piece plus the tag is
exactly 32 -- which is *why* packed ALU pieces are restricted to the
4-bit opcode subset and a register second source.

Branch offsets are word-relative to the *following* word (``target -
(addr + 1)``), jumps carry 24-bit absolute word addresses (the 16M-word
virtual space of section 3.1).
"""

from __future__ import annotations

from typing import Optional

from .bits import sign_extend
from .operations import AluOp, Comparison
from .pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    Operand,
    Piece,
    ReadSpecial,
    Rfs,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from .registers import Reg, SpecialReg
from .words import InstructionWord

WORD_LENGTH_BITS = 32

_TAG_SPECIAL, _TAG_ALU, _TAG_MOVI, _TAG_SET, _TAG_CMPBR, _TAG_JUMP, _TAG_MEM, _TAG_PACKED = range(8)

_SUB_NOP, _SUB_TRAP, _SUB_RDSPEC, _SUB_WRSPEC, _SUB_RFS = range(5)

_ALU_OPS = list(AluOp)
_ALU_INDEX = {op: i for i, op in enumerate(_ALU_OPS)}
_PACKED_MOVI_CODE = 15

_COMPARISONS = list(Comparison)
_COMPARISON_INDEX = {c: i for i, c in enumerate(_COMPARISONS)}

_SPECIALS = list(SpecialReg)
_SPECIAL_INDEX = {s: i for i, s in enumerate(_SPECIALS)}

_MODE_ABSOLUTE, _MODE_DISP, _MODE_BASEIDX, _MODE_BASESHIFT, _MODE_LONGIMM = range(5)

#: Subset of AluOp encodable in the packed word's 4-bit opcode field.
_PACKED_OPS = [
    AluOp.ADD, AluOp.SUB, AluOp.RSUB, AluOp.AND, AluOp.OR, AluOp.XOR,
    AluOp.SLL, AluOp.SRL, AluOp.SRA, AluOp.MOV, AluOp.NOT,
]
_PACKED_INDEX = {op: i for i, op in enumerate(_PACKED_OPS)}


class EncodingError(ValueError):
    """Raised when a word cannot be encoded or a bit pattern decoded."""


def _enc_operand(operand: Operand) -> int:
    if isinstance(operand, Imm):
        return 0x10 | operand.value
    return operand.number


def _dec_operand(bits5: int) -> Operand:
    if bits5 & 0x10:
        return Imm(bits5 & 0xF)
    return Reg(bits5 & 0xF)


def _require_resolved(target) -> int:
    if not isinstance(target, int):
        raise EncodingError(f"unresolved symbolic target {target!r}; assemble first")
    return target


def encode(word: InstructionWord, addr: int = 0) -> int:
    """Encode an instruction word located at word address ``addr``."""
    if word.is_packed:
        return _encode_packed(word)
    return _encode_single(word.pieces[0], addr)


def _encode_single(piece: Piece, addr: int) -> int:
    if isinstance(piece, Noop):
        return _TAG_SPECIAL << 29 | _SUB_NOP << 24
    if isinstance(piece, Trap):
        return _TAG_SPECIAL << 29 | _SUB_TRAP << 24 | piece.code
    if isinstance(piece, Rfs):
        return _TAG_SPECIAL << 29 | _SUB_RFS << 24
    if isinstance(piece, ReadSpecial):
        return (
            _TAG_SPECIAL << 29
            | _SUB_RDSPEC << 24
            | _SPECIAL_INDEX[piece.sreg] << 21
            | piece.dst.number << 17
        )
    if isinstance(piece, WriteSpecial):
        return (
            _TAG_SPECIAL << 29
            | _SUB_WRSPEC << 24
            | _SPECIAL_INDEX[piece.sreg] << 21
            | _enc_operand(piece.src) << 16
        )
    if isinstance(piece, Alu):
        return (
            _TAG_ALU << 29
            | _ALU_INDEX[piece.op] << 24
            | _enc_operand(piece.s1) << 19
            | _enc_operand(piece.s2) << 14
            | piece.dst.number << 10
        )
    if isinstance(piece, MovImm):
        return _TAG_MOVI << 29 | piece.value << 21 | piece.dst.number << 17
    if isinstance(piece, SetCond):
        return (
            _TAG_SET << 29
            | _COMPARISON_INDEX[piece.cond] << 25
            | _enc_operand(piece.s1) << 20
            | _enc_operand(piece.s2) << 15
            | piece.dst.number << 11
        )
    if isinstance(piece, CompareBranch):
        offset = _require_resolved(piece.target) - (addr + 1)
        if not -(1 << 14) <= offset < (1 << 14):
            raise EncodingError(f"branch offset out of range: {offset}")
        return (
            _TAG_CMPBR << 29
            | _COMPARISON_INDEX[piece.cond] << 25
            | _enc_operand(piece.s1) << 20
            | _enc_operand(piece.s2) << 15
            | (offset & 0x7FFF)
        )
    if isinstance(piece, Jump):
        target = _require_resolved(piece.target)
        if not 0 <= target < (1 << 24):
            raise EncodingError(f"jump target out of range: {target}")
        return _TAG_JUMP << 29 | 0 << 28 | int(piece.link) << 27 | target
    if isinstance(piece, JumpIndirect):
        return _TAG_JUMP << 29 | 1 << 28 | int(piece.link) << 27 | piece.reg.number << 20
    if isinstance(piece, LoadImm):
        return (
            _TAG_MEM << 29
            | 0 << 28
            | _MODE_LONGIMM << 25
            | piece.dst.number << 21
            | (piece.value & 0x1FFFFF)
        )
    if isinstance(piece, (Load, Store)):
        return _encode_mem(piece)
    raise EncodingError(f"cannot encode {piece!r}")


def _encode_mem(piece) -> int:
    ls = 1 if isinstance(piece, Store) else 0
    register = piece.src if ls else piece.dst
    head = _TAG_MEM << 29 | ls << 28
    addr = piece.addr
    if isinstance(addr, Absolute):
        return head | _MODE_ABSOLUTE << 25 | register.number << 21 | addr.addr
    if isinstance(addr, Displacement):
        return (
            head
            | _MODE_DISP << 25
            | register.number << 21
            | addr.base.number << 17
            | (addr.disp & 0x1FFFF)
        )
    if isinstance(addr, BaseIndex):
        return (
            head
            | _MODE_BASEIDX << 25
            | register.number << 21
            | addr.base.number << 17
            | addr.index.number << 13
        )
    if isinstance(addr, BaseShifted):
        return (
            head
            | _MODE_BASESHIFT << 25
            | register.number << 21
            | addr.base.number << 17
            | addr.shift << 14
        )
    raise EncodingError(f"cannot encode address {addr!r}")


def _encode_packed(word: InstructionWord) -> int:
    mem = word.mem
    alu = word.alu
    assert mem is not None and alu is not None
    ls = 1 if isinstance(mem, Store) else 0
    memreg = mem.src if ls else mem.dst  # type: ignore[union-attr]
    assert isinstance(mem.addr, Displacement)  # type: ignore[union-attr]
    head = (
        _TAG_PACKED << 29
        | ls << 28
        | memreg.number << 24
        | mem.addr.base.number << 20  # type: ignore[union-attr]
        | mem.addr.disp << 17  # type: ignore[union-attr]
    )
    if isinstance(alu, MovImm):
        return head | _PACKED_MOVI_CODE << 13 | alu.value << 5 | alu.dst.number
    assert isinstance(alu, Alu)
    if alu.op not in _PACKED_INDEX:
        raise EncodingError(f"opcode {alu.op.value} not packable")
    if alu.op in (AluOp.SLL, AluOp.SRL, AluOp.SRA):
        # shifts: the wide field carries the (possibly immediate) shift
        # amount, the narrow field the shifted register
        if not isinstance(alu.s1, Reg):
            raise EncodingError("packed shift needs a register source")
        return (
            head
            | _PACKED_INDEX[alu.op] << 13
            | _enc_operand(alu.s2) << 8
            | alu.s1.number << 4
            | alu.dst.number
        )
    s2 = alu.s2
    s2_bits = 0 if isinstance(s2, Imm) else s2.number
    if isinstance(s2, Imm) and alu.op not in (AluOp.MOV, AluOp.NOT):
        raise EncodingError("packed ALU second source must be a register")
    return (
        head
        | _PACKED_INDEX[alu.op] << 13
        | _enc_operand(alu.s1) << 8
        | s2_bits << 4
        | alu.dst.number
    )


def decode(bits: int, addr: int = 0) -> InstructionWord:
    """Decode a 32-bit pattern located at word address ``addr``."""
    if not 0 <= bits < (1 << 32):
        raise EncodingError(f"not a 32-bit pattern: {bits:#x}")
    tag = bits >> 29
    if tag == _TAG_SPECIAL:
        return InstructionWord.single(_decode_special(bits))
    if tag == _TAG_ALU:
        opcode = (bits >> 24) & 0x1F
        if opcode >= len(_ALU_OPS):
            raise EncodingError(f"undefined ALU opcode {opcode}")
        op = _ALU_OPS[opcode]
        return InstructionWord.single(
            Alu(
                op,
                _dec_operand((bits >> 19) & 0x1F),
                _dec_operand((bits >> 14) & 0x1F),
                Reg((bits >> 10) & 0xF),
            )
        )
    if tag == _TAG_MOVI:
        return InstructionWord.single(MovImm((bits >> 21) & 0xFF, Reg((bits >> 17) & 0xF)))
    if tag == _TAG_SET:
        return InstructionWord.single(
            SetCond(
                _COMPARISONS[(bits >> 25) & 0xF],
                _dec_operand((bits >> 20) & 0x1F),
                _dec_operand((bits >> 15) & 0x1F),
                Reg((bits >> 11) & 0xF),
            )
        )
    if tag == _TAG_CMPBR:
        offset = sign_extend(bits & 0x7FFF, 15)
        return InstructionWord.single(
            CompareBranch(
                _COMPARISONS[(bits >> 25) & 0xF],
                _dec_operand((bits >> 20) & 0x1F),
                _dec_operand((bits >> 15) & 0x1F),
                addr + 1 + offset,
            )
        )
    if tag == _TAG_JUMP:
        link = bool((bits >> 27) & 1)
        if (bits >> 28) & 1:
            return InstructionWord.single(JumpIndirect(Reg((bits >> 20) & 0xF), link))
        return InstructionWord.single(Jump(bits & 0xFFFFFF, link))
    if tag == _TAG_MEM:
        return InstructionWord.single(_decode_mem(bits))
    return _decode_packed(bits)


def _decode_special(bits: int) -> Piece:
    sub = (bits >> 24) & 0x1F
    if sub == _SUB_NOP:
        return Noop()
    if sub == _SUB_TRAP:
        return Trap(bits & 0xFFF)
    if sub in (_SUB_RDSPEC, _SUB_WRSPEC):
        index = (bits >> 21) & 0x7
        if index >= len(_SPECIALS):
            raise EncodingError(f"undefined special register {index}")
        if sub == _SUB_RDSPEC:
            return ReadSpecial(_SPECIALS[index], Reg((bits >> 17) & 0xF))
        return WriteSpecial(_SPECIALS[index], _dec_operand((bits >> 16) & 0x1F))
    if sub == _SUB_RFS:
        return Rfs()
    raise EncodingError(f"unknown special subop {sub}")


def _decode_mem(bits: int) -> Piece:
    ls = (bits >> 28) & 1
    mode = (bits >> 25) & 0x7
    register = Reg((bits >> 21) & 0xF)
    if mode == _MODE_LONGIMM:
        if ls:
            raise EncodingError("long-immediate store is not a valid form")
        return LoadImm(sign_extend(bits & 0x1FFFFF, 21), register)
    if mode == _MODE_ABSOLUTE:
        address = Absolute(bits & 0x1FFFFF)
    elif mode == _MODE_DISP:
        address = Displacement(Reg((bits >> 17) & 0xF), sign_extend(bits & 0x1FFFF, 17))
    elif mode == _MODE_BASEIDX:
        address = BaseIndex(Reg((bits >> 17) & 0xF), Reg((bits >> 13) & 0xF))
    elif mode == _MODE_BASESHIFT:
        address = BaseShifted(Reg((bits >> 17) & 0xF), (bits >> 14) & 0x7)
    else:
        raise EncodingError(f"unknown memory mode {mode}")
    if ls:
        return Store(address, register)
    return Load(address, register)


def _decode_packed(bits: int) -> InstructionWord:
    ls = (bits >> 28) & 1
    memreg = Reg((bits >> 24) & 0xF)
    address = Displacement(Reg((bits >> 20) & 0xF), (bits >> 17) & 0x7)
    mem: Piece = Store(address, memreg) if ls else Load(address, memreg)
    opcode = (bits >> 13) & 0xF
    if opcode == _PACKED_MOVI_CODE:
        alu: Piece = MovImm((bits >> 5) & 0xFF, Reg(bits & 0xF))
    else:
        if opcode >= len(_PACKED_OPS):
            raise EncodingError(f"unknown packed opcode {opcode}")
        op = _PACKED_OPS[opcode]
        if op in (AluOp.SLL, AluOp.SRL, AluOp.SRA):
            # wide field = shift amount (s2), narrow field = source (s1)
            alu = Alu(
                op,
                Reg((bits >> 4) & 0xF),
                _dec_operand((bits >> 8) & 0x1F),
                Reg(bits & 0xF),
            )
        else:
            # MOV/NOT ignore s2; canonical form carries Imm(0) there so
            # the encode/decode round trip is exact.
            s2: Operand = (
                Imm(0) if op in (AluOp.MOV, AluOp.NOT) else Reg((bits >> 4) & 0xF)
            )
            alu = Alu(op, _dec_operand((bits >> 8) & 0x1F), s2, Reg(bits & 0xF))
    return InstructionWord.packed(mem, alu)
