"""Interlock-aware list scheduling + instruction packing for one block.

The paper's algorithm (section 4.2.1):

1. read a basic block, build the machine-level DAG;
2. from the instructions generated so far, determine the sets of
   instructions that can be generated next;
3. eliminate any sets that cannot be started immediately (pipeline
   constraints: the load delay, the flow-piece barrier);
4. if there are no sets left, emit a no-op and return to step 2;
   otherwise choose heuristically -- "an instruction that fits in a
   hole in a nonfull instruction is preferred; this provides the
   instruction packing."

Two knobs correspond to Table 11's cumulative levels: ``reorder``
(choose by priority rather than source order) and ``pack`` (fill the
second slot of the current word).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.pieces import Noop, Piece
from ..isa.words import InstructionWord, can_pack, packable_form
from .blocks import BasicBlock
from .dag import DependenceDag


@dataclass
class ScheduledBlock:
    """A block after scheduling: words, with the flow word position noted.

    The trailing ``delay_slots`` words (no-ops until the branch-delay
    optimizer fills them) follow ``flow_pos``.
    """

    block: BasicBlock
    words: List[InstructionWord]
    flow_pos: Optional[int] = None

    @property
    def label(self) -> Optional[str]:
        return self.block.label

    @property
    def static_count(self) -> int:
        return len(self.words)

    @property
    def delay_slot_positions(self) -> List[int]:
        if self.flow_pos is None or self.block.flow is None:
            return []
        return list(
            range(self.flow_pos + 1, self.flow_pos + 1 + self.block.flow.delay_slots)
        )


def _loaded_registers(word: Optional[InstructionWord]) -> Set:
    """Registers a word leaves in flight (its load destinations)."""
    if word is None or word.mem is None or not word.mem.is_load:
        return set()
    return set(word.mem.writes())


def violates_load_delay(word: InstructionWord, previous: Optional[InstructionWord]) -> bool:
    """True when ``word`` reads a register the previous word is loading."""
    in_flight = _loaded_registers(previous)
    return bool(in_flight and (set(word.reads()) & in_flight))


def schedule_block(
    block: BasicBlock, *, reorder: bool = True, pack: bool = True
) -> ScheduledBlock:
    """Schedule one basic block into instruction words.

    With ``reorder=False`` and ``pack=False`` this degenerates to the
    Table 11 "None" level for the block: source order, one piece per
    word, no-ops inserted wherever a pipeline constraint demands one.
    """
    pieces = block.pieces
    if not pieces:
        return ScheduledBlock(block, [], None)

    dag = DependenceDag(pieces)
    total = len(pieces)
    scheduled_at: Dict[int, int] = {}
    words: List[InstructionWord] = []
    flow_pos: Optional[int] = None
    time = 0

    def ready_nodes() -> List[int]:
        out = []
        for node in dag.nodes:
            if node.index in scheduled_at:
                continue
            if all(
                pred in scheduled_at and scheduled_at[pred] + dist <= time
                for pred, dist in node.preds.items()
            ):
                out.append(node.index)
        return out

    def choose(candidates: List[int]) -> int:
        if not reorder:
            return min(candidates)  # source order
        # highest critical path first; memory pieces break ties (they
        # open a packing hole); then source order for determinism
        return max(
            candidates,
            key=lambda i: (dag.nodes[i].height, dag.nodes[i].piece.is_memory, -i),
        )

    def independent(a: int, b: int) -> bool:
        """No ordering edge of distance >= 1 between the two nodes."""
        ab = dag.nodes[a].succs.get(b)
        ba = dag.nodes[b].succs.get(a)
        return (ab is None or ab == 0) and (ba is None or ba == 0)

    while len(scheduled_at) < total:
        candidates = ready_nodes()
        if not candidates:
            words.append(InstructionWord.nop())
            time += 1
            continue

        primary = choose(candidates)
        primary_piece = pieces[primary]
        scheduled_at[primary] = time

        partner: Optional[int] = None
        if pack and not primary_piece.is_flow and not isinstance(primary_piece, Noop):
            # recompute readiness: scheduling the primary may enable a
            # distance-0 (anti-dependent) partner in the same word
            partner_candidates = ready_nodes()
            best: Optional[Tuple[int, int, Piece, Piece]] = None
            for c in partner_candidates:
                piece = pieces[c]
                if piece.is_flow or isinstance(piece, Noop):
                    continue
                if not independent(primary, c):
                    continue
                if primary_piece.is_memory and not piece.is_memory:
                    mem, alu = primary_piece, piece
                elif piece.is_memory and not primary_piece.is_memory:
                    mem, alu = piece, primary_piece
                else:
                    continue
                # the packer may rewrite the ALU piece into its packable
                # form (operand swap / reverse subtract) -- semantics
                # preserved, encoding satisfied
                packable = packable_form(alu)
                if packable is None or not can_pack(mem, packable):
                    continue
                score = dag.nodes[c].height
                if best is None or score > best[0]:
                    best = (score, c, mem, packable)
            if best is not None:
                partner = best[1]
                scheduled_at[partner] = time

        if partner is not None and best is not None:
            word = InstructionWord.packed(best[2], best[3])
        else:
            word = InstructionWord.single(primary_piece)

        if primary_piece.is_flow:
            flow_pos = len(words)
        words.append(word)
        time += 1

    # delay slots after the flow piece (filled later, or left as no-ops)
    if block.flow is not None:
        for _ in range(block.flow.delay_slots):
            words.append(InstructionWord.nop())

    return ScheduledBlock(block, words, flow_pos)


def naive_block(block: BasicBlock) -> ScheduledBlock:
    """The Table 11 "None" level: source order, no-ops wherever needed."""
    words: List[InstructionWord] = []
    flow_pos: Optional[int] = None
    previous: Optional[InstructionWord] = None
    for piece in block.pieces:
        word = InstructionWord.single(piece)
        if violates_load_delay(word, previous):
            words.append(InstructionWord.nop())
        if piece.is_flow:
            flow_pos = len(words)
        words.append(word)
        previous = words[-1]
    if block.flow is not None:
        for _ in range(block.flow.delay_slots):
            words.append(InstructionWord.nop())
    return ScheduledBlock(block, words, flow_pos)
