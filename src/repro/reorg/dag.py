"""Machine-level dependence DAG for one basic block.

Paper, section 4.2.1, step 1 of the algorithm: "Read in a basic block
and create a machine-level dag that represents the dependencies between
individual instruction pieces."

Nodes are instruction pieces (by position); edges carry the minimum
word distance from :mod:`repro.reorg.pipeline_model`.  Memory ordering
uses a small alias analysis: two references provably distinct (different
absolute addresses, or same unmodified base register with different
displacements) need no edge; everything else is conservatively ordered
("The algorithm must also avoid reordering loads and stores that might
be aliased").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.pieces import Absolute, Displacement, Load, Piece, Store
from .pipeline_model import DepKind, is_barrier, min_distance


@dataclass
class DagNode:
    """One piece and its dependence edges (indices into the block)."""

    index: int
    piece: Piece
    #: successors: node index -> required minimum word distance
    succs: Dict[int, int] = field(default_factory=dict)
    #: predecessors: node index -> required minimum word distance
    preds: Dict[int, int] = field(default_factory=dict)
    #: longest path (in words) from this node to any sink
    height: int = 0


def _addresses_disjoint(
    first: Piece, second: Piece, base_written_between: bool
) -> bool:
    """True when two memory references provably touch different words.

    Absolute addresses are *never* disjoint from each other: the
    absolute window hosts memory-mapped device registers, whose access
    order is semantics (select-then-trigger protocols), not just data.
    """
    a, b = first.addr, second.addr  # type: ignore[union-attr]
    if (
        isinstance(a, Displacement)
        and isinstance(b, Displacement)
        and a.base == b.base
        and not base_written_between
    ):
        return a.disp != b.disp
    return False


def _is_io_like(piece: Piece) -> bool:
    """Memory pieces whose order must be pinned even against other reads."""
    return piece.is_memory and isinstance(piece.addr, Absolute)  # type: ignore[union-attr]


class DependenceDag:
    """The dependence DAG over a basic block's pieces."""

    def __init__(self, pieces: Sequence[Piece]):
        self.nodes: List[DagNode] = [DagNode(i, p) for i, p in enumerate(pieces)]
        self._build()
        self._compute_heights()

    def _add_edge(self, pred: int, succ: int, kind: DepKind) -> None:
        distance = min_distance(self.nodes[pred].piece, kind)
        node = self.nodes[pred]
        if succ in node.succs:
            distance = max(distance, node.succs[succ])
        node.succs[succ] = distance
        self.nodes[succ].preds[pred] = distance

    def _build(self) -> None:
        pieces = [n.piece for n in self.nodes]
        for j, later in enumerate(pieces):
            j_reads = later.reads() | later.reads_special()
            j_writes = later.writes() | later.writes_special()
            base_written = False
            for i in range(j - 1, -1, -1):
                earlier = pieces[i]
                i_reads = earlier.reads() | earlier.reads_special()
                i_writes = earlier.writes() | earlier.writes_special()

                if is_barrier(earlier) or is_barrier(later):
                    self._add_edge(i, j, DepKind.ORDER)
                if earlier.is_flow or later.is_flow:
                    # flow ends the block: everything precedes it
                    self._add_edge(i, j, DepKind.ORDER)
                if i_writes & j_reads:
                    self._add_edge(i, j, DepKind.RAW)
                if i_reads & j_writes:
                    self._add_edge(i, j, DepKind.WAR)
                if i_writes & j_writes:
                    self._add_edge(i, j, DepKind.WAW)

                if later.is_memory and earlier.is_memory:
                    either_stores = earlier.is_store or later.is_store
                    io_pair = _is_io_like(earlier) and _is_io_like(later)
                    if io_pair or (
                        either_stores
                        and not _addresses_disjoint(earlier, later, base_written)
                    ):
                        self._add_edge(i, j, DepKind.MEM)

                # track whether any piece between i and j (exclusive)
                # rewrites j's base register, for the alias check
                if later.is_memory and isinstance(later.addr, Displacement):  # type: ignore[union-attr]
                    if later.addr.base in i_writes:  # type: ignore[union-attr]
                        base_written = True

    def _compute_heights(self) -> None:
        for node in reversed(self.nodes):
            if node.succs:
                node.height = max(
                    max(dist, 1) + self.nodes[s].height for s, dist in node.succs.items()
                )

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def roots(self) -> List[int]:
        """Nodes with no predecessors (schedulable first)."""
        return [n.index for n in self.nodes if not n.preds]

    def topological_check(self, order: Sequence[int]) -> bool:
        """True when ``order`` respects every edge direction."""
        position = {index: at for at, index in enumerate(order)}
        return all(
            position[i] < position[s] for i in position for s in self.nodes[i].succs
        )
