"""The pipeline constraints the reorganizer must honor.

The machine has **no interlock hardware** (paper section 4.2.1); these
constraints are contracts the software must satisfy, expressed here as
minimum word distances between dependent instruction pieces:

- a piece that *reads* the destination of a **load** must issue at least
  two words after it (one load delay slot);
- a piece that reads an ALU/set/move result must issue at least one word
  later (results are bypassed to the next word, but pieces packed into
  the *same* word read pre-state);
- anti-dependences (write-after-read) allow the two pieces to share a
  word -- packed pieces read the register file as it was before the
  word, so the read still observes the old value;
- output dependences (write-after-write) and memory-ordering
  dependences need one word of separation;
- a flow-control piece ends its basic block: it is scheduled last, and
  its ``delay_slots`` following words execute unconditionally.
"""

from __future__ import annotations

from enum import Enum

from ..isa.pieces import Piece

#: words between a load and the first consumer of its destination
LOAD_DELAY = 1


class DepKind(Enum):
    """Why one piece must follow another."""

    RAW = "raw"        # true dependence: reads the earlier write
    WAR = "war"        # anti-dependence: overwrites something read earlier
    WAW = "waw"        # output dependence: same destination
    MEM = "mem"        # memory ordering (potential alias)
    ORDER = "order"    # barrier ordering (flow, traps, specials)


def min_distance(pred: Piece, kind: DepKind) -> int:
    """Minimum word separation ``sched(succ) - sched(pred)``.

    Distance 0 permits the two pieces to share a packed word; distance 1
    means the successor must be in a later word; distance 2 covers the
    load delay slot.
    """
    if kind is DepKind.RAW:
        return 1 + LOAD_DELAY if pred.is_load else 1
    if kind is DepKind.WAR:
        return 0
    return 1


def is_barrier(piece: Piece) -> bool:
    """Pieces the reorganizer never moves anything across.

    Traps, return-from-surprise, and special-register traffic interact
    with state the dependence analysis does not model finely, so they
    pin the surrounding order.
    """
    from ..isa.pieces import ReadSpecial, Rfs, Trap, WriteSpecial

    return isinstance(piece, (Trap, Rfs, ReadSpecial, WriteSpecial))
