"""The postpass reorganizer: the paper's software pipeline interlocks.

"The current scheme provides the reorganization as a post-processing of
the code generator's output.  This reorganizer performs several major
functions: 1. It takes the pipeline constraints into account and
reorganizes the code to avoid interlocks when possible, and otherwise
inserts no-ops.  2. It packs instruction pieces into one 32-bit word.
3. It assembles instructions." (section 4.2.1)

The cumulative optimization levels are exactly Table 11's rows:

=================  ====================================================
``NONE``           source order, one piece per word, no-ops inserted
``REORGANIZE``     DAG scheduling to avoid no-ops
``PACK``           + pack pieces into shared words
``BRANCH_DELAY``   + fill branch delay slots (three schemes)
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..asm.program import Program
from ..isa.pieces import CompareBranch, Jump, LoadImm, LoadLabel, Piece
from ..isa.words import InstructionWord
from .blocks import FlowGraph, LabeledPiece
from .branch_delay import DelayFillStats, DelaySlotFiller
from .scheduler import ScheduledBlock, naive_block, schedule_block, violates_load_delay


class OptLevel(Enum):
    """Cumulative optimization levels (Table 11 rows)."""

    NONE = "none"
    REORGANIZE = "reorganize"
    PACK = "pack"
    BRANCH_DELAY = "branch-delay"

    @property
    def reorders(self) -> bool:
        return self is not OptLevel.NONE

    @property
    def packs(self) -> bool:
        return self in (OptLevel.PACK, OptLevel.BRANCH_DELAY)

    @property
    def fills_delay_slots(self) -> bool:
        return self is OptLevel.BRANCH_DELAY


#: Table 11 row order
ALL_LEVELS = [OptLevel.NONE, OptLevel.REORGANIZE, OptLevel.PACK, OptLevel.BRANCH_DELAY]


@dataclass
class ReorgResult:
    """The reorganized program: labeled instruction words."""

    level: OptLevel
    words: List[Tuple[List[str], InstructionWord]]
    fill_stats: Optional[DelayFillStats] = None

    @property
    def static_count(self) -> int:
        """The Table 11 metric: static instruction words, no-ops included."""
        return len(self.words)

    @property
    def noop_count(self) -> int:
        return sum(1 for _, word in self.words if word.is_nop)

    @property
    def packed_count(self) -> int:
        return sum(1 for _, word in self.words if word.is_packed)

    def to_program(self, org: int = 0, entry_symbol: Optional[str] = None) -> Program:
        """Resolve labels and encode into a runnable program image."""
        symbols: Dict[str, int] = {}
        for offset, (labels, _word) in enumerate(self.words):
            for label in labels:
                symbols[label] = org + offset
        program = Program(symbols=dict(symbols))
        for offset, (labels, word) in enumerate(self.words):
            addr = org + offset
            program.place_word(addr, _resolve_word(word, symbols))
        if entry_symbol and entry_symbol in symbols:
            program.entry = symbols[entry_symbol]
        else:
            program.entry = org
        return program

    def listing(self) -> str:
        lines = []
        for offset, (labels, word) in enumerate(self.words):
            prefix = ",".join(labels)
            lines.append(f"{offset:5d}  {prefix + ':' if prefix else '':14s}{word!r}")
        return "\n".join(lines)


def _resolve_word(word: InstructionWord, symbols: Dict[str, int]) -> InstructionWord:
    def resolve_piece(piece: Piece) -> Piece:
        if isinstance(piece, CompareBranch) and isinstance(piece.target, str):
            return CompareBranch(piece.cond, piece.s1, piece.s2, symbols[piece.target])
        if isinstance(piece, Jump) and isinstance(piece.target, str):
            return Jump(symbols[piece.target], piece.link)
        if isinstance(piece, LoadLabel):
            return LoadImm(symbols[piece.label], piece.dst)
        return piece

    if word.is_packed:
        assert word.mem is not None and word.alu is not None
        return InstructionWord.packed(resolve_piece(word.mem), resolve_piece(word.alu))
    return InstructionWord.single(resolve_piece(word.pieces[0]))


def reorganize(
    stream: Sequence[LabeledPiece],
    level: OptLevel = OptLevel.BRANCH_DELAY,
    allow_speculative_loads: bool = True,
) -> ReorgResult:
    """Run the reorganizer over a labeled piece stream."""
    graph = FlowGraph.build(list(stream))

    scheduled: List[ScheduledBlock] = []
    for block in graph.blocks:
        if level.reorders:
            scheduled.append(schedule_block(block, reorder=True, pack=level.packs))
        else:
            scheduled.append(naive_block(block))

    fill_stats: Optional[DelayFillStats] = None
    split_labels: Dict[str, Tuple[int, int]] = {}
    if level.fills_delay_slots:
        filler = DelaySlotFiller(
            graph, scheduled, allow_speculative_loads=allow_speculative_loads
        )
        fill_stats = filler.fill()
        split_labels = filler.split_labels

    # linearize: attach labels (block labels, loop-rotation split labels)
    splits_by_block: Dict[int, List[Tuple[int, str]]] = {}
    for label, (block_index, offset) in split_labels.items():
        splits_by_block.setdefault(block_index, []).append((offset, label))

    words: List[Tuple[List[str], InstructionWord]] = []
    pending_labels: List[str] = []
    for sb in scheduled:
        block_labels = ([sb.block.label] if sb.block.label else []) + pending_labels
        pending_labels = []
        split_here = dict()
        for offset, label in splits_by_block.get(sb.block.index, []):
            split_here.setdefault(offset, []).append(label)
        if not sb.words:
            pending_labels = block_labels
            continue
        for offset, word in enumerate(sb.words):
            labels = list(split_here.get(offset, []))
            if offset == 0:
                labels = block_labels + labels
            words.append((labels, word))
    if pending_labels:
        # trailing labels land on an appended no-op so they stay resolvable
        words.append((pending_labels, InstructionWord.nop()))

    # cross-block fixup: a block may end with a load whose destination
    # the (fall-through) next word reads; insert the unavoidable no-op
    fixed: List[Tuple[List[str], InstructionWord]] = []
    for labels, word in words:
        if fixed and violates_load_delay(word, fixed[-1][1]):
            fixed.append(([], InstructionWord.nop()))
        fixed.append((labels, word))

    return ReorgResult(level, fixed, fill_stats)


def reorganize_all_levels(
    stream: Sequence[LabeledPiece],
) -> Dict[OptLevel, ReorgResult]:
    """Run every Table 11 level over the same stream."""
    return {level: reorganize(stream, level) for level in ALL_LEVELS}
