"""Piece streams, basic blocks, the control-flow graph, and liveness.

The reorganizer's unit of work is the basic block ("All code
reorganization is done on a basic block basis", section 4.2.1), but the
branch-delay optimization needs a little global knowledge: which
registers are live into each successor block (the paper's Figure 4
moves an instruction into a delay slot because "r2 is 'dead' outside of
the section shown").  This module provides that knowledge with a
classic backward dataflow over the block graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..isa.pieces import CompareBranch, Jump, JumpIndirect, Piece, Trap
from ..isa.registers import Reg

#: a piece possibly carrying a label ("entry point" marker)
LabeledPiece = Tuple[Optional[str], Piece]


@dataclass
class BasicBlock:
    """A maximal straight-line piece sequence.

    ``flow`` is the block's terminating flow piece, if any (kept out of
    ``body``); blocks without one fall through to ``fallthrough``.
    """

    index: int
    label: Optional[str]
    body: List[Piece]
    flow: Optional[Piece] = None
    #: label of the taken-branch target (None for indirect/fallthrough)
    target_label: Optional[str] = None
    #: index of the next block in layout order (fall-through), if reachable
    fallthrough: Optional[int] = None

    @property
    def pieces(self) -> List[Piece]:
        """Body plus the flow piece."""
        return self.body + ([self.flow] if self.flow is not None else [])

    @property
    def falls_through(self) -> bool:
        """True when control can reach the next block in layout order.

        A conditional branch falls through on the not-taken outcome; an
        unconditional jump or an indirect jump does not.
        """
        if self.flow is None:
            return True
        if isinstance(self.flow, CompareBranch):
            return True  # not-taken path
        return False


def split_blocks(stream: Sequence[LabeledPiece]) -> List[BasicBlock]:
    """Partition a labeled piece stream into basic blocks.

    Leaders: the first piece, every labeled piece.  A flow piece (plus
    nothing -- delay slots do not exist yet at the piece level)
    terminates its block.
    """
    blocks: List[BasicBlock] = []
    current_label: Optional[str] = None
    body: List[Piece] = []

    def finish(flow: Optional[Piece] = None) -> None:
        nonlocal body, current_label
        if not body and flow is None and current_label is None:
            return
        target = None
        if isinstance(flow, (CompareBranch, Jump)) and isinstance(flow.target, str):
            target = flow.target
        blocks.append(
            BasicBlock(len(blocks), current_label, body, flow, target_label=target)
        )
        body = []
        current_label = None

    for label, piece in stream:
        if label is not None:
            finish()
            current_label = label
        if piece.is_flow:
            flow = piece
            blocks.append(
                BasicBlock(
                    len(blocks),
                    current_label,
                    body,
                    flow,
                    target_label=(
                        flow.target
                        if isinstance(flow, (CompareBranch, Jump))
                        and isinstance(flow.target, str)
                        else None
                    ),
                )
            )
            body = []
            current_label = None
        else:
            body.append(piece)
    finish()

    for block in blocks:
        if block.falls_through and block.index + 1 < len(blocks):
            block.fallthrough = block.index + 1
    return blocks


@dataclass
class FlowGraph:
    """Blocks plus label resolution and successor/predecessor maps."""

    blocks: List[BasicBlock]
    by_label: Dict[str, int] = field(default_factory=dict)
    successors: Dict[int, List[int]] = field(default_factory=dict)
    predecessors: Dict[int, List[int]] = field(default_factory=dict)

    @classmethod
    def build(cls, stream: Sequence[LabeledPiece]) -> "FlowGraph":
        blocks = split_blocks(stream)
        graph = cls(blocks)
        for block in blocks:
            if block.label is not None:
                graph.by_label[block.label] = block.index
        for block in blocks:
            succs: List[int] = []
            if block.target_label is not None and block.target_label in graph.by_label:
                succs.append(graph.by_label[block.target_label])
            if block.fallthrough is not None:
                succs.append(block.fallthrough)
            if isinstance(block.flow, JumpIndirect):
                # unknown targets: treated as exiting the stream
                pass
            graph.successors[block.index] = succs
            for s in succs:
                graph.predecessors.setdefault(s, []).append(block.index)
        for block in blocks:
            graph.predecessors.setdefault(block.index, [])
        return graph

    def taken_successor(self, block: BasicBlock) -> Optional[int]:
        if block.target_label is not None:
            return self.by_label.get(block.target_label)
        return None


def block_use_def(block: BasicBlock) -> Tuple[Set[Reg], Set[Reg]]:
    """(use, def): registers read before written / written in the block."""
    uses: Set[Reg] = set()
    defs: Set[Reg] = set()
    for piece in block.pieces:
        uses |= piece.reads() - defs
        defs |= piece.writes()
    return uses, defs


def liveness(graph: FlowGraph) -> Dict[int, FrozenSet[Reg]]:
    """Live-in register sets per block (backward dataflow to a fixpoint).

    Blocks with unknown successors (indirect jumps, traps, stream exits)
    conservatively treat **all** registers as live out.
    """
    from ..isa.registers import ALL_REGISTERS

    all_regs = frozenset(ALL_REGISTERS)
    use: Dict[int, Set[Reg]] = {}
    defs: Dict[int, Set[Reg]] = {}
    for block in graph.blocks:
        use[block.index], defs[block.index] = block_use_def(block)

    live_in: Dict[int, Set[Reg]] = {b.index: set() for b in graph.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(graph.blocks):
            succs = graph.successors[block.index]
            exits_stream = (
                not succs
                or isinstance(block.flow, (JumpIndirect, Trap))
                or (
                    block.target_label is not None
                    and block.target_label not in graph.by_label
                )
            )
            live_out: Set[Reg] = set(all_regs) if exits_stream else set()
            for s in succs:
                live_out |= live_in[s]
            new_in = use[block.index] | (live_out - defs[block.index])
            if new_in != live_in[block.index]:
                live_in[block.index] = new_in
                changed = True
    return {index: frozenset(regs) for index, regs in live_in.items()}


def live_out(graph: FlowGraph, live_in: Dict[int, FrozenSet[Reg]], index: int) -> FrozenSet[Reg]:
    """Registers live out of block ``index`` under the given live-in map."""
    from ..isa.registers import ALL_REGISTERS

    block = graph.blocks[index]
    succs = graph.successors[index]
    exits_stream = (
        not succs
        or isinstance(block.flow, (JumpIndirect, Trap))
        or (block.target_label is not None and block.target_label not in graph.by_label)
    )
    if exits_stream:
        return frozenset(ALL_REGISTERS)
    out: Set[Reg] = set()
    for s in succs:
        out |= live_in[s]
    return frozenset(out)
