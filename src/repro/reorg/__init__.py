"""The postpass reorganizer: scheduling, packing, branch-delay filling."""

from .blocks import BasicBlock, FlowGraph, LabeledPiece, liveness, split_blocks
from .branch_delay import DelayFillStats, DelaySlotFiller
from .dag import DagNode, DependenceDag
from .pipeline_model import LOAD_DELAY, DepKind, min_distance
from .reorganizer import (
    ALL_LEVELS,
    OptLevel,
    ReorgResult,
    reorganize,
    reorganize_all_levels,
)
from .scheduler import ScheduledBlock, naive_block, schedule_block, violates_load_delay

__all__ = [
    "ALL_LEVELS",
    "BasicBlock",
    "DagNode",
    "DelayFillStats",
    "DelaySlotFiller",
    "DepKind",
    "DependenceDag",
    "FlowGraph",
    "LOAD_DELAY",
    "LabeledPiece",
    "OptLevel",
    "ReorgResult",
    "ScheduledBlock",
    "liveness",
    "min_distance",
    "naive_block",
    "reorganize",
    "reorganize_all_levels",
    "schedule_block",
    "split_blocks",
    "violates_load_delay",
]
