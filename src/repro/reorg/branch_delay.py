"""Delayed-branch optimization: filling branch delay slots.

All branches are delayed ("If instruction i is a branch to L and the
branch is taken, then the sequence of instructions executed is i, i+1,
L").  Three filling schemes, straight from section 4.2.1:

1. **Hoist**: move an instruction from before the branch to after it.
   Always safe when the branch's comparison does not depend on it and
   it commutes with the words between -- it executes on both outcomes
   either way.
2. **Loop rotation**: for a backward (loop) branch, duplicate the first
   instruction of the loop into the slot and retarget the branch past
   it.  The duplicate executes spuriously on loop exit, so its writes
   must be dead on the fall-through path.
3. **Fall-through pull**: for a conditional branch, move the next
   sequential instruction into the slot.  It executes spuriously on the
   taken path, so its writes must be dead at the branch target (the
   paper's Figure 4: "it is assumed that r2 is 'dead' outside of the
   section shown").

Spurious *stores* are never allowed (Figure 4 again: "the store
instruction is not moved, as it affects memory").  Spurious *loads* are
allowed by default -- they can at worst re-fault restartably -- but can
be disabled.

Every candidate fill is validated by re-checking the whole block
against the pipeline constraints before being committed, so the filler
can never introduce a load-delay violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.pieces import CompareBranch, Jump, Piece
from ..isa.registers import ALL_REGISTERS, Reg
from ..isa.words import InstructionWord
from .blocks import FlowGraph, liveness
from .scheduler import ScheduledBlock, violates_load_delay


@dataclass
class DelayFillStats:
    """How many slots each scheme filled (and how many stayed no-ops)."""

    hoisted: int = 0
    loop_rotated: int = 0
    fallthrough_pulled: int = 0
    unfilled: int = 0

    @property
    def filled(self) -> int:
        return self.hoisted + self.loop_rotated + self.fallthrough_pulled


def _word_is_fillable(word: InstructionWord, allow_loads: bool) -> bool:
    """Can this word execute spuriously (schemes 2 and 3)?"""
    from ..isa.pieces import Absolute

    if word.is_nop or word.flow is not None:
        return False
    for piece in word.pieces:
        if piece.reads_special() or piece.writes_special():
            return False
    if word.mem is not None and word.mem.is_store:
        return False
    if word.mem is not None and word.mem.is_load:
        if not allow_loads:
            return False
        if isinstance(word.mem.addr, Absolute):
            return False  # device reads have side effects: never speculate
    return True


def _word_is_hoistable(word: InstructionWord) -> bool:
    """Can this word move from before the branch to after it (scheme 1)?"""
    if word.is_nop or word.flow is not None:
        return False
    for piece in word.pieces:
        if piece.reads_special() or piece.writes_special():
            return False
    return True


def _depends(a: InstructionWord, b: InstructionWord) -> bool:
    """Any register or memory dependence between two words."""
    from ..isa.pieces import Absolute

    a_reads, a_writes = set(a.reads()), set(a.writes())
    b_reads, b_writes = set(b.reads()), set(b.writes())
    if (a_writes & b_reads) or (a_reads & b_writes) or (a_writes & b_writes):
        return True
    if a.mem is not None and b.mem is not None:
        if a.mem.is_store or b.mem.is_store:
            return True
        # two absolute-addressed loads may be device reads: order pinned
        if isinstance(a.mem.addr, Absolute) and isinstance(b.mem.addr, Absolute):
            return True
    return False


def _block_schedule_valid(words: Sequence[InstructionWord]) -> bool:
    """No word reads a register loaded by its immediate predecessor."""
    for prev, word in zip(words, words[1:]):
        if violates_load_delay(word, prev):
            return False
    return True


class DelaySlotFiller:
    """Fills the delay slots of every scheduled block in a program."""

    def __init__(
        self,
        graph: FlowGraph,
        scheduled: List[ScheduledBlock],
        allow_speculative_loads: bool = True,
    ):
        self.graph = graph
        self.scheduled = {sb.block.index: sb for sb in scheduled}
        self.order = [sb.block.index for sb in scheduled]
        self.allow_speculative_loads = allow_speculative_loads
        self.live_in = liveness(graph)
        self.stats = DelayFillStats()
        #: labels introduced by loop rotation: label -> (block index,
        #: word offset within that block's word list)
        self.split_labels: Dict[str, Tuple[int, int]] = {}
        #: blocks that are rotation targets: their word order is pinned
        #: (a split label points into them by offset), so no later
        #: transformation may reorder or shorten their prefix
        self._rotation_targets: Set[int] = set()
        self._split_counter = 0

    # -- cross-block safety ----------------------------------------------------

    def _first_real_word(self, block_index: Optional[int]) -> Optional[InstructionWord]:
        if block_index is None:
            return None
        sb = self.scheduled.get(block_index)
        if sb is None:
            return None
        for word in sb.words:
            if not word.is_nop:
                return word
        return self._first_real_word(self.graph.blocks[block_index].fallthrough)

    def _entry_reads(self, block_index: Optional[int], known_missing_ok: bool = False) -> Set[Reg]:
        """Registers the first executed word of a successor reads."""
        word = self._first_real_word(block_index)
        if word is None:
            if block_index is None and not known_missing_ok:
                return set(ALL_REGISTERS)  # unknown successor: conservative
            return set()
        return set(word.reads())

    def _final_load_ok(self, word: InstructionWord, sb: ScheduledBlock) -> bool:
        """A load in the block's final slot must not feed a successor's entry."""
        if word.mem is None or not word.mem.is_load:
            return True
        dsts = set(word.mem.writes())
        block = sb.block
        taken = self.graph.taken_successor(block)
        if block.target_label is not None and taken is None:
            return False  # target outside the stream: unknown entry
        if taken is not None and dsts & self._entry_reads(taken):
            return False
        if block.falls_through and dsts & self._entry_reads(block.fallthrough):
            return False
        return True

    # -- the three schemes ---------------------------------------------------

    def _try_hoist(self, sb: ScheduledBlock, slot: int) -> bool:
        """Scheme 1: move a word from before the branch into the slot."""
        if sb.block.index in self._rotation_targets:
            return False  # a split label pins this block's word order
        flow_pos = sb.flow_pos
        assert flow_pos is not None
        flow_word = sb.words[flow_pos]
        flow_reads = set(flow_word.reads())
        flow_writes = set(flow_word.writes())  # jal/jalr write the link
        for k in range(flow_pos - 1, -1, -1):
            word = sb.words[k]
            if not _word_is_hoistable(word):
                continue
            if set(word.writes()) & flow_reads:
                continue  # the comparison depends on it
            if (set(word.reads()) | set(word.writes())) & flow_writes:
                # moving past the branch would see the link register's
                # NEW value (or clobber it): a jal's ra is off limits
                continue
            if any(_depends(word, other) for other in sb.words[k + 1 : flow_pos]):
                continue
            candidate = list(sb.words)
            del candidate[k]
            candidate[slot - 1] = word  # indices past k shifted down
            if not _block_schedule_valid(candidate):
                continue
            if slot - 1 == len(candidate) - 1 and not self._final_load_ok(word, sb):
                continue
            sb.words[:] = candidate
            sb.flow_pos = flow_pos - 1
            self.stats.hoisted += 1
            return True
        return False

    def _try_loop_rotate(self, sb: ScheduledBlock, slot: int) -> bool:
        """Scheme 2: duplicate the target's first word into the final slot.

        The paper states the scheme for backward loop branches; it is
        equally sound for *unconditional* jumps in either direction --
        with no fall-through path the duplicate never executes
        spuriously, so no liveness proof is needed.
        """
        block = sb.block
        target = self.graph.taken_successor(block)
        if target is None:
            return False
        unconditional = not block.falls_through
        if block.falls_through and block.fallthrough == target:
            # branch-to-next: the duplicate would execute twice on the
            # fall-through path
            return False
        target_sb = self.scheduled.get(target)
        if target_sb is None or len(target_sb.words) < 2:
            return False
        first = target_sb.words[0]
        if unconditional:
            # no spurious path: only structural restrictions apply
            if first.is_nop or first.flow is not None:
                return False
            if any(p.reads_special() or p.writes_special() for p in first.pieces):
                return False
        elif not _word_is_fillable(first, self.allow_speculative_loads):
            return False
        # spurious execution on loop exit: writes must be dead there
        if block.falls_through:
            if block.fallthrough is None:
                return False
            exit_live = self.live_in.get(block.fallthrough, frozenset(ALL_REGISTERS))
            if set(first.writes()) & set(exit_live):
                return False
        candidate = list(sb.words)
        candidate[slot] = first
        if not _block_schedule_valid(candidate):
            return False
        # the copy immediately precedes the rotated entry on the taken path
        if violates_load_delay(target_sb.words[1], first):
            return False
        if not self._final_load_ok(first, sb):
            return False
        flow = sb.words[sb.flow_pos].flow  # type: ignore[index]
        label = self._split_label(target, offset=1)
        if isinstance(flow, CompareBranch):
            new_flow: Piece = CompareBranch(flow.cond, flow.s1, flow.s2, label)
        elif isinstance(flow, Jump):
            new_flow = Jump(label, flow.link)
        else:
            return False
        candidate[sb.flow_pos] = InstructionWord.single(new_flow)  # type: ignore[index]
        sb.words[:] = candidate
        self._rotation_targets.add(target)
        self.stats.loop_rotated += 1
        return True

    def _try_fallthrough_pull(self, sb: ScheduledBlock, slot: int) -> bool:
        """Scheme 3: move the next sequential word into the final slot."""
        block = sb.block
        if not isinstance(block.flow, CompareBranch):
            return False
        ft = block.fallthrough
        if ft is None:
            return False
        if self.graph.predecessors.get(ft, []) != [block.index]:
            return False  # the word must remain in place for other entries
        if ft in self._rotation_targets:
            return False  # popping its first word would shift a split label
        ft_sb = self.scheduled.get(ft)
        if ft_sb is None or len(ft_sb.words) < 2 or ft_sb.flow_pos == 0:
            return False
        first = ft_sb.words[0]
        if not _word_is_fillable(first, self.allow_speculative_loads):
            return False
        # spurious execution on the taken path: writes dead at the target
        target = self.graph.taken_successor(block)
        if target is None:
            return False
        target_live = self.live_in.get(target, frozenset(ALL_REGISTERS))
        if set(first.writes()) & set(target_live):
            return False
        candidate = list(sb.words)
        candidate[slot] = first
        if not _block_schedule_valid(candidate):
            return False
        # on the fall-through path the pulled word now precedes the
        # remainder of the fall-through block
        if violates_load_delay(ft_sb.words[1], first):
            return False
        if not self._final_load_ok(first, sb):
            return False
        sb.words[:] = candidate
        ft_sb.words.pop(0)
        if ft_sb.flow_pos is not None:
            ft_sb.flow_pos -= 1
        self.stats.fallthrough_pulled += 1
        return True

    def _split_label(self, block_index: int, offset: int) -> str:
        block = self.graph.blocks[block_index]
        base = block.label or f"block{block_index}"
        self._split_counter += 1
        label = f"{base}__bd{self._split_counter}"
        self.split_labels[label] = (block_index, offset)
        return label

    # -- driver ----------------------------------------------------------------

    def fill(self) -> DelayFillStats:
        """Fill every delay slot it can; returns the per-scheme stats."""
        for index in self.order:
            sb = self.scheduled[index]
            if sb.flow_pos is None or sb.block.flow is None:
                continue
            delay = sb.block.flow.delay_slots
            for slot_number in range(delay):
                assert sb.flow_pos is not None
                slot = sb.flow_pos + 1 + slot_number
                if slot >= len(sb.words) or not sb.words[slot].is_nop:
                    continue
                # preference order: hoist and pull each shrink the
                # program by a word; rotation only converts the no-op
                # into useful (duplicated) work
                final_slot = slot_number == delay - 1
                if self._try_hoist(sb, slot):
                    continue
                if final_slot and self._try_fallthrough_pull(sb, slot):
                    continue
                if final_slot and self._try_loop_rotate(sb, slot):
                    continue
                self.stats.unfilled += 1
        return self.stats
