"""The systems layer: paging, devices, the kernel, free-cycle DMA."""

from ..sim.surprise import SurpriseRegister  # re-export: architecturally here
from .devices import (
    Console,
    DeviceBus,
    Disk,
    InterruptController,
    MachineHalt,
)
from .dma import DmaTransfer, FreeCycleDma, run_with_dma
from .kernel import (
    Kernel,
    MAX_PROCESSES,
    PROCESS_SPACE,
    Process,
    SEG_MASK_BITS,
    SYS_EXIT,
    SYS_READ_INT,
    SYS_WRITE_CHAR,
    SYS_WRITE_INT,
    SYS_YIELD,
    build_kernel_program,
)
from .mapping import (
    ENTRY_VALID,
    MappedMemory,
    PAGE_SHIFT,
    PAGE_WORDS,
    PageMap,
    PageMapStats,
)

__all__ = [
    "Console",
    "DeviceBus",
    "Disk",
    "DmaTransfer",
    "ENTRY_VALID",
    "FreeCycleDma",
    "InterruptController",
    "Kernel",
    "MAX_PROCESSES",
    "MachineHalt",
    "MappedMemory",
    "PAGE_SHIFT",
    "PAGE_WORDS",
    "PROCESS_SPACE",
    "PageMap",
    "PageMapStats",
    "Process",
    "SEG_MASK_BITS",
    "SYS_EXIT",
    "SYS_READ_INT",
    "SYS_WRITE_CHAR",
    "SYS_WRITE_INT",
    "SYS_YIELD",
    "SurpriseRegister",
    "build_kernel_program",
    "run_with_dma",
]
