"""The mini operating system: a ROM dispatch routine plus handlers,
written in MIPS assembly, exactly as the paper prescribes.

Section 3.3: "the program counter is zeroed so that execution begins at
the start of the first physical page.  The standard dispatch routine
that resides at address zero saves the return addresses, the surprise
register, and a small number of the general purpose registers....  the
dispatch routine looks at the saved surprise register to determine what
actually happened ... extracting from the top of the surprise register
the two exception cause fields, and using the fields as an index into a
jump table."

The kernel implements:

- **dispatch** at physical 0: saves ``r0``-``r7``, the three return
  addresses, and the surprise register; indexes the jump table by the
  major cause;
- **demand paging**: the page-fault handler allocates a frame, has the
  disk controller copy the backing page in, and installs the map entry;
  a fault with no pending map miss is an on-chip segmentation violation
  and kills the process ("the operating system then has the option of
  ... or terminating the offending process");
- **monitor calls** (software traps): halt, write-integer, write-char,
  read-integer, yield;
- **interrupts**: the global handler queries the external
  prioritization logic (the interrupt controller device) for the
  source;
- **context switching** between processes, round-robin on the timer;
  the on-chip segmentation means a switch only rewrites ``segpid``,
  never the page map (section 3.2: "most context switches do not
  require changes to the memory map").

The kernel source is a piece stream run through the same postpass
reorganizer as everything else -- the ROM is scheduled code, not magic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..asm.program import Program
from ..asm.assembler import assemble_pieces
from ..isa.bits import u32
from ..reorg.reorganizer import OptLevel, reorganize
from ..sim.cpu import Cpu, HazardMode
from ..sim.memory import PhysicalMemory
from .devices import (
    CONSOLE_CHAR,
    CONSOLE_IN,
    CONSOLE_INT,
    DISK_FRAME,
    DISK_PAGE,
    DISK_STORE,
    HALT,
    INT_SOURCE,
    INT_TIMER,
    OUT_PID,
    PM_ENTRY,
    PM_FAULT,
    PM_INDEX,
    PM_VICTIM,
    Console,
    DeviceBus,
    Disk,
    InterruptController,
    MachineHalt,
)
from .mapping import ENTRY_VALID, PAGE_SHIFT, VICTIM_DIRTY, MappedMemory, PageMap

# ---------------------------------------------------------------------------
# physical memory layout
# ---------------------------------------------------------------------------

SAVE_AREA = 0x300      # r0..r7, surprise, xra0..xra2
SAVE_R = [SAVE_AREA + i for i in range(8)]
SAVE_SR = SAVE_AREA + 8
SAVE_X = [SAVE_AREA + 9 + i for i in range(3)]

KVARS = 0x310
KVAR_CURPID = KVARS + 0
KVAR_NEXTFRAME = KVARS + 1
KVAR_NPROCS = KVARS + 2

JUMPTABLE = 0x320       # 16 entries indexed by major cause

PROC_TABLE = 0x340      # 32-word entries
PROC_ENTRY_WORDS = 32
PROC_STATE = 20         # 0 empty, 1 runnable, 2 done
MAX_PROCESSES = 16

FIRST_FRAME = 16        # user frames start at physical 0x1000

#: on-chip segmentation: 4 masked bits -> 16 processes x 1M words
SEG_MASK_BITS = 4
PROCESS_SPACE = 1 << (24 - SEG_MASK_BITS)

#: initial user stack pointer, in the *top* region of the 32-bit space
USER_STACK_TOP = u32(-16)

# monitor call numbers (match the bare-metal Machine conventions)
SYS_EXIT = 0
SYS_WRITE_INT = 1
SYS_WRITE_CHAR = 2
SYS_READ_INT = 3
SYS_YIELD = 4

_CAUSE_HANDLERS = {
    1: "h_fatal",    # reset re-entry: not expected after boot
    2: "h_int",
    3: "h_trap",
    4: "h_kill",     # overflow
    5: "h_pf",
    6: "h_kill",     # privilege violation
    7: "h_kill",     # illegal instruction
    8: "h_kill",     # bus error
}


def _kernel_source(frame_limit: int) -> str:
    """The kernel, with the physical layout constants folded in.

    ``frame_limit`` is the first frame number beyond the allocatable
    pool; once the bump allocator reaches it, the page-fault handler
    evicts (clock victim, dirty write-back) instead of allocating.
    """
    save_r = "\n".join(f"        st r{i}, @{SAVE_R[i]}" for i in range(8))
    save_cur = "\n".join(
        f"        ld @{SAVE_R[i]}, r4\n        st r4, {i}(r3)" for i in range(8)
    )
    save_high = "\n".join(f"        st r{i}, {i}(r3)" for i in range(8, 16))
    load_cur = "\n".join(
        f"        ld {i}(r3), r4\n        st r4, @{SAVE_R[i]}" for i in range(8)
    )
    load_high = "\n".join(f"        ld {i}(r3), r{i}" for i in range(8, 16))
    restore_r = "\n".join(f"        ld @{SAVE_R[i]}, r{i}" for i in range(7, -1, -1))
    return f"""
dispatch:
{save_r}
        rdspec surprise, r1
        st r1, @{SAVE_SR}
        rdspec xra0, r2
        st r2, @{SAVE_X[0]}
        rdspec xra1, r2
        st r2, @{SAVE_X[1]}
        rdspec xra2, r2
        st r2, @{SAVE_X[2]}
        srl r1, #8, r3
        and r3, #15, r3
        lim {JUMPTABLE}, r4
        add r4, r3, r4
        ld 0(r4), r5
        jmpr r5

h_trap: ld @{SAVE_SR}, r1
        srl r1, #12, r1
        beq r1, #{SYS_EXIT}, h_kill
        beq r1, #{SYS_WRITE_INT}, t_wint
        beq r1, #{SYS_WRITE_CHAR}, t_wchar
        beq r1, #{SYS_READ_INT}, t_rint
        beq r1, #{SYS_YIELD}, c_switch
        jmp h_kill

t_wint: ld @{KVAR_CURPID}, r2
        st r2, @{OUT_PID}
        ld @{SAVE_R[1]}, r2
        st r2, @{CONSOLE_INT}
        jmp k_return

t_wchar:
        ld @{KVAR_CURPID}, r2
        st r2, @{OUT_PID}
        ld @{SAVE_R[1]}, r2
        st r2, @{CONSOLE_CHAR}
        jmp k_return

t_rint: ld @{CONSOLE_IN}, r2
        st r2, @{SAVE_R[1]}
        jmp k_return

h_int:  ld @{INT_SOURCE}, r1
        beq r1, #{INT_TIMER}, c_switch
        jmp k_return

h_pf:   ld @{PM_FAULT}, r1
        add r1, #1, r2
        beq r2, #0, h_kill
        srl r1, #{PAGE_SHIFT}, r2
        ld @{KVAR_NEXTFRAME}, r3
        lim {frame_limit}, r4
        blo r3, r4, pf_fresh
        ld @{PM_VICTIM}, r5
        lim {VICTIM_DIRTY}, r6
        and r5, r6, r7
        sub r5, r7, r5
        st r5, @{PM_INDEX}
        ld @{PM_ENTRY}, r3
        lim {ENTRY_VALID - 1}, r4
        and r3, r4, r3
        mov #0, r4
        st r4, @{PM_ENTRY}
        beq r7, #0, pf_load
        st r5, @{DISK_PAGE}
        st r3, @{DISK_STORE}
        jmp pf_load
pf_fresh:
        add r3, #1, r4
        st r4, @{KVAR_NEXTFRAME}
pf_load:
        st r2, @{DISK_PAGE}
        st r3, @{DISK_FRAME}
        st r2, @{PM_INDEX}
        lim {ENTRY_VALID}, r5
        or r3, r5, r5
        st r5, @{PM_ENTRY}
        jmp k_return

h_kill: ld @{KVAR_CURPID}, r1
        sll r1, #5, r2
        lim {PROC_TABLE}, r3
        add r3, r2, r3
        mov #2, r4
        st r4, {PROC_STATE}(r3)
        jmp schedule

c_switch:
        ld @{KVAR_CURPID}, r1
        sll r1, #5, r2
        lim {PROC_TABLE}, r3
        add r3, r2, r3
{save_cur}
{save_high}
        ld @{SAVE_SR}, r4
        st r4, 16(r3)
        ld @{SAVE_X[0]}, r4
        st r4, 17(r3)
        ld @{SAVE_X[1]}, r4
        st r4, 18(r3)
        ld @{SAVE_X[2]}, r4
        st r4, 19(r3)
        jmp schedule

schedule:
        ld @{KVAR_CURPID}, r1
        ld @{KVAR_NPROCS}, r5
        mov r5, r6
sched_loop:
        beq r6, #0, all_done
        add r1, #1, r1
        blo r1, r5, sched_ok
        mov #0, r1
sched_ok:
        sll r1, #5, r2
        lim {PROC_TABLE}, r3
        add r3, r2, r3
        ld {PROC_STATE}(r3), r4
        beq r4, #1, sched_found
        sub r6, #1, r6
        jmp sched_loop

sched_found:
        st r1, @{KVAR_CURPID}
        wrspec r1, segpid
{load_cur}
        ld 16(r3), r4
        st r4, @{SAVE_SR}
        ld 17(r3), r4
        st r4, @{SAVE_X[0]}
        ld 18(r3), r4
        st r4, @{SAVE_X[1]}
        ld 19(r3), r4
        st r4, @{SAVE_X[2]}
{load_high}
        jmp k_return

all_done:
        st r0, @{HALT}
        jmp all_done

h_fatal:
        st r0, @{HALT}
        jmp h_fatal

k_return:
        ld @{SAVE_X[0]}, r1
        wrspec r1, xra0
        ld @{SAVE_X[1]}, r1
        wrspec r1, xra1
        ld @{SAVE_X[2]}, r1
        wrspec r1, xra2
        ld @{SAVE_SR}, r1
        wrspec r1, surprise
{restore_r}
        rfs
"""


def build_kernel_program(frame_limit: int = 1 << 19) -> Program:
    """Assemble the kernel ROM through the standard toolchain."""
    stream = assemble_pieces(_kernel_source(frame_limit))
    result = reorganize(stream, OptLevel.BRANCH_DELAY)
    program = result.to_program(org=0, entry_symbol="dispatch")
    if program.code_size > SAVE_AREA:
        raise RuntimeError(
            f"kernel ROM ({program.code_size} words) overruns its region"
        )
    return program


# ---------------------------------------------------------------------------
# processes and the machine harness
# ---------------------------------------------------------------------------


@dataclass
class Process:
    """Bookkeeping for one user process."""

    pid: int
    program: Program
    state: str = "runnable"

    @property
    def base_sysva(self) -> int:
        return self.pid * PROCESS_SPACE


def _initial_saved_surprise() -> int:
    """The surprise value saved for a not-yet-run process.

    Current state: supervisor (the kernel is running when this value is
    live); previous state: user, interrupts on, mapping on, overflow
    traps on -- what ``rfs`` installs when the process first runs.
    """
    from ..sim.surprise import SurpriseRegister
    from ..sim.faults import ExceptionCause

    sr = SurpriseRegister()
    sr.supervisor = False
    sr.interrupts_enabled = True
    sr.mapping_enabled = True
    sr.overflow_traps_enabled = True
    sr.enter_exception(ExceptionCause.NONE, 0)
    return sr.value


class Kernel:
    """Boots the machine: ROM + devices + processes, then runs it."""

    def __init__(
        self,
        memory_size: int = 1 << 22,
        quantum: int = 0,
        hazard_mode: HazardMode = HazardMode.BARE,
        inputs: Optional[List[int]] = None,
        max_frames: Optional[int] = None,
    ):
        """``max_frames`` caps the user frame pool; once exhausted the
        page-fault handler evicts with the clock algorithm instead of
        allocating (demand paging with replacement)."""
        self.physical = PhysicalMemory(memory_size)
        self.pagemap = PageMap()
        self.memory = MappedMemory(self.physical, self.pagemap)
        self.console = Console(inputs=list(inputs or []))
        self.disk = Disk(self.physical)
        self.interrupts = InterruptController()
        self.memory.devices = DeviceBus(
            self.console, self.pagemap, self.disk, self.interrupts
        )
        self.cpu = Cpu(self.memory, hazard_mode=hazard_mode, vectored_exceptions=True)
        self.interrupts.attach(self._clear_interrupt_line)
        self.quantum = quantum
        from .devices import DEV_BASE

        pool_end = min(memory_size, DEV_BASE) >> PAGE_SHIFT
        if max_frames is not None:
            pool_end = min(pool_end, FIRST_FRAME + max_frames)
        self.frame_limit = pool_end
        self.kernel_program = build_kernel_program(frame_limit=pool_end)
        self.processes: List[Process] = []
        self.booted = False
        self.halted = False
        self.steps_run = 0
        #: cycle count at which the next quantum interrupt fires
        self._next_timer = 0
        #: word count below which the timer line stays quiet -- the
        #: chaos engine's "device stall" injection parks this in the
        #: future and recovery is the scheduler resuming preemption
        self._timer_stall_until = 0

    def _clear_interrupt_line(self) -> None:
        self.cpu.interrupt_line = False

    # -- setup ---------------------------------------------------------------

    def add_process(self, program: Program) -> Process:
        if len(self.processes) >= MAX_PROCESSES:
            raise RuntimeError("process table full")
        process = Process(len(self.processes), program)
        self.processes.append(process)
        return process

    def boot(self) -> None:
        """Install the ROM, the jump table, and the process table."""
        if not self.processes:
            raise RuntimeError("no processes to run")
        self.physical.load_image(self.kernel_program.memory)
        for cause in range(16):
            handler = _CAUSE_HANDLERS.get(cause, "h_fatal")
            self.physical.poke(JUMPTABLE + cause, self.kernel_program.symbol(handler))
        self.physical.poke(KVAR_CURPID, len(self.processes) - 1)
        self.physical.poke(KVAR_NEXTFRAME, FIRST_FRAME)
        self.physical.poke(KVAR_NPROCS, len(self.processes))

        saved_surprise = _initial_saved_surprise()
        for process in self.processes:
            self.disk.register_image(process.base_sysva, process.program.memory)
            entry_base = PROC_TABLE + process.pid * PROC_ENTRY_WORDS
            for i in range(16):
                self.physical.poke(entry_base + i, 0)
            self.physical.poke(entry_base + 14, USER_STACK_TOP)  # sp
            self.physical.poke(entry_base + 16, saved_surprise)
            entry = process.program.entry
            self.physical.poke(entry_base + 17, entry)
            self.physical.poke(entry_base + 18, entry + 1)
            self.physical.poke(entry_base + 19, entry + 2)
            self.physical.poke(entry_base + PROC_STATE, 1)

        # the CPU wakes in the kernel, about to schedule process 0
        self.cpu.seg_mask = SEG_MASK_BITS
        self.cpu.surprise.value = 1  # supervisor; everything else off
        self.cpu.pc = self.kernel_program.symbol("schedule")
        self._next_timer = self.quantum
        self.booted = True

    # -- running -----------------------------------------------------------------

    def run(self, max_steps: int = 20_000_000, fast: bool = True, jit: bool = False) -> None:
        """Run until every process exits (the kernel halts the machine).

        ``fast=True`` batches kernel-mode execution through the
        threaded-code engine (:mod:`repro.sim.fastpath`).  The timer
        stays exact under batching: the engine is bounded by
        ``cycle_limit`` and fast words are one cycle each, so the
        interrupt is raised at the same step boundary the per-step loop
        (retained under ``fast=False``) would have used.  ``jit=True``
        adds superblock fusion on top; results stay bit-identical.
        """
        self.run_steps(max_steps, fast=fast, jit=jit)
        if not self.halted:
            raise TimeoutError(f"kernel did not finish within {max_steps} steps")

    def run_steps(self, budget: int, fast: bool = True, jit: bool = False) -> int:
        """Execute at most ``budget`` instruction words; returns the count.

        Stops early when the kernel halts the machine (setting
        :attr:`halted`).  Timer state persists across calls, so chunked
        execution delivers quantum interrupts at exactly the step
        boundaries a single :meth:`run` would -- the resumable primitive
        the chaos engine pauses on between injections.
        """
        if not self.booted:
            self.boot()
        engine = self.cpu.fastpath() if fast else None
        if engine is not None and jit:
            engine.enable_jit()
        stats = self.cpu.stats
        done = 0
        try:
            while done < budget:
                if (
                    self.quantum
                    and stats.cycles >= self._next_timer
                    and stats.words >= self._timer_stall_until
                ):
                    self.interrupts.raise_source(INT_TIMER)
                    self.cpu.interrupt_line = True
                    self._next_timer = stats.cycles + self.quantum
                if engine is not None:
                    limit = self._next_timer if self.quantum else None
                    chunk = budget - done
                    if self.quantum and stats.words < self._timer_stall_until:
                        # stalled timer: the line is quiet, so run flat
                        # out -- but only to the stall's expiry, so both
                        # engines observe the deferred interrupt at the
                        # identical word boundary
                        limit = None
                        chunk = min(chunk, self._timer_stall_until - stats.words)
                    done += engine.run(chunk, cycle_limit=limit)
                else:
                    self.cpu.step()
                    done += 1
        except MachineHalt:
            if engine is not None:
                done += engine.last_run_steps
            self.halted = True
        finally:
            self.steps_run += done
        return done

    # -- results -------------------------------------------------------------------

    def counter_groups(self):
        """Observability counter groups, including page-map traffic.

        The ``system`` group picks up this kernel's live page-map
        statistics; attach a profiler before :meth:`boot` to populate
        the per-PC-derived groups as well.
        """
        from ..perf.counters import collect

        return collect(self.cpu, pagemap=self.pagemap)

    def output(self, pid: int) -> List[int]:
        return self.console.outputs.get(pid, [])

    def output_text(self, pid: int) -> str:
        return self.console.text(pid)

    def process_state(self, pid: int) -> int:
        return self.physical.peek(PROC_TABLE + pid * PROC_ENTRY_WORDS + PROC_STATE)
