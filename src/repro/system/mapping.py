"""The off-chip page map (paper section 3.1).

"In the MIPS architecture we attempt to achieve a good compromise by
combining an optional page-level mapping unit off-chip with a simple
yet elegant address space segmentation mechanism on-chip."

The on-chip half (masking + PID insertion, the two-region check) lives
in :meth:`repro.sim.cpu.Cpu.translate`; this module is the off-chip
half: a page table over the 16M-word *system* virtual space, shared by
all processes (the PID was already folded into the address, so the map
needs no per-process tags).

The map is programmed through memory-mapped device registers (see
:mod:`repro.system.devices`): the kernel selects a page with
``PM_INDEX`` and reads/writes its entry through ``PM_ENTRY``.  A miss
records the faulting address (readable at ``PM_FAULT``) and raises
:class:`~repro.sim.faults.PageFault`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim.faults import PageFault
from ..sim.memory import PhysicalMemory

#: words per page (2**8 = 256)
PAGE_SHIFT = 8
PAGE_WORDS = 1 << PAGE_SHIFT

#: the valid bit in a page-map entry (the rest is the frame number)
ENTRY_VALID = 1 << 19
_FRAME_MASK = ENTRY_VALID - 1

#: set in the PM_VICTIM register value when the suggested page is dirty
#: (bit 19 is free: system pages number at most 2**16)
VICTIM_DIRTY = 1 << 19


@dataclass
class PageMapStats:
    translations: int = 0
    faults: int = 0
    victims_suggested: int = 0


class PageMap:
    """System-virtual-page -> physical-frame map with valid bits."""

    def __init__(self) -> None:
        self.entries: Dict[int, int] = {}  # page -> frame
        self.referenced: Dict[int, bool] = {}
        self.dirty: Dict[int, bool] = {}
        self.stats = PageMapStats()
        #: last faulting system virtual address; None when nothing pending
        self.pending_fault: Optional[int] = None
        #: clock hand for victim suggestion (a page number)
        self._clock_hand: int = -1
        #: called (no arguments) after every map/unmap -- the fast-path
        #: JIT registers here to drop fused superblocks on remaps
        self.change_hook = None

    def map_page(self, page: int, frame: int) -> None:
        self.entries[page] = frame
        self.referenced[page] = False
        self.dirty[page] = False
        if self.change_hook is not None:
            self.change_hook()

    def unmap_page(self, page: int) -> None:
        self.entries.pop(page, None)
        self.referenced.pop(page, None)
        self.dirty.pop(page, None)
        if self.change_hook is not None:
            self.change_hook()

    def entry_value(self, page: int) -> int:
        """The PM_ENTRY register view of a page's entry."""
        if page in self.entries:
            return self.entries[page] | ENTRY_VALID
        return 0

    def set_entry_value(self, page: int, value: int) -> None:
        if value & ENTRY_VALID:
            self.map_page(page, value & _FRAME_MASK)
        else:
            self.unmap_page(page)

    def translate(self, sysva: int, is_write: bool = False) -> int:
        """System virtual word address -> physical word address."""
        page, offset = sysva >> PAGE_SHIFT, sysva & (PAGE_WORDS - 1)
        frame = self.entries.get(page)
        if frame is None:
            self.stats.faults += 1
            self.pending_fault = sysva
            raise PageFault(sysva, is_write=is_write)
        self.stats.translations += 1
        self.referenced[page] = True
        if is_write:
            self.dirty[page] = True
        return (frame << PAGE_SHIFT) | offset

    def suggest_victim(self) -> int:
        """The PM_VICTIM register: a page to evict, clock-chosen.

        Second-chance over the mapped pages in page-number order:
        referenced pages get their bit cleared and are skipped once.
        The value is ``page | VICTIM_DIRTY`` when the page has been
        written since it was mapped (the kernel must write it back).
        All-ones when nothing is mapped.
        """
        pages = sorted(self.entries)
        if not pages:
            return 0xFFFFFFFF
        # start scanning after the hand, cyclically
        start = 0
        for i, page in enumerate(pages):
            if page > self._clock_hand:
                start = i
                break
        order = pages[start:] + pages[:start]
        for _sweep in range(2):
            for page in order:
                if self.referenced.get(page, False):
                    self.referenced[page] = False
                    continue
                self._clock_hand = page
                self.stats.victims_suggested += 1
                if self.dirty.get(page, False):
                    return page | VICTIM_DIRTY
                return page
        # everything referenced twice over (cannot happen after the
        # clearing sweep, but stay total): take the first
        page = order[0]
        self._clock_hand = page
        self.stats.victims_suggested += 1
        return page | (VICTIM_DIRTY if self.dirty.get(page, False) else 0)

    def take_pending_fault(self) -> int:
        """The PM_FAULT register: last fault address, cleared on read.

        Returns all-ones when no translation fault is pending -- which
        is how the kernel distinguishes a map miss (demand-page it) from
        an on-chip segmentation violation (kill the process).
        """
        if self.pending_fault is None:
            return 0xFFFFFFFF
        fault, self.pending_fault = self.pending_fault, None
        return fault


class MappedMemory:
    """The CPU's memory port: page map in front of physical memory.

    ``mapped`` accesses travel through the page map; physical
    (supervisor, mapping-off) accesses go straight through, with the
    device bus -- when attached -- claiming its address window.
    """

    def __init__(self, physical: PhysicalMemory, pagemap: Optional[PageMap] = None):
        self.physical = physical
        self.pagemap = pagemap if pagemap is not None else PageMap()
        #: optional device bus for memory-mapped I/O (physical accesses)
        self.devices = None  # type: Optional["DeviceBus"]  # noqa: F821

    def read(
        self, addr: int, *, supervisor: bool = True, fetch: bool = False, mapped: bool = False
    ) -> int:
        if mapped:
            addr = self.pagemap.translate(addr, is_write=False)
        elif self.devices is not None and self.devices.claims(addr):
            return self.devices.read(addr, supervisor=supervisor)
        return self.physical.read(addr, supervisor=supervisor, fetch=fetch)

    def write(
        self, addr: int, value: int, *, supervisor: bool = True, mapped: bool = False
    ) -> None:
        if mapped:
            addr = self.pagemap.translate(addr, is_write=True)
        elif self.devices is not None and self.devices.claims(addr):
            self.devices.write(addr, value, supervisor=supervisor)
            return
        self.physical.write(addr, value, supervisor=supervisor)
