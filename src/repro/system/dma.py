"""Free-memory-cycle DMA (paper section 3.1).

"Since memory cycles are allocated to instructions, just as ALU or
register access resources, an instruction that did not include a load
or store piece would waste some of the memory bandwidth.  Dynamic
simulations indicated that the wasted bandwidth came close to 40% of
the available bandwidth.  To make use of the otherwise unused memory
slots, a status pin on the processor indicates the presence of an
upcoming free memory cycle.  Thus, these cycles can be used for DMA,
I/O or cache write-backs."

:class:`FreeCycleDma` models a block-transfer engine wired to that
status pin: it is stepped once per executed instruction word and moves
one word per *free* cycle.  The experiment in
:mod:`repro.experiments.free_cycles` measures both the free-cycle
fraction (the paper's ~40%) and the DMA throughput obtained without
stealing any processor cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.cpu import Cpu
from ..sim.machine import Machine
from ..sim.memory import PhysicalMemory


@dataclass
class DmaTransfer:
    """One queued block transfer (word addresses, physical)."""

    source: int
    dest: int
    length: int
    moved: int = 0

    @property
    def done(self) -> bool:
        return self.moved >= self.length


class FreeCycleDma:
    """A DMA engine that only consumes the processor's free memory cycles."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self.queue: List[DmaTransfer] = []
        self.words_moved = 0
        self.cycles_used = 0
        self.cycles_offered = 0

    def enqueue(self, source: int, dest: int, length: int) -> DmaTransfer:
        transfer = DmaTransfer(source, dest, length)
        self.queue.append(transfer)
        return transfer

    @property
    def busy(self) -> bool:
        return any(not t.done for t in self.queue)

    def offer_free_cycle(self) -> bool:
        """The status pin fired: move one word if work is queued."""
        self.cycles_offered += 1
        while self.queue and self.queue[0].done:
            self.queue.pop(0)
        if not self.queue:
            return False
        transfer = self.queue[0]
        value = self.memory.peek(transfer.source + transfer.moved)
        self.memory.poke(transfer.dest + transfer.moved, value)
        transfer.moved += 1
        self.words_moved += 1
        self.cycles_used += 1
        return True


def run_with_dma(
    machine: Machine, dma: FreeCycleDma, max_steps: int = 5_000_000
) -> Tuple[int, int]:
    """Run a machine, driving the DMA engine from the free-cycle pin.

    Returns ``(instruction_words_executed, dma_words_moved)``.
    """
    from ..sim.faults import Halted

    cpu = machine.cpu
    for _ in range(max_steps):
        free_before = cpu.stats.free_memory_cycles
        try:
            cpu.step()
        except Halted:
            return cpu.stats.words, dma.words_moved
        if cpu.stats.free_memory_cycles > free_before:
            dma.offer_free_cycle()
    raise TimeoutError("program did not halt")
