"""Memory-mapped devices on the physical bus.

The paper keeps the processor's system interfaces minimal -- a single
interrupt line, a status pin for free memory cycles, and "the exterior
mapping unit and any peripherals on the virtual address bus must be
protected from user level processes" (section 3.2).  Here the
peripherals sit in a supervisor-only physical window:

=============  ====  ==============================================
register       off   behaviour
=============  ====  ==============================================
CONSOLE_INT    +0    store: write integer (tagged with OUT_PID)
CONSOLE_CHAR   +1    store: write character
CONSOLE_IN     +2    load: next queued input integer
INT_SOURCE     +3    load: pending interrupt source id; clears the line
PM_FAULT       +4    load: last page-map fault address (all-ones: none)
PM_INDEX       +5    store: select a page-map entry
PM_ENTRY       +6    load/store: the selected entry (frame | VALID)
DISK_PAGE      +7    store: select a backing-store page
DISK_FRAME     +8    store: copy the selected page into this frame
HALT           +9    store: stop the machine
OUT_PID        +10   store: tag subsequent console output
=============  ====  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.faults import BusError, PrivilegeViolation
from ..sim.memory import PhysicalMemory
from .mapping import PAGE_WORDS, PageMap

# the device window must be reachable with a 21-bit absolute address
DEV_BASE = 0x1FF000
DEV_WORDS = 16

CONSOLE_INT = DEV_BASE + 0
CONSOLE_CHAR = DEV_BASE + 1
CONSOLE_IN = DEV_BASE + 2
INT_SOURCE = DEV_BASE + 3
PM_FAULT = DEV_BASE + 4
PM_INDEX = DEV_BASE + 5
PM_ENTRY = DEV_BASE + 6
DISK_PAGE = DEV_BASE + 7
DISK_FRAME = DEV_BASE + 8
HALT = DEV_BASE + 9
OUT_PID = DEV_BASE + 10
#: load: a clock-chosen eviction candidate (page | VICTIM_DIRTY)
PM_VICTIM = DEV_BASE + 11
#: store: write the frame's contents back to the selected backing page
DISK_STORE = DEV_BASE + 12

#: interrupt source ids
INT_NONE = 0
INT_TIMER = 1


class MachineHalt(Exception):
    """Raised by a store to the HALT register; ends the kernel run loop."""


@dataclass
class Console:
    """Per-process console output plus a shared input queue."""

    outputs: Dict[int, List[int]] = field(default_factory=dict)
    char_outputs: Dict[int, List[str]] = field(default_factory=dict)
    inputs: List[int] = field(default_factory=list)
    current_pid: int = 0

    def write_int(self, value: int) -> None:
        signed = value - (1 << 32) if value & (1 << 31) else value
        self.outputs.setdefault(self.current_pid, []).append(signed)

    def write_char(self, value: int) -> None:
        self.char_outputs.setdefault(self.current_pid, []).append(chr(value & 0xFF))

    def read_int(self) -> int:
        return (self.inputs.pop(0) & 0xFFFFFFFF) if self.inputs else 0

    def text(self, pid: int) -> str:
        return "".join(self.char_outputs.get(pid, []))


class Disk:
    """The backing store: page images copied into frames by 'DMA'.

    Pages are keyed by *system* virtual page number (PID already folded
    in).  Unregistered pages read as zero -- demand-zero allocation.
    """

    def __init__(self, physical: PhysicalMemory):
        self.physical = physical
        self.pages: Dict[int, List[int]] = {}
        self.copies = 0
        self.writebacks = 0
        self._selected_page = 0

    def register_image(self, base_sysva: int, image: Dict[int, int]) -> None:
        """Scatter a program image (va -> word) into backing pages."""
        for addr, value in image.items():
            sysva = base_sysva + addr
            page, offset = sysva >> 8, sysva & (PAGE_WORDS - 1)
            self.pages.setdefault(page, [0] * PAGE_WORDS)[offset] = value

    def select(self, page: int) -> None:
        self._selected_page = page

    def copy_to_frame(self, frame: int) -> None:
        content = self.pages.get(self._selected_page)
        base = frame << 8
        if content is None:
            for i in range(PAGE_WORDS):
                self.physical.poke(base + i, 0)
        else:
            for i, value in enumerate(content):
                self.physical.poke(base + i, value)
        self.copies += 1

    def store_from_frame(self, frame: int) -> None:
        """Write a frame back to the selected backing page (eviction)."""
        base = frame << 8
        self.pages[self._selected_page] = [
            self.physical.peek(base + i) for i in range(PAGE_WORDS)
        ]
        self.writebacks += 1


class InterruptController:
    """The external prioritization logic the kernel queries (section 3.3)."""

    def __init__(self) -> None:
        self.pending: List[int] = []
        self._clear_line: Optional[Callable[[], None]] = None

    def attach(self, clear_line: Callable[[], None]) -> None:
        self._clear_line = clear_line

    def raise_source(self, source: int) -> None:
        if source not in self.pending:
            self.pending.append(source)

    def acknowledge(self) -> int:
        source = self.pending.pop(0) if self.pending else INT_NONE
        if not self.pending and self._clear_line is not None:
            self._clear_line()
        return source


class DeviceBus:
    """Routes physical accesses in the device window."""

    def __init__(self, console: Console, pagemap: PageMap, disk: Disk,
                 interrupts: InterruptController):
        self.console = console
        self.pagemap = pagemap
        self.disk = disk
        self.interrupts = interrupts
        self._pm_index = 0

    def claims(self, addr: int) -> bool:
        return DEV_BASE <= addr < DEV_BASE + DEV_WORDS

    def read(self, addr: int, *, supervisor: bool = True) -> int:
        if not supervisor:
            raise PrivilegeViolation("user access to device window")
        if addr == CONSOLE_IN:
            return self.console.read_int()
        if addr == INT_SOURCE:
            return self.interrupts.acknowledge()
        if addr == PM_FAULT:
            return self.pagemap.take_pending_fault()
        if addr == PM_ENTRY:
            return self.pagemap.entry_value(self._pm_index)
        if addr == PM_VICTIM:
            return self.pagemap.suggest_victim()
        raise BusError(addr)

    def write(self, addr: int, value: int, *, supervisor: bool = True) -> None:
        if not supervisor:
            raise PrivilegeViolation("user access to device window")
        if addr == CONSOLE_INT:
            self.console.write_int(value)
        elif addr == CONSOLE_CHAR:
            self.console.write_char(value)
        elif addr == OUT_PID:
            self.console.current_pid = value
        elif addr == PM_INDEX:
            self._pm_index = value
        elif addr == PM_ENTRY:
            self.pagemap.set_entry_value(self._pm_index, value)
        elif addr == DISK_PAGE:
            self.disk.select(value)
        elif addr == DISK_FRAME:
            self.disk.copy_to_frame(value)
        elif addr == DISK_STORE:
            self.disk.store_from_frame(value)
        elif addr == HALT:
            raise MachineHalt()
        else:
            raise BusError(addr)
