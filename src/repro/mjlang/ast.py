"""Abstract syntax for MiniJava (mirrors :mod:`repro.lang.ast`).

The shapes follow classic MiniJava: one main class, then ordinary
classes with fields and methods, single inheritance, ``int``/
``boolean``/``int[]``/class-reference types, and a single trailing
``return`` per method.  Small ergonomic extensions over the textbook
grammar: ``||``, ``%``, ``else``-less ``if``, and local variable
declarations in ``main``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


# ---------------------------------------------------------------------------
# type expressions (syntactic; resolved by the checker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntType:
    pass


@dataclass(frozen=True)
class BoolType:
    pass


@dataclass(frozen=True)
class IntArrayType:
    pass


@dataclass(frozen=True)
class ClassType:
    name: str


TypeExpr = Union[IntType, BoolType, IntArrayType, ClassType]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class This(Expr):
    pass


@dataclass
class BinOp(Expr):
    op: str = ""  # && || == != < <= > >= + - * / %
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class UnOp(Expr):
    op: str = ""  # ! -
    operand: Optional[Expr] = None


@dataclass
class ArrayIndex(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Length(Expr):
    base: Optional[Expr] = None


@dataclass
class MethodCall(Expr):
    receiver: Optional[Expr] = None
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewObject(Expr):
    class_name: str = ""


@dataclass
class NewArray(Expr):
    size: Optional[Expr] = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Println(Stmt):
    value: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    name: str = ""
    value: Optional[Expr] = None


@dataclass
class ArrayAssign(Stmt):
    name: str = ""
    index: Optional[Expr] = None
    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class VarDecl:
    name: str
    type_expr: TypeExpr
    line: int = 0


@dataclass
class Param:
    name: str
    type_expr: TypeExpr
    line: int = 0


@dataclass
class MethodDecl:
    name: str
    params: List[Param]
    result_type: TypeExpr
    local_vars: List[VarDecl]
    body: List[Stmt]
    result: Expr
    line: int = 0


@dataclass
class ClassDecl:
    name: str
    superclass: Optional[str]
    fields: List[VarDecl]
    methods: List[MethodDecl]
    line: int = 0


@dataclass
class MainClass:
    name: str
    arg_name: str
    local_vars: List[VarDecl]
    body: List[Stmt]
    line: int = 0


@dataclass
class Program:
    main: MainClass
    classes: List[ClassDecl]
