"""The MiniJava scanner (mirrors :mod:`repro.lang.lexer`).

Case-sensitive identifiers, ``//`` and ``/* */`` comments, the
two-character operators ``&&``/``==``/``!=``/``<=``/``>=`` (``||`` is
the one common extension we keep), decimal integer literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from .errors import MiniJavaError


class Kind(Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "boolean",
        "class",
        "else",
        "extends",
        "false",
        "if",
        "int",
        "length",
        "main",
        "new",
        "public",
        "return",
        "static",
        "String",
        "System",
        "this",
        "true",
        "void",
        "while",
    }
)

_TWO_CHAR_OPS = ("&&", "||", "==", "!=", "<=", ">=")
_ONE_CHAR_OPS = "+-*/%<>=!()[]{};.,"


@dataclass(frozen=True)
class Token:
    kind: Kind
    text: str
    line: int
    value: int = 0

    def is_keyword(self, word: str) -> bool:
        return self.kind is Kind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind is Kind.OP and self.text == op


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            while pos < length and source[pos] != "\n":
                pos += 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise MiniJavaError("unterminated comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            while pos < length and source[pos].isdigit():
                pos += 1
            text = source[start:pos]
            tokens.append(Token(Kind.NUMBER, text, line, value=int(text)))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = Kind.KEYWORD if text in KEYWORDS else Kind.IDENT
            tokens.append(Token(kind, text, line))
            continue
        two = source[pos : pos + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(Kind.OP, two, line))
            pos += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(Kind.OP, ch, line))
            pos += 1
            continue
        raise MiniJavaError(f"unexpected character {ch!r}", line)
    tokens.append(Token(Kind.EOF, "", line))
    return tokens
