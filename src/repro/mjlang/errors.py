"""Shared error type for the MiniJava front end."""

from __future__ import annotations

from typing import Optional


class MiniJavaError(Exception):
    """A scan, parse, or semantic error in a MiniJava compilation."""

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)
