"""Recursive-descent parser for MiniJava (mirrors :mod:`repro.lang.parser`).

Grammar (classic MiniJava plus ``||``, ``%``, else-less ``if``, and
local variable declarations in ``main``)::

    Program    := MainClass ClassDecl* EOF
    MainClass  := "class" IDENT "{" "public" "static" "void" "main"
                  "(" "String" "[" "]" IDENT ")" "{" VarDecl* Stmt* "}" "}"
    ClassDecl  := "class" IDENT ("extends" IDENT)?
                  "{" VarDecl* MethodDecl* "}"
    VarDecl    := Type IDENT ";"
    MethodDecl := "public" Type IDENT "(" ParamList? ")"
                  "{" VarDecl* Stmt* "return" Expr ";" "}"
    Type       := "int" "[" "]" | "int" | "boolean" | IDENT
    Stmt       := "{" Stmt* "}"
                | "if" "(" Expr ")" Stmt ("else" Stmt)?
                | "while" "(" Expr ")" Stmt
                | "System" "." IDENT "." IDENT "(" Expr ")" ";"
                | IDENT "=" Expr ";"
                | IDENT "[" Expr "]" "=" Expr ";"

Expression precedence, loosest first: ``||``, ``&&``, equality,
relational, additive, multiplicative, unary (``!``/``-``), postfix
(indexing, ``.length``, method call), primary.

Declarations precede statements inside every body; ``IDENT IDENT``
starts a declaration, anything else starts a statement.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .errors import MiniJavaError
from .lexer import Kind, Token, tokenize

_EQUALITY_OPS = ("==", "!=")
_RELATIONAL_OPS = ("<", "<=", ">", ">=")
_ADDITIVE_OPS = ("+", "-")
_MULTIPLICATIVE_OPS = ("*", "/", "%")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not Kind.EOF:
            self.pos += 1
        return token

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise MiniJavaError(
                f"expected {op!r}, found {self.current.text!r}", self.current.line
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise MiniJavaError(
                f"expected {word!r}, found {self.current.text!r}", self.current.line
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not Kind.IDENT:
            raise MiniJavaError(
                f"expected identifier, found {self.current.text!r}", self.current.line
            )
        return self.advance()

    def expect_method_name(self) -> Token:
        # 'length' is a keyword (array length) but also a fine method name
        if self.current.is_keyword("length"):
            return self.advance()
        return self.expect_ident()

    # -- declarations -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        main = self.parse_main_class()
        classes: List[ast.ClassDecl] = []
        while self.current.is_keyword("class"):
            classes.append(self.parse_class())
        if self.current.kind is not Kind.EOF:
            raise MiniJavaError(
                f"expected end of input, found {self.current.text!r}",
                self.current.line,
            )
        return ast.Program(main, classes)

    def parse_main_class(self) -> ast.MainClass:
        start = self.expect_keyword("class")
        name = self.expect_ident()
        self.expect_op("{")
        self.expect_keyword("public")
        self.expect_keyword("static")
        self.expect_keyword("void")
        self.expect_keyword("main")
        self.expect_op("(")
        self.expect_keyword("String")
        self.expect_op("[")
        self.expect_op("]")
        arg_name = self.expect_ident()
        self.expect_op(")")
        self.expect_op("{")
        local_vars = self.parse_var_decls()
        body: List[ast.Stmt] = []
        while not self.current.is_op("}"):
            body.append(self.parse_statement())
        self.expect_op("}")
        self.expect_op("}")
        return ast.MainClass(name.text, arg_name.text, local_vars, body, start.line)

    def parse_class(self) -> ast.ClassDecl:
        start = self.expect_keyword("class")
        name = self.expect_ident()
        superclass: Optional[str] = None
        if self.current.is_keyword("extends"):
            self.advance()
            superclass = self.expect_ident().text
        self.expect_op("{")
        fields = self.parse_var_decls()
        methods: List[ast.MethodDecl] = []
        while self.current.is_keyword("public"):
            methods.append(self.parse_method())
        self.expect_op("}")
        return ast.ClassDecl(name.text, superclass, fields, methods, start.line)

    def parse_method(self) -> ast.MethodDecl:
        start = self.expect_keyword("public")
        result_type = self.parse_type()
        name = self.expect_method_name()
        self.expect_op("(")
        params: List[ast.Param] = []
        if not self.current.is_op(")"):
            while True:
                type_expr = self.parse_type()
                param_name = self.expect_ident()
                params.append(ast.Param(param_name.text, type_expr, param_name.line))
                if not self.current.is_op(","):
                    break
                self.advance()
        self.expect_op(")")
        self.expect_op("{")
        local_vars = self.parse_var_decls()
        body: List[ast.Stmt] = []
        while not self.current.is_keyword("return"):
            if self.current.is_op("}") or self.current.kind is Kind.EOF:
                raise MiniJavaError(
                    f"method {name.text!r} must end with a return statement",
                    self.current.line,
                )
            body.append(self.parse_statement())
        self.expect_keyword("return")
        result = self.parse_expression()
        self.expect_op(";")
        self.expect_op("}")
        return ast.MethodDecl(
            name.text, params, result_type, local_vars, body, result, start.line
        )

    def parse_var_decls(self) -> List[ast.VarDecl]:
        decls: List[ast.VarDecl] = []
        while self.at_var_decl():
            type_expr = self.parse_type()
            name = self.expect_ident()
            self.expect_op(";")
            decls.append(ast.VarDecl(name.text, type_expr, name.line))
        return decls

    def at_var_decl(self) -> bool:
        token = self.current
        if token.is_keyword("int") or token.is_keyword("boolean"):
            return True
        # "IDENT IDENT" is a class-typed declaration; "IDENT =" and
        # "IDENT [" begin statements.
        return token.kind is Kind.IDENT and self.peek().kind is Kind.IDENT

    def parse_type(self) -> ast.TypeExpr:
        token = self.current
        if token.is_keyword("int"):
            self.advance()
            if self.current.is_op("["):
                self.advance()
                self.expect_op("]")
                return ast.IntArrayType()
            return ast.IntType()
        if token.is_keyword("boolean"):
            self.advance()
            return ast.BoolType()
        if token.kind is Kind.IDENT:
            self.advance()
            return ast.ClassType(token.text)
        raise MiniJavaError(f"expected a type, found {token.text!r}", token.line)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.is_op("{"):
            self.advance()
            body: List[ast.Stmt] = []
            while not self.current.is_op("}"):
                body.append(self.parse_statement())
            self.expect_op("}")
            return ast.Block(token.line, body)
        if token.is_keyword("if"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            then_branch = self.parse_statement()
            else_branch: Optional[ast.Stmt] = None
            if self.current.is_keyword("else"):
                self.advance()
                else_branch = self.parse_statement()
            return ast.If(token.line, cond, then_branch, else_branch)
        if token.is_keyword("while"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            body_stmt = self.parse_statement()
            return ast.While(token.line, cond, body_stmt)
        if token.is_keyword("System"):
            self.advance()
            self.expect_op(".")
            out = self.expect_ident()
            if out.text != "out":
                raise MiniJavaError(
                    f"expected 'out' after 'System.', found {out.text!r}", out.line
                )
            self.expect_op(".")
            println = self.expect_ident()
            if println.text != "println":
                raise MiniJavaError(
                    f"expected 'println', found {println.text!r}", println.line
                )
            self.expect_op("(")
            value = self.parse_expression()
            self.expect_op(")")
            self.expect_op(";")
            return ast.Println(token.line, value)
        if token.kind is Kind.IDENT:
            name = self.advance()
            if self.current.is_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                self.expect_op("=")
                value = self.parse_expression()
                self.expect_op(";")
                return ast.ArrayAssign(name.line, name.text, index, value)
            self.expect_op("=")
            value = self.parse_expression()
            self.expect_op(";")
            return ast.Assign(name.line, name.text, value)
        raise MiniJavaError(f"expected a statement, found {token.text!r}", token.line)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        expr = self.parse_and()
        while self.current.is_op("||"):
            op = self.advance()
            expr = ast.BinOp(op.line, "||", expr, self.parse_and())
        return expr

    def parse_and(self) -> ast.Expr:
        expr = self.parse_equality()
        while self.current.is_op("&&"):
            op = self.advance()
            expr = ast.BinOp(op.line, "&&", expr, self.parse_equality())
        return expr

    def parse_equality(self) -> ast.Expr:
        expr = self.parse_relational()
        while self.current.kind is Kind.OP and self.current.text in _EQUALITY_OPS:
            op = self.advance()
            expr = ast.BinOp(op.line, op.text, expr, self.parse_relational())
        return expr

    def parse_relational(self) -> ast.Expr:
        expr = self.parse_additive()
        while self.current.kind is Kind.OP and self.current.text in _RELATIONAL_OPS:
            op = self.advance()
            expr = ast.BinOp(op.line, op.text, expr, self.parse_additive())
        return expr

    def parse_additive(self) -> ast.Expr:
        expr = self.parse_multiplicative()
        while self.current.kind is Kind.OP and self.current.text in _ADDITIVE_OPS:
            op = self.advance()
            expr = ast.BinOp(op.line, op.text, expr, self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> ast.Expr:
        expr = self.parse_unary()
        while self.current.kind is Kind.OP and self.current.text in _MULTIPLICATIVE_OPS:
            op = self.advance()
            expr = ast.BinOp(op.line, op.text, expr, self.parse_unary())
        return expr

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.is_op("!"):
            self.advance()
            return ast.UnOp(token.line, "!", self.parse_unary())
        if token.is_op("-"):
            self.advance()
            return ast.UnOp(token.line, "-", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.current
            if token.is_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.ArrayIndex(token.line, expr, index)
                continue
            if token.is_op("."):
                self.advance()
                member = self.current
                if member.is_keyword("length") and not self.peek().is_op("("):
                    self.advance()
                    expr = ast.Length(token.line, expr)
                    continue
                if member.is_keyword("length"):
                    name = self.advance()  # a method named 'length'
                else:
                    name = self.expect_ident()
                self.expect_op("(")
                args: List[ast.Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.current.is_op(","):
                            break
                        self.advance()
                self.expect_op(")")
                expr = ast.MethodCall(token.line, expr, name.text, args)
                continue
            return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is Kind.NUMBER:
            self.advance()
            return ast.IntLit(token.line, token.value)
        if token.is_keyword("true"):
            self.advance()
            return ast.BoolLit(token.line, True)
        if token.is_keyword("false"):
            self.advance()
            return ast.BoolLit(token.line, False)
        if token.is_keyword("this"):
            self.advance()
            return ast.This(token.line)
        if token.is_keyword("new"):
            self.advance()
            if self.current.is_keyword("int"):
                self.advance()
                self.expect_op("[")
                size = self.parse_expression()
                self.expect_op("]")
                return ast.NewArray(token.line, size)
            name = self.expect_ident()
            self.expect_op("(")
            self.expect_op(")")
            return ast.NewObject(token.line, name.text)
        if token.kind is Kind.IDENT:
            self.advance()
            return ast.VarRef(token.line, token.text)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        raise MiniJavaError(f"expected an expression, found {token.text!r}", token.line)


def parse(source: str) -> ast.Program:
    """Parse MiniJava source text into its AST."""
    return _Parser(tokenize(source)).parse_program()
