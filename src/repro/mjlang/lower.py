"""Lowering: checked MiniJava to the shared typed program form.

The output is a mini-Pascal :class:`~repro.lang.ast.ProgramAst` that
uses the lowering vocabulary (``MemWord``/``LabelAddr``/``GlobalAddr``/
``CallIndirect``/``AllocWords``) and is run back through
:func:`repro.lang.semantic.check_program`, so one checker and one code
generator serve both front ends.

Mapping:

* class instance  -> heap block; word 0 = vtable pointer, fields at 1..n
* ``int[]``       -> heap block; word 0 = length, elements at 1..n
* method          -> function ``mj_<class>_<method>`` with an explicit
  first parameter ``v_this``
* vtable          -> global integer array ``mj_vt_<class>``, filled
  with ``LabelAddr`` entries by statements prepended to the main body
* dynamic dispatch-> ``CallIndirect`` through ``MemWord(MemWord(obj,
  0), slot)`` -- every call is virtual
* locals/params   -> ``v_<name>`` (main's locals become globals)

Every side-effecting MiniJava expression (method call, ``new``) is
hoisted into a fresh temporary ``mj_t<n>`` by prelude statements
emitted in Java's left-to-right order, so the Pascal expressions the
back end sees are side-effect-free and its evaluation order is
irrelevant.  One dialect note: ``&&``/``||`` lower to Pascal
``and``/``or`` and evaluate both operands.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import ast as past
from ..lang.semantic import CheckedProgram, check_program
from . import ast
from .ast import BoolType, TypeExpr
from .semantic import CheckedMiniJava, ClassInfo, MethodInfo

_INTEGER = past.NamedType("integer")
_BOOLEAN = past.NamedType("boolean")

_BINOP_MAP = {
    "&&": "and",
    "||": "or",
    "==": "=",
    "!=": "<>",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "div",
    "%": "mod",
}


def _scalar(type_expr: TypeExpr) -> past.NamedType:
    """The Pascal carrier type: booleans stay boolean, all else is a word."""
    return _BOOLEAN if isinstance(type_expr, BoolType) else _INTEGER


def _value_type(type_expr: TypeExpr) -> str:
    return "boolean" if isinstance(type_expr, BoolType) else "integer"


class _Lowerer:
    def __init__(self, checked: CheckedMiniJava):
        self.checked = checked
        self.globals: List[past.VarDecl] = []
        self.routines: List[past.Routine] = []
        self.temp_count = 0
        #: declaration list temporaries are appended to (globals while
        #: lowering main, the routine's locals while lowering a method)
        self.decl_sink: List[past.VarDecl] = self.globals
        self.vt_names: Dict[str, str] = {}
        self.method_labels: Dict[Tuple[str, str], str] = {}
        self.used_names: set = set()

    # -- names --------------------------------------------------------------

    def _unique(self, base: str) -> str:
        name = base
        serial = 1
        while name in self.used_names:
            serial += 1
            name = f"{base}_{serial}"
        self.used_names.add(name)
        return name

    def fresh_temp(self, pascal_type: past.NamedType) -> past.VarRef:
        name = f"mj_t{self.temp_count}"
        self.temp_count += 1
        self.decl_sink.append(past.VarDecl(name, pascal_type))
        return past.VarRef(0, name)

    # -- program ------------------------------------------------------------

    def lower(self) -> past.ProgramAst:
        for info in self.checked.classes.values():
            self.vt_names[info.name] = self._unique(f"mj_vt_{info.name.lower()}")
            for method in info.decl.methods:
                label = self._unique(f"mj_{info.name}_{method.name}".lower())
                self.method_labels[(info.name, method.name)] = label
        for info in self.checked.classes.values():
            slots = max(len(info.vtable), 1)
            self.globals.append(
                past.VarDecl(
                    self.vt_names[info.name],
                    past.ArrayTypeExpr(0, slots - 1, _INTEGER),
                )
            )
        for info in self.checked.classes.values():
            for method in info.decl.methods:
                self.routines.append(self.lower_method(info, method))
        main = self.checked.program.main
        for var in main.local_vars:
            self.globals.append(
                past.VarDecl(f"v_{var.name}", _scalar(var.type_expr), var.line)
            )
        self.decl_sink = self.globals
        body: List[past.Stmt] = self.vtable_init()
        for stmt in main.body:
            body.extend(self.lower_stmt(stmt))
        return past.ProgramAst(
            name=main.name.lower(),
            consts=[],
            types=[],
            global_vars=self.globals,
            routines=self.routines,
            body=past.Compound(main.line, body),
        )

    def vtable_init(self) -> List[past.Stmt]:
        stmts: List[past.Stmt] = []
        for info in self.checked.classes.values():
            vt = self.vt_names[info.name]
            for slot, entry in enumerate(info.vtable):
                label = self.method_labels[(entry.owner, entry.name)]
                stmts.append(
                    past.Assign(
                        info.decl.line,
                        past.Index(info.decl.line, past.VarRef(0, vt), past.IntLit(0, slot)),
                        past.LabelAddr(info.decl.line, label),
                    )
                )
        return stmts

    def lower_method(self, info: ClassInfo, method: ast.MethodDecl) -> past.Routine:
        label = self.method_labels[(info.name, method.name)]
        params = [past.Param("v_this", _INTEGER, False, method.line)]
        for param in method.params:
            params.append(
                past.Param(f"v_{param.name}", _scalar(param.type_expr), False, param.line)
            )
        local_vars = [
            past.VarDecl(f"v_{var.name}", _scalar(var.type_expr), var.line)
            for var in method.local_vars
        ]
        self.decl_sink = local_vars
        self.current_class = info
        body: List[past.Stmt] = []
        for stmt in method.body:
            body.extend(self.lower_stmt(stmt))
        prelude, result = self.lower_expr(method.result)
        body.extend(prelude)
        body.append(past.Assign(method.result.line, past.VarRef(0, label), result))
        self.decl_sink = self.globals
        self.current_class = None
        return past.Routine(
            name=label,
            params=params,
            result_type=_scalar(method.result_type),
            consts=[],
            local_vars=local_vars,
            body=past.Compound(method.line, body),
            line=method.line,
        )

    # -- statements ---------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> List[past.Stmt]:
        if isinstance(stmt, ast.Block):
            out: List[past.Stmt] = []
            for inner in stmt.body:
                out.extend(self.lower_stmt(inner))
            return out
        if isinstance(stmt, ast.If):
            assert stmt.cond is not None and stmt.then_branch is not None
            prelude, cond = self.lower_expr(stmt.cond)
            then_branch = self._as_compound(stmt.then_branch)
            else_branch = (
                self._as_compound(stmt.else_branch)
                if stmt.else_branch is not None
                else None
            )
            return prelude + [past.If(stmt.line, cond, then_branch, else_branch)]
        if isinstance(stmt, ast.While):
            assert stmt.cond is not None and stmt.body is not None
            prelude, cond = self.lower_expr(stmt.cond)
            if not prelude:
                return [past.While(stmt.line, cond, self._as_compound(stmt.body))]
            # The condition has side effects (method calls): evaluate it
            # into a flag before the loop and again at the end of every
            # iteration.
            flag = self.fresh_temp(_BOOLEAN)
            check = prelude + [past.Assign(stmt.line, flag, cond)]
            body = self.lower_stmt(stmt.body) + check
            return check + [
                past.While(stmt.line, flag, past.Compound(stmt.line, body))
            ]
        if isinstance(stmt, ast.Println):
            assert stmt.value is not None
            prelude, value = self.lower_expr(stmt.value)
            return prelude + [past.Write(stmt.line, [value], True)]
        if isinstance(stmt, ast.Assign):
            assert stmt.value is not None
            prelude, value = self.lower_expr(stmt.value)
            target = self._var_target(stmt.name, stmt.kind, stmt.line)  # type: ignore[attr-defined]
            return prelude + [past.Assign(stmt.line, target, value)]
        if isinstance(stmt, ast.ArrayAssign):
            assert stmt.index is not None and stmt.value is not None
            base = self._var_target(stmt.name, stmt.kind, stmt.line)  # type: ignore[attr-defined]
            index_prelude, index = self.lower_expr(stmt.index)
            value_prelude, value = self.lower_expr(stmt.value)
            target = self._element(base, index, stmt.line, "integer")
            return index_prelude + value_prelude + [
                past.Assign(stmt.line, target, value)
            ]
        raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _as_compound(self, stmt: ast.Stmt) -> past.Stmt:
        lowered = self.lower_stmt(stmt)
        if len(lowered) == 1:
            return lowered[0]
        return past.Compound(stmt.line, lowered)

    def _var_target(self, name: str, kind: str, line: int) -> past.Expr:
        if kind == "field":
            info = self.current_class
            assert info is not None
            return past.MemWord(
                line,
                past.VarRef(0, "v_this"),
                info.field_offsets[name],
                _value_type(info.field_types[name]),
            )
        return past.VarRef(line, f"v_{name}")

    # -- expressions --------------------------------------------------------

    #: class whose method is being lowered (None while lowering main)
    current_class: Optional[ClassInfo] = None

    def lower_expr(self, expr: ast.Expr) -> Tuple[List[past.Stmt], past.Expr]:
        """Lower to (prelude statements, side-effect-free expression)."""
        if isinstance(expr, ast.IntLit):
            return [], past.IntLit(expr.line, expr.value)
        if isinstance(expr, ast.BoolLit):
            return [], past.BoolLit(expr.line, expr.value)
        if isinstance(expr, ast.VarRef):
            kind = expr.kind  # type: ignore[attr-defined]
            if kind == "field":
                info = self.current_class
                assert info is not None
                return [], past.MemWord(
                    expr.line,
                    past.VarRef(0, "v_this"),
                    expr.field_offset,  # type: ignore[attr-defined]
                    _value_type(expr.mj_type),  # type: ignore[attr-defined]
                )
            return [], past.VarRef(expr.line, f"v_{expr.name}")
        if isinstance(expr, ast.This):
            return [], past.VarRef(expr.line, "v_this")
        if isinstance(expr, ast.BinOp):
            assert expr.left is not None and expr.right is not None
            left_prelude, left = self.lower_expr(expr.left)
            right_prelude, right = self.lower_expr(expr.right)
            return left_prelude + right_prelude, past.BinOp(
                expr.line, _BINOP_MAP[expr.op], left, right
            )
        if isinstance(expr, ast.UnOp):
            assert expr.operand is not None
            prelude, operand = self.lower_expr(expr.operand)
            op = "not" if expr.op == "!" else "-"
            return prelude, past.UnOp(expr.line, op, operand)
        if isinstance(expr, ast.ArrayIndex):
            assert expr.base is not None and expr.index is not None
            base_prelude, base = self.lower_expr(expr.base)
            index_prelude, index = self.lower_expr(expr.index)
            element = self._element(base, index, expr.line, "integer")
            return base_prelude + index_prelude, element
        if isinstance(expr, ast.Length):
            assert expr.base is not None
            prelude, base = self.lower_expr(expr.base)
            return prelude, past.MemWord(expr.line, base, 0, "integer")
        if isinstance(expr, ast.MethodCall):
            return self.lower_call(expr)
        if isinstance(expr, ast.NewObject):
            info = self.checked.classes[expr.class_name]
            block = self.fresh_temp(_INTEGER)
            prelude = [
                past.Assign(
                    expr.line,
                    block,
                    past.AllocWords(expr.line, past.IntLit(0, info.instance_words)),
                ),
                past.Assign(
                    expr.line,
                    past.MemWord(expr.line, block, 0, "integer"),
                    past.GlobalAddr(expr.line, self.vt_names[info.name]),
                ),
            ]
            return prelude, block
        if isinstance(expr, ast.NewArray):
            assert expr.size is not None
            prelude, size = self.lower_expr(expr.size)
            # The length is needed twice (allocation size and the
            # stored length word); pin anything non-trivial in a temp.
            if not isinstance(size, (past.IntLit, past.VarRef)):
                length = self.fresh_temp(_INTEGER)
                prelude.append(past.Assign(expr.line, length, size))
                size = length
            block = self.fresh_temp(_INTEGER)
            prelude.append(
                past.Assign(
                    expr.line,
                    block,
                    past.AllocWords(
                        expr.line, past.BinOp(0, "+", size, past.IntLit(0, 1))
                    ),
                )
            )
            prelude.append(
                past.Assign(
                    expr.line, past.MemWord(expr.line, block, 0, "integer"), size
                )
            )
            return prelude, block
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def lower_call(self, expr: ast.MethodCall) -> Tuple[List[past.Stmt], past.Expr]:
        assert expr.receiver is not None
        method: MethodInfo = expr.method  # type: ignore[attr-defined]
        prelude, receiver = self.lower_expr(expr.receiver)
        # The receiver is used twice (vtable fetch and the 'this'
        # argument); pin anything that is not already a variable.
        if not isinstance(receiver, past.VarRef):
            pinned = self.fresh_temp(_INTEGER)
            prelude.append(past.Assign(expr.line, pinned, receiver))
            receiver = pinned
        args: List[past.Expr] = [receiver]
        for arg in expr.args:
            arg_prelude, lowered = self.lower_expr(arg)
            prelude.extend(arg_prelude)
            if not isinstance(lowered, (past.IntLit, past.BoolLit, past.VarRef)):
                pinned = self.fresh_temp(_scalar(arg.mj_type))  # type: ignore[attr-defined]
                prelude.append(past.Assign(arg.line, pinned, lowered))
                lowered = pinned
            args.append(lowered)
        target = past.MemWord(
            expr.line,
            past.MemWord(expr.line, receiver, 0, "integer"),
            method.slot,
            "integer",
        )
        call = past.CallIndirect(
            expr.line, target, args, _value_type(method.result_type)
        )
        # A call is itself a side effect: land it in a temp so the
        # caller's expression stays pure and order is preserved.
        result = self.fresh_temp(_scalar(method.result_type))
        prelude.append(past.Assign(expr.line, result, call))
        return prelude, result

    def _element(
        self, base: past.Expr, index: past.Expr, line: int, value_type: str
    ) -> past.MemWord:
        """``base[index]`` -- elements live at words 1..length."""
        if isinstance(index, past.IntLit):
            return past.MemWord(line, base, 1 + index.value, value_type)
        return past.MemWord(
            line, past.BinOp(0, "+", base, index), 1, value_type
        )


def lower(checked: CheckedMiniJava) -> CheckedProgram:
    """Lower checked MiniJava into a checked shared-form program."""
    lowerer = _Lowerer(checked)
    program = lowerer.lower()
    return check_program(program)
