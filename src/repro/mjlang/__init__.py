"""The MiniJava front end.

A second source language for the one shared back end: MiniJava classes
become record layouts with vtable pointers, methods become routines
with an explicit ``this`` parameter, ``new``/field access become heap
operations over the runtime's bump allocator, and dynamic dispatch
becomes an indirect call through a per-class vtable.  The lowering
targets the same typed program form (:class:`repro.lang.semantic.
CheckedProgram`) the mini-Pascal front end produces, so every opt
level, engine, and analysis downstream of the checker serves both
languages unchanged.

Pipeline: ``tokenize`` -> ``parse`` -> ``check`` (class table, types)
-> ``lower`` (CheckedProgram) -> ``repro.compiler.driver.
compile_checked`` -> program image.
"""

from .errors import MiniJavaError
from .lexer import tokenize
from .lower import lower
from .parser import parse
from .semantic import CheckedMiniJava, check

__all__ = [
    "CheckedMiniJava",
    "MiniJavaError",
    "analyze_minijava",
    "check",
    "compile_minijava",
    "lower",
    "parse",
    "tokenize",
]


def analyze_minijava(source: str):
    """MiniJava source text to a checked mini-Pascal-form program."""
    return lower(check(parse(source)))


def compile_minijava(source: str, options=None, opt_level=None):
    """Compile MiniJava source text down to a program image."""
    from ..compiler.driver import compile_checked
    from ..reorg.reorganizer import OptLevel

    if opt_level is None:
        opt_level = OptLevel.BRANCH_DELAY
    return compile_checked(analyze_minijava(source), options, opt_level)
