"""Semantic analysis for MiniJava (mirrors :mod:`repro.lang.semantic`).

Builds the class table -- per-class field offsets and vtable slots --
and type-checks every method body, annotating the AST in place with
the facts the lowering pass needs:

* every expression gets ``mj_type`` (a resolved :data:`TypeExpr`);
* every :class:`~repro.mjlang.ast.VarRef` gets ``kind`` (``"local"``,
  ``"param"``, or ``"field"``) and, for fields, ``field_offset``;
* every :class:`~repro.mjlang.ast.MethodCall` gets ``method`` (the
  resolved :class:`MethodInfo`, carrying its vtable slot).

Object layout: word 0 holds the vtable pointer; fields occupy words
1..n, inherited fields first, in declaration order.  A subclass never
re-declares an inherited field name.  Vtable layout: one slot per
method name, assigned in first-declaration order walking down from the
root ancestor; an override reuses the slot it overrides and must match
the overridden signature exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ast
from .ast import BoolType, ClassType, IntArrayType, IntType, TypeExpr
from .errors import MiniJavaError

INT = IntType()
BOOL = BoolType()
INT_ARRAY = IntArrayType()


@dataclass
class MethodInfo:
    """One method as seen through a class's vtable."""

    name: str
    owner: str  # class that provides the implementation
    slot: int
    param_types: List[TypeExpr]
    result_type: TypeExpr
    decl: ast.MethodDecl


@dataclass
class ClassInfo:
    """Layout and dispatch facts for one class."""

    name: str
    superclass: Optional[str]
    decl: ast.ClassDecl
    field_offsets: Dict[str, int] = field(default_factory=dict)
    field_types: Dict[str, TypeExpr] = field(default_factory=dict)
    # Vtable: slot index -> the providing implementation.
    vtable: List[MethodInfo] = field(default_factory=list)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)

    @property
    def instance_words(self) -> int:
        """Words per instance: the vtable pointer plus every field."""
        return 1 + len(self.field_offsets)


@dataclass
class CheckedMiniJava:
    """A parsed, analyzed, annotation-carrying MiniJava program."""

    program: ast.Program
    classes: Dict[str, ClassInfo]


def _type_name(type_expr: TypeExpr) -> str:
    if isinstance(type_expr, IntType):
        return "int"
    if isinstance(type_expr, BoolType):
        return "boolean"
    if isinstance(type_expr, IntArrayType):
        return "int[]"
    return type_expr.name


class _Checker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.classes: Dict[str, ClassInfo] = {}

    # -- class table --------------------------------------------------------

    def build_class_table(self) -> None:
        names = {self.program.main.name}
        for decl in self.program.classes:
            if decl.name in names:
                raise MiniJavaError(f"duplicate class {decl.name!r}", decl.line)
            names.add(decl.name)
            self.classes[decl.name] = ClassInfo(decl.name, decl.superclass, decl)
        for info in self.classes.values():
            if info.superclass is not None and info.superclass not in self.classes:
                raise MiniJavaError(
                    f"class {info.name!r} extends unknown class"
                    f" {info.superclass!r}",
                    info.decl.line,
                )
        for info in self.classes.values():
            self._check_no_cycle(info)
        # Lay out ancestors before descendants so inherited fields and
        # vtable slots are in place when a subclass extends them.
        for info in self.classes.values():
            self._layout(info)

    def _check_no_cycle(self, info: ClassInfo) -> None:
        seen = {info.name}
        current = info.superclass
        while current is not None:
            if current in seen:
                raise MiniJavaError(
                    f"inheritance cycle through class {info.name!r}", info.decl.line
                )
            seen.add(current)
            current = self.classes[current].superclass

    def _layout(self, info: ClassInfo) -> None:
        if info.field_offsets or info.vtable or info.methods:
            return  # already laid out via a subclass
        if info.superclass is not None:
            parent = self.classes[info.superclass]
            self._layout(parent)
            info.field_offsets.update(parent.field_offsets)
            info.field_types.update(parent.field_types)
            info.vtable = list(parent.vtable)
            info.methods = dict(parent.methods)
        next_offset = 1 + len(info.field_offsets)  # word 0: vtable pointer
        for var in info.decl.fields:
            if var.name in info.field_offsets:
                raise MiniJavaError(
                    f"field {var.name!r} re-declares an inherited field", var.line
                )
            self._check_type(var.type_expr, var.line)
            info.field_offsets[var.name] = next_offset
            info.field_types[var.name] = var.type_expr
            next_offset += 1
        declared: set = set()
        for method in info.decl.methods:
            if method.name in declared:
                raise MiniJavaError(
                    f"duplicate method {method.name!r} in class {info.name!r}",
                    method.line,
                )
            declared.add(method.name)
            self._check_type(method.result_type, method.line)
            param_types: List[TypeExpr] = []
            for param in method.params:
                self._check_type(param.type_expr, param.line)
                param_types.append(param.type_expr)
            overridden = info.methods.get(method.name)
            if overridden is not None:
                if (
                    overridden.param_types != param_types
                    or overridden.result_type != method.result_type
                ):
                    raise MiniJavaError(
                        f"override of {method.name!r} changes the signature"
                        f" inherited from class {overridden.owner!r}",
                        method.line,
                    )
                slot = overridden.slot
            else:
                slot = len(info.vtable)
                info.vtable.append(None)  # type: ignore[arg-type]
            entry = MethodInfo(
                method.name, info.name, slot, param_types, method.result_type, method
            )
            info.vtable[slot] = entry
            info.methods[method.name] = entry

    def _check_type(self, type_expr: TypeExpr, line: int) -> None:
        if isinstance(type_expr, ClassType) and type_expr.name not in self.classes:
            raise MiniJavaError(f"unknown type {type_expr.name!r}", line)

    # -- assignability ------------------------------------------------------

    def _is_subclass(self, name: str, ancestor: str) -> bool:
        current: Optional[str] = name
        while current is not None:
            if current == ancestor:
                return True
            current = self.classes[current].superclass
        return False

    def assignable(self, target: TypeExpr, value: TypeExpr) -> bool:
        if target == value:
            return True
        if isinstance(target, ClassType) and isinstance(value, ClassType):
            return self._is_subclass(value.name, target.name)
        return False

    # -- bodies -------------------------------------------------------------

    def check_bodies(self) -> None:
        main = self.program.main
        scope = self._build_scope(main.local_vars, [], None, main.line)
        for stmt in main.body:
            self._check_stmt(stmt, scope, None)
        for info in self.classes.values():
            for method in info.decl.methods:
                entry = info.methods[method.name]
                scope = self._build_scope(
                    method.local_vars, method.params, info, method.line
                )
                for stmt in method.body:
                    self._check_stmt(stmt, scope, info)
                result_type = self._check_expr(method.result, scope, info)
                if not self.assignable(entry.result_type, result_type):
                    raise MiniJavaError(
                        f"method {method.name!r} returns"
                        f" {_type_name(result_type)}, declared"
                        f" {_type_name(entry.result_type)}",
                        method.result.line,
                    )

    def _build_scope(
        self,
        local_vars: List[ast.VarDecl],
        params: List[ast.Param],
        info: Optional[ClassInfo],
        line: int,
    ) -> Dict[str, Tuple[str, TypeExpr]]:
        scope: Dict[str, Tuple[str, TypeExpr]] = {}
        if info is not None:
            for name, type_expr in info.field_types.items():
                scope[name] = ("field", type_expr)
        for param in params:
            if param.name in scope and scope[param.name][0] != "field":
                raise MiniJavaError(f"duplicate parameter {param.name!r}", param.line)
            scope[param.name] = ("param", param.type_expr)
        for var in local_vars:
            if var.name in scope and scope[var.name][0] != "field":
                raise MiniJavaError(f"duplicate variable {var.name!r}", var.line)
            self._check_type(var.type_expr, var.line)
            scope[var.name] = ("local", var.type_expr)
        return scope

    def _check_stmt(
        self,
        stmt: ast.Stmt,
        scope: Dict[str, Tuple[str, TypeExpr]],
        info: Optional[ClassInfo],
    ) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._check_stmt(inner, scope, info)
            return
        if isinstance(stmt, ast.If):
            assert stmt.cond is not None and stmt.then_branch is not None
            self._require(stmt.cond, BOOL, scope, info, "if condition")
            self._check_stmt(stmt.then_branch, scope, info)
            if stmt.else_branch is not None:
                self._check_stmt(stmt.else_branch, scope, info)
            return
        if isinstance(stmt, ast.While):
            assert stmt.cond is not None and stmt.body is not None
            self._require(stmt.cond, BOOL, scope, info, "while condition")
            self._check_stmt(stmt.body, scope, info)
            return
        if isinstance(stmt, ast.Println):
            assert stmt.value is not None
            self._require(stmt.value, INT, scope, info, "println argument")
            return
        if isinstance(stmt, ast.Assign):
            assert stmt.value is not None
            if stmt.name not in scope:
                raise MiniJavaError(f"unknown variable {stmt.name!r}", stmt.line)
            kind, target_type = scope[stmt.name]
            stmt.kind = kind  # type: ignore[attr-defined]
            value_type = self._check_expr(stmt.value, scope, info)
            if not self.assignable(target_type, value_type):
                raise MiniJavaError(
                    f"cannot assign {_type_name(value_type)} to"
                    f" {stmt.name!r} ({_type_name(target_type)})",
                    stmt.line,
                )
            return
        if isinstance(stmt, ast.ArrayAssign):
            assert stmt.index is not None and stmt.value is not None
            if stmt.name not in scope:
                raise MiniJavaError(f"unknown variable {stmt.name!r}", stmt.line)
            kind, target_type = scope[stmt.name]
            stmt.kind = kind  # type: ignore[attr-defined]
            if target_type != INT_ARRAY:
                raise MiniJavaError(
                    f"{stmt.name!r} is {_type_name(target_type)}, not int[]",
                    stmt.line,
                )
            self._require(stmt.index, INT, scope, info, "array index")
            self._require(stmt.value, INT, scope, info, "array element")
            return
        raise MiniJavaError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _require(
        self,
        expr: ast.Expr,
        expected: TypeExpr,
        scope: Dict[str, Tuple[str, TypeExpr]],
        info: Optional[ClassInfo],
        what: str,
    ) -> TypeExpr:
        found = self._check_expr(expr, scope, info)
        if found != expected:
            raise MiniJavaError(
                f"{what} must be {_type_name(expected)},"
                f" found {_type_name(found)}",
                expr.line,
            )
        return found

    def _check_expr(
        self,
        expr: ast.Expr,
        scope: Dict[str, Tuple[str, TypeExpr]],
        info: Optional[ClassInfo],
    ) -> TypeExpr:
        result = self._expr_type(expr, scope, info)
        expr.mj_type = result  # type: ignore[attr-defined]
        return result

    def _expr_type(
        self,
        expr: ast.Expr,
        scope: Dict[str, Tuple[str, TypeExpr]],
        info: Optional[ClassInfo],
    ) -> TypeExpr:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.VarRef):
            if expr.name not in scope:
                raise MiniJavaError(f"unknown variable {expr.name!r}", expr.line)
            kind, var_type = scope[expr.name]
            expr.kind = kind  # type: ignore[attr-defined]
            if kind == "field":
                assert info is not None
                expr.field_offset = info.field_offsets[expr.name]  # type: ignore[attr-defined]
            return var_type
        if isinstance(expr, ast.This):
            if info is None:
                raise MiniJavaError("'this' outside a method", expr.line)
            return ClassType(info.name)
        if isinstance(expr, ast.BinOp):
            assert expr.left is not None and expr.right is not None
            left = self._check_expr(expr.left, scope, info)
            right = self._check_expr(expr.right, scope, info)
            if expr.op in ("&&", "||"):
                if left != BOOL or right != BOOL:
                    raise MiniJavaError(
                        f"{expr.op!r} needs boolean operands", expr.line
                    )
                return BOOL
            if expr.op in ("==", "!="):
                if not (self.assignable(left, right) or self.assignable(right, left)):
                    raise MiniJavaError(
                        f"cannot compare {_type_name(left)} with"
                        f" {_type_name(right)}",
                        expr.line,
                    )
                return BOOL
            if left != INT or right != INT:
                raise MiniJavaError(f"{expr.op!r} needs int operands", expr.line)
            if expr.op in ("<", "<=", ">", ">="):
                return BOOL
            return INT
        if isinstance(expr, ast.UnOp):
            assert expr.operand is not None
            if expr.op == "!":
                self._require(expr.operand, BOOL, scope, info, "'!' operand")
                return BOOL
            self._require(expr.operand, INT, scope, info, "'-' operand")
            return INT
        if isinstance(expr, ast.ArrayIndex):
            assert expr.base is not None and expr.index is not None
            self._require(expr.base, INT_ARRAY, scope, info, "indexed value")
            self._require(expr.index, INT, scope, info, "array index")
            return INT
        if isinstance(expr, ast.Length):
            assert expr.base is not None
            self._require(expr.base, INT_ARRAY, scope, info, "'.length' value")
            return INT
        if isinstance(expr, ast.MethodCall):
            assert expr.receiver is not None
            receiver = self._check_expr(expr.receiver, scope, info)
            if not isinstance(receiver, ClassType):
                raise MiniJavaError(
                    f"cannot call a method on {_type_name(receiver)}", expr.line
                )
            receiver_info = self.classes[receiver.name]
            method = receiver_info.methods.get(expr.name)
            if method is None:
                raise MiniJavaError(
                    f"class {receiver.name!r} has no method {expr.name!r}",
                    expr.line,
                )
            if len(expr.args) != len(method.param_types):
                raise MiniJavaError(
                    f"method {expr.name!r} takes {len(method.param_types)}"
                    f" argument(s), got {len(expr.args)}",
                    expr.line,
                )
            for arg, param_type in zip(expr.args, method.param_types):
                arg_type = self._check_expr(arg, scope, info)
                if not self.assignable(param_type, arg_type):
                    raise MiniJavaError(
                        f"argument to {expr.name!r} must be"
                        f" {_type_name(param_type)}, found"
                        f" {_type_name(arg_type)}",
                        arg.line,
                    )
            expr.method = method  # type: ignore[attr-defined]
            return method.result_type
        if isinstance(expr, ast.NewObject):
            if expr.class_name not in self.classes:
                raise MiniJavaError(f"unknown class {expr.class_name!r}", expr.line)
            return ClassType(expr.class_name)
        if isinstance(expr, ast.NewArray):
            assert expr.size is not None
            self._require(expr.size, INT, scope, info, "array size")
            return INT_ARRAY
        raise MiniJavaError(f"unhandled expression {type(expr).__name__}", expr.line)


def check(program: ast.Program) -> CheckedMiniJava:
    """Analyze a parsed MiniJava program, annotating its AST in place."""
    checker = _Checker(program)
    checker.build_class_table()
    checker.check_bodies()
    return CheckedMiniJava(program, checker.classes)
