"""Free-memory-cycle measurement (paper section 3.1).

"Dynamic simulations indicated that the wasted bandwidth came close to
40% of the available bandwidth."  We run the corpus and report the
fraction of executed instruction words that used no data-memory cycle
-- the bandwidth the free-cycle pin exports -- plus the throughput a
:class:`~repro.system.dma.FreeCycleDma` engine achieves on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..compiler.driver import compile_source
from ..reorg.reorganizer import OptLevel
from ..sim.machine import Machine

#: the paper's figure: wasted bandwidth "came close to 40%"
PAPER_FREE_FRACTION = 0.40


@dataclass
class FreeCycleReport:
    """Per-program and aggregate free-cycle fractions."""

    per_program: Dict[str, float]
    total_words: int
    total_free: int

    @property
    def aggregate_fraction(self) -> float:
        if self.total_words == 0:
            return 0.0
        return self.total_free / self.total_words


def measure(
    sources: Optional[Mapping[str, str]] = None,
    opt_level: OptLevel = OptLevel.BRANCH_DELAY,
    max_steps: int = 30_000_000,
    register_allocation: bool = True,
) -> FreeCycleReport:
    """Free-cycle fractions over the corpus.

    Packing *decreases* the free fraction (a packed word uses its
    memory slot more often), so the opt level matters; the default is
    full optimization, the machine the paper measured.  Turning
    ``register_allocation`` off approximates the memory-heavier code of
    the paper's era compiler.
    """
    from ..compiler.codegen_mips import CompileOptions
    from ..workloads import CORPUS, QUICK_PROGRAMS

    if sources is None:
        sources = {name: CORPUS[name] for name in QUICK_PROGRAMS}
    options = CompileOptions(register_allocation=register_allocation)
    per_program: Dict[str, float] = {}
    total_words = 0
    total_free = 0
    for name, source in sources.items():
        compiled = compile_source(source, options, opt_level=opt_level)
        machine = Machine(compiled.program)
        stats = machine.run(max_steps)
        per_program[name] = stats.free_cycle_fraction
        total_words += stats.words
        total_free += stats.free_memory_cycles
    return FreeCycleReport(per_program, total_words, total_free)


def dma_throughput(source: str, transfer_words: int = 4096) -> Dict[str, float]:
    """Run one program with a free-cycle DMA transfer in flight.

    Returns the free fraction, the DMA words moved, and the words moved
    per executed instruction -- bandwidth recovered at zero cycle cost.
    """
    from ..system.dma import FreeCycleDma, run_with_dma

    compiled = compile_source(source)
    machine = Machine(compiled.program)
    dma = FreeCycleDma(machine.memory)
    # source and destination buffers parked far above the program
    dma.enqueue(source=0x100000, dest=0x140000, length=transfer_words)
    words, moved = run_with_dma(machine, dma)
    return {
        "instruction_words": words,
        "free_fraction": machine.stats.free_cycle_fraction,
        "dma_words_moved": moved,
        "dma_words_per_instruction": moved / words if words else 0.0,
    }
