"""Free-memory-cycle measurement (paper section 3.1).

"Dynamic simulations indicated that the wasted bandwidth came close to
40% of the available bandwidth."  We run the corpus and report the
fraction of executed instruction words that used no data-memory cycle
-- the bandwidth the free-cycle pin exports -- plus the throughput a
:class:`~repro.system.dma.FreeCycleDma` engine achieves on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..compiler.driver import compile_source
from ..reorg.reorganizer import OptLevel
from ..sim.machine import Machine

#: the paper's figure: wasted bandwidth "came close to 40%"
PAPER_FREE_FRACTION = 0.40


@dataclass
class FreeCycleReport:
    """Per-program and aggregate free-cycle fractions."""

    per_program: Dict[str, float]
    total_words: int
    total_free: int

    @property
    def aggregate_fraction(self) -> float:
        if self.total_words == 0:
            return 0.0
        return self.total_free / self.total_words


def measure(
    sources: Optional[Mapping[str, str]] = None,
    opt_level: OptLevel = OptLevel.BRANCH_DELAY,
    max_steps: int = 30_000_000,
    register_allocation: bool = True,
    jobs: int = 1,
) -> FreeCycleReport:
    """Free-cycle fractions over the corpus.

    Packing *decreases* the free fraction (a packed word uses its
    memory slot more often), so the opt level matters; the default is
    full optimization, the machine the paper measured.  Turning
    ``register_allocation`` off approximates the memory-heavier code of
    the paper's era compiler.

    ``jobs > 1`` shards the per-program simulations across
    :mod:`repro.farm` worker processes; the aggregate is identical to
    the serial run (each program's simulation is independent and the
    farm returns records in submission order).
    """
    from ..farm import Job, Scheduler
    from ..workloads import CORPUS, QUICK_PROGRAMS

    if sources is None:
        sources = {name: CORPUS[name] for name in QUICK_PROGRAMS}
    job_list = [
        Job(
            kind="source",
            name=name,
            spec={"source": source, "register_allocation": register_allocation},
            opt_level=opt_level.value,
            max_steps=max_steps,
        )
        for name, source in sources.items()
    ]
    records = Scheduler(jobs=jobs).run(job_list)
    per_program: Dict[str, float] = {}
    total_words = 0
    total_free = 0
    for record in records:
        if record["status"] != "ok":
            error = record.get("error") or {}
            raise RuntimeError(
                f"free-cycle measurement of {record['name']} failed "
                f"[{record['status']}] {error.get('type', '')}: {error.get('message', '')}"
            )
        stats = record["stats"]
        words = stats["words"]
        free = stats["free_memory_cycles"]
        per_program[record["name"]] = free / words if words else 0.0
        total_words += words
        total_free += free
    return FreeCycleReport(per_program, total_words, total_free)


def dma_throughput(source: str, transfer_words: int = 4096) -> Dict[str, float]:
    """Run one program with a free-cycle DMA transfer in flight.

    Returns the free fraction, the DMA words moved, and the words moved
    per executed instruction -- bandwidth recovered at zero cycle cost.
    """
    from ..system.dma import FreeCycleDma, run_with_dma

    compiled = compile_source(source)
    machine = Machine(compiled.program)
    dma = FreeCycleDma(machine.memory)
    # source and destination buffers parked far above the program
    dma.enqueue(source=0x100000, dest=0x140000, length=transfer_words)
    words, moved = run_with_dma(machine, dma)
    return {
        "instruction_words": words,
        "free_fraction": machine.stats.free_cycle_fraction,
        "dma_words_moved": moved,
        "dma_words_per_instruction": moved / words if words else 0.0,
    }
