"""Boolean-expression statistics (Table 4).

Table 4 characterizes the boolean expressions of the corpus:

- the average number of operators per boolean expression;
- the split between expressions "ending in jumps" (conditions of
  ``if``/``while``/``repeat``) and "ending in stores" (assignments to
  boolean variables).

An expression counts as boolean when its root is a comparison or a
boolean connective; operators counted are the connectives and the
comparisons it contains (a bare comparison scores one operator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from ..lang import ast
from ..lang.semantic import CheckedProgram, analyze
from ..lang.types import BOOLEAN

#: the paper's Table 4 figures
PAPER_TABLE4 = {
    "operators_per_expression": 1.66,
    "jump_percent": 80.9,
    "store_percent": 19.1,
}

_CONNECTIVES = ("and", "or")
_RELOPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass
class BoolExprStats:
    """Counts over a corpus of checked programs."""

    jump_expressions: int = 0
    store_expressions: int = 0
    total_operators: int = 0
    #: operator counts of individual expressions (for distributions)
    per_expression: List[int] = field(default_factory=list)

    def __add__(self, other: "BoolExprStats") -> "BoolExprStats":
        return BoolExprStats(
            self.jump_expressions + other.jump_expressions,
            self.store_expressions + other.store_expressions,
            self.total_operators + other.total_operators,
            self.per_expression + other.per_expression,
        )

    @property
    def expressions(self) -> int:
        return self.jump_expressions + self.store_expressions

    @property
    def operators_per_expression(self) -> float:
        if not self.expressions:
            return 0.0
        return self.total_operators / self.expressions

    @property
    def jump_percent(self) -> float:
        if not self.expressions:
            return 0.0
        return 100.0 * self.jump_expressions / self.expressions

    @property
    def store_percent(self) -> float:
        if not self.expressions:
            return 0.0
        return 100.0 * self.store_expressions / self.expressions


def count_operators(expr: Optional[ast.Expr]) -> int:
    """Comparisons + connectives in an expression tree."""
    if expr is None:
        return 0
    if isinstance(expr, ast.BinOp):
        own = 1 if (expr.op in _CONNECTIVES or expr.op in _RELOPS) else 0
        return own + count_operators(expr.left) + count_operators(expr.right)
    if isinstance(expr, ast.UnOp):
        return count_operators(expr.operand)
    if isinstance(expr, ast.Index):
        return count_operators(expr.base) + count_operators(expr.index)
    if isinstance(expr, ast.FieldAccess):
        return count_operators(expr.base)
    if isinstance(expr, ast.CallExpr):
        return sum(count_operators(arg) for arg in expr.args)
    return 0


def _is_boolean_root(expr: Optional[ast.Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ast.BinOp):
        return expr.op in _CONNECTIVES or expr.op in _RELOPS
    if isinstance(expr, ast.UnOp):
        return expr.op == "not"
    return False


class _Walker:
    def __init__(self) -> None:
        self.stats = BoolExprStats()

    def _record(self, expr: Optional[ast.Expr], is_jump: bool) -> None:
        if not _is_boolean_root(expr):
            return
        operators = count_operators(expr)
        if is_jump:
            self.stats.jump_expressions += 1
        else:
            self.stats.store_expressions += 1
        self.stats.total_operators += operators
        self.stats.per_expression.append(operators)

    def walk(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Compound):
            for inner in stmt.body:
                self.walk(inner)
        elif isinstance(stmt, ast.Assign):
            target_type = getattr(stmt.target, "type", None)
            if target_type == BOOLEAN:
                self._record(stmt.value, is_jump=False)
        elif isinstance(stmt, ast.If):
            self._record(stmt.cond, is_jump=True)
            self.walk(stmt.then_branch)
            self.walk(stmt.else_branch)
        elif isinstance(stmt, ast.While):
            self._record(stmt.cond, is_jump=True)
            self.walk(stmt.body)
        elif isinstance(stmt, ast.Repeat):
            for inner in stmt.body:
                self.walk(inner)
            self._record(stmt.cond, is_jump=True)
        elif isinstance(stmt, ast.For):
            self.walk(stmt.body)


def program_stats(checked: CheckedProgram) -> BoolExprStats:
    """Table 4 accounting over one checked program."""
    walker = _Walker()
    walker.walk(checked.ast.body)
    for routine in checked.ast.routines:
        walker.walk(routine.body)
    return walker.stats


def corpus_stats(sources: Optional[Mapping[str, str]] = None) -> BoolExprStats:
    """Table 4 accounting over the whole corpus."""
    from ..workloads import CORPUS

    total = BoolExprStats()
    for source in (sources or CORPUS).values():
        total = total + program_stats(analyze(source))
    return total
