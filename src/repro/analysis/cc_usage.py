"""Condition-code usage accounting (Table 3).

The paper's Table 3 asks: on a condition-code machine, how many
explicit compare instructions could be *elided* because the condition
code was already set correctly by a preceding instruction?

Accounting rules, mirroring the paper:

- a compare is **saved by an operator** when it tests a value against
  zero and the immediately preceding instruction is an ALU operation
  whose destination is that value (the operation's side effect already
  set N/Z);
- a compare is **saved by a move** when the preceding instruction is a
  move/load of that value -- only machines in the VAX class ("set on
  moves and operations") benefit;
- a move is counted as **used only to set the condition code** when it
  exists to bring a value into view of an immediately following
  zero-test (the compiled pattern for branching on a stored boolean).

A compare whose preceding instruction is a branch target (label) is
never saved -- the CC value is unknown along the other edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Set

from ..ccmachine.codegen import CcStrategy, compile_cc_source
from ..ccmachine.isa import Br, CcImm, Cmp, Jsr
from ..ccmachine.machine import CcProgram

#: the paper's Table 3 numbers, for side-by-side reporting
PAPER_TABLE3 = {
    "compares_total": 2369,  # implied by 25 = 1.1%
    "saved_by_operators": 25,
    "saved_by_operators_percent": 1.1,
    "saved_with_moves": 733,
    "moves_only_to_set_cc": 706,
    "saved_with_moves_percent": 2.1,
}


@dataclass
class CcUsage:
    """Table 3's counters for one program or a whole corpus."""

    compares: int = 0
    saved_by_operators: int = 0
    saved_by_moves: int = 0

    def __add__(self, other: "CcUsage") -> "CcUsage":
        return CcUsage(
            self.compares + other.compares,
            self.saved_by_operators + other.saved_by_operators,
            self.saved_by_moves + other.saved_by_moves,
        )

    @property
    def saved_operators_percent(self) -> float:
        """Compares saved when only operators set the CC."""
        if not self.compares:
            return 0.0
        return 100.0 * self.saved_by_operators / self.compares

    @property
    def saved_with_moves_percent(self) -> float:
        """Compares saved when moves also set the CC (VAX style)."""
        if not self.compares:
            return 0.0
        return 100.0 * (self.saved_by_operators + self.saved_by_moves) / self.compares

    @property
    def moves_only_to_set_cc(self) -> int:
        """Moves that exist purely to feed a zero-test."""
        return self.saved_by_moves


def analyze_cc_program(program: CcProgram) -> CcUsage:
    """Run the Table 3 accounting over one compiled CC program."""
    usage = CcUsage()
    branch_targets: Set[int] = set(program.symbols.values())
    for addr, instr in enumerate(program.instrs):
        if isinstance(instr, (Br, Jsr)) and isinstance(instr.target, int):
            branch_targets.add(instr.target)
    for addr, instr in enumerate(program.instrs):
        if not isinstance(instr, Cmp):
            continue
        usage.compares += 1
        if addr == 0 or addr in branch_targets:
            continue  # CC unknown along a joining edge
        if not (isinstance(instr.b, CcImm) and instr.b.value == 0):
            continue  # only zero-tests ride on a prior instruction's CC
        previous = program.instrs[addr - 1]
        source = previous.cc_source()
        if source is None or source != instr.a:
            continue
        if previous.is_alu:
            usage.saved_by_operators += 1
        elif previous.is_move:
            usage.saved_by_moves += 1
    return usage


def corpus_cc_usage(
    sources: Optional[Mapping[str, str]] = None,
    strategy: CcStrategy = CcStrategy.EARLY_OUT,
) -> CcUsage:
    """Compile the corpus for the CC machine and total the accounting."""
    from ..workloads import CORPUS

    total = CcUsage()
    for source in (sources or CORPUS).values():
        total = total + analyze_cc_program(compile_cc_source(source, strategy))
    return total
