"""Postpass-optimization static counts (Table 11).

"To show the effectiveness of these optimizations, we ran versions of a
program that does reorganization, packing, and branch delay elimination
of three input programs ... an implementation of computing Fibbonacci
numbers and two implementations of the Puzzle benchmark ...  The data
in Table 11 show the improvements in static instruction counts."

We compile each program to its piece stream (the code generator's raw
output, runtime library included) and run the reorganizer at each
cumulative level, reporting the static instruction-word counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..compiler.driver import piece_stream
from ..reorg.reorganizer import ALL_LEVELS, OptLevel, reorganize

#: the paper's Table 11
PAPER_TABLE11 = {
    "Fibbonacci": {
        OptLevel.NONE: 63,
        OptLevel.REORGANIZE: 63,
        OptLevel.PACK: 55,
        OptLevel.BRANCH_DELAY: 50,
    },
    "Puzzle 0": {
        OptLevel.NONE: 843,
        OptLevel.REORGANIZE: 834,
        OptLevel.PACK: 776,
        OptLevel.BRANCH_DELAY: 634,
    },
    "Puzzle 1": {
        OptLevel.NONE: 1219,
        OptLevel.REORGANIZE: 1113,
        OptLevel.PACK: 992,
        OptLevel.BRANCH_DELAY: 791,
    },
}

PAPER_IMPROVEMENTS = {"Fibbonacci": 20.6, "Puzzle 0": 24.8, "Puzzle 1": 35.1}


@dataclass
class OptimizationLadder:
    """Static counts per level for one program."""

    name: str
    counts: Dict[OptLevel, int]

    @property
    def total_improvement_percent(self) -> float:
        base = self.counts[OptLevel.NONE]
        final = self.counts[OptLevel.BRANCH_DELAY]
        if base == 0:
            return 0.0
        return 100.0 * (base - final) / base

    def improvement_at(self, level: OptLevel) -> float:
        base = self.counts[OptLevel.NONE]
        if base == 0:
            return 0.0
        return 100.0 * (base - self.counts[level]) / base

    def is_monotone(self) -> bool:
        ordered = [self.counts[level] for level in ALL_LEVELS]
        return all(a >= b for a, b in zip(ordered, ordered[1:]))


def measure_program(name: str, source: str) -> OptimizationLadder:
    """Run every Table 11 level over one program's piece stream."""
    stream = piece_stream(source)
    counts = {level: reorganize(stream, level).static_count for level in ALL_LEVELS}
    return OptimizationLadder(name, counts)


def table11(sources: Optional[Mapping[str, str]] = None) -> List[OptimizationLadder]:
    """The three Table 11 programs (or any supplied set)."""
    from ..workloads import FIB_RECURSIVE, puzzle_source

    if sources is None:
        sources = {
            "Fibbonacci": FIB_RECURSIVE,
            "Puzzle 0": puzzle_source(0),
            "Puzzle 1": puzzle_source(1),
        }
    return [measure_program(name, source) for name, source in sources.items()]
