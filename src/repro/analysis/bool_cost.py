"""Boolean-evaluation operation counts and costs (Tables 5 and 6).

**Table 5** gives the compare/register/branch operations *per boolean
operator*: the marginal cost of one connective joining two relations,
with the expression's per-expression overhead (initialization, the
final store or branch) excluded.  These counts come straight from the
code sequences of Figures 1-3 and are reproduced exactly.

**Table 6** prices whole expressions with the paper's weights
("register operations take time 1, compares take time 2, and branches
take time 4"), scaling the marginal counts by the operators-per-
expression figure of Table 4 and adding each context's fixed overhead:
a store costs one register-class operation; a jump costs one final
branch; a CC machine without conditional set pays the extra assignment
the paper notes for stored booleans.  The paper's own constants are
kept alongside for comparison -- our model reproduces the ordering and
the improvement magnitudes, not the authors' exact rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

#: Table 6 cost weights
WEIGHT_REGISTER = 1
WEIGHT_COMPARE = 2
WEIGHT_BRANCH = 4


class EvalStrategy(Enum):
    """The four rows of Table 5."""

    SET_CONDITIONALLY = "set conditionally (no CC)"
    CC_CONDITIONAL_SET = "CC + conditional set"
    CC_BRANCH_FULL = "CC + branch, full evaluation"
    CC_BRANCH_EARLY_OUT = "CC + branch, early-out"


@dataclass(frozen=True)
class OpCounts:
    """Compare / register / branch operations (may be fractional)."""

    compares: float
    registers: float
    branches: float

    def cost(self) -> float:
        return (
            self.compares * WEIGHT_COMPARE
            + self.registers * WEIGHT_REGISTER
            + self.branches * WEIGHT_BRANCH
        )

    def scaled(self, factor: float) -> "OpCounts":
        return OpCounts(
            self.compares * factor, self.registers * factor, self.branches * factor
        )

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.compares + other.compares,
            self.registers + other.registers,
            self.branches + other.branches,
        )

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.compares, self.registers, self.branches)


#: Table 5: (static, dynamic) marginal counts per boolean operator.
#: One operator joins two relations; a not-taken branch probability of
#: one half gives the early-out dynamic branch count of 1.5.
TABLE5: Dict[EvalStrategy, Tuple[OpCounts, OpCounts]] = {
    EvalStrategy.SET_CONDITIONALLY: (
        OpCounts(2, 1, 0),  # 2 set-conditionally (compare class) + or
        OpCounts(2, 1, 0),
    ),
    EvalStrategy.CC_CONDITIONAL_SET: (
        OpCounts(2, 3, 0),  # 2 cmp + 2 scc + or
        OpCounts(2, 3, 0),
    ),
    EvalStrategy.CC_BRANCH_FULL: (
        OpCounts(2, 2, 2),  # 2 cmp + 2 conditional stores + 2 branches
        OpCounts(2, 2, 2),
    ),
    EvalStrategy.CC_BRANCH_EARLY_OUT: (
        OpCounts(2, 0, 2),
        OpCounts(2, 0, 1.5),  # one branch short-circuits half the time
    ),
}

#: the paper's Table 6 constants (store / jump / total; full, early-out)
PAPER_TABLE6 = {
    ("store", EvalStrategy.SET_CONDITIONALLY): (9.3, 9.3),
    ("store", EvalStrategy.CC_CONDITIONAL_SET): (14.9, 14.9),
    ("store", EvalStrategy.CC_BRANCH_FULL): (27.9, 20.5),
    ("jump", EvalStrategy.SET_CONDITIONALLY): (13.3, 13.3),
    ("jump", EvalStrategy.CC_CONDITIONAL_SET): (18.9, 18.9),
    ("jump", EvalStrategy.CC_BRANCH_FULL): (26.9, 19.5),
    ("total", EvalStrategy.SET_CONDITIONALLY): (12.5, 12.5),
    ("total", EvalStrategy.CC_CONDITIONAL_SET): (18.0, 18.0),
    ("total", EvalStrategy.CC_BRANCH_FULL): (26.9, 19.7),
}

PAPER_IMPROVEMENTS = {
    ("conditional set / CC", "full"): 33.0,
    ("conditional set / CC", "early-out"): 8.6,
    ("set conditionally", "full"): 53.5,
    ("set conditionally", "early-out"): 36.5,
}


def expression_cost(
    strategy: EvalStrategy,
    context: str,
    operators_per_expression: float,
    early_out: bool = False,
) -> float:
    """Cost of one boolean expression under the given strategy.

    ``context`` is ``"store"`` or ``"jump"``.  Early-out only changes
    the branch-evaluated strategies.
    """
    if strategy is EvalStrategy.CC_BRANCH_FULL and early_out:
        strategy = EvalStrategy.CC_BRANCH_EARLY_OUT
    static, dynamic = TABLE5[strategy]
    marginal = dynamic.scaled(operators_per_expression)

    branch_based = strategy in (
        EvalStrategy.CC_BRANCH_FULL,
        EvalStrategy.CC_BRANCH_EARLY_OUT,
    )
    if context == "store":
        # materializing + storing the value; branch evaluation needs the
        # extra assignment (initialize, then conditionally overwrite)
        fixed = OpCounts(0, 2 if branch_based else 1, 0)
    elif context == "jump":
        # the final conditional transfer; branch evaluation folds it
        # into the chain's last branch
        fixed = OpCounts(0, 0, 0 if branch_based else 1)
    else:
        raise ValueError(f"unknown context {context!r}")
    return (marginal + fixed).cost()


@dataclass
class Table6Row:
    strategy: EvalStrategy
    store_full: float
    store_early: float
    jump_full: float
    jump_early: float
    total_full: float
    total_early: float


def table6(
    operators_per_expression: float = 1.66,
    jump_fraction: float = 0.809,
) -> Dict[EvalStrategy, Table6Row]:
    """Compute Table 6 from the Table 4 parameters.

    Defaults are the paper's measured inputs; callers substitute the
    corpus-measured values from :mod:`repro.analysis.boolexpr`.
    """
    store_fraction = 1.0 - jump_fraction
    rows: Dict[EvalStrategy, Table6Row] = {}
    for strategy in (
        EvalStrategy.SET_CONDITIONALLY,
        EvalStrategy.CC_CONDITIONAL_SET,
        EvalStrategy.CC_BRANCH_FULL,
    ):
        costs = {}
        for early in (False, True):
            store = expression_cost(strategy, "store", operators_per_expression, early)
            jump = expression_cost(strategy, "jump", operators_per_expression, early)
            total = jump_fraction * jump + store_fraction * store
            costs[early] = (store, jump, total)
        rows[strategy] = Table6Row(
            strategy,
            costs[False][0],
            costs[True][0],
            costs[False][1],
            costs[True][1],
            costs[False][2],
            costs[True][2],
        )
    return rows


def improvements(
    operators_per_expression: float = 1.66, jump_fraction: float = 0.809
) -> Dict[Tuple[str, str], float]:
    """The bottom of Table 6: percentage improvements over CC+branch."""
    rows = table6(operators_per_expression, jump_fraction)
    branch_row = rows[EvalStrategy.CC_BRANCH_FULL]
    condset_row = rows[EvalStrategy.CC_CONDITIONAL_SET]
    setcond_row = rows[EvalStrategy.SET_CONDITIONALLY]
    out: Dict[Tuple[str, str], float] = {}
    for label, base in (("full", branch_row.total_full), ("early-out", branch_row.total_early)):
        out[("conditional set / CC", label)] = 100.0 * (base - condset_row.total_full) / base
        out[("set conditionally", label)] = 100.0 * (base - setcond_row.total_full) / base
    return out
