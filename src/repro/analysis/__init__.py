"""Analyses behind every table in the paper's evaluation."""

from .bool_cost import (
    EvalStrategy,
    OpCounts,
    PAPER_IMPROVEMENTS as PAPER_TABLE6_IMPROVEMENTS,
    PAPER_TABLE6,
    TABLE5,
    Table6Row,
    expression_cost,
    improvements,
    table6,
)
from .boolexpr import (
    BoolExprStats,
    PAPER_TABLE4,
    corpus_stats,
    count_operators,
    program_stats,
)
from .bytecost import (
    AddressingCosts,
    PAPER_FREQUENCIES,
    PAPER_PENALTIES,
    from_measurement,
    from_paper,
    overhead_sweep,
)
from .cc_usage import CcUsage, PAPER_TABLE3, analyze_cc_program, corpus_cc_usage
from .constants_dist import (
    ConstantDistribution,
    PAPER_TABLE1,
    corpus_distribution,
    distribution,
)
from .freecycles import (
    FreeCycleReport,
    PAPER_FREE_FRACTION,
    dma_throughput,
    measure as measure_free_cycles,
)
from .refpatterns import (
    PAPER_TABLE7,
    PAPER_TABLE8,
    RefPatterns,
    measure_both,
    measure_layout,
)
from .static_counts import (
    OptimizationLadder,
    PAPER_IMPROVEMENTS as PAPER_TABLE11_IMPROVEMENTS,
    PAPER_TABLE11,
    measure_program,
    table11,
)

__all__ = [
    "AddressingCosts",
    "BoolExprStats",
    "CcUsage",
    "ConstantDistribution",
    "EvalStrategy",
    "FreeCycleReport",
    "OpCounts",
    "OptimizationLadder",
    "PAPER_FREE_FRACTION",
    "PAPER_FREQUENCIES",
    "PAPER_PENALTIES",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE6",
    "PAPER_TABLE6_IMPROVEMENTS",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
    "PAPER_TABLE11",
    "PAPER_TABLE11_IMPROVEMENTS",
    "RefPatterns",
    "TABLE5",
    "Table6Row",
    "analyze_cc_program",
    "corpus_cc_usage",
    "corpus_distribution",
    "corpus_stats",
    "count_operators",
    "distribution",
    "dma_throughput",
    "expression_cost",
    "from_measurement",
    "from_paper",
    "improvements",
    "measure_both",
    "measure_free_cycles",
    "measure_layout",
    "measure_program",
    "overhead_sweep",
    "program_stats",
    "table11",
    "table6",
]
