"""Dynamic data-reference patterns (Tables 7 and 8).

The corpus is compiled twice -- word-allocated and byte-allocated --
and executed; every ``Load``/``Store`` piece carries a
``{load,store}:{8,32}:{char,word}`` note the CPU tallies
(:attr:`repro.sim.cpu.CpuStats.ref_notes`).  The tables report:

- the load/store split over all data references;
- 8-bit versus 32-bit loads and stores;
- the same split restricted to *character* references (char/boolean
  data), where the paper observes a much higher store fraction;
- the size of the globals region under each layout (the paper: "The
  global activation records of the word-based allocation version
  average 20% larger").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..compiler.codegen_mips import CompileOptions
from ..compiler.driver import compile_source
from ..compiler.layout import LayoutStrategy
from ..sim.machine import Machine

#: the paper's Table 7 (word-allocated) percentages
PAPER_TABLE7 = {
    "loads_percent": 71.2,
    "stores_percent": 28.7,
    "loads_8bit": 2.6,
    "loads_32bit": 68.6,
    "stores_8bit": 2.6,
    "stores_32bit": 26.2,
    "char_loads_percent": 66.7,
    "char_stores_percent": 33.3,
    "char_loads_8bit": 14.7,
    "char_loads_32bit": 52.0,
    "char_stores_8bit": 21.5,
    "char_stores_32bit": 11.8,
}

#: the paper's Table 8 (byte-allocated) percentages
PAPER_TABLE8 = {
    "loads_percent": 71.2,
    "stores_percent": 28.7,
    "loads_8bit": 6.6,
    "loads_32bit": 64.6,
    "stores_8bit": 5.9,
    "stores_32bit": 22.9,
}


@dataclass
class RefPatterns:
    """Aggregated dynamic reference counts for one layout."""

    counts: Counter = field(default_factory=Counter)
    globals_words: int = 0

    def add_notes(self, notes: Mapping[str, int]) -> None:
        self.counts.update(notes)

    def _get(self, kind: str, width: Optional[str] = None, char: Optional[str] = None) -> int:
        total = 0
        for note, count in self.counts.items():
            k, w, c = note.split(":")
            if k != kind:
                continue
            if width is not None and w != width:
                continue
            if char is not None and c != char:
                continue
            total += count
        return total

    @property
    def total(self) -> int:
        return self._get("load") + self._get("store")

    def percent(self, kind: str, width: Optional[str] = None, char: Optional[str] = None) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self._get(kind, width, char) / self.total

    @property
    def char_total(self) -> int:
        return self._get("load", char="char") + self._get("store", char="char")

    def char_percent(self, kind: str, width: Optional[str] = None) -> float:
        if self.char_total == 0:
            return 0.0
        return 100.0 * self._get(kind, width, "char") / self.char_total

    def rows(self) -> Dict[str, float]:
        """The Table 7/8 rows, keyed like ``PAPER_TABLE7``."""
        return {
            "loads_percent": self.percent("load"),
            "stores_percent": self.percent("store"),
            "loads_8bit": self.percent("load", "8"),
            "loads_32bit": self.percent("load", "32"),
            "stores_8bit": self.percent("store", "8"),
            "stores_32bit": self.percent("store", "32"),
            "char_loads_percent": self.char_percent("load"),
            "char_stores_percent": self.char_percent("store"),
            "char_loads_8bit": self.char_percent("load", "8"),
            "char_loads_32bit": self.char_percent("load", "32"),
            "char_stores_8bit": self.char_percent("store", "8"),
            "char_stores_32bit": self.char_percent("store", "32"),
        }

    def frequency(self, kind: str, width: str) -> float:
        """Fraction (0..1) of all references -- Table 10's weights."""
        if self.total == 0:
            return 0.0
        return self._get(kind, width) / self.total


def measure_layout(
    layout: LayoutStrategy,
    sources: Optional[Mapping[str, str]] = None,
    max_steps: int = 30_000_000,
) -> RefPatterns:
    """Compile and run the corpus under one layout; aggregate patterns."""
    from ..workloads import CORPUS, QUICK_PROGRAMS

    if sources is None:
        sources = {name: CORPUS[name] for name in QUICK_PROGRAMS}
    patterns = RefPatterns()
    for source in sources.values():
        compiled = compile_source(source, CompileOptions(layout=layout))
        machine = Machine(compiled.program)
        machine.run(max_steps)
        patterns.add_notes(machine.stats.ref_notes)
        patterns.globals_words += compiled.unit.globals_words
    return patterns


def measure_both(
    sources: Optional[Mapping[str, str]] = None,
) -> Tuple[RefPatterns, RefPatterns]:
    """(word-allocated, byte-allocated) reference patterns."""
    return (
        measure_layout(LayoutStrategy.WORD_ALLOCATED, sources),
        measure_layout(LayoutStrategy.BYTE_ALLOCATED, sources),
    )
