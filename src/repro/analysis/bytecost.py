"""Byte-versus-word addressing cost analysis (Tables 9 and 10).

Table 9 prices the individual operations (see
:mod:`repro.isa.costs`).  Table 10 multiplies those prices by the
reference frequencies of Tables 7/8 to get the expected cost per data
reference on each architecture, and derives the **byte addressing
performance penalty** -- the paper's headline 9-11.8% (word-allocated
programs) and 7.7-14.6% (byte-allocated programs).

The paper notes its figures "should be regarded as minimum improvements
attributable to word based addressing" because they ignore the wider
displacement range of word offsets, use the low overhead estimate, and
ignore the extra read in byte stores -- all of which we inherit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..isa.costs import (
    BYTE_ADDRESSING_OVERHEAD_LOW,
    CostRange,
    MemOperation,
    byte_machine_costs,
    word_machine_costs,
)
from .refpatterns import RefPatterns

#: the paper's Table 10 reference frequencies (fraction of all loads+stores)
PAPER_FREQUENCIES = {
    "word-allocated": {
        ("load", "8"): 0.026,
        ("store", "8"): 0.026,
        ("load", "32"): 0.686,
        ("store", "32"): 0.262,
    },
    "byte-allocated": {
        ("load", "8"): 0.066,
        ("store", "8"): 0.059,
        ("load", "32"): 0.646,
        ("store", "32"): 0.229,
    },
}

#: the paper's Table 10 penalty ranges (percent)
PAPER_PENALTIES = {
    "word-allocated": (9.0, 11.8),
    "byte-allocated": (7.7, 14.6),
}


@dataclass
class AddressingCosts:
    """One Table 10 column pair: per-reference costs on both machines."""

    frequencies: Dict[Tuple[str, str], float]
    overhead: float = BYTE_ADDRESSING_OVERHEAD_LOW

    def _freq(self, kind: str, width: str) -> float:
        return self.frequencies.get((kind, width), 0.0)

    def word_machine_total(self) -> CostRange:
        """Expected cycles per reference on word-addressed MIPS.

        Byte references pay the insert/extract sequences (the packed
        array access costs of Table 9); word references cost the plain
        4-cycle load/store.
        """
        costs = word_machine_costs()
        total = CostRange.point(0.0)
        total = total + costs[MemOperation.LOAD_FROM_ARRAY].scaled(self._freq("load", "8"))
        total = total + costs[MemOperation.STORE_INTO_ARRAY].scaled(self._freq("store", "8"))
        total = total + costs[MemOperation.LOAD_WORD].scaled(self._freq("load", "32"))
        total = total + costs[MemOperation.STORE_WORD].scaled(self._freq("store", "32"))
        return total

    def byte_machine_total(self) -> CostRange:
        """Expected cycles per reference on byte-addressed MIPS.

        Word references are single memory operations; byte references
        carry the byte-pointer arithmetic the paper charges in its
        Table 10 rows (the ``load byte``/``store byte`` costs).  All
        references pay the operand-path overhead.
        """
        costs = byte_machine_costs(self.overhead)
        total = CostRange.point(0.0)
        total = total + costs[MemOperation.LOAD_BYTE].scaled(self._freq("load", "8"))
        total = total + costs[MemOperation.STORE_BYTE].scaled(self._freq("store", "8"))
        total = total + costs[MemOperation.LOAD_WORD].scaled(self._freq("load", "32"))
        total = total + costs[MemOperation.STORE_WORD].scaled(self._freq("store", "32"))
        return total

    def penalty_percent(self) -> Tuple[float, float]:
        """Byte-addressing penalty range relative to the word machine."""
        word = self.word_machine_total()
        byte = self.byte_machine_total()
        if word.hi == 0 or word.lo == 0:
            return (0.0, 0.0)
        low = 100.0 * (byte.lo - word.hi) / word.hi
        high = 100.0 * (byte.hi - word.lo) / word.lo
        return (low, high)

    def component_rows(self) -> Dict[str, CostRange]:
        """Table 10's individual rows (cost contribution per category)."""
        word_costs = word_machine_costs()
        byte_costs = byte_machine_costs(self.overhead)
        return {
            "byte loads on MIPS": word_costs[MemOperation.LOAD_FROM_ARRAY].scaled(
                self._freq("load", "8")
            ),
            "byte stores on MIPS": word_costs[MemOperation.STORE_INTO_ARRAY].scaled(
                self._freq("store", "8")
            ),
            "word loads on MIPS": word_costs[MemOperation.LOAD_WORD].scaled(
                self._freq("load", "32")
            ),
            "word stores on MIPS": word_costs[MemOperation.STORE_WORD].scaled(
                self._freq("store", "32")
            ),
            "byte loads on byte-addressed": byte_costs[MemOperation.LOAD_FROM_ARRAY].scaled(
                self._freq("load", "8")
            ),
            "byte stores on byte-addressed": byte_costs[MemOperation.STORE_INTO_ARRAY].scaled(
                self._freq("store", "8")
            ),
            "word loads on byte-addressed": byte_costs[MemOperation.LOAD_WORD].scaled(
                self._freq("load", "32")
            ),
            "word stores on byte-addressed": byte_costs[MemOperation.STORE_WORD].scaled(
                self._freq("store", "32")
            ),
        }


def from_paper(allocation: str, overhead: float = BYTE_ADDRESSING_OVERHEAD_LOW) -> AddressingCosts:
    """Table 10 with the paper's frequencies."""
    return AddressingCosts(dict(PAPER_FREQUENCIES[allocation]), overhead)


def from_measurement(
    patterns: RefPatterns, overhead: float = BYTE_ADDRESSING_OVERHEAD_LOW
) -> AddressingCosts:
    """Table 10 with corpus-measured frequencies."""
    frequencies = {
        (kind, width): patterns.frequency(kind, width)
        for kind in ("load", "store")
        for width in ("8", "32")
    }
    return AddressingCosts(frequencies, overhead)


def overhead_sweep(
    frequencies: Dict[Tuple[str, str], float],
    overheads: Optional[Tuple[float, ...]] = None,
) -> Dict[float, Tuple[float, float]]:
    """Penalty as a function of the operand-path overhead (ablation)."""
    if overheads is None:
        overheads = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)
    return {
        overhead: AddressingCosts(dict(frequencies), overhead).penalty_percent()
        for overhead in overheads
    }
