"""Constant-distribution analysis (Table 1).

"Table 1 contains the distribution of constants (in magnitudes) found
in a collection of Pascal programs."  The compiler records every
constant it emits as an instruction operand
(:attr:`repro.compiler.codegen_mips.CompiledUnit.constants`); this
module buckets them by magnitude and reports the coverage of each
immediate mechanism: the 4-bit operand constant, the 8-bit move
immediate, and the long immediate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from ..isa.immediates import TABLE1_ROWS, ConstantClass, classify_constant

#: the paper's Table 1, for side-by-side reporting (percent)
PAPER_TABLE1 = {
    ConstantClass.ZERO: 24.8,
    ConstantClass.ONE: 19.0,
    ConstantClass.TWO: 4.1,
    ConstantClass.SMALL: 20.8,
    ConstantClass.BYTE: 26.8,
    ConstantClass.LARGE: 4.5,
}


@dataclass
class ConstantDistribution:
    """Bucketed constant counts plus derived coverage figures."""

    counts: Dict[ConstantClass, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percent(self, bucket: ConstantClass) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(bucket, 0) / self.total

    @property
    def percentages(self) -> Dict[ConstantClass, float]:
        return {bucket: self.percent(bucket) for bucket in TABLE1_ROWS}

    @property
    def imm4_coverage(self) -> float:
        """Percent of constants the 4-bit operand constant covers.

        The paper: "a 4-bit constant should cover approximately 70% of
        the cases" (the 0, 1, 2 and 3-15 buckets).
        """
        return sum(
            self.percent(bucket)
            for bucket in (
                ConstantClass.ZERO,
                ConstantClass.ONE,
                ConstantClass.TWO,
                ConstantClass.SMALL,
            )
        )

    @property
    def movi_coverage(self) -> float:
        """Percent covered by the 4-bit constant or the 8-bit movi.

        The paper: "the special 8-bit constant will catch all but 5%."
        """
        return self.imm4_coverage + self.percent(ConstantClass.BYTE)


def distribution(constants: Iterable[int]) -> ConstantDistribution:
    """Bucket a collection of constants Table 1 style."""
    counts: Counter = Counter(classify_constant(value) for value in constants)
    return ConstantDistribution({bucket: counts.get(bucket, 0) for bucket in TABLE1_ROWS})


def corpus_distribution(
    sources: Optional[Mapping[str, str]] = None,
) -> ConstantDistribution:
    """Compile the corpus and bucket every emitted constant."""
    from ..compiler.codegen_mips import generate
    from ..lang.semantic import analyze
    from ..workloads import CORPUS

    constants: List[int] = []
    for source in (sources or CORPUS).values():
        unit = generate(analyze(source))
        constants.extend(unit.constants)
    return distribution(constants)
