"""Mini-Pascal front end: lexer, parser, AST, type checker."""

from . import ast
from .lexer import Kind, LexError, Token, tokenize
from .parser import ParseError, Parser, parse_program
from .semantic import (
    CheckedProgram,
    Checker,
    RoutineSymbol,
    SemanticError,
    VarSymbol,
    analyze,
    check_program,
)
from .types import (
    BOOLEAN,
    CHAR,
    INTEGER,
    ArrayType,
    BooleanType,
    CharType,
    IntegerType,
    RecordType,
    Type,
    compatible,
)

__all__ = [
    "ArrayType",
    "BOOLEAN",
    "BooleanType",
    "CHAR",
    "CharType",
    "CheckedProgram",
    "Checker",
    "INTEGER",
    "IntegerType",
    "Kind",
    "LexError",
    "ParseError",
    "Parser",
    "RecordType",
    "RoutineSymbol",
    "SemanticError",
    "Token",
    "Type",
    "VarSymbol",
    "analyze",
    "ast",
    "check_program",
    "compatible",
    "parse_program",
    "tokenize",
]
