"""Lexer for mini-Pascal.

The workload corpus (the paper's data comes from "a collection of
Pascal programs including compilers and VLSI design aid software") is
written in a compact Pascal subset; this module tokenizes it.

Token kinds: keywords, identifiers, integer literals, character
literals (``'a'``), string literals (``'hello'`` with more than one
character), and punctuation/operators.  Comments are ``{ ... }`` or
``(* ... *)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = frozenset(
    """
    program const type var array of record packed begin end
    procedure function if then else while do repeat until for to
    downto case integer char boolean true false div mod and or not
    """.split()
)


class Kind(Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    CHAR = "char"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: Kind
    text: str
    line: int
    value: Optional[int] = None  # numbers and chars

    def is_keyword(self, word: str) -> bool:
        return self.kind is Kind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind is Kind.OP and self.text == op

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}:{self.text}"


_TWO_CHAR_OPS = (":=", "<=", ">=", "<>", "..")
_ONE_CHAR_OPS = "+-*/=<>()[].,;:^"


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-Pascal source, raising :class:`LexError` on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "{":
            end = source.find("}", i)
            if end < 0:
                raise LexError("unterminated { comment", line)
            line += source.count("\n", i, end)
            i = end + 1
            continue
        if source.startswith("(*", i):
            end = source.find("*)", i)
            if end < 0:
                raise LexError("unterminated (* comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i].lower()
            kind = Kind.KEYWORD if word in KEYWORDS else Kind.IDENT
            tokens.append(Token(kind, word, line))
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            # lookahead: '1..5' must not eat the range dots
            tokens.append(Token(Kind.NUMBER, source[start:i], line, int(source[start:i])))
            continue
        if ch == "'":
            j = i + 1
            chars: List[str] = []
            while True:
                if j >= n:
                    raise LexError("unterminated character/string literal", line)
                if source[j] == "'":
                    if j + 1 < n and source[j + 1] == "'":  # escaped quote
                        chars.append("'")
                        j += 2
                        continue
                    break
                if source[j] == "\n":
                    raise LexError("newline in character/string literal", line)
                chars.append(source[j])
                j += 1
            text = "".join(chars)
            i = j + 1
            if len(text) == 1:
                tokens.append(Token(Kind.CHAR, text, line, ord(text)))
            else:
                tokens.append(Token(Kind.STRING, text, line))
            continue
        matched = None
        for op in _TWO_CHAR_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched:
            tokens.append(Token(Kind.OP, matched, line))
            i += len(matched)
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(Kind.OP, ch, line))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token(Kind.EOF, "", line))
    return tokens
