"""Semantic analysis: name resolution and type checking.

Produces a :class:`CheckedProgram`: the AST annotated in place with
resolved :mod:`types <repro.lang.types>` (every expression node gains a
``.type`` attribute) plus symbol tables the compiler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import ast
from .types import (
    BOOLEAN,
    CHAR,
    INTEGER,
    ArrayType,
    BooleanType,
    RecordType,
    Type,
    compatible,
)


class SemanticError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass
class VarSymbol:
    """A variable, parameter, or function-result slot."""

    name: str
    type: Type
    kind: str  # 'global' | 'local' | 'param' | 'result'
    by_ref: bool = False
    routine: Optional[str] = None  # owning routine, None for globals

    @property
    def is_global(self) -> bool:
        return self.kind == "global"


@dataclass
class RoutineSymbol:
    name: str
    params: List[VarSymbol]
    result: Optional[Type]
    locals: List[VarSymbol] = field(default_factory=list)
    ast_node: Optional[ast.Routine] = None

    @property
    def is_function(self) -> bool:
        return self.result is not None


@dataclass
class CheckedProgram:
    """The semantic checker's output."""

    ast: ast.ProgramAst
    globals: Dict[str, VarSymbol]
    routines: Dict[str, RoutineSymbol]
    consts: Dict[str, int]

    @property
    def name(self) -> str:
        return self.ast.name


_BUILTIN_FUNCTIONS = ("ord", "chr", "abs", "odd")


class Checker:
    def __init__(self, program: ast.ProgramAst):
        self.program = program
        self.types: Dict[str, Type] = {}
        self.consts: Dict[str, int] = {}
        self.globals: Dict[str, VarSymbol] = {}
        self.routines: Dict[str, RoutineSymbol] = {}
        #: routine scope during body checking (None = main body)
        self._scope: Optional[RoutineSymbol] = None
        self._scope_vars: Dict[str, VarSymbol] = {}
        self._scope_consts: Dict[str, int] = {}

    # -- declarations ------------------------------------------------------

    def check(self) -> CheckedProgram:
        for const in self.program.consts:
            if const.name in self.consts:
                raise SemanticError(f"constant {const.name!r} redefined", const.line)
            self.consts[const.name] = const.value
        for decl in self.program.types:
            if decl.name in self.types:
                raise SemanticError(f"type {decl.name!r} redefined", decl.line)
            self.types[decl.name] = self.resolve_type(decl.type_expr, decl.line)
        for var in self.program.global_vars:
            if var.name in self.globals:
                raise SemanticError(f"variable {var.name!r} redefined", var.line)
            self.globals[var.name] = VarSymbol(
                var.name, self.resolve_type(var.type_expr, var.line), "global"
            )
        for routine in self.program.routines:
            self.declare_routine(routine)
        for routine in self.program.routines:
            self.check_routine(routine)
        self._scope = None
        self._scope_vars = {}
        self._scope_consts = {}
        self.check_stmt(self.program.body)
        return CheckedProgram(self.program, self.globals, self.routines, self.consts)

    def resolve_type(self, expr: ast.TypeExpr, line: int = 0) -> Type:
        if isinstance(expr, ast.NamedType):
            if expr.name == "integer":
                return INTEGER
            if expr.name == "char":
                return CHAR
            if expr.name == "boolean":
                return BOOLEAN
            if expr.name in self.types:
                return self.types[expr.name]
            raise SemanticError(f"unknown type {expr.name!r}", line)
        if isinstance(expr, ast.ArrayTypeExpr):
            return ArrayType(
                expr.low, expr.high, self.resolve_type(expr.element, line), expr.packed
            )
        if isinstance(expr, ast.RecordTypeExpr):
            fields = tuple(
                (name, self.resolve_type(ftype, line)) for name, ftype in expr.fields
            )
            names = [n for n, _ in fields]
            if len(names) != len(set(names)):
                raise SemanticError("duplicate record field", line)
            return RecordType(fields, expr.packed)
        raise SemanticError(f"bad type expression {expr!r}", line)

    def declare_routine(self, routine: ast.Routine) -> None:
        if routine.name in self.routines or routine.name in _BUILTIN_FUNCTIONS:
            raise SemanticError(f"routine {routine.name!r} redefined", routine.line)
        params = [
            VarSymbol(
                p.name,
                self.resolve_type(p.type_expr, p.line),
                "param",
                by_ref=p.by_ref,
                routine=routine.name,
            )
            for p in routine.params
        ]
        for p in params:
            if p.by_ref and not isinstance(p.type, (ArrayType, RecordType)):
                pass  # scalar var parameters are fine too
        result = (
            self.resolve_type(routine.result_type, routine.line)
            if routine.result_type is not None
            else None
        )
        if result is not None and not result.is_scalar:
            raise SemanticError("functions must return scalars", routine.line)
        self.routines[routine.name] = RoutineSymbol(
            routine.name, params, result, ast_node=routine
        )

    def check_routine(self, routine: ast.Routine) -> None:
        symbol = self.routines[routine.name]
        self._scope = symbol
        self._scope_consts = {c.name: c.value for c in routine.consts}
        self._scope_vars = {p.name: p for p in symbol.params}
        for var in routine.local_vars:
            if var.name in self._scope_vars:
                raise SemanticError(f"variable {var.name!r} redefined", var.line)
            local = VarSymbol(
                var.name,
                self.resolve_type(var.type_expr, var.line),
                "local",
                routine=routine.name,
            )
            self._scope_vars[var.name] = local
            symbol.locals.append(local)
        if symbol.is_function:
            # the function name acts as the result variable
            assert symbol.result is not None
            self._scope_vars.setdefault(
                routine.name,
                VarSymbol(routine.name, symbol.result, "result", routine=routine.name),
            )
        self.check_stmt(routine.body)

    # -- symbol lookup ------------------------------------------------------------

    def lookup_var(self, name: str, line: int) -> VarSymbol:
        if name in self._scope_vars:
            return self._scope_vars[name]
        if name in self.globals:
            return self.globals[name]
        raise SemanticError(f"undefined variable {name!r}", line)

    def lookup_const(self, name: str) -> Optional[int]:
        if name in self._scope_consts:
            return self._scope_consts[name]
        return self.consts.get(name)

    # -- statements -------------------------------------------------------------------

    def check_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Compound):
            for inner in stmt.body:
                self.check_stmt(inner)
        elif isinstance(stmt, ast.Assign):
            assert stmt.target is not None and stmt.value is not None
            target_type = self.check_expr(stmt.target, lvalue=True)
            value_type = self.check_expr(stmt.value)
            if not compatible(target_type, value_type):
                raise SemanticError(
                    f"cannot assign {value_type!r} to {target_type!r}", stmt.line
                )
        elif isinstance(stmt, ast.CallStmt):
            self.check_call(stmt.name, stmt.args, stmt.line, statement=True)
        elif isinstance(stmt, ast.If):
            self.require_boolean(stmt.cond, stmt.line)
            self.check_stmt(stmt.then_branch)
            self.check_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.While):
            self.require_boolean(stmt.cond, stmt.line)
            self.check_stmt(stmt.body)
        elif isinstance(stmt, ast.Repeat):
            for inner in stmt.body:
                self.check_stmt(inner)
            self.require_boolean(stmt.cond, stmt.line)
        elif isinstance(stmt, ast.For):
            var = self.lookup_var(stmt.var, stmt.line)
            if var.type != INTEGER:
                raise SemanticError("for-loop variable must be integer", stmt.line)
            if var.by_ref:
                raise SemanticError("for-loop variable cannot be a var parameter", stmt.line)
            assert stmt.start is not None and stmt.stop is not None
            if self.check_expr(stmt.start) != INTEGER:
                raise SemanticError("for-loop bounds must be integer", stmt.line)
            if self.check_expr(stmt.stop) != INTEGER:
                raise SemanticError("for-loop bounds must be integer", stmt.line)
            self.check_stmt(stmt.body)
        elif isinstance(stmt, ast.Write):
            for arg in stmt.args:
                arg_type = self.check_expr(arg)
                if isinstance(arg, ast.StringLit):
                    continue
                if not arg_type.is_scalar:
                    raise SemanticError("write needs scalars or strings", stmt.line)
        elif isinstance(stmt, ast.Read):
            assert stmt.target is not None
            target_type = self.check_expr(stmt.target, lvalue=True)
            if target_type != INTEGER:
                raise SemanticError("read target must be integer", stmt.line)
        else:
            raise SemanticError(f"unhandled statement {stmt!r}", stmt.line)

    def require_boolean(self, expr: Optional[ast.Expr], line: int) -> None:
        assert expr is not None
        if self.check_expr(expr) != BOOLEAN:
            raise SemanticError("condition must be boolean", line)

    # -- expressions ---------------------------------------------------------------------

    def check_expr(self, expr: ast.Expr, lvalue: bool = False) -> Type:
        expr_type = self._check_expr(expr, lvalue)
        expr.type = expr_type  # type: ignore[attr-defined]
        return expr_type

    def _check_expr(self, expr: ast.Expr, lvalue: bool) -> Type:
        if isinstance(expr, ast.IntLit):
            return INTEGER
        if isinstance(expr, ast.CharLit):
            return CHAR
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.StringLit):
            return ArrayType(0, max(len(expr.value) - 1, 0), CHAR, packed=True)
        if isinstance(expr, ast.VarRef):
            const_value = self.lookup_const(expr.name)
            if const_value is not None and not lvalue:
                expr.const_value = const_value  # type: ignore[attr-defined]
                return INTEGER
            if (
                not lvalue
                and expr.name not in self._scope_vars
                and expr.name not in self.globals
                and expr.name in self.routines
                and self.routines[expr.name].is_function
                and not self.routines[expr.name].params
            ):
                # Pascal: a parameterless function call needs no parens
                expr.implicit_call = True  # type: ignore[attr-defined]
                result = self.routines[expr.name].result
                assert result is not None
                return result
            return self.lookup_var(expr.name, expr.line).type
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            base_type = self.check_expr(expr.base, lvalue)
            if not isinstance(base_type, ArrayType):
                raise SemanticError("indexing a non-array", expr.line)
            if self.check_expr(expr.index) != INTEGER:
                raise SemanticError("array index must be integer", expr.line)
            return base_type.element
        if isinstance(expr, ast.FieldAccess):
            assert expr.base is not None
            base_type = self.check_expr(expr.base, lvalue)
            if not isinstance(base_type, RecordType):
                raise SemanticError("field access on a non-record", expr.line)
            ftype = base_type.field_type(expr.field_name)
            if ftype is None:
                raise SemanticError(f"no field {expr.field_name!r}", expr.line)
            return ftype
        if isinstance(expr, ast.UnOp):
            assert expr.operand is not None
            operand = self.check_expr(expr.operand)
            if expr.op == "-":
                if operand != INTEGER:
                    raise SemanticError("unary minus needs an integer", expr.line)
                return INTEGER
            if expr.op == "not":
                if operand != BOOLEAN:
                    raise SemanticError("'not' needs a boolean", expr.line)
                return BOOLEAN
            raise SemanticError(f"unknown unary operator {expr.op!r}", expr.line)
        if isinstance(expr, ast.BinOp):
            assert expr.left is not None and expr.right is not None
            left = self.check_expr(expr.left)
            right = self.check_expr(expr.right)
            if expr.op in ("+", "-", "*", "div", "mod"):
                if left != INTEGER or right != INTEGER:
                    raise SemanticError(f"{expr.op!r} needs integers", expr.line)
                return INTEGER
            if expr.op in ("and", "or"):
                if left != BOOLEAN or right != BOOLEAN:
                    raise SemanticError(f"{expr.op!r} needs booleans", expr.line)
                return BOOLEAN
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                if not compatible(left, right) or not left.is_scalar:
                    raise SemanticError(
                        f"cannot compare {left!r} with {right!r}", expr.line
                    )
                return BOOLEAN
            raise SemanticError(f"unknown operator {expr.op!r}", expr.line)
        if isinstance(expr, ast.CallExpr):
            return self.check_call(expr.name, expr.args, expr.line, statement=False)
        # lowering nodes (produced by repro.mjlang, never by the parser)
        if isinstance(expr, ast.MemWord):
            assert expr.base is not None
            if self.check_expr(expr.base) != INTEGER:
                raise SemanticError("memory word base must be integer", expr.line)
            return self._scalar_for(expr.value_type, expr.line)
        if isinstance(expr, ast.LabelAddr):
            return INTEGER
        if isinstance(expr, ast.GlobalAddr):
            if expr.name not in self.globals:
                raise SemanticError(f"no global {expr.name!r}", expr.line)
            return INTEGER
        if isinstance(expr, ast.CallIndirect):
            assert expr.target is not None
            if self.check_expr(expr.target) != INTEGER:
                raise SemanticError("indirect-call target must be integer", expr.line)
            for arg in expr.args:
                if not self.check_expr(arg).is_scalar:
                    raise SemanticError(
                        "indirect-call arguments must be scalars", expr.line
                    )
            return self._scalar_for(expr.value_type, expr.line)
        if isinstance(expr, ast.AllocWords):
            assert expr.size is not None
            if self.check_expr(expr.size) != INTEGER:
                raise SemanticError("allocation size must be integer", expr.line)
            return INTEGER
        raise SemanticError(f"unhandled expression {expr!r}", expr.line)

    @staticmethod
    def _scalar_for(name: str, line: int) -> Type:
        if name == "integer":
            return INTEGER
        if name == "boolean":
            return BOOLEAN
        raise SemanticError(f"bad lowering value type {name!r}", line)

    def check_call(
        self, name: str, args: List[ast.Expr], line: int, statement: bool
    ) -> Type:
        if name in _BUILTIN_FUNCTIONS:
            if statement:
                raise SemanticError(f"{name} is a function", line)
            if len(args) != 1:
                raise SemanticError(f"{name} takes one argument", line)
            arg_type = self.check_expr(args[0])
            if name == "ord":
                if not arg_type.is_scalar:
                    raise SemanticError("ord needs a scalar", line)
                return INTEGER
            if name == "chr":
                if arg_type != INTEGER:
                    raise SemanticError("chr needs an integer", line)
                return CHAR
            if name == "abs":
                if arg_type != INTEGER:
                    raise SemanticError("abs needs an integer", line)
                return INTEGER
            # odd
            if arg_type != INTEGER:
                raise SemanticError("odd needs an integer", line)
            return BOOLEAN
        if name not in self.routines:
            raise SemanticError(f"undefined routine {name!r}", line)
        routine = self.routines[name]
        if statement and routine.is_function:
            pass  # calling a function as a statement discards the result
        if not statement and not routine.is_function:
            raise SemanticError(f"{name!r} is a procedure, not a function", line)
        if len(args) != len(routine.params):
            raise SemanticError(
                f"{name!r} expects {len(routine.params)} arguments, got {len(args)}",
                line,
            )
        for arg, param in zip(args, routine.params):
            arg_type = self.check_expr(arg, lvalue=param.by_ref)
            if not compatible(arg_type, param.type):
                raise SemanticError(
                    f"argument {param.name!r}: expected {param.type!r}, got {arg_type!r}",
                    line,
                )
            if param.by_ref and not isinstance(
                arg, (ast.VarRef, ast.Index, ast.FieldAccess)
            ):
                raise SemanticError(
                    f"var parameter {param.name!r} needs a variable", line
                )
            if param.by_ref and isinstance(arg, ast.VarRef):
                if self.lookup_const(arg.name) is not None and arg.name not in self._scope_vars and arg.name not in self.globals:
                    raise SemanticError(
                        f"var parameter {param.name!r} cannot bind a constant", line
                    )
        return routine.result if routine.result is not None else INTEGER


def check_program(program: ast.ProgramAst) -> CheckedProgram:
    """Type-check a parsed program."""
    return Checker(program).check()


def analyze(source: str) -> CheckedProgram:
    """Parse and type-check mini-Pascal source."""
    from .parser import parse_program

    return check_program(parse_program(source))
