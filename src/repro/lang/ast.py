"""Abstract syntax for mini-Pascal."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# type expressions (syntactic; resolved by the checker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NamedType:
    name: str  # 'integer', 'char', 'boolean', or a declared type name


@dataclass(frozen=True)
class ArrayTypeExpr:
    low: int
    high: int
    element: "TypeExpr"
    packed: bool = False


@dataclass(frozen=True)
class RecordTypeExpr:
    fields: Tuple[Tuple[str, "TypeExpr"], ...]
    packed: bool = False


TypeExpr = Union[NamedType, ArrayTypeExpr, RecordTypeExpr]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class CharLit(Expr):
    value: int = 0  # ordinal


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class FieldAccess(Expr):
    base: Optional[Expr] = None
    field_name: str = ""


@dataclass
class BinOp(Expr):
    op: str = ""  # + - * div mod and or = <> < <= > >=
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class UnOp(Expr):
    op: str = ""  # - not
    operand: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# lowering expressions
#
# These nodes are never produced by the mini-Pascal parser.  They are
# the small "typed machine" vocabulary a second front end (the MiniJava
# lowering in repro.mjlang) uses to express heap records, vtables, and
# indirect calls while still flowing through the one shared checker and
# code generator.
# ---------------------------------------------------------------------------


@dataclass
class MemWord(Expr):
    """The word at word-address ``base + offset`` (load or store).

    ``value_type`` names the scalar the word holds ('integer' or
    'boolean'); heap words are untyped storage, so the producer states
    the type instead of the checker inferring one.
    """

    base: Optional[Expr] = None
    offset: int = 0
    value_type: str = "integer"


@dataclass
class LabelAddr(Expr):
    """The code address of a routine entry label (fills vtable slots)."""

    label: str = ""


@dataclass
class GlobalAddr(Expr):
    """The word address of a global variable (a vtable base)."""

    name: str = ""


@dataclass
class CallIndirect(Expr):
    """Call through a computed code address (dynamic dispatch).

    Arguments are always by-value; ``value_type`` names the result
    scalar ('integer' or 'boolean').
    """

    target: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)
    value_type: str = "integer"


@dataclass
class AllocWords(Expr):
    """A fresh ``size``-word zeroed heap block's base address."""

    size: Optional[Expr] = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Assign(Stmt):
    target: Optional[Expr] = None  # VarRef / Index / FieldAccess
    value: Optional[Expr] = None


@dataclass
class CallStmt(Stmt):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Compound(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Repeat(Stmt):
    body: List[Stmt] = field(default_factory=list)
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    var: str = ""
    start: Optional[Expr] = None
    stop: Optional[Expr] = None
    downto: bool = False
    body: Optional[Stmt] = None


@dataclass
class Write(Stmt):
    args: List[Expr] = field(default_factory=list)
    newline: bool = False


@dataclass
class Read(Stmt):
    target: Optional[Expr] = None


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    type_expr: TypeExpr
    by_ref: bool = False  # 'var' parameter
    line: int = 0


@dataclass
class VarDecl:
    name: str
    type_expr: TypeExpr
    line: int = 0


@dataclass
class ConstDecl:
    name: str
    value: int
    line: int = 0


@dataclass
class TypeDecl:
    name: str
    type_expr: TypeExpr
    line: int = 0


@dataclass
class Routine:
    """A procedure (``result_type is None``) or function."""

    name: str
    params: List[Param]
    result_type: Optional[TypeExpr]
    consts: List[ConstDecl]
    local_vars: List[VarDecl]
    body: Compound
    line: int = 0

    @property
    def is_function(self) -> bool:
        return self.result_type is not None


@dataclass
class ProgramAst:
    name: str
    consts: List[ConstDecl]
    types: List[TypeDecl]
    global_vars: List[VarDecl]
    routines: List[Routine]
    body: Compound
