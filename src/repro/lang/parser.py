"""Recursive-descent parser for mini-Pascal.

Standard Pascal operator precedence is kept (relational operators bind
loosest, ``and`` multiplies, ``or`` adds, ``not`` binds tightest), so
compound boolean expressions read exactly like the paper's example
``Found := (Rec = Key) OR (I = 13)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    ArrayTypeExpr,
    Assign,
    BinOp,
    BoolLit,
    CallExpr,
    CallStmt,
    CharLit,
    Compound,
    ConstDecl,
    Expr,
    FieldAccess,
    For,
    If,
    Index,
    IntLit,
    NamedType,
    Param,
    ProgramAst,
    Read,
    RecordTypeExpr,
    Repeat,
    Routine,
    Stmt,
    StringLit,
    TypeDecl,
    TypeExpr,
    UnOp,
    VarDecl,
    VarRef,
    While,
    Write,
)
from .lexer import Kind, Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


_RELOPS = ("=", "<>", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise ParseError(f"expected {op!r}", self.current)
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise ParseError(f"expected {word!r}", self.current)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not Kind.IDENT:
            raise ParseError("expected an identifier", self.current)
        return self.advance()

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    # -- program structure ------------------------------------------------------

    def parse_program(self) -> ProgramAst:
        self.expect_keyword("program")
        name = self.expect_ident().text
        self.expect_op(";")
        consts = self.parse_const_section()
        types = self.parse_type_section()
        global_vars = self.parse_var_section()
        routines: List[Routine] = []
        while self.current.is_keyword("procedure") or self.current.is_keyword("function"):
            routines.append(self.parse_routine())
        body = self.parse_compound()
        self.expect_op(".")
        return ProgramAst(name, consts, types, global_vars, routines, body)

    def parse_const_section(self) -> List[ConstDecl]:
        out: List[ConstDecl] = []
        if self.accept_keyword("const"):
            while self.current.kind is Kind.IDENT:
                name = self.advance().text
                self.expect_op("=")
                out.append(ConstDecl(name, self.parse_const_value(), self.current.line))
                self.expect_op(";")
        return out

    def parse_const_value(self) -> int:
        negative = self.accept_op("-")
        token = self.advance()
        if token.kind in (Kind.NUMBER, Kind.CHAR):
            value = token.value or 0
        elif token.kind is Kind.KEYWORD and token.text in ("true", "false"):
            value = 1 if token.text == "true" else 0
        else:
            raise ParseError("expected a constant", token)
        return -value if negative else value

    def parse_type_section(self) -> List[TypeDecl]:
        out: List[TypeDecl] = []
        if self.accept_keyword("type"):
            while self.current.kind is Kind.IDENT:
                name = self.advance().text
                self.expect_op("=")
                out.append(TypeDecl(name, self.parse_type_expr(), self.current.line))
                self.expect_op(";")
        return out

    def parse_var_section(self) -> List[VarDecl]:
        out: List[VarDecl] = []
        if self.accept_keyword("var"):
            while self.current.kind is Kind.IDENT:
                names = [self.advance().text]
                while self.accept_op(","):
                    names.append(self.expect_ident().text)
                self.expect_op(":")
                type_expr = self.parse_type_expr()
                for name in names:
                    out.append(VarDecl(name, type_expr, self.current.line))
                self.expect_op(";")
        return out

    def parse_type_expr(self) -> TypeExpr:
        packed = self.accept_keyword("packed")
        if self.accept_keyword("array"):
            self.expect_op("[")
            low = self.parse_const_value()
            self.expect_op("..")
            high = self.parse_const_value()
            self.expect_op("]")
            self.expect_keyword("of")
            element = self.parse_type_expr()
            return ArrayTypeExpr(low, high, element, packed)
        if self.accept_keyword("record"):
            fields: List[Tuple[str, TypeExpr]] = []
            while not self.current.is_keyword("end"):
                names = [self.expect_ident().text]
                while self.accept_op(","):
                    names.append(self.expect_ident().text)
                self.expect_op(":")
                ftype = self.parse_type_expr()
                for name in names:
                    fields.append((name, ftype))
                if not self.accept_op(";"):
                    break
            self.expect_keyword("end")
            return RecordTypeExpr(tuple(fields), packed)
        if packed:
            raise ParseError("'packed' applies to arrays and records", self.current)
        token = self.advance()
        if token.kind is Kind.KEYWORD and token.text in ("integer", "char", "boolean"):
            return NamedType(token.text)
        if token.kind is Kind.IDENT:
            return NamedType(token.text)
        raise ParseError("expected a type", token)

    def parse_routine(self) -> Routine:
        line = self.current.line
        is_function = self.current.is_keyword("function")
        self.advance()
        name = self.expect_ident().text
        params: List[Param] = []
        if self.accept_op("("):
            while True:
                by_ref = self.accept_keyword("var")
                names = [self.expect_ident().text]
                while self.accept_op(","):
                    names.append(self.expect_ident().text)
                self.expect_op(":")
                ptype = self.parse_type_expr()
                for pname in names:
                    params.append(Param(pname, ptype, by_ref, self.current.line))
                if not self.accept_op(";"):
                    break
            self.expect_op(")")
        result_type: Optional[TypeExpr] = None
        if is_function:
            self.expect_op(":")
            result_type = self.parse_type_expr()
        self.expect_op(";")
        consts = self.parse_const_section()
        local_vars = self.parse_var_section()
        body = self.parse_compound()
        self.expect_op(";")
        return Routine(name, params, result_type, consts, local_vars, body, line)

    # -- statements ---------------------------------------------------------------

    def parse_compound(self) -> Compound:
        line = self.current.line
        self.expect_keyword("begin")
        body: List[Stmt] = []
        while not self.current.is_keyword("end"):
            stmt = self.parse_statement()
            if stmt is not None:
                body.append(stmt)
            if not self.accept_op(";"):
                break
        self.expect_keyword("end")
        return Compound(line, body)

    def parse_statement(self) -> Optional[Stmt]:
        token = self.current
        if token.is_keyword("begin"):
            return self.parse_compound()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("repeat"):
            return self.parse_repeat()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.kind is Kind.IDENT:
            if token.text in ("write", "writeln"):
                return self.parse_write()
            if token.text == "read":
                return self.parse_read()
            return self.parse_assign_or_call()
        if token.is_keyword("end") or token.is_op(";"):
            return None  # empty statement
        raise ParseError("expected a statement", token)

    def parse_if(self) -> If:
        line = self.current.line
        self.expect_keyword("if")
        cond = self.parse_expr()
        self.expect_keyword("then")
        then_branch = self.parse_statement()
        else_branch = None
        if self.accept_keyword("else"):
            else_branch = self.parse_statement()
        return If(line, cond, then_branch, else_branch)

    def parse_while(self) -> While:
        line = self.current.line
        self.expect_keyword("while")
        cond = self.parse_expr()
        self.expect_keyword("do")
        return While(line, cond, self.parse_statement())

    def parse_repeat(self) -> Repeat:
        line = self.current.line
        self.expect_keyword("repeat")
        body: List[Stmt] = []
        while not self.current.is_keyword("until"):
            stmt = self.parse_statement()
            if stmt is not None:
                body.append(stmt)
            if not self.accept_op(";"):
                break
        self.expect_keyword("until")
        return Repeat(line, body, self.parse_expr())

    def parse_for(self) -> For:
        line = self.current.line
        self.expect_keyword("for")
        var = self.expect_ident().text
        self.expect_op(":=")
        start = self.parse_expr()
        downto = False
        if self.accept_keyword("downto"):
            downto = True
        else:
            self.expect_keyword("to")
        stop = self.parse_expr()
        self.expect_keyword("do")
        return For(line, var, start, stop, downto, self.parse_statement())

    def parse_write(self) -> Write:
        line = self.current.line
        name = self.advance().text  # write / writeln
        args: List[Expr] = []
        if self.accept_op("("):
            if not self.current.is_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
        return Write(line, args, newline=(name == "writeln"))

    def parse_read(self) -> Read:
        line = self.current.line
        self.advance()
        self.expect_op("(")
        target = self.parse_designator()
        self.expect_op(")")
        return Read(line, target)

    def parse_assign_or_call(self) -> Stmt:
        line = self.current.line
        name_token = self.expect_ident()
        if self.current.is_op("(") or not (
            self.current.is_op(":=") or self.current.is_op("[") or self.current.is_op(".")
        ):
            # procedure call (with or without arguments)
            args: List[Expr] = []
            if self.accept_op("("):
                if not self.current.is_op(")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
            return CallStmt(line, name_token.text, args)
        target: Expr = VarRef(line, name_token.text)
        target = self.parse_designator_suffix(target)
        self.expect_op(":=")
        return Assign(line, target, self.parse_expr())

    # -- expressions -----------------------------------------------------------------

    def parse_designator(self) -> Expr:
        token = self.expect_ident()
        return self.parse_designator_suffix(VarRef(token.line, token.text))

    def parse_designator_suffix(self, base: Expr) -> Expr:
        while True:
            if self.accept_op("["):
                index = self.parse_expr()
                self.expect_op("]")
                base = Index(base.line, base, index)
            elif self.current.is_op(".") and self.tokens[self.pos + 1].kind is Kind.IDENT:
                self.advance()
                field_name = self.expect_ident().text
                base = FieldAccess(base.line, base, field_name)
            else:
                return base

    def parse_expr(self) -> Expr:
        left = self.parse_simple()
        if self.current.kind is Kind.OP and self.current.text in _RELOPS:
            op = self.advance().text
            right = self.parse_simple()
            return BinOp(left.line, op, left, right)
        return left

    def parse_simple(self) -> Expr:
        line = self.current.line
        negate = False
        if self.accept_op("-"):
            negate = True
        elif self.current.is_op("+"):
            self.advance()
        left = self.parse_term()
        if negate:
            left = UnOp(line, "-", left)
        while True:
            if self.current.is_op("+") or self.current.is_op("-"):
                op = self.advance().text
                left = BinOp(line, op, left, self.parse_term())
            elif self.current.is_keyword("or"):
                self.advance()
                left = BinOp(line, "or", left, self.parse_term())
            else:
                return left

    def parse_term(self) -> Expr:
        line = self.current.line
        left = self.parse_factor()
        while True:
            if self.current.is_op("*"):
                self.advance()
                left = BinOp(line, "*", left, self.parse_factor())
            elif self.current.is_keyword("div"):
                self.advance()
                left = BinOp(line, "div", left, self.parse_factor())
            elif self.current.is_keyword("mod"):
                self.advance()
                left = BinOp(line, "mod", left, self.parse_factor())
            elif self.current.is_keyword("and"):
                self.advance()
                left = BinOp(line, "and", left, self.parse_factor())
            else:
                return left

    def parse_factor(self) -> Expr:
        token = self.current
        if token.kind is Kind.NUMBER:
            self.advance()
            return IntLit(token.line, token.value or 0)
        if token.kind is Kind.CHAR:
            self.advance()
            return CharLit(token.line, token.value or 0)
        if token.kind is Kind.STRING:
            self.advance()
            return StringLit(token.line, token.text)
        if token.is_keyword("true") or token.is_keyword("false"):
            self.advance()
            return BoolLit(token.line, token.text == "true")
        if token.is_keyword("not"):
            self.advance()
            return UnOp(token.line, "not", self.parse_factor())
        if token.is_op("-"):
            # a signed factor (e.g. the right operand of `div -2`)
            self.advance()
            return UnOp(token.line, "-", self.parse_factor())
        if token.is_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if token.kind is Kind.IDENT:
            self.advance()
            if self.current.is_op("("):
                self.advance()
                args: List[Expr] = []
                if not self.current.is_op(")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
                return CallExpr(token.line, token.text, args)
            return self.parse_designator_suffix(VarRef(token.line, token.text))
        raise ParseError("expected an expression", token)


def parse_program(source: str) -> ProgramAst:
    """Parse mini-Pascal source into an AST."""
    return Parser(source).parse_program()
