"""Resolved types for mini-Pascal.

Sizes are *not* decided here: whether a ``char`` occupies a byte or a
full word is a compiler *layout strategy* -- the exact contrast between
the paper's Table 7 (word-allocated) and Table 8 (byte-allocated)
programs.  Types only carry shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class Type:
    """Base class for resolved types."""

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntegerType, CharType, BooleanType))

    @property
    def is_byte_natured(self) -> bool:
        """Char/boolean data: candidates for byte allocation (Table 8)."""
        return isinstance(self, (CharType, BooleanType))


@dataclass(frozen=True)
class IntegerType(Type):
    def __repr__(self) -> str:
        return "integer"


@dataclass(frozen=True)
class CharType(Type):
    def __repr__(self) -> str:
        return "char"


@dataclass(frozen=True)
class BooleanType(Type):
    def __repr__(self) -> str:
        return "boolean"


INTEGER = IntegerType()
CHAR = CharType()
BOOLEAN = BooleanType()


@dataclass(frozen=True)
class ArrayType(Type):
    low: int
    high: int
    element: Type
    packed: bool = False

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"empty array range {self.low}..{self.high}")

    @property
    def length(self) -> int:
        return self.high - self.low + 1

    def __repr__(self) -> str:
        packed = "packed " if self.packed else ""
        return f"{packed}array[{self.low}..{self.high}] of {self.element!r}"


@dataclass(frozen=True)
class RecordType(Type):
    fields: Tuple[Tuple[str, Type], ...]
    packed: bool = False

    def field_type(self, name: str) -> Optional[Type]:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def __repr__(self) -> str:
        inner = "; ".join(f"{n}: {t!r}" for n, t in self.fields)
        return f"record {inner} end"


def compatible(a: Type, b: Type) -> bool:
    """Assignment/comparison compatibility (structural for composites)."""
    return a == b
